#!/usr/bin/env python
"""Repo-root entry point for the documentation-contract checker.

Thin wrapper so ``make docs-check`` (and CI) work without an installed
package: puts ``src/`` on ``sys.path`` and delegates to
:mod:`repro.obs.docscheck`.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(ROOT / "src"))

from repro.obs.docscheck import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["--root", str(ROOT), *sys.argv[1:]]))
