"""Coverage ratchet: fail CI when line coverage drops below the stamp.

Stdlib-only line coverage for ``src/repro`` — no ``coverage.py``
dependency, so the gate runs identically on a bare interpreter and in
CI.  Executed lines come from ``sys.monitoring`` (3.12+, near-zero
steady-state overhead: each recorded location is disabled after its
first hit) or ``sys.settrace`` (older interpreters); executable lines
come from the AST (statement line numbers), which keeps the
denominator identical across interpreter versions.

Usage::

    python tools/coverage_gate.py            # measure + gate vs baseline
    python tools/coverage_gate.py --stamp    # measure + (re)write baseline
    python tools/coverage_gate.py --report   # measure + print per-file table

The gate fails when

- total coverage falls more than ``TOLERANCE`` (0.5pt) below the
  stamped baseline (plus ``VERSION_SLACK`` when the running
  interpreter's minor version differs from the one that stamped —
  line-event semantics drift slightly between versions), or
- any ``src/repro/cache`` module sits below ``CACHE_FLOOR`` (90%), or
- any ``src/repro/service`` module sits below ``SERVICE_FLOOR`` (85%).

Raising the stamp is deliberate (run ``--stamp`` and commit the JSON);
it never auto-ratchets upward, so a lucky run cannot tighten the gate
on everyone else.

Honors ``# pragma: no cover`` (the flagged statement and, on a block
header, its whole body) and skips ``if TYPE_CHECKING:`` bodies.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import re
import sys
import threading
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Set, Tuple

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src" / "repro"
BASELINE_PATH = Path(__file__).resolve().parent / "coverage_baseline.json"

TOLERANCE = 0.5
VERSION_SLACK = 1.0
CACHE_FLOOR = 90.0
CACHE_PREFIX = "repro/cache/"
SERVICE_FLOOR = 85.0
SERVICE_PREFIX = "repro/service/"

_PRAGMA_RE = re.compile(r"#\s*pragma:\s*no\s*cover")


# -- executable lines (the denominator) -----------------------------


def _is_docstring_stmt(node: ast.stmt) -> bool:
    return (
        isinstance(node, ast.Expr)
        and isinstance(node.value, ast.Constant)
        and isinstance(node.value.value, str)
    )


def _is_type_checking_if(node: ast.stmt) -> bool:
    if not isinstance(node, ast.If):
        return False
    test = node.test
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def executable_lines(path: Path) -> Set[int]:
    """AST-statement line numbers of ``path`` (the coverage denominator).

    Statements with no runtime line event (docstrings, ``global`` /
    ``nonlocal``), ``# pragma: no cover`` regions and
    ``if TYPE_CHECKING:`` bodies are excluded.
    """
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    pragma_lines = {
        i for i, text in enumerate(source.splitlines(), start=1) if _PRAGMA_RE.search(text)
    }
    lines: Set[int] = set()
    skip_ranges: List[Tuple[int, int]] = []

    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        if isinstance(node, (ast.Global, ast.Nonlocal)) or _is_docstring_stmt(node):
            continue
        if node.lineno in pragma_lines or _is_type_checking_if(node):
            skip_ranges.append((node.lineno, node.end_lineno or node.lineno))
            continue
        lines.add(node.lineno)
        for deco in getattr(node, "decorator_list", []):
            lines.add(deco.lineno)

    for lo, hi in skip_ranges:
        lines -= set(range(lo, hi + 1))
    return lines


def tracked_files() -> List[Path]:
    """Every ``src/repro`` module the gate measures."""
    return sorted(SRC.rglob("*.py"))


# -- executed lines (the numerator) ---------------------------------


def start_tracing(store: Dict[str, Set[int]]) -> Callable[[], None]:
    """Begin recording executed ``src/repro`` lines; returns a stopper."""
    prefix = str(SRC) + os.sep

    if sys.version_info >= (3, 12):
        mon = sys.monitoring
        mon.use_tool_id(mon.COVERAGE_ID, "coverage-gate")

        def on_line(code, lineno):
            filename = code.co_filename
            if filename.startswith(prefix):
                store.setdefault(filename, set()).add(lineno)
            return mon.DISABLE  # each location only needs one hit

        mon.register_callback(mon.COVERAGE_ID, mon.events.LINE, on_line)
        mon.set_events(mon.COVERAGE_ID, mon.events.LINE)

        def stop() -> None:
            mon.set_events(mon.COVERAGE_ID, 0)
            mon.register_callback(mon.COVERAGE_ID, mon.events.LINE, None)
            mon.free_tool_id(mon.COVERAGE_ID)

        return stop

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(prefix):
            return None
        if event == "line":
            store.setdefault(filename, set()).add(frame.f_lineno)
        return tracer

    previous = sys.gettrace()
    previous_threading = threading.gettrace() if hasattr(threading, "gettrace") else None
    sys.settrace(tracer)
    threading.settrace(tracer)

    def stop() -> None:
        sys.settrace(previous)
        threading.settrace(previous_threading)

    return stop


def measure(pytest_args: Iterable[str]) -> Dict[str, Set[int]]:
    """Run the test suite under the tracer; returns file -> executed lines.

    Must run in a fresh interpreter *before* ``repro`` is imported, so
    module-level statements execute under the tracer.
    """
    if any(name == "repro" or name.startswith("repro.") for name in sys.modules):
        raise RuntimeError("measure() must run before repro is imported")
    # ``python -m pytest`` puts the CWD first on sys.path; replicate
    # that here so ``tests.*`` cross-imports resolve the same way, and
    # add ``src/`` so the gate works without an installed package or an
    # external PYTHONPATH.
    if str(ROOT) not in sys.path:
        sys.path.insert(0, str(ROOT))
    if str(SRC.parent) not in sys.path:
        sys.path.insert(1, str(SRC.parent))
    store: Dict[str, Set[int]] = {}
    stop = start_tracing(store)
    try:
        import pytest

        code = pytest.main(list(pytest_args))
    finally:
        stop()
    if code != 0:
        raise SystemExit(f"test suite failed under coverage (pytest exit {code})")
    return store


# -- reporting and the gate -----------------------------------------


def build_report(executed: Dict[str, Set[int]]) -> Dict:
    """Per-file and total percentages from raw executed-line sets."""
    files: Dict[str, Dict] = {}
    total_executable = 0
    total_covered = 0
    for path in tracked_files():
        rel = str(path.relative_to(ROOT / "src"))
        lines = executable_lines(path)
        hit = executed.get(str(path), set()) & lines
        total_executable += len(lines)
        total_covered += len(hit)
        files[rel] = {
            "executable": len(lines),
            "covered": len(hit),
            "percent": round(100.0 * len(hit) / len(lines), 2) if lines else 100.0,
        }
    total = round(100.0 * total_covered / total_executable, 2) if total_executable else 100.0
    return {
        "schema": 1,
        "python": f"{sys.version_info[0]}.{sys.version_info[1]}",
        "total": total,
        "files": files,
    }


def evaluate(
    current: Dict,
    baseline: Dict | None,
    *,
    tolerance: float = TOLERANCE,
    version_slack: float = VERSION_SLACK,
    cache_floor: float = CACHE_FLOOR,
    service_floor: float = SERVICE_FLOOR,
) -> Tuple[List[str], List[str]]:
    """Gate verdict: (problems, notes).  Empty problems == pass."""
    problems: List[str] = []
    notes: List[str] = []

    if baseline is None:
        notes.append(
            f"no baseline at {BASELINE_PATH.name}; run --stamp to start the ratchet"
        )
    else:
        slack = tolerance
        if baseline.get("python") != current["python"]:
            slack += version_slack
            notes.append(
                f"baseline stamped on python {baseline.get('python')}, running "
                f"{current['python']}: allowing {slack:.1f}pt total slack"
            )
        floor = baseline["total"] - slack
        if current["total"] < floor:
            problems.append(
                f"total coverage {current['total']:.2f}% fell below the stamped "
                f"baseline {baseline['total']:.2f}% - {slack:.1f}pt = {floor:.2f}%"
            )

    floors = (
        (CACHE_PREFIX, cache_floor, "repro.cache"),
        (SERVICE_PREFIX, service_floor, "repro.service"),
    )
    for rel, info in sorted(current["files"].items()):
        for prefix, floor, label in floors:
            if rel.startswith(prefix) and info["executable"] > 0:
                if info["percent"] < floor:
                    problems.append(
                        f"{rel}: {info['percent']:.2f}% is below the "
                        f"{floor:.0f}% floor for {label} modules"
                    )
    return problems, notes


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--stamp",
        action="store_true",
        help="write the measured coverage as the new baseline instead of gating",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="print the per-file coverage table after measuring",
    )
    parser.add_argument(
        "--pytest-args",
        nargs=argparse.REMAINDER,
        default=["-q", "-p", "no:cacheprovider", "tests"],
        help="arguments passed to pytest (default: the tier-1 suite)",
    )
    args = parser.parse_args(argv)

    report = build_report(measure(args.pytest_args))

    if args.report:
        for rel, info in sorted(report["files"].items()):
            print(f"{rel:60s} {info['covered']:5d}/{info['executable']:5d} {info['percent']:6.2f}%")
    print(f"total: {report['total']:.2f}% (python {report['python']})")

    if args.stamp:
        BASELINE_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"stamped baseline -> {BASELINE_PATH}")
        return 0

    baseline = None
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
    problems, notes = evaluate(report, baseline)
    for note in notes:
        print(f"note: {note}")
    for problem in problems:
        print(f"FAIL: {problem}")
    if problems:
        return 1
    print("coverage gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
