#!/usr/bin/env python
"""Benchmark regression gate.

Compares a freshly generated ``BENCH_RESULTS.json`` against a committed
baseline and fails (exit 1) when any shared benchmark regressed beyond
the allowed fraction:

- ``wall_seconds`` (lower is better) may not exceed
  ``baseline * (1 + max-regress)`` *and* ``baseline + abs-slack``
  (both must be breached — sub-100ms benches jitter by tens of
  milliseconds, which is a huge relative but meaningless absolute
  change);
- ``config.speedup`` entries (higher is better) may not fall below
  ``baseline * (1 - max-regress)``.

Benchmarks present in only one file are reported but never fail the
gate — new benchmarks must be able to land, and retired ones must be
able to leave.  Intended CI use::

    cp BENCH_RESULTS.json /tmp/baseline.json   # the committed numbers
    make bench-smoke                           # merges fresh numbers
    python tools/bench_gate.py --baseline /tmp/baseline.json \
        --current BENCH_RESULTS.json

Wall times on shared CI runners are noisy, so the default allowance is
a deliberately loose 50% — the gate catches algorithmic regressions
(complexity changes, lost caching), not micro-noise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List

DEFAULT_MAX_REGRESS = 0.5
DEFAULT_ABS_SLACK = 0.05  # seconds; wall jitter floor for tiny benches


def load_results(path: Path) -> Dict[str, Dict[str, Any]]:
    """The ``results`` table of one BENCH_RESULTS.json file."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"bench-gate: cannot read {path}: {exc}")
    results = payload.get("results")
    if not isinstance(results, dict):
        raise SystemExit(f"bench-gate: {path} has no 'results' table")
    return results


def compare(
    baseline: Dict[str, Dict[str, Any]],
    current: Dict[str, Dict[str, Any]],
    max_regress: float,
    abs_slack: float = DEFAULT_ABS_SLACK,
) -> List[str]:
    """Regression messages for every shared benchmark that got worse."""
    failures: List[str] = []
    for name in sorted(set(baseline) & set(current)):
        base, cur = baseline[name], current[name]
        base_wall = float(base.get("wall_seconds", 0.0))
        cur_wall = float(cur.get("wall_seconds", 0.0))
        if (
            base_wall > 0.0
            and cur_wall > base_wall * (1.0 + max_regress)
            and cur_wall > base_wall + abs_slack
        ):
            failures.append(
                f"{name}: wall time {cur_wall:.3f}s exceeds baseline "
                f"{base_wall:.3f}s by more than {max_regress:.0%}"
            )
        base_speedup = base.get("config", {}).get("speedup")
        cur_speedup = cur.get("config", {}).get("speedup")
        if base_speedup is not None and cur_speedup is not None:
            if float(cur_speedup) < float(base_speedup) * (1.0 - max_regress):
                failures.append(
                    f"{name}: speedup {float(cur_speedup):.2f}x fell below "
                    f"baseline {float(base_speedup):.2f}x by more than "
                    f"{max_regress:.0%}"
                )
    return failures


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", required=True, type=Path, help="committed BENCH_RESULTS.json"
    )
    parser.add_argument(
        "--current", required=True, type=Path, help="freshly generated results"
    )
    parser.add_argument(
        "--max-regress",
        type=float,
        default=DEFAULT_MAX_REGRESS,
        help="allowed fractional regression (default %(default)s = 50%%)",
    )
    parser.add_argument(
        "--abs-slack",
        type=float,
        default=DEFAULT_ABS_SLACK,
        help="absolute wall-time jitter floor in seconds; a wall regression "
        "only fails when it also exceeds baseline + this (default %(default)ss)",
    )
    args = parser.parse_args(argv)
    if args.max_regress < 0:
        parser.error("--max-regress must be >= 0")
    if args.abs_slack < 0:
        parser.error("--abs-slack must be >= 0")

    baseline = load_results(args.baseline)
    current = load_results(args.current)
    shared = sorted(set(baseline) & set(current))
    only_base = sorted(set(baseline) - set(current))
    only_cur = sorted(set(current) - set(baseline))
    print(
        f"bench-gate: {len(shared)} shared benchmark(s), "
        f"allowance {args.max_regress:.0%}"
    )
    for name in only_base:
        print(f"  note: {name} is in the baseline only (not gated)")
    for name in only_cur:
        print(f"  note: {name} is new (not gated)")

    failures = compare(baseline, current, args.max_regress, args.abs_slack)
    for name in shared:
        if not any(msg.startswith(f"{name}:") for msg in failures):
            print(f"  ok: {name}")
    for msg in failures:
        print(f"  REGRESSION {msg}", file=sys.stderr)
    if failures:
        print(f"bench-gate: FAILED ({len(failures)} regression(s))", file=sys.stderr)
        return 1
    print("bench-gate: passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
