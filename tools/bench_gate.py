#!/usr/bin/env python
"""Benchmark regression gate.

Compares a freshly generated ``BENCH_RESULTS.json`` against a committed
baseline and fails (exit 1) when any shared benchmark regressed beyond
the allowed fraction:

- ``wall_seconds`` (lower is better) may not exceed
  ``baseline * (1 + max-regress)`` *and* ``baseline + abs-slack``
  (both must be breached — sub-100ms benches jitter by tens of
  milliseconds, which is a huge relative but meaningless absolute
  change);
- every ``config`` entry whose key starts with ``speedup`` (higher is
  better) may not fall below ``baseline * (1 - max-regress)``.

Speedup comparisons are **skipped with a logged reason** when the two
results were recorded on machines with different core counts (the
per-result ``machine_cpus`` stamp, falling back to the file-level
``machine.cpus``): a parallel-speedup target measured on 4 cores says
nothing on a 1-core runner.  Wall times are still gated — they are
noisy across machines but catch order-of-magnitude breakage.

Benchmarks present in only one file are reported but never fail the
gate — new benchmarks must be able to land, and retired ones must be
able to leave.  Intended CI use::

    cp BENCH_RESULTS.json /tmp/baseline.json   # the committed numbers
    make bench-smoke                           # merges fresh numbers
    python tools/bench_gate.py --baseline /tmp/baseline.json \
        --current BENCH_RESULTS.json

Wall times on shared CI runners are noisy, so the default allowance is
a deliberately loose 50% — the gate catches algorithmic regressions
(complexity changes, lost caching), not micro-noise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List

DEFAULT_MAX_REGRESS = 0.5
DEFAULT_ABS_SLACK = 0.05  # seconds; wall jitter floor for tiny benches


def load_payload(path: Path) -> Dict[str, Any]:
    """One whole BENCH_RESULTS.json payload (results + machine block)."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"bench-gate: cannot read {path}: {exc}")
    if not isinstance(payload.get("results"), dict):
        raise SystemExit(f"bench-gate: {path} has no 'results' table")
    return payload


def load_results(path: Path) -> Dict[str, Dict[str, Any]]:
    """The ``results`` table of one BENCH_RESULTS.json file."""
    return load_payload(path)["results"]


def result_cpus(entry: Dict[str, Any], payload_cpus: Any = None) -> Any:
    """The core count a result was recorded on (``None`` when unknown).

    Prefers the per-result ``machine_cpus`` stamp; older entries fall
    back to the file-level machine block of the session that wrote
    them (best effort — that block only describes the last session).
    """
    cpus = entry.get("machine_cpus", payload_cpus)
    return int(cpus) if cpus is not None else None


def compare(
    baseline: Dict[str, Dict[str, Any]],
    current: Dict[str, Dict[str, Any]],
    max_regress: float,
    abs_slack: float = DEFAULT_ABS_SLACK,
    *,
    baseline_cpus: Any = None,
    current_cpus: Any = None,
    notes: List[str] | None = None,
) -> List[str]:
    """Regression messages for every shared benchmark that got worse.

    ``baseline_cpus``/``current_cpus`` are the file-level fallbacks for
    results without a per-result ``machine_cpus`` stamp.  Skipped
    speedup comparisons (machine mismatch) are appended to ``notes``.
    """
    failures: List[str] = []
    for name in sorted(set(baseline) & set(current)):
        base, cur = baseline[name], current[name]
        base_wall = float(base.get("wall_seconds", 0.0))
        cur_wall = float(cur.get("wall_seconds", 0.0))
        if (
            base_wall > 0.0
            and cur_wall > base_wall * (1.0 + max_regress)
            and cur_wall > base_wall + abs_slack
        ):
            failures.append(
                f"{name}: wall time {cur_wall:.3f}s exceeds baseline "
                f"{base_wall:.3f}s by more than {max_regress:.0%}"
            )
        base_cfg = base.get("config", {})
        cur_cfg = cur.get("config", {})
        speedup_keys = sorted(
            k
            for k in set(base_cfg) & set(cur_cfg)
            if k.startswith("speedup")
            and base_cfg[k] is not None
            and cur_cfg[k] is not None
        )
        if not speedup_keys:
            continue
        base_cpus = result_cpus(base, baseline_cpus)
        cur_cpus = result_cpus(cur, current_cpus)
        if base_cpus is not None and cur_cpus is not None and base_cpus != cur_cpus:
            if notes is not None:
                notes.append(
                    f"{name}: speedup comparison skipped — baseline was "
                    f"recorded on {base_cpus} core(s), current on "
                    f"{cur_cpus} (machine mismatch)"
                )
            continue
        for key in speedup_keys:
            if float(cur_cfg[key]) < float(base_cfg[key]) * (1.0 - max_regress):
                failures.append(
                    f"{name}: {key} {float(cur_cfg[key]):.2f}x fell below "
                    f"baseline {float(base_cfg[key]):.2f}x by more than "
                    f"{max_regress:.0%}"
                )
    return failures


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", required=True, type=Path, help="committed BENCH_RESULTS.json"
    )
    parser.add_argument(
        "--current", required=True, type=Path, help="freshly generated results"
    )
    parser.add_argument(
        "--max-regress",
        type=float,
        default=DEFAULT_MAX_REGRESS,
        help="allowed fractional regression (default %(default)s = 50%%)",
    )
    parser.add_argument(
        "--abs-slack",
        type=float,
        default=DEFAULT_ABS_SLACK,
        help="absolute wall-time jitter floor in seconds; a wall regression "
        "only fails when it also exceeds baseline + this (default %(default)ss)",
    )
    args = parser.parse_args(argv)
    if args.max_regress < 0:
        parser.error("--max-regress must be >= 0")
    if args.abs_slack < 0:
        parser.error("--abs-slack must be >= 0")

    base_payload = load_payload(args.baseline)
    cur_payload = load_payload(args.current)
    baseline = base_payload["results"]
    current = cur_payload["results"]
    shared = sorted(set(baseline) & set(current))
    only_base = sorted(set(baseline) - set(current))
    only_cur = sorted(set(current) - set(baseline))
    print(
        f"bench-gate: {len(shared)} shared benchmark(s), "
        f"allowance {args.max_regress:.0%}"
    )
    for name in only_base:
        print(f"  note: {name} is in the baseline only (not gated)")
    for name in only_cur:
        print(f"  note: {name} is new (not gated)")

    notes: List[str] = []
    failures = compare(
        baseline,
        current,
        args.max_regress,
        args.abs_slack,
        baseline_cpus=base_payload.get("machine", {}).get("cpus"),
        current_cpus=cur_payload.get("machine", {}).get("cpus"),
        notes=notes,
    )
    for note in notes:
        print(f"  note: {note}")
    for name in shared:
        if not any(msg.startswith(f"{name}:") for msg in failures):
            print(f"  ok: {name}")
    for msg in failures:
        print(f"  REGRESSION {msg}", file=sys.stderr)
    if failures:
        print(f"bench-gate: FAILED ({len(failures)} regression(s))", file=sys.stderr)
        return 1
    print("bench-gate: passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
