"""Regenerate the golden channel-law draws under ``tests/goldens/``.

Run only when the sampling contract *deliberately* changes (a new
default parameter, a changed stream layout): ``PYTHONPATH=src python
tools/regen_channel_goldens.py``.  The byte-exact comparison in
``tests/test_channel_goldens.py`` pins both the JSON float values
(``repr`` round-trips doubles exactly) and a SHA-256 of the raw
little-endian float64 buffer, so any bit drift in any registered law's
sampler — RNG stream order, mean scaling, the shadowing stream split —
fails loudly, in-process and across processes.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.channel.laws import get_channel_law
from repro.channel.sampling import sample_fading_trials
from repro.core.problem import FadingRLS
from repro.network.topology import paper_topology

SEED, N_LINKS, N_TRIALS, ALPHA = 20170808, 6, 5, 3.0
ACTIVE = [0, 2, 3, 5]
SPECS = (
    "rayleigh",
    "nakagami:m=2",
    "nakagami:m=0.5",
    "shadowing:sigma_db=6",
    "shadowing:sigma_db=4,static=true",
    "deterministic",
)
GOLDEN_DIR = Path(__file__).parents[1] / "tests" / "goldens"


def golden_draw(spec: str):
    import numpy as np

    problem = FadingRLS(links=paper_topology(N_LINKS, seed=SEED), alpha=ALPHA)
    z = sample_fading_trials(
        problem.distances(),
        np.array(ACTIVE),
        ALPHA,
        N_TRIALS,
        seed=SEED,
        law=get_channel_law(spec),
    )
    return np.ascontiguousarray(z, dtype=np.float64)


def sha256_of(arr) -> str:
    return hashlib.sha256(arr.tobytes()).hexdigest()


def main() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for spec in SPECS:
        law = get_channel_law(spec)
        z = golden_draw(spec)
        payload = {
            "spec": law.spec,
            "seed": SEED,
            "n_links": N_LINKS,
            "n_trials": N_TRIALS,
            "alpha": ALPHA,
            "active": ACTIVE,
            "shape": list(z.shape),
            "sha256": sha256_of(z),
            "values": z.tolist(),
        }
        slug = law.spec.replace(":", "_").replace(",", "_").replace("=", "")
        path = GOLDEN_DIR / f"channel_{slug}.json"
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {path} (sha256 {payload['sha256'][:12]}...)")


if __name__ == "__main__":
    main()
