"""Regenerate the schedule-cache golden trace under ``tests/goldens/``.

The golden pins the byte-exact hit/miss/evict event sequence (plus the
cache counters and the workload summary) of a repeating-topology
traffic run served through a small :class:`repro.cache.ScheduleCache`:
the backlogged policy re-submits recurring backlog sets, so the stream
exercises every tier and — with the deliberately tiny capacity —
forces evictions.  ``tests/test_cache_goldens.py`` additionally
asserts the same bytes come out for every available compute backend
and for ``n_jobs`` in {1, 2, 4}.

Run only when the determinism contract *deliberately* changes:
``PYTHONPATH=src python tools/regen_cache_goldens.py``.  The byte
comparison depends on this exact serialization
(``json.dump(..., indent=2, sort_keys=True)`` plus a trailing
newline).
"""

from __future__ import annotations

import json
from pathlib import Path

SEED = 2017
CAPACITY = 6
GOLDEN_PATH = Path(__file__).parents[1] / "tests" / "goldens" / "cache_events.json"


def build_scenario():
    """The pinned repeating-topology traffic scenario."""
    from repro.workload.generators import PoissonArrivals
    from repro.workload.scenario import WorkloadScenario

    return WorkloadScenario(
        name="cache-golden",
        topology="paper",
        n_links=6,
        topology_seed=3,
        alpha=3.0,
        gamma_th=1.0,
        eps=0.05,
        arrivals=PoissonArrivals(rate=0.2),
        scheduler="rle",
        policy="backlogged",
        n_slots=60,
        seed=SEED,
        stability={"factor_lo": 0.5, "factor_hi": 4.0, "n_grid": 2, "max_iter": 2, "n_slots": 25},
    )


def build_payload(n_jobs: int = 1) -> dict:
    """One full golden run: scenario + summary + cache events/counters."""
    from repro.cache.store import ScheduleCache
    from repro.workload.scenario import run_scenario

    cache = ScheduleCache(capacity=CAPACITY, policy="repetition_aware")
    result = run_scenario(build_scenario(), n_jobs=n_jobs, cache=cache)
    return {
        "scenario": result["scenario"],
        "stats": result["stats"],
        "stability": result["stability"],
        "cache": result["cache"],
        "events": [[kind, prefix] for kind, prefix in cache.events],
    }


def main() -> None:
    payload = build_payload(n_jobs=1)
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    kinds = [kind for kind, _ in payload["events"]]
    print(
        f"wrote {GOLDEN_PATH} ({len(kinds)} events: "
        + ", ".join(f"{k}={kinds.count(k)}" for k in sorted(set(kinds)))
        + ")"
    )


if __name__ == "__main__":
    main()
