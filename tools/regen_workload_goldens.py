"""Regenerate the golden arrival traces under ``tests/goldens/``.

Run only when the determinism contract *deliberately* changes (a new
family, a changed default): ``PYTHONPATH=src python
tools/regen_workload_goldens.py``.  The byte-exact comparison in
``tests/test_workload_generators.py`` depends on this exact
serialization (``json.dump(..., indent=2, sort_keys=True)`` plus a
trailing newline).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.workload.generators import ARRIVAL_FAMILIES, spec_of

SEED, N_LINKS, N_SLOTS = 2017, 4, 24
GOLDEN_DIR = Path(__file__).parents[1] / "tests" / "goldens"


def main() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for family, cls in sorted(ARRIVAL_FAMILIES.items()):
        gen = cls()
        trace = gen.sample(N_LINKS, N_SLOTS, seed=SEED)
        payload = {
            "spec": spec_of(gen),
            "seed": SEED,
            "n_links": N_LINKS,
            "n_slots": N_SLOTS,
            "trace": trace.tolist(),
        }
        path = GOLDEN_DIR / f"workload_{family}.json"
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {path} ({int(trace.sum())} packets)")


if __name__ == "__main__":
    main()
