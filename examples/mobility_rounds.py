#!/usr/bin/env python
"""Scheduling under mobility: stability of fading-resistant schedules.

The paper motivates the Rayleigh model with mobility-induced multipath
(Section I).  This example moves the network with a random-waypoint
model and re-schedules every step, reporting:

- per-step feasibility (always holds — the algorithms re-certify each
  snapshot),
- throughput over time,
- **churn**: how much of the schedule survives from one step to the
  next (Jaccard distance of active sets) — relevant because in practice
  every schedule change costs control traffic.

Run:  python examples/mobility_rounds.py [n_links] [n_steps] [seed]
"""

import sys

import numpy as np

from repro import FadingRLS, ldp_schedule, rle_schedule
from repro.experiments.reporting import format_table
from repro.network.mobility import random_waypoint_trace, schedule_churn


def main(n_links: int = 150, n_steps: int = 12, seed: int = 0) -> None:
    print(
        f"Random-waypoint trace: {n_links} links, {n_steps} steps, "
        f"speeds U[2, 8] per step, seed={seed}\n"
    )
    trace = random_waypoint_trace(
        n_links, n_steps, speed_range=(2.0, 8.0), seed=seed
    )

    rows = []
    for name, scheduler in (("rle", rle_schedule), ("ldp", ldp_schedule)):
        schedules = []
        throughputs = []
        for links in trace:
            problem = FadingRLS(links=links)
            s = scheduler(problem)
            assert problem.is_feasible(s.active)
            schedules.append(s)
            throughputs.append(problem.expected_throughput(s.active))
        churn = schedule_churn(schedules)
        rows.append(
            [
                name,
                float(np.mean([s.size for s in schedules])),
                float(np.mean(throughputs)),
                float(np.min(throughputs)),
                float(np.mean(churn)),
                float(np.max(churn)),
            ]
        )

    print(
        format_table(
            ["scheduler", "mean links", "mean throughput", "min throughput", "mean churn", "max churn"],
            rows,
        )
    )
    print(
        "\nEvery snapshot's schedule is fading-feasible (re-certified per\n"
        "step).  Churn shows the operational cost of mobility: a churn of\n"
        "0.5 means half the active set turned over between steps."
    )


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    t = int(sys.argv[2]) if len(sys.argv) > 2 else 12
    s = int(sys.argv[3]) if len(sys.argv) > 3 else 0
    main(n, t, s)
