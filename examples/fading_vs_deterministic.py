#!/usr/bin/env python
"""Why deterministic-SINR schedules break under fading.

Walks through the paper's core argument with numbers:

1. the deterministic model's feasibility is a *unit budget* on the
   affectance ``A = gamma_th (d_jj/d_ij)^alpha``;
2. the Rayleigh model's feasibility (Cor. 3.1) is a ``gamma_eps``
   budget on ``log1p(A)`` — about 100x stricter at eps = 0.01;
3. so ApproxLogN / ApproxDiversity schedules that are perfectly legal
   deterministically violate the fading budget, and the Monte-Carlo
   channel shows the resulting dropped transmissions;
4. LDP / RLE pay for resistance with fewer scheduled links.

Run:  python examples/fading_vs_deterministic.py [n_links] [seed]
"""

import sys

import numpy as np

from repro import (
    FadingRLS,
    approx_diversity_schedule,
    approx_logn_schedule,
    ldp_schedule,
    paper_topology,
    rle_schedule,
    simulate_schedule,
)
from repro.core.baselines.deterministic import (
    deterministic_interference_on,
    deterministic_is_feasible,
)
from repro.experiments.reporting import format_table


def main(n_links: int = 300, seed: int = 0) -> None:
    links = paper_topology(n_links, seed=seed)
    problem = FadingRLS(links=links, alpha=3.0, gamma_th=1.0, eps=0.01)
    print(
        f"Budgets: deterministic affectance <= 1.0 per receiver,\n"
        f"         fading interference factor <= gamma_eps = {problem.gamma_eps:.5f}\n"
        f"         (fading is ~{1.0 / problem.gamma_eps:.0f}x stricter)\n"
    )

    rows = []
    for name, fn in (
        ("approx_logn", approx_logn_schedule),
        ("approx_diversity", approx_diversity_schedule),
        ("ldp", ldp_schedule),
        ("rle", rle_schedule),
    ):
        s = fn(problem)
        det_ok = deterministic_is_feasible(problem, s.active)
        fad_ok = problem.is_feasible(s.active)
        # Worst receiver's loads under both budgets.
        det_load = deterministic_interference_on(problem, s.active)[s.active].max() if s.size else 0
        fad_load = problem.interference_on(s.active)[s.active].max() if s.size else 0
        r = simulate_schedule(problem, s, n_trials=2000, seed=1)
        rows.append(
            [
                name,
                s.size,
                "yes" if det_ok else "NO",
                "yes" if fad_ok else "NO",
                det_load,
                fad_load / problem.gamma_eps,
                r.failure_rate,
            ]
        )

    print(
        format_table(
            [
                "scheduler",
                "links",
                "det-feasible",
                "fading-feasible",
                "worst affectance",
                "worst factor (x budget)",
                "failure rate",
            ],
            rows,
        )
    )
    print()
    print(
        "The baselines' worst receivers sit far above the fading budget\n"
        "(column 6 >> 1), which the failure-rate column converts into\n"
        "dropped transmissions; LDP/RLE stay below 1x and fail <= eps."
    )
    # The analytic identity behind it all:
    from repro.core.baselines.deterministic import affectance_matrix

    a = affectance_matrix(problem)
    f = problem.interference_matrix()
    assert np.allclose(f, np.log1p(a))
    print("\n(Verified: interference factors == log1p(affectance), Eq. 17.)")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    s = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    main(n, s)
