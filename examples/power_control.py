#!/usr/bin/env python
"""Joint power control and scheduling under ambient noise.

The paper fixes uniform transmit power and drops noise (Eq. 8); its
related work (refs [24]-[26]) studies the joint problem.  This example
exercises the library's power-control extension:

1. add ambient noise strong enough that long links become
   *unserviceable* at unit power;
2. recover them with the minimum uniform power
   (:func:`min_uniform_power`);
3. compare the uniform policy against distance-proportional powers;
4. take the greedy schedule and shrink its power bill with the
   Foschini-Miljanic-style minimal power assignment.

Run:  python examples/power_control.py [n_links] [seed]
"""

import sys

import numpy as np

from repro import FadingRLS, paper_topology
from repro.core.baselines.naive import greedy_fading_schedule
from repro.core.powercontrol import (
    distance_proportional_powers,
    min_power_assignment,
    min_uniform_power,
)
from repro.experiments.reporting import format_table


def main(n_links: int = 200, seed: int = 0) -> None:
    links = paper_topology(n_links, seed=seed)
    noise = 2e-6  # strong enough to matter at unit power
    base = FadingRLS(links=links, noise=noise, power=1.0)
    n_dead = int((~base.serviceable()).sum())
    print(
        f"{n_links} links, noise N0={noise:g}: at unit power "
        f"{n_dead} links are unserviceable (noise alone exceeds eps)"
    )

    p_min = min_uniform_power(base, headroom=0.5)
    print(f"Minimum uniform power restoring full serviceability: {p_min:.3f}\n")

    rows = []
    for name, problem in (
        ("unit power", base),
        ("min uniform power", base.with_params(power=p_min)),
        (
            # Equalise every link's received signal at the level the
            # *longest* link gets under the min uniform power: shorter
            # links dial down, total power drops, serviceability holds.
            "distance-proportional",
            base.with_powers(
                distance_proportional_powers(
                    links,
                    base.alpha,
                    target_received=p_min * float(links.lengths.max()) ** -base.alpha,
                )
            ),
        ),
    ):
        schedule = greedy_fading_schedule(problem)
        rows.append(
            [
                name,
                int(problem.serviceable().sum()),
                schedule.size,
                problem.expected_throughput(schedule.active),
                float(np.mean(problem.tx_powers())),
            ]
        )
    print(
        format_table(
            ["power policy", "serviceable", "scheduled", "expected throughput", "mean power"],
            rows,
        )
    )

    # Minimal per-link powers for the best schedule.
    powered = base.with_params(power=p_min)
    schedule = greedy_fading_schedule(powered)
    result = min_power_assignment(powered, schedule.active)
    if result.feasible:
        spent = result.powers[schedule.active]
        print(
            f"\nMinimal power assignment for the {schedule.size}-link schedule:\n"
            f"  total power {result.total_power:.3f} vs uniform {p_min * schedule.size:.3f} "
            f"({100 * (1 - result.total_power / (p_min * schedule.size)):.0f}% saved), "
            f"converged in {result.iterations} iterations\n"
            f"  per-link powers: min {spent.min():.4f}, median {np.median(spent):.4f}, "
            f"max {spent.max():.4f}"
        )
        check = powered.with_powers(result.powers)
        assert check.is_feasible(schedule.active, tol=1e-6)
        print("  (verified: schedule remains fading-feasible under the minimal powers)")
    else:
        print("\nminimal power assignment reported infeasibility (unexpected here)")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    s = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    main(n, s)
