#!/usr/bin/env python
"""The NP-hardness reduction, run forwards: solve Knapsack by scheduling.

Theorem 3.2 proves Fading-R-LS NP-hard by mapping knapsack instances to
scheduling instances.  This example runs the mapping end-to-end:

1. build a random knapsack instance;
2. reduce it to a Fading-R-LS instance (items become senders whose
   interference at the gate receiver encodes their weights);
3. solve the scheduling instance exactly (branch-and-bound);
4. read the chosen items back off the schedule and compare with the
   dynamic-programming knapsack optimum.

Run:  python examples/knapsack_hardness.py [n_items] [seed]
"""

import sys

import numpy as np

from repro.core.exact import branch_and_bound_schedule
from repro.core.reduction import (
    KnapsackInstance,
    gate_budget_exact,
    reduce_knapsack,
    solve_knapsack_dp,
    solve_knapsack_via_scheduling,
)
from repro.experiments.reporting import format_table


def main(n_items: int = 10, seed: int = 0) -> None:
    rng = np.random.default_rng(seed)
    instance = KnapsackInstance(
        values=rng.integers(1, 30, n_items).astype(float),
        weights=rng.integers(1, 15, n_items).astype(float),
        capacity=float(rng.integers(20, 40)),
    )
    print(f"Knapsack: {n_items} items, capacity {instance.capacity:.0f}")
    rows = [
        [i, instance.values[i], instance.weights[i]] for i in range(n_items)
    ]
    print(format_table(["item", "value", "weight"], rows, float_fmt="{:.0f}"))

    reduced = reduce_knapsack(instance)
    print(
        f"\nReduced to Fading-R-LS: {reduced.problem.n_links} links "
        f"(items 0..{n_items - 1} + gate link {reduced.gate_index} "
        f"with rate {reduced.problem.links.rates[reduced.gate_index]:.0f})"
    )
    g = gate_budget_exact(instance, reduced)
    expected = reduced.problem.gamma_eps * instance.weights / instance.capacity
    print(
        "Gate encoding check: max |f(item->gate) - gamma_eps*w/W| = "
        f"{np.abs(g - expected).max():.2e}"
    )

    v_dp, chosen_dp = solve_knapsack_dp(instance)
    v_sched, chosen_sched = solve_knapsack_via_scheduling(
        instance, branch_and_bound_schedule
    )
    print(f"\nDP optimum:        value {v_dp:.0f}, items {sorted(chosen_dp)}")
    print(f"Via scheduling:    value {v_sched:.0f}, items {sorted(chosen_sched)}")
    print(
        f"Weights packed:    {instance.weights[chosen_sched].sum():.0f} "
        f"/ {instance.capacity:.0f}"
    )
    assert v_dp == v_sched, "the reduction must recover the exact optimum"
    print("\nScheduling recovered the exact knapsack optimum — Thm 3.2 verified.")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    s = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    main(n, s)
