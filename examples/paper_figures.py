#!/usr/bin/env python
"""Regenerate all four evaluation panels of the paper (Figs. 5-6).

This is the standalone harness entry point: it runs the same drivers
the benchmarks use and prints each panel as an aligned table (one row
per x value, one column per algorithm).  Use ``--full`` for the
paper-scale configuration (slower) or the default quick configuration.

Run:  python examples/paper_figures.py [--full]
"""

import sys
import time

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig5 import failed_vs_alpha, failed_vs_links
from repro.experiments.fig6 import throughput_vs_alpha, throughput_vs_links
from repro.experiments.reporting import format_series


def main(full: bool = False) -> None:
    if full:
        cfg = ExperimentConfig()
    else:
        cfg = ExperimentConfig(
            n_links_sweep=(100, 200, 300),
            alpha_sweep=(2.5, 3.0, 3.5, 4.5),
            n_links_fixed=300,
            n_repetitions=3,
            n_trials=200,
        )
    print(
        f"Configuration: N sweep {cfg.n_links_sweep}, alpha sweep {cfg.alpha_sweep},\n"
        f"{cfg.n_repetitions} repetitions x {cfg.n_trials} fading trials per point\n"
    )

    panels = [
        ("Fig. 5(a): failed transmissions vs number of links", failed_vs_links, "mean_failed"),
        ("Fig. 5(b): failed transmissions vs alpha", failed_vs_alpha, "mean_failed"),
        ("Fig. 6(a): throughput vs number of links", throughput_vs_links, "mean_throughput"),
        ("Fig. 6(b): throughput vs alpha", throughput_vs_alpha, "mean_throughput"),
    ]
    for title, driver, metric in panels:
        start = time.perf_counter()
        sweep = driver(cfg)
        elapsed = time.perf_counter() - start
        print(format_series(sweep, metric, title=title))
        print(f"  [{elapsed:.1f}s]\n")

    print(
        "Expected shapes (paper): LDP/RLE near-zero failures; baseline\n"
        "failures grow with N and their per-link rate falls with alpha;\n"
        "RLE throughput >= LDP; throughput grows with N and alpha."
    )


if __name__ == "__main__":
    main(full="--full" in sys.argv[1:])
