#!/usr/bin/env python
"""Quickstart: schedule one slot of a random wireless network.

Builds the paper's Section-V workload, runs the two fading-resistant
schedulers (LDP, RLE) plus a deterministic-SINR baseline, verifies
feasibility under the Rayleigh-fading criterion, and replays every
schedule through the Monte-Carlo channel.

Run:  python examples/quickstart.py [n_links] [seed]
"""

import sys

from repro import (
    FadingRLS,
    approx_diversity_schedule,
    ldp_schedule,
    paper_topology,
    rle_schedule,
    simulate_schedule,
)
from repro.experiments.reporting import format_table


def main(n_links: int = 300, seed: int = 0) -> None:
    print(f"Workload: {n_links} links, 500x500 region, lengths U[5,20], seed={seed}")
    links = paper_topology(n_links, seed=seed)
    problem = FadingRLS(links=links, alpha=3.0, gamma_th=1.0, eps=0.01)
    print(
        f"Instance: alpha={problem.alpha}, gamma_th={problem.gamma_th}, "
        f"eps={problem.eps} (interference budget gamma_eps={problem.gamma_eps:.5f})"
    )

    rows = []
    for name, scheduler in (
        ("ldp", ldp_schedule),
        ("rle", rle_schedule),
        ("approx_diversity (baseline)", approx_diversity_schedule),
    ):
        schedule = scheduler(problem)
        feasible = problem.is_feasible(schedule.active)
        result = simulate_schedule(problem, schedule, n_trials=2000, seed=1)
        rows.append(
            [
                name,
                schedule.size,
                "yes" if feasible else "NO",
                result.mean_failed,
                result.mean_throughput,
                problem.expected_throughput(schedule.active),
            ]
        )

    print()
    print(
        format_table(
            ["scheduler", "links", "fading-feasible", "failed/trial", "throughput (MC)", "throughput (analytic)"],
            rows,
        )
    )
    print()
    print(
        "LDP and RLE keep every scheduled link's failure probability below eps;\n"
        "the deterministic baseline schedules more links but drops transmissions\n"
        "under fading — exactly the paper's Fig. 5/6 story."
    )


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    s = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    main(n, s)
