#!/usr/bin/env python
"""Capacity planning with the analysis toolkit.

A deployment question the library can answer end-to-end: *"on this
field, with this error allowance, how many concurrent links fit a slot
— and where is the leftover room?"*  The walk-through uses:

1. :func:`repro.analysis.regimes.summarize_regime` — what the channel
   parameters imply (budgets, square sizes, elimination radii);
2. :func:`repro.analysis.density.rle_density_ceiling` — the analytic
   per-area ceiling, against the empirically realised density;
3. :func:`repro.analysis.interference.admissible_fraction` — how much
   of the region could still host one more link after scheduling;
4. :func:`repro.analysis.interference.victim_hotspots` — which
   scheduled links sit closest to their budget;
5. a cached eps sweep via :class:`repro.experiments.store.ResultStore`
   (second run of this script reuses the sweep).

Run:  python examples/capacity_planning.py [n_links] [seed]
"""

import sys
import tempfile
from pathlib import Path

from repro import FadingRLS, rle_schedule
from repro.analysis.density import empirical_density, rle_density_ceiling
from repro.analysis.interference import admissible_fraction, victim_hotspots
from repro.analysis.regimes import summarize_regime
from repro.core.base import get_scheduler
from repro.experiments.store import ResultStore
from repro.experiments.tradeoff import best_eps, eps_tradeoff
from repro.geometry.region import Region
from repro.network.topology import paper_topology


def main(n_links: int = 300, seed: int = 0) -> None:
    region = Region.square(500.0)
    links = paper_topology(n_links, seed=seed)
    problem = FadingRLS(links=links, alpha=3.0, gamma_th=1.0, eps=0.01)

    regime = summarize_regime(problem.alpha, problem.gamma_th, problem.eps)
    print(
        f"Regime (alpha={problem.alpha}, eps={problem.eps}):\n"
        f"  interference budget gamma_eps = {regime.gamma_eps:.5f} "
        f"(~{regime.budget_vs_deterministic:.0f}x stricter than deterministic)\n"
        f"  LDP square factor beta = {regime.ldp_beta:.2f} "
        f"(rigorous: {regime.ldp_beta_rigorous:.2f}), "
        f"RLE radius c1 = {regime.rle_c1_by_c2[0.5]:.1f} link lengths\n"
    )

    schedule = rle_schedule(problem)
    realised = empirical_density(problem, schedule, region.area)
    # The packing ceiling depends on link length; RLE favours short
    # links, so the binding ceiling is the one at the *shortest*
    # scheduled length (ceilings shrink as length grows).
    shortest = float(links.lengths[schedule.active].min())
    ceiling = rle_density_ceiling(
        problem.alpha, problem.gamma_th, problem.gamma_eps, shortest
    )
    print(
        f"RLE scheduled {schedule.size}/{n_links} links: "
        f"{realised * 1e4:.2f} links per 100x100 area "
        f"(packing ceiling at the shortest scheduled length "
        f"{shortest:.1f}: {ceiling * 1e4:.2f})"
    )

    room = admissible_fraction(problem, schedule, region, probe_length=10.0, resolution=40)
    print(f"Leftover room: a fresh 10-unit link would fit at {100 * room:.0f}% of the region")

    print("\nMost budget-constrained scheduled links (link, remaining slack):")
    for link, slack in victim_hotspots(problem, schedule, top_k=3):
        print(f"  link {link}: slack {slack:.5f} of {problem.gamma_eps:.5f}")

    # Cached eps sweep: rerunning this script reuses the stored result.
    store = ResultStore(Path(tempfile.gettempdir()) / "fading_rls_store")
    params = {"n_links": n_links, "seed": seed, "eps_grid": [0.005, 0.01, 0.05, 0.1]}

    def run_sweep():
        points = eps_tradeoff(
            {"rle": get_scheduler("rle")},
            eps_values=tuple(params["eps_grid"]),
            n_links=n_links,
            n_repetitions=2,
            n_trials=100,
        )
        return {
            "points": [
                {"eps": p.eps, "goodput": p.mean_expected_goodput, "scheduled": p.mean_scheduled}
                for p in points
            ],
            "best_eps": best_eps(points, "rle").eps,
        }

    payload, cached = store.load_or_run("capacity-eps-sweep", params, run_sweep)
    source = "cache" if cached else "fresh run"
    print(f"\nEps sweep ({source}): goodput-best eps = {payload['best_eps']}")
    for point in payload["points"]:
        print(
            f"  eps={point['eps']:<6} scheduled={point['scheduled']:.1f} "
            f"goodput={point['goodput']:.2f}"
        )


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    s = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    main(n, s)
