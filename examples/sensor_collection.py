#!/usr/bin/env python
"""Sensor-network data collection: multi-slot scheduling.

The paper motivates RLE's uniform-rate special case with periodic
sensor reporting (Section IV-B: "sensors need to periodically report
their collected data").  This example plans a full reporting round:
every sensor link must transmit once, in as few time slots as possible,
with every slot feasible under Rayleigh fading.

It compares RLE-driven covering against LDP-driven covering and checks
the delivered data against the Monte-Carlo channel, slot by slot.

Run:  python examples/sensor_collection.py [n_sensors] [seed]
"""

import sys

from repro import FadingRLS, ldp_schedule, multislot_schedule, rle_schedule, simulate_schedule
from repro.core.multislot import multislot_lower_bound
from repro.experiments.reporting import format_table
from repro.network.topology import clustered_topology


def plan_round(problem: FadingRLS, scheduler, name: str) -> list:
    ms = multislot_schedule(problem, scheduler)
    delivered = 0.0
    worst_slot_failures = 0.0
    for t, slot in enumerate(ms.slots):
        r = simulate_schedule(problem, slot, n_trials=500, seed=t)
        delivered += r.mean_throughput
        worst_slot_failures = max(worst_slot_failures, r.mean_failed)
    total = problem.links.rates.sum()
    return [name, ms.n_slots, delivered / total, worst_slot_failures]


def main(n_sensors: int = 150, seed: int = 0) -> None:
    print(f"Sensor field: {n_sensors} sensors in 5 clusters (hot spots), seed={seed}")
    links = clustered_topology(n_sensors, n_clusters=5, cluster_std=25.0, seed=seed)
    problem = FadingRLS(links=links, alpha=3.0, gamma_th=1.0, eps=0.01)

    rows = [
        plan_round(problem, rle_schedule, "rle"),
        plan_round(problem, ldp_schedule, "ldp"),
    ]
    print()
    print(
        format_table(
            ["scheduler", "slots needed", "fraction delivered", "worst slot failures"],
            rows,
        )
    )
    print()
    print(f"Sound lower bound on slots (mutual-conflict clique): {multislot_lower_bound(problem)}")
    print(
        "\nRLE packs each slot denser than LDP, so the reporting round\n"
        "finishes in fewer slots, while per-slot feasibility keeps the\n"
        "expected delivery fraction at ~(1 - eps)."
    )


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    s = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    main(n, s)
