#!/usr/bin/env python
"""Decentralised scheduling as a real protocol: rounds and messages.

The centralised algorithms assume someone knows the whole interference
matrix.  This example runs DLS as an honest message-passing protocol
(:mod:`repro.distributed`): every link only hears beacons from
neighbours above its measurement threshold, backs off locally when its
budget is violated, and terminates by local detection — then compares
the operational cost (rounds, messages) and the resulting schedule
against the centralised reconstruction and RLE.

Run:  python examples/distributed_protocol.py [n_links] [seed]
"""

import sys

from repro import FadingRLS, paper_topology, rle_schedule
from repro.core.dls import dls_schedule
from repro.distributed import run_dls_protocol
from repro.experiments.reporting import format_table


def main(n_links: int = 200, seed: int = 0) -> None:
    links = paper_topology(n_links, seed=seed)
    problem = FadingRLS(links=links, alpha=3.0, eps=0.01)

    result = run_dls_protocol(problem, seed=seed)
    central = dls_schedule(problem, join=False, seed=seed)
    central_join = dls_schedule(problem, join=True, seed=seed)
    rle = rle_schedule(problem)

    rows = [
        [
            "dls protocol (messages)",
            result.schedule.size,
            "yes" if problem.is_feasible(result.schedule.active) else "NO",
            problem.expected_throughput(result.schedule.active),
        ],
        [
            "dls centralised (no join)",
            central.size,
            "yes" if problem.is_feasible(central.active) else "NO",
            problem.expected_throughput(central.active),
        ],
        [
            "dls centralised (+join)",
            central_join.size,
            "yes" if problem.is_feasible(central_join.active) else "NO",
            problem.expected_throughput(central_join.active),
        ],
        [
            "rle (centralised)",
            rle.size,
            "yes" if problem.is_feasible(rle.active) else "NO",
            problem.expected_throughput(rle.active),
        ],
    ]
    print(format_table(["scheduler", "links", "feasible", "expected throughput"], rows))
    print(
        f"\nProtocol cost: {result.rounds} synchronous rounds, "
        f"{result.total_messages} beacon messages total "
        f"({result.total_messages / max(result.rounds // 2, 1):.0f} per beacon round); "
        f"mean neighbourhood size {result.mean_neighbors:.1f} of {n_links} links."
    )
    print(
        "\nThe protocol trades schedule density for locality: it reserves a\n"
        "budget margin for interference it cannot measure (below-threshold\n"
        "neighbours) and cannot run the join phase, but needs no global\n"
        "state — every decision uses only received beacons."
    )


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    s = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    main(n, s)
