"""Result serialisation (JSON).

Schedules and experiment sweeps become plain dicts so runs can be
archived, diffed, and post-processed without re-simulation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.sim.metrics import SimulationResult

PathLike = Union[str, Path]


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays in diagnostics to JSON-safe values."""
    import numpy as np

    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def schedule_to_dict(
    schedule: Schedule,
    problem: FadingRLS | None = None,
    result: SimulationResult | None = None,
) -> Dict[str, Any]:
    """Serialise a schedule (optionally with verification and simulation)."""
    out: Dict[str, Any] = {
        "algorithm": schedule.algorithm,
        "active": schedule.active.tolist(),
        "size": schedule.size,
        "diagnostics": _jsonable(schedule.diagnostics),
    }
    if problem is not None:
        out["feasible"] = problem.is_feasible(schedule.active)
        out["scheduled_rate"] = problem.scheduled_rate(schedule.active)
        out["expected_throughput"] = problem.expected_throughput(schedule.active)
        out["parameters"] = {
            "alpha": problem.alpha,
            "gamma_th": problem.gamma_th,
            "eps": problem.eps,
            "noise": problem.noise,
        }
    if result is not None:
        out["simulation"] = {
            "n_trials": result.n_trials,
            "mean_failed": result.mean_failed,
            "mean_throughput": result.mean_throughput,
            "failure_rate": result.failure_rate,
        }
    return out


def sweep_to_dict(sweep) -> Dict[str, Any]:
    """Serialise a :class:`~repro.experiments.fig5.SweepSeries`."""
    return {
        "x_label": sweep.x_label,
        "x_values": list(sweep.x_values),
        "series": {
            alg: [
                {
                    "mean_failed": r.mean_failed,
                    "failed_std": r.failed_std,
                    "mean_throughput": r.mean_throughput,
                    "throughput_std": r.throughput_std,
                    "mean_scheduled": r.mean_scheduled,
                }
                for r in results
            ]
            for alg, results in sweep.series.items()
        },
    }


def write_json(payload: Dict[str, Any], path: PathLike) -> None:
    """Write a dict as pretty-printed JSON."""
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))
