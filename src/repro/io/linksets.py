"""LinkSet persistence.

CSV layout (one row per link, header required)::

    sx,sy,rx,ry,rate
    12.5,100.0,20.1,95.5,1.0

JSON layout::

    {"links": [{"sender": [12.5, 100.0], "receiver": [20.1, 95.5], "rate": 1.0}, ...]}

Both formats round-trip exactly (floats serialised with ``repr``
precision).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.network.links import LinkSet

PathLike = Union[str, Path]

CSV_HEADER = ["sx", "sy", "rx", "ry", "rate"]


def linkset_to_csv(links: LinkSet, path: PathLike) -> None:
    """Write a LinkSet to CSV."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(CSV_HEADER)
        for i in range(len(links)):
            writer.writerow(
                [
                    repr(float(links.senders[i, 0])),
                    repr(float(links.senders[i, 1])),
                    repr(float(links.receivers[i, 0])),
                    repr(float(links.receivers[i, 1])),
                    repr(float(links.rates[i])),
                ]
            )


def linkset_from_csv(path: PathLike) -> LinkSet:
    """Read a LinkSet from CSV (header must match the documented layout)."""
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty file") from None
        if [h.strip() for h in header] != CSV_HEADER:
            raise ValueError(
                f"{path}: bad header {header!r}, expected {CSV_HEADER!r}"
            )
        rows = []
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 5:
                raise ValueError(f"{path}:{lineno}: expected 5 fields, got {len(row)}")
            try:
                rows.append([float(v) for v in row])
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None
    if not rows:
        return LinkSet.empty()
    arr = np.asarray(rows, dtype=float)
    return LinkSet(senders=arr[:, 0:2], receivers=arr[:, 2:4], rates=arr[:, 4])


def linkset_to_json(links: LinkSet, path: PathLike) -> None:
    """Write a LinkSet to JSON."""
    payload = {
        "links": [
            {
                "sender": [float(links.senders[i, 0]), float(links.senders[i, 1])],
                "receiver": [float(links.receivers[i, 0]), float(links.receivers[i, 1])],
                "rate": float(links.rates[i]),
            }
            for i in range(len(links))
        ]
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def linkset_from_json(path: PathLike) -> LinkSet:
    """Read a LinkSet from JSON."""
    path = Path(path)
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict) or "links" not in payload:
        raise ValueError(f"{path}: expected an object with a 'links' key")
    entries = payload["links"]
    if not entries:
        return LinkSet.empty()
    try:
        senders = np.array([e["sender"] for e in entries], dtype=float)
        receivers = np.array([e["receiver"] for e in entries], dtype=float)
        rates = np.array([e.get("rate", 1.0) for e in entries], dtype=float)
    except (KeyError, TypeError) as exc:
        raise ValueError(f"{path}: malformed link entry ({exc})") from None
    return LinkSet(senders=senders, receivers=receivers, rates=rates)
