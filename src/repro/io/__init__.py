"""Dataset and result I/O.

- :mod:`repro.io.linksets` — save/load :class:`~repro.network.links.LinkSet`
  as CSV or JSON (the interchange formats the CLI speaks),
- :mod:`repro.io.results` — serialise schedules and experiment sweeps to
  JSON for archival and diffing.
"""

from repro.io.linksets import linkset_from_csv, linkset_from_json, linkset_to_csv, linkset_to_json
from repro.io.results import schedule_to_dict, sweep_to_dict, write_json

__all__ = [
    "linkset_to_csv",
    "linkset_from_csv",
    "linkset_to_json",
    "linkset_from_json",
    "schedule_to_dict",
    "sweep_to_dict",
    "write_json",
]
