"""Random-number-generator plumbing.

Every stochastic entry point in :mod:`repro` accepts a ``seed`` argument
that may be ``None`` (fresh entropy), an integer, a ``SeedSequence`` or
an existing :class:`numpy.random.Generator`.  :func:`as_rng` normalises
all of these to a ``Generator`` so callers never branch on the type.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, Sequence[int], np.random.SeedSequence, np.random.Generator]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing ``Generator`` returns it unchanged (shared
    stream); anything else constructs a fresh PCG64 generator.

    Parameters
    ----------
    seed:
        ``None``, an int, a sequence of ints, a ``SeedSequence``, or a
        ``Generator``.

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from one seed.

    Used by batched experiment runners so that each repetition gets its
    own stream and results are reproducible regardless of execution
    order (the guides' advice for parallel-safe RNG).

    Parameters
    ----------
    seed:
        Root seed (same accepted types as :func:`as_rng`).
    n:
        Number of child generators, ``n >= 0``.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.Generator):
        # Spawn via the generator's bit-generator seed sequence when
        # available; otherwise fall back to drawing child seeds.
        ss = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
        if isinstance(ss, np.random.SeedSequence):
            return [np.random.default_rng(s) for s in ss.spawn(n)]
        child_seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in child_seeds]
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in ss.spawn(n)]


def stable_seed(*parts: Union[int, str], root: Optional[int] = None) -> int:
    """Build a deterministic 63-bit seed from heterogeneous parts.

    Experiment drivers use this to derive per-(workload, repetition)
    seeds from human-readable components, e.g.
    ``stable_seed("fig5a", n_links, rep)``.
    """
    import hashlib

    h = hashlib.sha256()
    if root is not None:
        h.update(str(root).encode())
    for p in parts:
        h.update(b"\x1f")
        h.update(str(p).encode())
    return int.from_bytes(h.digest()[:8], "little") & ((1 << 63) - 1)
