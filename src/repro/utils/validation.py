"""Argument-validation helpers.

Small, explicit checks used at the public API boundary.  Internal hot
loops skip them (per the optimization guide: validate once at the edge,
keep kernels branch-free).

Failures raise :class:`ValidationError`, a ``ValueError`` subclass that
carries a stable machine-readable ``code`` and the offending parameter
``param`` — callers that need to *react* to a specific failure (the
verification harness, structured audits) match on the code instead of
parsing the message.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

#: Stable reason codes for validation failures.
CODE_REQUIREMENT = "requirement-failed"
CODE_NOT_POSITIVE = "not-positive"
CODE_NEGATIVE = "negative"
CODE_NOT_PROBABILITY = "not-a-probability"
CODE_NOT_FINITE = "not-finite"
CODE_WRONG_NDIM = "wrong-ndim"
CODE_WRONG_AXIS = "wrong-axis-size"


class ValidationError(ValueError):
    """A failed argument check with a machine-readable reason.

    Attributes
    ----------
    code:
        Stable reason-code string (one of the ``CODE_*`` constants).
    param:
        Name of the offending parameter, when known.
    """

    def __init__(self, message: str, *, code: str, param: Optional[str] = None):
        super().__init__(message)
        self.code = code
        self.param = param


def require(condition: bool, message: str, *, code: str = CODE_REQUIREMENT) -> None:
    """Raise :class:`ValidationError` when ``condition`` is false."""
    if not condition:
        raise ValidationError(message, code=code)


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate that a scalar is positive (or non-negative)."""
    v = float(value)
    if strict and not v > 0:
        raise ValidationError(
            f"{name} must be > 0, got {value!r}", code=CODE_NOT_POSITIVE, param=name
        )
    if not strict and not v >= 0:
        raise ValidationError(
            f"{name} must be >= 0, got {value!r}", code=CODE_NEGATIVE, param=name
        )
    return v


def check_probability(value: float, name: str, *, open_interval: bool = True) -> float:
    """Validate that a scalar is a probability.

    With ``open_interval`` (the default) the value must lie strictly in
    ``(0, 1)`` — the paper's acceptable error rate ``eps`` is meaningless
    at the endpoints (``eps = 0`` makes every schedule infeasible under
    fading; ``eps = 1`` removes the constraint entirely).
    """
    v = float(value)
    if open_interval:
        if not 0.0 < v < 1.0:
            raise ValidationError(
                f"{name} must be in (0, 1), got {value!r}",
                code=CODE_NOT_PROBABILITY,
                param=name,
            )
    else:
        if not 0.0 <= v <= 1.0:
            raise ValidationError(
                f"{name} must be in [0, 1], got {value!r}",
                code=CODE_NOT_PROBABILITY,
                param=name,
            )
    return v


def check_finite(arr: np.ndarray, name: str) -> np.ndarray:
    """Validate that an array contains no NaN/inf."""
    a = np.asarray(arr, dtype=float)
    if not np.all(np.isfinite(a)):
        raise ValidationError(
            f"{name} must be finite, found NaN or inf",
            code=CODE_NOT_FINITE,
            param=name,
        )
    return a


def check_shape(arr: np.ndarray, shape: Sequence[Any], name: str) -> np.ndarray:
    """Validate an array's shape.

    ``shape`` entries may be ``None`` to mean "any size along this
    axis"; the number of dimensions must match exactly.
    """
    a = np.asarray(arr)
    if a.ndim != len(shape):
        raise ValidationError(
            f"{name} must have {len(shape)} dims, got {a.ndim}",
            code=CODE_WRONG_NDIM,
            param=name,
        )
    for axis, want in enumerate(shape):
        if want is not None and a.shape[axis] != want:
            raise ValidationError(
                f"{name} has shape {a.shape}, expected {tuple(shape)} "
                f"(mismatch on axis {axis})",
                code=CODE_WRONG_AXIS,
                param=name,
            )
    return a
