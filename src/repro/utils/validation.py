"""Argument-validation helpers.

Small, explicit checks used at the public API boundary.  Internal hot
loops skip them (per the optimization guide: validate once at the edge,
keep kernels branch-free).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` when ``condition`` is false."""
    if not condition:
        raise ValueError(message)


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate that a scalar is positive (or non-negative)."""
    v = float(value)
    if strict and not v > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not v >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return v


def check_probability(value: float, name: str, *, open_interval: bool = True) -> float:
    """Validate that a scalar is a probability.

    With ``open_interval`` (the default) the value must lie strictly in
    ``(0, 1)`` — the paper's acceptable error rate ``eps`` is meaningless
    at the endpoints (``eps = 0`` makes every schedule infeasible under
    fading; ``eps = 1`` removes the constraint entirely).
    """
    v = float(value)
    if open_interval:
        if not 0.0 < v < 1.0:
            raise ValueError(f"{name} must be in (0, 1), got {value!r}")
    else:
        if not 0.0 <= v <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return v


def check_finite(arr: np.ndarray, name: str) -> np.ndarray:
    """Validate that an array contains no NaN/inf."""
    a = np.asarray(arr, dtype=float)
    if not np.all(np.isfinite(a)):
        raise ValueError(f"{name} must be finite, found NaN or inf")
    return a


def check_shape(arr: np.ndarray, shape: Sequence[Any], name: str) -> np.ndarray:
    """Validate an array's shape.

    ``shape`` entries may be ``None`` to mean "any size along this
    axis"; the number of dimensions must match exactly.
    """
    a = np.asarray(arr)
    if a.ndim != len(shape):
        raise ValueError(f"{name} must have {len(shape)} dims, got {a.ndim}")
    for axis, want in enumerate(shape):
        if want is not None and a.shape[axis] != want:
            raise ValueError(
                f"{name} has shape {a.shape}, expected {tuple(shape)} "
                f"(mismatch on axis {axis})"
            )
    return a
