"""Shared utilities: RNG plumbing, validation, and math constants.

These helpers are intentionally dependency-light; everything in
:mod:`repro` that needs a random stream or argument checking goes
through this package so behaviour (e.g. seeding discipline) is uniform.
"""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import (
    check_finite,
    check_positive,
    check_probability,
    check_shape,
    require,
)
from repro.utils.zeta import riemann_zeta, zeta_tail_bound

__all__ = [
    "as_rng",
    "spawn_rngs",
    "check_finite",
    "check_positive",
    "check_probability",
    "check_shape",
    "require",
    "riemann_zeta",
    "zeta_tail_bound",
]
