"""Riemann zeta evaluation and tail bounds.

The paper's geometric constants — the LDP square-size factor ``beta``
(Eq. 37) and the RLE elimination radius factor ``c1`` (Eq. 59) — both
contain ``zeta(alpha - 1)``, which converges for path-loss exponents
``alpha > 2``.  We wrap :func:`scipy.special.zeta` with domain checks
and also provide the partial-sum tail bound used in the feasibility
proofs (Thm 4.1 / 4.3), which is handy for unit-testing the proofs'
summation arguments numerically.
"""

from __future__ import annotations

import numpy as np
from scipy.special import zeta as _scipy_zeta


def riemann_zeta(s: float) -> float:
    """Return ``zeta(s)`` for real ``s > 1``.

    Raises
    ------
    ValueError
        If ``s <= 1`` (the series diverges; in the paper this would mean
        ``alpha <= 2``, outside the assumed regime).
    """
    s = float(s)
    if not s > 1.0:
        raise ValueError(f"zeta(s) requires s > 1 for convergence, got s={s}")
    return float(_scipy_zeta(s, 1))


def zeta_partial_sum(s: float, n_terms: int) -> float:
    """Partial sum ``sum_{q=1}^{n} q^-s`` (vectorised)."""
    if n_terms < 0:
        raise ValueError("n_terms must be >= 0")
    if n_terms == 0:
        return 0.0
    q = np.arange(1, n_terms + 1, dtype=float)
    return float(np.sum(q**-s))


def zeta_tail_bound(s: float, start: int) -> float:
    """Upper bound on the tail ``sum_{q=start}^{inf} q^-s`` via integral test.

    ``tail <= start^-s + integral_start^inf x^-s dx`` for ``s > 1``.
    The proofs of Thm 4.1 and 4.3 bound ring-by-ring interference with
    exactly this kind of tail; tests use it to confirm the ring sums the
    algorithms rely on really are below ``gamma_eps``.
    """
    s = float(s)
    if not s > 1.0:
        raise ValueError(f"tail bound requires s > 1, got s={s}")
    if start < 1:
        raise ValueError("start must be >= 1")
    return float(start ** (-s) + start ** (1.0 - s) / (s - 1.0))
