"""Eviction policies for the schedule cache.

Two policies, selected by name (:data:`CACHE_POLICIES`):

``lru``
    Plain least-recently-used: the victim is the entry with the oldest
    last use, ties broken by insertion order.  A good default when the
    request stream has no structure.

``repetition_aware``
    A cache that *learns from workload repetition* (modeled on the
    repetition-aware policy named in ROADMAP O5).  The victim is the
    entry with the fewest lifetime hits (ties: least recently used,
    then oldest insertion), so topologies that keep coming back are
    protected from one-off requests churning the cache.  Evicted
    entries leave a bounded **ghost** record of their fingerprint and
    hit count; when a previously-evicted fingerprint is inserted again,
    its remembered repetition count seeds the new entry — a recurring
    topology regains its protection immediately instead of re-earning
    it from zero.

Policies are deterministic: victim selection depends only on hit
counts, the cache's logical clock and insertion order — never on wall
time — so eviction traces are byte-reproducible (the golden-trace test
pins one).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.cache.store import CacheEntry

__all__ = ["CACHE_POLICIES", "LRUPolicy", "RepetitionAwarePolicy", "make_policy"]

#: Eviction-policy names accepted by :class:`repro.cache.store.ScheduleCache`.
CACHE_POLICIES = ("lru", "repetition_aware")


class LRUPolicy:
    """Least-recently-used eviction; no memory of evicted entries."""

    name = "lru"

    def seed_hits(self, fingerprint: str) -> int:
        """Initial repetition credit for a newly-inserted fingerprint."""
        return 0

    def record_eviction(self, entry: "CacheEntry") -> None:
        """Hook called with every evicted entry."""

    def victim(self, entries: Mapping[str, "CacheEntry"]) -> str:
        """Key of the entry to evict (``entries`` is non-empty)."""
        return min(entries, key=lambda k: (entries[k].last_used, entries[k].inserted_seq))


class RepetitionAwarePolicy(LRUPolicy):
    """Evict the least-repeated entry; remember evictees' repetition.

    ``ghost_capacity`` bounds the memory of evicted fingerprints (FIFO:
    the oldest ghost is forgotten first).
    """

    name = "repetition_aware"

    def __init__(self, ghost_capacity: int = 512) -> None:
        if ghost_capacity < 0:
            raise ValueError(f"ghost_capacity must be >= 0, got {ghost_capacity}")
        self.ghost_capacity = int(ghost_capacity)
        self._ghosts: "OrderedDict[str, int]" = OrderedDict()

    @property
    def ghosts(self) -> Mapping[str, int]:
        """Read-only view of the remembered fingerprint → hit counts."""
        return dict(self._ghosts)

    def seed_hits(self, fingerprint: str) -> int:
        """Consume the ghost record for ``fingerprint`` (0 if none)."""
        return self._ghosts.pop(fingerprint, 0)

    def record_eviction(self, entry: "CacheEntry") -> None:
        """Remember the evictee's repetition count as a bounded ghost."""
        if self.ghost_capacity == 0:
            return
        self._ghosts[entry.fingerprint] = entry.hits + entry.seeded
        self._ghosts.move_to_end(entry.fingerprint)
        while len(self._ghosts) > self.ghost_capacity:
            self._ghosts.popitem(last=False)

    def victim(self, entries: Mapping[str, "CacheEntry"]) -> str:
        """Evict the fewest-hit entry (ties: LRU, then oldest)."""
        return min(
            entries,
            key=lambda k: (
                entries[k].hits + entries[k].seeded,
                entries[k].last_used,
                entries[k].inserted_seq,
            ),
        )


def make_policy(policy: str):
    """Instantiate an eviction policy by name."""
    if policy == "lru":
        return LRUPolicy()
    if policy == "repetition_aware":
        return RepetitionAwarePolicy()
    raise ValueError(f"unknown cache policy {policy!r}; choose from {CACHE_POLICIES}")
