"""Repetition-aware schedule cache for serving scale (ROADMAP O5).

At serving scale topologies repeat and deltas are small, so most
requests should never touch a scheduler.  This package provides:

- :mod:`repro.cache.fingerprint` — the shared content-hash
  canonicalisation machinery (grown out of the checkpoint keys of
  :mod:`repro.sim.parallel` / :mod:`repro.experiments.store`) plus
  canonicalized topology fingerprints invariant under link relabeling,
  translation, rotation and — when the instance is noise-free and
  therefore scale-invariant — uniform scaling;
- :mod:`repro.cache.policy` — pluggable eviction policies
  (:data:`CACHE_POLICIES`): plain LRU and a repetition-aware policy
  that learns which fingerprints recur;
- :mod:`repro.cache.store` — :class:`ScheduleCache`, the
  content-addressed store with bit-identical exact hits,
  pose-invariant canonical hits and nearest-fingerprint warm starts
  that feed :class:`repro.core.incremental.IncrementalScheduler`'s
  repair path.

See ``docs/CACHING.md`` for the fingerprint contract, the eviction
policies and the transparency guarantee.
"""

from repro.cache.fingerprint import (
    config_key,
    describe_callable,
    exact_key,
    geometry_distance,
    topology_fingerprint,
)
from repro.cache.policy import CACHE_POLICIES, make_policy
from repro.cache.store import CacheEntry, ScheduleCache, cache_dir_stats

__all__ = [
    "CACHE_POLICIES",
    "CacheEntry",
    "ScheduleCache",
    "cache_dir_stats",
    "config_key",
    "describe_callable",
    "exact_key",
    "geometry_distance",
    "make_policy",
    "topology_fingerprint",
]
