"""Content-addressed schedule cache with warm-start repair.

:class:`ScheduleCache` sits in front of any one-shot scheduler and
answers requests from three tiers, cheapest first:

1. **exact** — the request's :func:`~repro.cache.fingerprint.exact_key`
   (raw bytes of the link arrays + channel parameters + scheduler
   identity) is already cached.  The stored schedule is returned as-is:
   **bit-identical** to what the scheduler would produce, no
   verification needed, O(N) total.
2. **canonical** — same
   :func:`~repro.cache.fingerprint.topology_fingerprint` under a
   different labeling/pose: the cached schedule is remapped through the
   two canonical orders and returned after a fresh Corollary 3.1
   feasibility check on the *requested* problem.
3. **warm** — a nearest-fingerprint neighbour (same size, rates and
   channel parameters, endpoints within ``warm_threshold`` link
   lengths on average): the cached schedule warm-starts an
   :class:`~repro.core.incremental.IncrementalScheduler` on the cached
   geometry, a synthesized move-only
   :class:`~repro.network.delta.LinkDelta` carries it to the requested
   geometry, and the engine's repair path (with its quality fallback)
   produces the answer — again feasibility-checked before return.

Anything else is a **miss**: the scheduler runs, and the result is
inserted (under both keys) for next time.

Transparency
------------
Exact hits are bit-identical to uncached runs by construction.  The
canonical and warm tiers may return a *different* feasible schedule
than a scratch run (schedulers tie-break on link indices), so they are
gated behind ``warm_start=True``; with ``warm_start=False`` the cache
is fully transparent — every answer is bit-identical to the uncached
one.  The ``cache-vs-fresh`` differential check and the workload
golden-trace test pin both properties.

Eviction and persistence
------------------------
``capacity`` bounds the entry count; victims are chosen by a
:mod:`repro.cache.policy` (``repetition_aware`` by default).  With
``directory=`` set, entries persist as one JSON file each (atomic
write: unique temp file + fsync + rename, damaged files read as
misses) so a serving process can restart warm.  Hits, misses and
evictions are counted in :mod:`repro.obs` (``cache.*``; catalogued in
``docs/OBSERVABILITY.md``) and mirrored in :attr:`ScheduleCache.stats`
and the ordered :attr:`ScheduleCache.events` log the golden tests pin.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.cache.fingerprint import (
    exact_key,
    fingerprint_with_order,
    geometry_distance,
    scheduler_identity,
)
from repro.cache.policy import CACHE_POLICIES, make_policy
from repro.core.base import get_scheduler
from repro.core.schedule import Schedule
from repro.network.links import LinkSet
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span

__all__ = ["CACHE_POLICIES", "CacheEntry", "ScheduleCache", "cache_dir_stats"]

SchedulerLike = Union[str, Callable[..., Schedule]]

#: Version tag of the persisted entry payload shape.
ENTRY_SCHEMA = 1


@dataclass
class CacheEntry:
    """One cached schedule plus everything needed to reuse it."""

    exact_key: str
    fingerprint: str
    order: np.ndarray = field(repr=False)  # canonical position -> link index
    links: LinkSet = field(repr=False)
    params: Tuple[float, float, float, float, float]  # alpha, gamma_th, eps, noise, power
    scheduler_id: str
    schedule: Schedule = field(repr=False)
    rate: float
    hits: int = 0
    seeded: int = 0
    last_used: int = 0
    inserted_seq: int = 0

    @property
    def n_links(self) -> int:
        return len(self.links)


def _entry_payload(entry: CacheEntry) -> Dict[str, Any]:
    """Lossless JSON payload for one entry (floats round-trip exactly)."""
    return {
        "schema": ENTRY_SCHEMA,
        "exact_key": entry.exact_key,
        "fingerprint": entry.fingerprint,
        "order": [int(x) for x in entry.order],
        "senders": [[float(x), float(y)] for x, y in entry.links.senders],
        "receivers": [[float(x), float(y)] for x, y in entry.links.receivers],
        "rates": [float(x) for x in entry.links.rates],
        "params": [float(x) for x in entry.params],
        "scheduler_id": entry.scheduler_id,
        "active": [int(x) for x in entry.schedule.active],
        "algorithm": entry.schedule.algorithm,
        "rate": float(entry.rate),
        "hits": int(entry.hits + entry.seeded),
    }


def _entry_from_payload(payload: Dict[str, Any]) -> CacheEntry:
    """Inverse of :func:`_entry_payload`; raises on junk."""
    if payload.get("schema") != ENTRY_SCHEMA:
        raise ValueError(f"unknown cache entry schema: {payload.get('schema')!r}")
    links = LinkSet(
        senders=np.asarray(payload["senders"], dtype=float),
        receivers=np.asarray(payload["receivers"], dtype=float),
        rates=np.asarray(payload["rates"], dtype=float),
    )
    params = tuple(float(x) for x in payload["params"])
    if len(params) != 5:
        raise ValueError(f"cache entry params must have 5 values, got {len(params)}")
    schedule = Schedule(
        active=np.asarray(payload["active"], dtype=np.int64),
        algorithm=str(payload["algorithm"]),
        diagnostics={"cache": "persisted"},
    )
    return CacheEntry(
        exact_key=str(payload["exact_key"]),
        fingerprint=str(payload["fingerprint"]),
        order=np.asarray(payload["order"], dtype=np.int64),
        links=links,
        params=params,  # type: ignore[arg-type]
        scheduler_id=str(payload["scheduler_id"]),
        schedule=schedule,
        rate=float(payload["rate"]),
        seeded=int(payload.get("hits", 0)),
    )


def _atomic_write_json(path: Path, payload: Dict[str, Any]) -> None:
    """Durable write: unique temp file + fsync + rename (never torn)."""
    data = json.dumps(payload, indent=2, sort_keys=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.stem}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class ScheduleCache:
    """Content-addressed schedule cache (see the module docstring).

    Parameters
    ----------
    capacity:
        Maximum number of cached entries (>= 1).
    policy:
        Eviction policy name from
        :data:`repro.cache.policy.CACHE_POLICIES`.
    warm_start:
        Enable the canonical and warm tiers.  ``False`` restricts the
        cache to bit-identical exact hits (fully transparent mode).
    warm_threshold:
        Maximum :func:`~repro.cache.fingerprint.geometry_distance` (mean
        endpoint displacement in link lengths) for a warm-start
        neighbour.
    quality_bound:
        Forwarded to the warm-start
        :class:`~repro.core.incremental.IncrementalScheduler`: repaired
        schedules below this fraction of the cached reference rate fall
        back to a from-scratch run inside the engine.
    directory:
        Optional persistence directory (created if missing).  Existing
        entries are loaded eagerly; damaged files are skipped.
    """

    def __init__(
        self,
        capacity: int = 256,
        policy: str = "repetition_aware",
        *,
        warm_start: bool = True,
        warm_threshold: float = 0.25,
        quality_bound: float = 0.8,
        directory: Optional[Union[str, Path]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if warm_threshold < 0.0:
            raise ValueError(f"warm_threshold must be >= 0, got {warm_threshold}")
        self.capacity = int(capacity)
        self._policy = make_policy(policy)
        self.policy = self._policy.name
        self.warm_start = bool(warm_start)
        self.warm_threshold = float(warm_threshold)
        self.quality_bound = float(quality_bound)
        self.directory = Path(directory) if directory is not None else None
        self._entries: Dict[str, CacheEntry] = {}
        self._by_fingerprint: Dict[str, List[str]] = {}
        self._clock = 0
        self._seq = 0
        #: Ordered (kind, fingerprint-prefix) log of every cache event:
        #: ``exact`` / ``canonical`` / ``warm`` / ``miss`` / ``evict``.
        #: Fingerprint prefixes (not exact keys) label the events, so
        #: the log is invariant under relabeling of the request stream.
        self.events: List[Tuple[str, str]] = []
        self._counters: Dict[str, int] = {
            "exact_hits": 0,
            "canonical_hits": 0,
            "warm_hits": 0,
            "misses": 0,
            "evictions": 0,
        }
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._load_directory()

    # -- public API ---------------------------------------------------

    def schedule(
        self,
        problem,
        scheduler: SchedulerLike = "rle",
        scheduler_kwargs: Optional[dict] = None,
    ) -> Schedule:
        """The schedule for ``problem``, served from cache when possible.

        Drop-in replacement for ``scheduler(problem, **kwargs)``; see
        the module docstring for the tier semantics and the
        transparency guarantee.
        """
        fn = get_scheduler(scheduler) if isinstance(scheduler, str) else scheduler
        kwargs = dict(scheduler_kwargs or {})
        sid = scheduler_identity(fn, kwargs)
        self._clock += 1
        with span("cache.lookup", n=problem.n_links):
            key = exact_key(problem, sid)
            entry = self._entries.get(key)
            if entry is not None:
                self._record_hit(entry, "exact")
                obs_metrics.inc("cache.exact_hits")
                return entry.schedule
            fingerprint, order = fingerprint_with_order(problem)
            if self.warm_start:
                result = self._canonical_hit(problem, fingerprint, order, sid, key)
                if result is None:
                    result = self._warm_hit(problem, fingerprint, order, fn, kwargs, sid, key)
                if result is not None:
                    return result
        self._counters["misses"] += 1
        obs_metrics.inc("cache.misses")
        self.events.append(("miss", fingerprint[:12]))
        result = fn(problem, **kwargs)
        self._insert(key, fingerprint, order, problem, sid, result)
        return result

    @property
    def stats(self) -> Dict[str, Any]:
        """Counters plus occupancy, as a plain dict."""
        out: Dict[str, Any] = dict(self._counters)
        out["entries"] = len(self._entries)
        out["capacity"] = self.capacity
        out["policy"] = self.policy
        lookups = (
            self._counters["exact_hits"]
            + self._counters["canonical_hits"]
            + self._counters["warm_hits"]
            + self._counters["misses"]
        )
        hits = lookups - self._counters["misses"]
        out["hit_rate"] = hits / lookups if lookups else 0.0
        return out

    def flush(self) -> None:
        """Persist the session's counters and hit totals (if on disk).

        Entry files are written at insert time with zero hits; flushing
        re-writes the ones that were hit since, so repetition credit
        (and ``cache_dir_stats``'s ``persisted_hits``) survives a
        restart.
        """
        if self.directory is None:
            return
        for key, entry in self._entries.items():
            if entry.hits > 0:
                _atomic_write_json(self.directory / f"{key}.json", _entry_payload(entry))
        payload = {
            "schema": ENTRY_SCHEMA,
            "policy": self.policy,
            "counters": dict(self._counters),
            "hits": {k: int(e.hits + e.seeded) for k, e in self._entries.items()},
        }
        _atomic_write_json(self.directory / "_stats.json", payload)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self) -> List[str]:
        """Sorted exact keys of every cached entry."""
        return sorted(self._entries)

    # -- tiers --------------------------------------------------------

    def _record_hit(self, entry: CacheEntry, kind: str) -> None:
        entry.hits += 1
        entry.last_used = self._clock
        self._counters[f"{kind}_hits"] += 1
        self.events.append((kind, entry.fingerprint[:12]))

    def _canonical_hit(
        self, problem, fingerprint: str, order: np.ndarray, sid: str, key: str
    ) -> Optional[Schedule]:
        """Remap a same-fingerprint entry onto the requested labeling."""
        n = problem.n_links
        for cached_key in self._by_fingerprint.get(fingerprint, ()):
            entry = self._entries[cached_key]
            if entry.scheduler_id != sid or entry.n_links != n:
                continue
            inverse = np.empty(n, dtype=np.int64)
            inverse[entry.order] = np.arange(n, dtype=np.int64)
            mapped = np.sort(order[inverse[entry.schedule.active]])
            if not problem.is_feasible(mapped):
                continue
            self._record_hit(entry, "canonical")
            obs_metrics.inc("cache.canonical_hits")
            result = Schedule(
                active=mapped,
                algorithm=entry.schedule.algorithm,
                diagnostics={"cache": "canonical", "source": entry.exact_key},
            )
            self._insert(key, fingerprint, order, problem, sid, result)
            return result
        return None

    def _warm_hit(
        self,
        problem,
        fingerprint: str,
        order: np.ndarray,
        fn: Callable[..., Schedule],
        kwargs: dict,
        sid: str,
        key: str,
    ) -> Optional[Schedule]:
        """Repair the nearest neighbour's schedule onto the request."""
        from repro.core.incremental import IncrementalScheduler
        from repro.network.delta import LinkDelta

        if problem.powers is not None:
            return None  # the repair engine is uniform-power only
        params = _problem_params(problem)
        best: Optional[CacheEntry] = None
        best_dist = float("inf")
        for entry in self._entries.values():
            if entry.scheduler_id != sid or entry.n_links != problem.n_links:
                continue
            if entry.params != params:
                continue
            if not np.array_equal(entry.links.rates, problem.links.rates):
                continue
            dist = geometry_distance(entry.links, problem.links)
            if dist < best_dist:
                best, best_dist = entry, dist
        if best is None or best_dist > self.warm_threshold:
            return None
        senders = np.asarray(problem.links.senders, dtype=float)
        receivers = np.asarray(problem.links.receivers, dtype=float)
        moved = np.flatnonzero(
            np.any(np.asarray(best.links.senders, dtype=float) != senders, axis=1)
            | np.any(np.asarray(best.links.receivers, dtype=float) != receivers, axis=1)
        )
        if moved.size == 0:
            return None  # identical geometry would have hit an earlier tier
        engine = IncrementalScheduler(
            best.links,
            scheduler=fn,
            scheduler_kwargs=kwargs,
            alpha=problem.alpha,
            gamma_th=problem.gamma_th,
            eps=problem.eps,
            noise=problem.noise,
            power=problem.power,
            quality_bound=self.quality_bound,
        )
        engine.warm_start(best.schedule.active, best.rate)
        delta = LinkDelta.move(moved, senders[moved], receivers[moved])
        with span("cache.warm_start", n=problem.n_links, moved=int(moved.size)):
            repaired = engine.step(delta)
        if not problem.is_feasible(repaired.active):
            return None
        self._record_hit(best, "warm")
        obs_metrics.inc("cache.warm_hits")
        result = repaired.with_diagnostics(
            cache="warm", source=best.exact_key, distance=best_dist
        )
        self._insert(key, fingerprint, order, problem, sid, result)
        return result

    # -- insertion / eviction -----------------------------------------

    def _insert(
        self,
        key: str,
        fingerprint: str,
        order: np.ndarray,
        problem,
        sid: str,
        result: Schedule,
    ) -> None:
        links = problem.links
        entry = CacheEntry(
            exact_key=key,
            fingerprint=fingerprint,
            order=order,
            links=LinkSet(
                senders=np.array(links.senders, dtype=float),
                receivers=np.array(links.receivers, dtype=float),
                rates=np.array(links.rates, dtype=float),
            ),
            params=_problem_params(problem),
            scheduler_id=sid,
            schedule=result,
            rate=float(np.asarray(links.rates, dtype=float)[result.active].sum()),
            seeded=self._policy.seed_hits(fingerprint),
            last_used=self._clock,
            inserted_seq=self._seq,
        )
        self._seq += 1
        self._entries[key] = entry
        self._by_fingerprint.setdefault(fingerprint, []).append(key)
        if self.directory is not None:
            _atomic_write_json(self.directory / f"{key}.json", _entry_payload(entry))
        while len(self._entries) > self.capacity:
            self._evict_one(exclude=key)

    def _evict_one(self, exclude: str) -> None:
        candidates = {k: e for k, e in self._entries.items() if k != exclude}
        victim_key = self._policy.victim(candidates)
        victim = self._entries.pop(victim_key)
        siblings = self._by_fingerprint[victim.fingerprint]
        siblings.remove(victim_key)
        if not siblings:
            del self._by_fingerprint[victim.fingerprint]
        if self.directory is not None:
            try:
                (self.directory / f"{victim_key}.json").unlink()
            except OSError:  # pragma: no cover - already gone
                pass
        self._policy.record_eviction(victim)
        self._counters["evictions"] += 1
        obs_metrics.inc("cache.evictions")
        self.events.append(("evict", victim.fingerprint[:12]))

    # -- persistence --------------------------------------------------

    def _load_directory(self) -> None:
        assert self.directory is not None
        for path in sorted(self.directory.glob("*.json")):
            if path.name == "_stats.json":
                continue
            try:
                payload = json.loads(path.read_text())
                entry = _entry_from_payload(payload)
            except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError):
                continue  # damaged entries read as misses
            if len(self._entries) >= self.capacity:
                break
            entry.last_used = self._clock
            entry.inserted_seq = self._seq
            self._seq += 1
            self._entries[entry.exact_key] = entry
            self._by_fingerprint.setdefault(entry.fingerprint, []).append(entry.exact_key)


def _problem_params(problem) -> Tuple[float, float, float, float, float]:
    return (
        float(problem.alpha),
        float(problem.gamma_th),
        float(problem.eps),
        float(problem.noise),
        float(problem.power),
    )


def cache_dir_stats(directory: Union[str, Path]) -> Dict[str, Any]:
    """Summary of a persisted cache directory (for ``repro cache stats``)."""
    root = Path(directory)
    if not root.is_dir():
        raise FileNotFoundError(f"cache directory does not exist: {root}")
    entries = 0
    damaged = 0
    hits = 0
    algorithms: Dict[str, int] = {}
    sizes: List[int] = []
    for path in sorted(root.glob("*.json")):
        if path.name == "_stats.json":
            continue
        try:
            payload = json.loads(path.read_text())
            entry = _entry_from_payload(payload)
        except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError):
            damaged += 1
            continue
        entries += 1
        hits += entry.seeded
        algorithms[entry.schedule.algorithm] = algorithms.get(entry.schedule.algorithm, 0) + 1
        sizes.append(entry.n_links)
    out: Dict[str, Any] = {
        "directory": str(root),
        "entries": entries,
        "damaged": damaged,
        "persisted_hits": hits,
        "algorithms": dict(sorted(algorithms.items())),
        "mean_links": float(np.mean(sizes)) if sizes else 0.0,
    }
    stats_path = root / "_stats.json"
    if stats_path.exists():
        try:
            stats = json.loads(stats_path.read_text())
        except (json.JSONDecodeError, OSError):
            stats = None
        if isinstance(stats, dict):
            out["policy"] = stats.get("policy")
            out["counters"] = stats.get("counters")
    return out
