"""Content-hash canonicalisation and topology fingerprints.

This module is the single home of the repo's content-addressed key
machinery.  The first half (:func:`config_key`,
:func:`describe_callable`, :func:`canonical_channel`) was grown out of
the checkpoint keys in :mod:`repro.experiments.store` and
:mod:`repro.sim.parallel`; both still re-export it, and the byte-level
key values are pinned unchanged by ``tests/test_cache_fingerprint.py``
so existing checkpoint/result directories keep resuming.

The second half is new for the schedule cache
(:mod:`repro.cache.store`) and defines two keys per scheduling
request:

``exact_key``
    A hash of the *raw* link arrays, channel parameters and scheduler
    identity.  Two requests share it only when they are the same
    problem bit for bit, which is what makes exact cache hits safe to
    return without any verification: the cached schedule *is* the
    schedule the scheduler would produce.  Computing it is O(N) — no
    distance matrix — so the hot hit path never pays the O(N^2)
    canonicalisation below.

``topology_fingerprint``
    A canonicalized key invariant under link relabeling, translation,
    rotation/reflection and — when ``noise == 0`` makes the instance
    scale-invariant (the same gate the geometry-scale metamorphic
    relation uses) — uniform scaling.  It hashes the quantized
    cross-distance matrix ``D[i, j] = d(s_i, r_j)`` conjugated into a
    canonical link order, so any rigid motion of the plane and any
    permutation of the link labels map to the same fingerprint.
    Distances are normalised by the mean link length and quantized to
    ``QUANTUM`` (1e-9) relative precision, absorbing the few-ulp wobble
    a floating-point rotation introduces while keeping genuinely
    different geometries apart.

The canonical link order sorts links by a per-link invariant feature
row (own length, rate, sorted distance row, sorted distance column).
Links with bit-identical feature rows are ordered arbitrarily; for such
fully-symmetric geometries two relabelings can hash differently (a
miss, never a wrong hit).  The Hypothesis suite checks invariance on
the adversarial fuzzer families, where ties do not survive
quantization.
"""

from __future__ import annotations

import functools
import hashlib
import json
from typing import Any, Mapping, Optional, Tuple

import numpy as np

from repro.geometry.distance import cross_distances
from repro.network.links import LinkSet

__all__ = [
    "QUANTUM",
    "canonical_channel",
    "config_key",
    "describe_callable",
    "exact_key",
    "fingerprint_with_order",
    "geometry_distance",
    "scheduler_identity",
    "topology_fingerprint",
]


# -- shared canonicalisation (moved from experiments.store / sim.parallel) --


def config_key(name: str, params: Mapping[str, Any]) -> str:
    """Stable hex key for a named configuration.

    Parameters are serialised with sorted keys; anything JSON rejects
    (tuples become lists transparently) raises ``TypeError`` so
    unhashable configs fail loudly instead of colliding.
    """
    canonical = json.dumps({"name": name, "params": params}, sort_keys=True, default=_coerce)
    return hashlib.sha256(canonical.encode()).hexdigest()[:24]


def _coerce(value: Any):
    if isinstance(value, tuple):
        return list(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"unserialisable config value: {value!r}")


def describe_callable(fn: Any) -> str:
    """A stable (address-free) description of a workload/scheduler.

    ``repr`` of a plain function embeds its memory address, which would
    change every run and defeat checkpoint reuse; dataclass factories
    like :class:`~repro.experiments.config.TopologyWorkload` have
    stable field-based reprs and pass through unchanged.
    """
    if isinstance(fn, functools.partial):
        inner = describe_callable(fn.func)
        kwargs = sorted((k, repr(v)) for k, v in (fn.keywords or {}).items())
        return f"partial({inner}, args={fn.args!r}, kwargs={kwargs!r})"
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if module and qualname:
        return f"{module}.{qualname}"
    return repr(fn)


def canonical_channel(channel: Optional[str]) -> str:
    """Canonical spec string of a channel (``None`` = Rayleigh)."""
    from repro.channel.laws import get_channel_law

    return get_channel_law(channel).spec


def scheduler_identity(scheduler: Any, scheduler_kwargs: Optional[Mapping[str, Any]]) -> str:
    """Stable identity of a scheduler call: callable + sorted kwargs."""
    kwargs = sorted((k, repr(v)) for k, v in dict(scheduler_kwargs or {}).items())
    return f"{describe_callable(scheduler)}|{kwargs!r}"


# -- schedule-cache keys -------------------------------------------------

#: Relative quantization step of fingerprint distances.  Far above the
#: ~1e-16 relative wobble of a float rotation/translation, far below
#: any geometric perturbation the cache should distinguish.
QUANTUM = 1e-9

_EXACT_SALT = b"repro.cache.exact:1\n"
_FINGERPRINT_SALT = b"repro.cache.fingerprint:1\n"


def _link_arrays(links: LinkSet) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    senders = np.ascontiguousarray(links.senders, dtype=np.float64)
    receivers = np.ascontiguousarray(links.receivers, dtype=np.float64)
    rates = np.ascontiguousarray(links.rates, dtype=np.float64)
    return senders, receivers, rates


def exact_key(problem, scheduler_id: str) -> str:
    """Bit-level identity of one scheduling request.

    Hashes the raw coordinate/rate arrays, every channel parameter a
    scheduler can see, and the scheduler identity.  Equal keys mean the
    scheduler would run on *identical* inputs, so the cached schedule
    can be returned bit for bit.
    """
    senders, receivers, rates = _link_arrays(problem.links)
    h = hashlib.sha256()
    h.update(_EXACT_SALT)
    params = (problem.alpha, problem.gamma_th, problem.eps, problem.noise, problem.power)
    h.update(repr(params).encode())
    h.update(scheduler_id.encode())
    h.update(senders.tobytes())
    h.update(receivers.tobytes())
    h.update(rates.tobytes())
    if problem.powers is None:
        h.update(b"|uniform")
    else:
        h.update(b"|powers:")
        h.update(np.ascontiguousarray(problem.powers, dtype=np.float64).tobytes())
    return h.hexdigest()[:24]


def fingerprint_with_order(problem) -> Tuple[str, np.ndarray]:
    """Canonical fingerprint plus the canonical link order.

    Returns ``(fingerprint, order)`` where ``order[p]`` is the original
    index of the link at canonical position ``p``.  Two problems with
    equal fingerprints are the same geometry up to relabeling and rigid
    motion (and uniform scale when ``noise == 0``), and their canonical
    orders align link for link — which is what lets a cached schedule
    be remapped onto a differently-labelled copy.
    """
    senders, receivers, rates = _link_arrays(problem.links)
    n = rates.shape[0]
    dist = cross_distances(senders, receivers)
    own = np.diag(dist)
    scale = float(own.mean()) if n else 1.0
    quanta = np.rint(dist / (scale * QUANTUM)).astype(np.int64)
    rate_q = np.rint(rates / QUANTUM).astype(np.int64)

    keys = []
    for i in range(n):
        keys.append(
            (
                int(quanta[i, i]),
                int(rate_q[i]),
                tuple(sorted(quanta[i, :].tolist())),
                tuple(sorted(quanta[:, i].tolist())),
            )
        )
    order = np.asarray(sorted(range(n), key=keys.__getitem__), dtype=np.int64)

    h = hashlib.sha256()
    h.update(_FINGERPRINT_SALT)
    h.update(repr((problem.alpha, problem.gamma_th, problem.eps, problem.noise)).encode())
    if problem.noise != 0.0:
        # Noise breaks scale invariance (budgets see absolute lengths
        # and the transmit power), so the absolute scale and power join
        # the fingerprint — mirroring the geometry-scale metamorphic
        # relation, which only asserts invariance at noise == 0.
        h.update(repr((problem.power, int(round(scale / QUANTUM)))).encode())
    canonical = quanta[np.ix_(order, order)]
    h.update(np.ascontiguousarray(canonical).tobytes())
    h.update(np.ascontiguousarray(rate_q[order]).tobytes())
    if problem.powers is not None:
        powers_q = np.rint(np.asarray(problem.powers, dtype=np.float64) / QUANTUM)
        h.update(np.ascontiguousarray(powers_q.astype(np.int64)[order]).tobytes())
    return h.hexdigest()[:24], order


def topology_fingerprint(problem) -> str:
    """Canonicalized topology fingerprint (see :func:`fingerprint_with_order`)."""
    return fingerprint_with_order(problem)[0]


def geometry_distance(a: LinkSet, b: LinkSet) -> float:
    """Mean endpoint displacement between two same-size link sets,
    normalised by the mean link length of ``b``.

    This is the label-space nearness measure the warm-start tier uses:
    0.0 means identical geometry, and a value around 1.0 means the
    endpoints moved by about one link length on average.  Requires
    equal link counts (labels must align for delta synthesis).
    """
    if len(a) != len(b):
        raise ValueError(f"link sets differ in size: {len(a)} vs {len(b)}")
    sa, ra, _ = _link_arrays(a)
    sb, rb, _ = _link_arrays(b)
    if sa.shape[0] == 0:
        return 0.0
    ds = np.linalg.norm(sa - sb, axis=1)
    dr = np.linalg.norm(ra - rb, axis=1)
    mean_len = float(np.linalg.norm(rb - sb, axis=1).mean())
    return float((ds + dr).mean() / (2.0 * mean_len))
