"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``generate``
    Produce a random workload and save it (CSV or JSON by extension).
``schedule``
    Run a scheduler on a workload file (or a fresh random one), verify
    feasibility, optionally Monte-Carlo simulate, print or save JSON.
``figures`` / ``fig5`` / ``fig6``
    Regenerate the paper's evaluation panels as tables (and JSON);
    ``fig5``/``fig6`` are shortcuts for the two panels of each figure.
``power-sweep``
    Run every registered scheduler over a channel-law x power-policy
    grid (see ``docs/CHANNELS.md``).
``list``
    Show the registered schedulers.
``verify``
    Run the differential + metamorphic verification oracle over fuzzed
    adversarial scenarios (exit status 1 on any mismatch).
``mobility``
    Run the mobility study (schedule quality/stability under movement),
    from scratch per step or with ``--incremental`` warm-start repair.
``trace``
    Inspect observability traces (``trace summarize out.jsonl``).

Global observability flags (before the command name):

- ``--trace PATH`` enables the :mod:`repro.obs` layer and writes the
  run's span tree + metric snapshot as ``repro.trace.v1`` JSONL;
- ``--metrics`` enables the layer and prints the metric snapshot as a
  table on exit;
- ``--profile`` wraps the command in cProfile and prints the top
  cumulative entries (independent of the obs switch).

Channel flags (``schedule``/``figures``/``fig5``/``fig6``/``report``):
``--channel SPEC`` selects the Monte-Carlo replay's fading law
(``rayleigh`` | ``nakagami:m=...`` | ``shadowing:sigma_db=...`` |
``deterministic``) and ``--power-policy`` a transmit-power policy;
schedules stay certified under the paper's Rayleigh + uniform-power
closed form (``docs/CHANNELS.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import obs
from repro.core.base import get_scheduler, list_schedulers
from repro.core.problem import FadingRLS
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.io.linksets import (
    linkset_from_csv,
    linkset_from_json,
    linkset_to_csv,
    linkset_to_json,
)
from repro.io.results import schedule_to_dict, sweep_to_dict, write_json
from repro.network.links import LinkSet

TOPOLOGIES = ("paper", "clustered", "grid", "chain", "exponential")
PANELS = ("fig5a", "fig5b", "fig6a", "fig6b")


def _load_links(path: str) -> LinkSet:
    p = Path(path)
    if p.suffix == ".json":
        return linkset_from_json(p)
    if p.suffix == ".csv":
        return linkset_from_csv(p)
    raise SystemExit(f"unsupported link file extension {p.suffix!r} (use .csv or .json)")


def _save_links(links: LinkSet, path: str) -> None:
    p = Path(path)
    if p.suffix == ".json":
        linkset_to_json(links, p)
    elif p.suffix == ".csv":
        linkset_to_csv(links, p)
    else:
        raise SystemExit(f"unsupported link file extension {p.suffix!r} (use .csv or .json)")


def _make_topology(name: str, n: int, seed: int) -> LinkSet:
    from repro.network import topology as topo

    if name == "paper":
        return topo.paper_topology(n, seed=seed)
    if name == "clustered":
        return topo.clustered_topology(n, seed=seed)
    if name == "grid":
        side = max(1, int(round(n**0.5)))
        return topo.grid_topology(side, seed=seed)
    if name == "chain":
        return topo.chain_topology(n)
    if name == "exponential":
        return topo.exponential_length_topology(n, seed=seed)
    raise SystemExit(f"unknown topology {name!r}; choose from {TOPOLOGIES}")


def cmd_generate(args: argparse.Namespace) -> int:
    """``repro generate``: write a random workload file."""
    links = _make_topology(args.topology, args.n_links, args.seed)
    _save_links(links, args.output)
    print(f"wrote {len(links)} links ({args.topology}) to {args.output}")
    return 0


def _n_jobs(args: argparse.Namespace) -> int | None:
    """``--jobs`` validated (None = keep config default)."""
    jobs = getattr(args, "jobs", None)
    if jobs is not None and jobs < 0:
        raise SystemExit(f"--jobs must be >= 0 (0 = all CPUs), got {jobs}")
    return jobs


def _mc_max_bytes(args: argparse.Namespace) -> int | None:
    """``--mc-chunk-mb`` to bytes (None = sampler default)."""
    mb = getattr(args, "mc_chunk_mb", None)
    if mb is None:
        return None
    if mb <= 0:
        raise SystemExit(f"--mc-chunk-mb must be positive, got {mb}")
    return int(mb * 2**20)


def _backend(args: argparse.Namespace) -> str | None:
    """``--backend`` validated (None = keep config default)."""
    backend = getattr(args, "backend", None)
    if backend is None:
        return None
    from repro.backend.base import BACKEND_NAMES

    if backend not in BACKEND_NAMES:
        raise SystemExit(
            f"--backend must be one of {', '.join(BACKEND_NAMES)}, got {backend!r}"
        )
    return backend


def _channel(args: argparse.Namespace) -> str | None:
    """``--channel`` validated/canonicalised (None = keep config default)."""
    spec = getattr(args, "channel", None)
    if spec is None:
        return None
    from repro.channel.laws import get_channel_law

    try:
        return get_channel_law(spec).spec
    except ValueError as exc:
        raise SystemExit(f"--channel: {exc}")


def _power_policy(args: argparse.Namespace) -> str | None:
    """``--power-policy`` (choices are argparse-enforced)."""
    return getattr(args, "power_policy", None)


def _resilience(args: argparse.Namespace) -> dict:
    """Validated resilience knobs (``--unit-timeout``/``--max-retries``/
    ``--resume``) as ``with_resilience`` keyword arguments."""
    timeout = getattr(args, "unit_timeout", None)
    retries = getattr(args, "max_retries", None)
    resume = getattr(args, "resume", None)
    if timeout is not None and timeout <= 0:
        raise SystemExit(f"--unit-timeout must be positive seconds, got {timeout}")
    if retries is not None and retries < 0:
        raise SystemExit(f"--max-retries must be >= 0, got {retries}")
    return {"unit_timeout": timeout, "max_retries": retries, "resume_dir": resume}


def cmd_schedule(args: argparse.Namespace) -> int:
    """``repro schedule``: run a scheduler, verify, optionally simulate."""
    if args.input:
        links = _load_links(args.input)
    else:
        links = _make_topology(args.topology, args.n_links, args.seed)
    problem = FadingRLS(
        links=links,
        alpha=args.alpha,
        gamma_th=args.gamma_th,
        eps=args.eps,
        noise=args.noise,
    )
    from repro.core.powercontrol import run_scheduler_with_power

    scheduler = get_scheduler(args.algorithm)
    kwargs = {"seed": args.seed} if args.algorithm in ("dls", "random", "protocol_mis") else {}
    channel = _channel(args)
    policy = _power_policy(args) or "uniform"
    with span("scheduler.run", algorithm=args.algorithm):
        schedule, powered = run_scheduler_with_power(
            problem, scheduler, policy, kwargs
        )
    obs_metrics.inc("scheduler.links_admitted", schedule.size)

    result = None
    if args.trials > 0:
        from repro.sim.montecarlo import simulate_schedule

        result = simulate_schedule(
            powered,
            schedule,
            n_trials=args.trials,
            seed=args.seed,
            max_bytes=_mc_max_bytes(args),
            channel=channel,
        )

    payload = schedule_to_dict(schedule, powered, result)
    if channel is not None or policy != "uniform":
        payload["channel"] = channel or "rayleigh"
        payload["power_policy"] = policy
    if args.output:
        write_json(payload, args.output)
        print(f"wrote result to {args.output}")
    print(
        f"{schedule.algorithm}: {schedule.size}/{len(links)} links scheduled, "
        f"feasible={payload['feasible']}, "
        f"expected throughput={payload['expected_throughput']:.3f}"
    )
    if result is not None:
        print(
            f"simulated {result.n_trials} trials: "
            f"failed/trial={result.mean_failed:.3f}, "
            f"throughput={result.mean_throughput:.3f}"
        )
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    """``repro figures``: regenerate the paper's evaluation panels."""
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.fig5 import failed_vs_alpha, failed_vs_links
    from repro.experiments.fig6 import throughput_vs_alpha, throughput_vs_links
    from repro.experiments.reporting import format_series

    cfg = ExperimentConfig() if args.full else ExperimentConfig().small()
    cfg = cfg.with_execution(
        n_jobs=_n_jobs(args),
        mc_max_bytes=_mc_max_bytes(args),
        backend=_backend(args),
    )
    cfg = cfg.with_resilience(**_resilience(args))
    cfg = cfg.with_channel(channel=_channel(args), power_policy=_power_policy(args))
    drivers = {
        "fig5a": (failed_vs_links, "mean_failed", "Fig. 5(a): failed transmissions vs #links"),
        "fig5b": (failed_vs_alpha, "mean_failed", "Fig. 5(b): failed transmissions vs alpha"),
        "fig6a": (throughput_vs_links, "mean_throughput", "Fig. 6(a): throughput vs #links"),
        "fig6b": (throughput_vs_alpha, "mean_throughput", "Fig. 6(b): throughput vs alpha"),
    }
    # ``repro fig5`` / ``repro fig6`` preselect their two panels; the
    # general ``figures`` command goes through ``--panel``.
    group = getattr(args, "panel_group", None)
    panels = group or (PANELS if args.panel == "all" else (args.panel,))
    if cfg.channel != "rayleigh" or cfg.power_policy != "uniform":
        print(f"channel={cfg.channel} power_policy={cfg.power_policy}\n")
    collected = {}
    for panel in panels:
        driver, metric, title = drivers[panel]
        sweep = driver(cfg)
        collected[panel] = sweep_to_dict(sweep)
        print(format_series(sweep, metric, title=title))
        print()
    if args.output:
        write_json(collected, args.output)
        print(f"wrote series to {args.output}")
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    """``repro list``: print the registered scheduler names."""
    for name in list_schedulers():
        print(name)
    return 0


def cmd_constants(args: argparse.Namespace) -> int:
    """``repro constants``: print the paper's derived constants."""
    from repro.analysis.regimes import constants_table

    print(
        constants_table(
            alphas=tuple(args.alpha), gamma_th=args.gamma_th, eps=args.eps
        )
    )
    return 0


def cmd_queue(args: argparse.Namespace) -> int:
    """``repro queue``: run the queue-driven frame simulation."""
    from repro.sim.network_sim import simulate_queues

    if args.input:
        links = _load_links(args.input)
    else:
        links = _make_topology(args.topology, args.n_links, args.seed)
    problem = FadingRLS(links=links, alpha=args.alpha, eps=args.eps, noise=args.noise)
    scheduler = get_scheduler(args.algorithm)
    result = simulate_queues(
        problem,
        scheduler,
        n_slots=args.slots,
        arrival_rate=args.arrival_rate,
        seed=args.seed,
    )
    print(
        f"{args.algorithm} over {result.n_slots} slots @ rate {args.arrival_rate}/link:\n"
        f"  arrivals {result.arrivals}, delivered {result.deliveries} "
        f"({100 * result.delivery_ratio:.1f}%), failed attempts {result.failures}\n"
        f"  slot efficiency {result.slot_efficiency:.3f}, "
        f"mean backlog {result.mean_backlog:.1f}, final backlog {result.final_backlog}, "
        f"mean delay {result.mean_delay:.1f} slots"
    )
    return 0


def cmd_traffic(args: argparse.Namespace) -> int:
    """``repro traffic``: run a declarative workload scenario."""
    from repro.backend.base import use as use_backend
    from repro.workload.generators import arrivals_from_spec
    from repro.workload.scenario import WorkloadScenario, run_scenario

    if args.config:
        try:
            scenario = WorkloadScenario.from_json(args.config)
        except (OSError, ValueError, TypeError) as exc:
            raise SystemExit(f"bad scenario config {args.config!r}: {exc}")
    else:
        base = arrivals_from_spec({"family": args.arrival})
        if base.mean_rate() <= 0:
            raise SystemExit(f"arrival family {args.arrival!r} has zero base rate")
        try:
            scenario = WorkloadScenario(
                name=f"{args.topology}-{args.n_links}-{args.arrival}",
                topology=args.topology,
                n_links=args.n_links,
                topology_seed=args.seed,
                alpha=args.alpha,
                eps=args.eps,
                noise=args.noise,
                arrivals=base.scaled(args.rate / base.mean_rate()),
                scheduler=args.algorithm,
                policy=args.policy,
                n_slots=args.slots,
                seed=args.seed,
                max_queue=args.max_queue,
                stability=None if args.no_stability else {},
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
    cache = None
    if args.cache:
        from repro.cache.store import ScheduleCache

        if scenario.policy != "backlogged":
            raise SystemExit(
                f"--cache requires the 'backlogged' policy, got {scenario.policy!r}"
            )
        try:
            cache = ScheduleCache(
                capacity=args.cache_capacity,
                policy=args.cache_policy,
                directory=None if args.cache == "memory" else args.cache,
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
    with use_backend(_backend(args)):
        payload = run_scenario(scenario, n_jobs=_n_jobs(args) or 1, cache=cache)
    stats = payload["stats"]
    print(
        f"{scenario.name}: {scenario.scheduler}/{scenario.policy} over "
        f"{stats['n_slots']} slots, {stats['n_links']} links\n"
        f"  arrivals {stats['arrived']}, served {stats['served']} "
        f"({100 * stats['delivery_ratio']:.1f}%), dropped {stats['dropped']}, "
        f"failed attempts {stats['failed']}\n"
        f"  mean delay {stats['mean_delay'] if stats['mean_delay'] is None else round(stats['mean_delay'], 2)} slots "
        f"(p95 {stats['p95_delay'] if stats['p95_delay'] is None else round(stats['p95_delay'], 1)}), "
        f"mean backlog {stats['mean_backlog']:.1f}, "
        f"final backlog {stats['final_backlog']}, "
        f"drift {stats['drift']:+.4f} pkts/slot/link"
    )
    estimate = payload["stability"]
    if estimate is not None:
        bound = "bracketed" if estimate["bracketed"] else "one-sided bound"
        print(
            f"  stability region: lambda* ~ {estimate['lam_star']:.4f} "
            f"pkts/link/slot (x{estimate['factor_star']:.2f} offered load, "
            f"{bound}, {estimate['n_probes']} probes)"
        )
    cache_stats = payload.get("cache")
    if cache_stats is not None:
        print(
            f"  cache [{cache_stats['policy']}]: "
            f"{cache_stats['exact_hits']} exact / "
            f"{cache_stats['canonical_hits']} canonical / "
            f"{cache_stats['warm_hits']} warm hits, "
            f"{cache_stats['misses']} misses "
            f"({100 * cache_stats['hit_rate']:.1f}% hit rate), "
            f"{cache_stats['evictions']} evictions, "
            f"{cache_stats['entries']}/{cache_stats['capacity']} entries"
        )
    if args.output:
        write_json(payload, args.output)
        print(f"wrote traffic payload to {args.output}")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """``repro verify``: run the differential + metamorphic oracle."""
    from repro.verify import all_checks, run_verification

    if args.list_checks:
        for name in sorted(all_checks()):
            print(name)
        return 0
    report = run_verification(
        budget=args.budget,
        seed=args.seed,
        checks=args.check or None,
        time_budget=args.time_budget,
    )
    print(report.summary())
    if args.output:
        write_json(report.to_dict(), args.output)
        print(f"wrote verification report to {args.output}")
    return 0 if report.passed else 1


def cmd_mobility(args: argparse.Namespace) -> int:
    """``repro mobility``: schedule quality/stability under movement."""
    from repro.experiments.mobility_study import mobility_sweep

    if args.move_threshold < 0:
        raise SystemExit(f"--move-threshold must be >= 0, got {args.move_threshold}")
    if not 0.0 <= args.quality_bound <= 1.0:
        raise SystemExit(f"--quality-bound must be in [0, 1], got {args.quality_bound}")
    schedulers = {name: name for name in (args.algorithm or ["ldp", "rle"])}
    points = mobility_sweep(
        schedulers,
        speeds=tuple(args.speed),
        n_links=args.n_links,
        n_steps=args.steps,
        n_repetitions=args.reps,
        alpha=args.alpha,
        root_seed=args.seed,
        incremental=args.incremental,
        move_threshold=args.move_threshold,
        quality_bound=args.quality_bound,
    )
    mode = "incremental" if args.incremental else "from-scratch"
    print(f"mobility study ({mode}, {args.n_links} links, {args.steps} steps):")
    header = (
        f"{'speed':>8} {'algorithm':<18} {'throughput':>11} "
        f"{'churn':>7} {'max':>6} {'feas':>5} {'fallback':>9}"
    )
    print(header)
    for p in points:
        print(
            f"{p.speed:>8.1f} {p.algorithm:<18} {p.mean_throughput:>11.3f} "
            f"{p.mean_churn:>7.3f} {p.max_churn:>6.3f} "
            f"{'yes' if p.all_feasible else 'NO':>5} {p.fallback_rate:>9.3f}"
        )
    if args.output:
        payload = {
            "mode": mode,
            "points": [
                {
                    "speed": p.speed,
                    "algorithm": p.algorithm,
                    "mean_throughput": p.mean_throughput,
                    "mean_churn": p.mean_churn,
                    "max_churn": p.max_churn,
                    "all_feasible": p.all_feasible,
                    "incremental": p.incremental,
                    "fallback_rate": p.fallback_rate,
                }
                for p in points
            ],
        }
        write_json(payload, args.output)
        print(f"wrote mobility series to {args.output}")
    return 0 if all(p.all_feasible for p in points) else 1


def cmd_report(args: argparse.Namespace) -> int:
    """``repro report``: render the full markdown evaluation report."""
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.report import generate_report

    cfg = ExperimentConfig() if args.full else ExperimentConfig().small()
    cfg = cfg.with_execution(
        n_jobs=_n_jobs(args),
        mc_max_bytes=_mc_max_bytes(args),
        backend=_backend(args),
    )
    cfg = cfg.with_resilience(**_resilience(args))
    cfg = cfg.with_channel(channel=_channel(args), power_policy=_power_policy(args))
    text = generate_report(cfg)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote report to {args.output}")
    else:
        print(text)
    return 0


def cmd_power_sweep(args: argparse.Namespace) -> int:
    """``repro power-sweep``: scheduler registry over channel x power grid."""
    from repro.core.powercontrol import POWER_POLICIES
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.power_sweep import (
        DEFAULT_CHANNELS,
        format_power_sweep,
        power_sweep,
    )

    cfg = ExperimentConfig().small().with_execution(
        n_jobs=_n_jobs(args),
        mc_max_bytes=_mc_max_bytes(args),
        backend=_backend(args),
    )
    channels = tuple(args.channel) if args.channel else DEFAULT_CHANNELS
    policies = tuple(args.policy) if args.policy else POWER_POLICIES
    from repro.channel.laws import get_channel_law

    try:
        for spec in channels:
            get_channel_law(spec)
    except ValueError as exc:
        raise SystemExit(f"--channel: {exc}")
    try:
        cells = power_sweep(
            cfg,
            channels=channels,
            policies=policies,
            schedulers=args.algorithm or None,
            n_links=args.n_links,
            n_repetitions=args.reps,
            n_trials=args.trials,
        )
    except (KeyError, ValueError) as exc:
        raise SystemExit(str(exc))
    print(format_power_sweep(cells))
    if args.output:
        payload = {
            "grid": [
                {
                    "channel": cell.channel,
                    "power_policy": cell.power_policy,
                    "results": {
                        name: {
                            "mean_failed": r.mean_failed,
                            "mean_throughput": r.mean_throughput,
                            "mean_scheduled": r.mean_scheduled,
                        }
                        for name, r in cell.results.items()
                    },
                }
                for cell in cells
            ]
        }
        write_json(payload, args.output)
        print(f"wrote power-sweep grid to {args.output}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace summarize``: aggregate a trace file per span name."""
    from repro.obs.export import (
        TraceFormatError,
        format_trace_summary,
        read_trace,
    )

    try:
        trace = read_trace(args.path)
    except (OSError, TraceFormatError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(format_trace_summary(trace, top=args.top, path=args.path))
    return 0


def cmd_cache_stats(args: argparse.Namespace) -> int:
    """``repro cache stats``: summarize a persisted schedule cache."""
    from repro.cache.store import cache_dir_stats

    try:
        stats = cache_dir_stats(args.dir)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        f"{stats['directory']}: {stats['entries']} cached schedules "
        f"({stats['damaged']} damaged), {stats['persisted_hits']} persisted hits, "
        f"mean {stats['mean_links']:.1f} links/entry"
    )
    for algorithm, count in stats["algorithms"].items():
        print(f"  {algorithm}: {count}")
    counters = stats.get("counters")
    if counters is not None:
        print(
            f"  last session [{stats.get('policy')}]: "
            f"{counters['exact_hits']} exact / {counters['canonical_hits']} canonical / "
            f"{counters['warm_hits']} warm hits, {counters['misses']} misses, "
            f"{counters['evictions']} evictions"
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the scheduling service until interrupted."""
    import asyncio

    from repro.backend.base import use as use_backend
    from repro.cache.store import ScheduleCache
    from repro.service.broker import ScheduleBroker
    from repro.service.loadgen import raise_nofile_limit
    from repro.service.server import ScheduleServer

    raise_nofile_limit()
    cache = None
    use_cache = not args.no_cache
    if use_cache and (args.cache_dir or args.cache_warm):
        cache = ScheduleCache(
            capacity=args.cache_capacity,
            warm_start=args.cache_warm,
            directory=args.cache_dir,
        )

    async def _serve() -> int:
        broker = ScheduleBroker(
            scheduler=args.scheduler,
            queue_limit=args.queue_limit,
            batch_max=args.batch_max,
            n_workers=args.workers,
            tenant_rate=args.tenant_rate,
            tenant_burst=args.tenant_burst,
            cache=cache,
            use_cache=use_cache,
            max_sessions=args.max_sessions,
        )
        access = None if args.quiet else (lambda line: print(line, file=sys.stderr))
        server = ScheduleServer(broker, host=args.host, port=args.port, access_log=access)
        await broker.start()
        host, port = await server.start()
        print(f"repro-service listening on http://{host}:{port}", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            import signal

            for sig in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(sig, stop.set)
        except (ImportError, NotImplementedError, RuntimeError):
            pass
        try:
            await stop.wait()
        finally:
            await server.close()
            await broker.close(drain=False)
            print(json.dumps(broker.stats, default=str), file=sys.stderr)
        return 0

    with use_backend(args.backend or "numpy"):
        try:
            return asyncio.run(_serve())
        except KeyboardInterrupt:
            return 0


def cmd_loadtest(args: argparse.Namespace) -> int:
    """``repro loadtest``: drive a deterministic load and gate the outcome."""
    import asyncio
    from urllib.parse import urlparse

    from repro.service.broker import ScheduleBroker
    from repro.service.loadgen import raise_nofile_limit, run_loadgen
    from repro.service.server import ScheduleServer

    raise_nofile_limit()

    async def _drive() -> "LoadReport":  # noqa: F821 - forward ref for mypy-free repo
        if args.url:
            parsed = urlparse(args.url)
            if parsed.hostname is None or parsed.port is None:
                raise SystemExit(f"--url must look like http://host:port, got {args.url!r}")
            return await run_loadgen(
                host=parsed.hostname,
                port=parsed.port,
                clients=args.clients,
                ticks=args.ticks,
                arrival=args.arrival,
                pool=args.pool,
                n_links=args.n_links,
                scheduler=args.scheduler,
                tenants=args.tenants,
                seed=args.seed,
                tick_seconds=args.tick_seconds,
                timeout=args.timeout,
            )
        # self-serve: boot an in-process server and aim the clients at it
        broker = ScheduleBroker(scheduler=args.scheduler)
        server = ScheduleServer(broker)
        await broker.start()
        host, port = await server.start()
        try:
            return await run_loadgen(
                host=host,
                port=port,
                clients=args.clients,
                ticks=args.ticks,
                arrival=args.arrival,
                pool=args.pool,
                n_links=args.n_links,
                scheduler=args.scheduler,
                tenants=args.tenants,
                seed=args.seed,
                tick_seconds=args.tick_seconds,
                timeout=args.timeout,
            )
        finally:
            await server.close()
            await broker.close(drain=False)

    report = asyncio.run(_drive())
    summary = report.to_dict()
    print(json.dumps(summary, indent=2))
    if args.output:
        Path(args.output).write_text(json.dumps(summary, indent=2) + "\n")
    failures = []
    if report.unaccounted != 0:
        failures.append(f"{report.unaccounted} requests unaccounted for")
    if report.transport_errors > args.max_transport_errors:
        failures.append(
            f"{report.transport_errors} transport errors "
            f"(allowed {args.max_transport_errors})"
        )
    if args.min_ok and report.ok < args.min_ok:
        failures.append(f"only {report.ok} requests succeeded (need {args.min_ok})")
    if args.min_peak and report.peak_inflight < args.min_peak:
        failures.append(
            f"peak in-flight {report.peak_inflight} below --min-peak {args.min_peak}"
        )
    if args.max_p99_ms and report.percentile_ms(0.99) > args.max_p99_ms:
        failures.append(
            f"p99 {report.percentile_ms(0.99):.1f}ms exceeds "
            f"--max-p99-ms {args.max_p99_ms:.1f}"
        )
    for failure in failures:
        print(f"loadtest: FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _add_backend_flag(p: argparse.ArgumentParser) -> None:
    """Attach the compute-backend selector shared by sweep commands."""
    p.add_argument(
        "--backend",
        choices=("numpy", "sharedmem", "numba"),
        default=None,
        help="compute backend: numpy (reference), sharedmem (zero-copy "
        "worker fan-out), numba (native kernels); results are "
        "bit-identical, unavailable backends fall back to numpy",
    )


def _add_channel_flags(p: argparse.ArgumentParser) -> None:
    """Attach the channel-law / power-policy selectors (docs/CHANNELS.md)."""
    from repro.core.powercontrol import POWER_POLICIES

    p.add_argument(
        "--channel",
        metavar="SPEC",
        default=None,
        help="channel law for Monte-Carlo replays: 'rayleigh' (paper), "
        "'nakagami:m=2', 'shadowing:sigma_db=6', 'deterministic', ...; "
        "schedules stay certified under the paper's Rayleigh closed form",
    )
    p.add_argument(
        "--power-policy",
        choices=POWER_POLICIES,
        default=None,
        help="transmit-power policy applied around scheduling "
        "(default: uniform, the paper's setting)",
    )


def _add_resilience_flags(p: argparse.ArgumentParser) -> None:
    """Attach the fault-tolerance flags shared by sweep-running commands."""
    p.add_argument(
        "--unit-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-work-unit timeout; enables the fault-tolerant executor "
        "(hung units are retried on a fresh worker)",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="pool retries per failed unit before serial fallback; "
        "enables the fault-tolerant executor (default 2 once enabled)",
    )
    p.add_argument(
        "--resume",
        metavar="DIR",
        default=None,
        help="checkpoint each completed work unit under DIR and, on rerun, "
        "recompute only the units missing from it",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fading-resistant link scheduling (Qiu & Shen, ICPP 2017 reproduction)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="enable observability and write a repro.trace.v1 JSONL trace here",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="enable observability and print the metric snapshot on exit",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the command under cProfile and print the hottest entries",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a random workload file")
    g.add_argument("output", help="destination .csv or .json")
    g.add_argument("--topology", choices=TOPOLOGIES, default="paper")
    g.add_argument("--n-links", type=int, default=300)
    g.add_argument("--seed", type=int, default=0)
    g.set_defaults(fn=cmd_generate)

    s = sub.add_parser("schedule", help="schedule a workload")
    s.add_argument("--input", help="workload file (.csv or .json); omit for a random one")
    s.add_argument("--topology", choices=TOPOLOGIES, default="paper")
    s.add_argument("--n-links", type=int, default=300)
    s.add_argument("--algorithm", default="rle")
    s.add_argument("--alpha", type=float, default=3.0)
    s.add_argument("--gamma-th", type=float, default=1.0)
    s.add_argument("--eps", type=float, default=0.01)
    s.add_argument("--noise", type=float, default=0.0)
    s.add_argument("--trials", type=int, default=0, help="Monte-Carlo trials (0 = skip)")
    s.add_argument("--seed", type=int, default=0)
    s.add_argument(
        "--mc-chunk-mb",
        type=float,
        default=None,
        help="memory budget (MiB) per Monte-Carlo replay chunk (default 128)",
    )
    _add_channel_flags(s)
    s.add_argument("--output", help="write the JSON result here")
    s.set_defaults(fn=cmd_schedule)

    def _add_figure_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--full", action="store_true", help="paper-scale configuration"
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=None,
            help="worker processes for the sweep grid (1 = serial, 0 = all "
            "CPUs; results are identical for every value)",
        )
        p.add_argument(
            "--mc-chunk-mb",
            type=float,
            default=None,
            help="memory budget (MiB) per Monte-Carlo replay chunk (default 128)",
        )
        _add_backend_flag(p)
        _add_resilience_flags(p)
        _add_channel_flags(p)
        p.add_argument("--output", help="write all series as JSON here")

    f = sub.add_parser("figures", help="regenerate the paper's evaluation panels")
    f.add_argument("--panel", choices=PANELS + ("all",), default="all")
    _add_figure_flags(f)
    f.set_defaults(fn=cmd_figures)

    for group_name, group_panels, group_help in (
        ("fig5", ("fig5a", "fig5b"), "regenerate Fig. 5 (failed transmissions)"),
        ("fig6", ("fig6a", "fig6b"), "regenerate Fig. 6 (throughput)"),
    ):
        fg = sub.add_parser(group_name, help=group_help)
        _add_figure_flags(fg)
        fg.set_defaults(fn=cmd_figures, panel_group=group_panels)

    l = sub.add_parser("list", help="list registered schedulers")
    l.set_defaults(fn=cmd_list)

    c = sub.add_parser("constants", help="print the paper's derived constants")
    c.add_argument(
        "--alpha", type=float, nargs="+", default=[2.5, 3.0, 3.5, 4.0, 4.5]
    )
    c.add_argument("--gamma-th", type=float, default=1.0)
    c.add_argument("--eps", type=float, default=0.01)
    c.set_defaults(fn=cmd_constants)

    q = sub.add_parser("queue", help="run the queue-driven frame simulation")
    q.add_argument("--input", help="workload file (.csv or .json)")
    q.add_argument("--topology", choices=TOPOLOGIES, default="paper")
    q.add_argument("--n-links", type=int, default=120)
    q.add_argument("--algorithm", default="rle")
    q.add_argument("--slots", type=int, default=300)
    q.add_argument("--arrival-rate", type=float, default=0.05)
    q.add_argument("--alpha", type=float, default=3.0)
    q.add_argument("--eps", type=float, default=0.01)
    q.add_argument("--noise", type=float, default=0.0)
    q.add_argument("--seed", type=int, default=0)
    q.set_defaults(fn=cmd_queue)

    w = sub.add_parser(
        "traffic", help="run a traffic workload scenario with stability sweep"
    )
    w.add_argument(
        "--config",
        metavar="PATH",
        help="declarative scenario JSON (see docs/WORKLOADS.md); "
        "overrides the inline flags below",
    )
    w.add_argument("--topology", choices=TOPOLOGIES, default="paper")
    w.add_argument("--n-links", type=int, default=12)
    w.add_argument("--algorithm", default="rle")
    w.add_argument(
        "--policy",
        choices=("backlogged", "multislot", "incremental"),
        default="backlogged",
        help="service policy: one-shot on the backlogged sub-instance, "
        "cyclic multislot cover frame, or incremental engine under churn",
    )
    w.add_argument(
        "--arrival",
        choices=("poisson", "onoff", "diurnal", "spikes"),
        default="poisson",
        help="arrival-process family (scaled to --rate mean)",
    )
    w.add_argument(
        "--rate",
        type=float,
        default=0.05,
        help="mean arrival rate, packets per link per slot",
    )
    w.add_argument("--slots", type=int, default=300)
    w.add_argument("--alpha", type=float, default=3.0)
    w.add_argument("--eps", type=float, default=0.05)
    w.add_argument("--noise", type=float, default=0.0)
    w.add_argument("--seed", type=int, default=0)
    w.add_argument(
        "--max-queue",
        type=int,
        default=None,
        help="per-link queue capacity (arrivals beyond it are dropped)",
    )
    w.add_argument(
        "--no-stability",
        action="store_true",
        help="skip the offered-load stability sweep",
    )
    w.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the stability sweep grid",
    )
    _add_backend_flag(w)
    w.add_argument(
        "--cache",
        metavar="DIR|memory",
        default=None,
        help="answer per-slot scheduler runs from a schedule cache "
        "('memory' = in-process, else a persistence directory; "
        "backlogged policy only, see docs/CACHING.md)",
    )
    w.add_argument(
        "--cache-capacity",
        type=int,
        default=256,
        help="maximum cached schedules before eviction",
    )
    w.add_argument(
        "--cache-policy",
        choices=("lru", "repetition_aware"),
        default="repetition_aware",
        help="eviction policy of the schedule cache",
    )
    w.add_argument("--output", help="write the JSON payload here")
    w.set_defaults(fn=cmd_traffic)

    v = sub.add_parser(
        "verify", help="run the differential + metamorphic verification oracle"
    )
    v.add_argument(
        "--budget",
        type=int,
        default=200,
        help="number of (scenario, check) cells to execute (default 200)",
    )
    v.add_argument("--seed", type=int, default=0, help="scenario-stream root seed")
    v.add_argument(
        "--time-budget",
        type=float,
        default=None,
        help="optional wall-clock cap in seconds (stops between cells)",
    )
    v.add_argument(
        "--check",
        action="append",
        metavar="NAME",
        help="run only this check/relation (repeatable; default: all)",
    )
    v.add_argument(
        "--list-checks",
        action="store_true",
        help="list registered checks and relations, then exit",
    )
    v.add_argument("--output", help="write the JSON report here")
    v.set_defaults(fn=cmd_verify)

    m = sub.add_parser("mobility", help="run the mobility study")
    m.add_argument(
        "--algorithm",
        action="append",
        default=None,
        metavar="NAME",
        help="scheduler to include (repeatable; default: ldp and rle)",
    )
    m.add_argument(
        "--speed",
        type=float,
        nargs="+",
        default=[1.0, 5.0, 20.0],
        help="mobility speeds to sweep (region units per step)",
    )
    m.add_argument("--n-links", type=int, default=150)
    m.add_argument("--steps", type=int, default=10, help="trace steps per repetition")
    m.add_argument("--reps", type=int, default=3, help="trace repetitions per speed")
    m.add_argument("--alpha", type=float, default=3.0)
    m.add_argument("--seed", type=int, default=2017)
    m.add_argument(
        "--incremental",
        action="store_true",
        help="schedule with the incremental engine (O(kN) matrix "
        "maintenance + warm-start repair) instead of per-step "
        "from-scratch runs",
    )
    m.add_argument(
        "--move-threshold",
        type=float,
        default=0.0,
        help="minimum sender drift before a move delta is emitted "
        "(incremental mode; 0 = exact geometry every step)",
    )
    m.add_argument(
        "--quality-bound",
        type=float,
        default=0.8,
        help="fall back to a full reschedule when repaired rate drops "
        "below this fraction of the reference rate",
    )
    m.add_argument("--output", help="write the JSON series here")
    m.set_defaults(fn=cmd_mobility)

    r = sub.add_parser("report", help="render the markdown evaluation report")
    r.add_argument("--full", action="store_true", help="paper-scale configuration")
    r.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the sweep grid (1 = serial, 0 = all CPUs)",
    )
    r.add_argument(
        "--mc-chunk-mb",
        type=float,
        default=None,
        help="memory budget (MiB) per Monte-Carlo replay chunk (default 128)",
    )
    _add_backend_flag(r)
    _add_resilience_flags(r)
    _add_channel_flags(r)
    r.add_argument("--output", help="write markdown here instead of stdout")
    r.set_defaults(fn=cmd_report)

    ps = sub.add_parser(
        "power-sweep",
        help="run every registered scheduler over a channel x power-policy grid",
    )
    ps.add_argument(
        "--channel",
        action="append",
        metavar="SPEC",
        default=None,
        help="channel-law spec for the grid (repeatable; default: rayleigh, "
        "nakagami:m=2, shadowing:sigma_db=6, deterministic)",
    )
    ps.add_argument(
        "--policy",
        action="append",
        metavar="NAME",
        default=None,
        help="power policy for the grid (repeatable; default: all registered)",
    )
    ps.add_argument(
        "--algorithm",
        action="append",
        metavar="NAME",
        default=None,
        help="scheduler to include (repeatable; default: every registered one)",
    )
    ps.add_argument("--n-links", type=int, default=12)
    ps.add_argument("--reps", type=int, default=2, help="workload draws per cell")
    ps.add_argument("--trials", type=int, default=100, help="Monte-Carlo trials")
    ps.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes per cell sweep (1 = serial, 0 = all CPUs)",
    )
    ps.add_argument(
        "--mc-chunk-mb",
        type=float,
        default=None,
        help="memory budget (MiB) per Monte-Carlo replay chunk (default 128)",
    )
    _add_backend_flag(ps)
    ps.add_argument("--output", help="write the JSON grid here")
    ps.set_defaults(fn=cmd_power_sweep)

    t = sub.add_parser("trace", help="inspect observability trace files")
    tsub = t.add_subparsers(dest="trace_command", required=True)
    ts = tsub.add_parser("summarize", help="aggregate a JSONL trace per span name")
    ts.add_argument("path", help="trace file written by --trace")
    ts.add_argument(
        "--top", type=int, default=10, help="show the N hottest span names"
    )
    ts.set_defaults(fn=cmd_trace)

    ca = sub.add_parser("cache", help="inspect persisted schedule caches")
    casub = ca.add_subparsers(dest="cache_command", required=True)
    cs = casub.add_parser(
        "stats", help="summarize a cache directory's entries and hit counters"
    )
    cs.add_argument("dir", help="cache directory (written via --cache DIR)")
    cs.set_defaults(fn=cmd_cache_stats)

    sv = sub.add_parser(
        "serve",
        help="run the scheduling service (async HTTP, docs/SERVICE.md)",
    )
    sv.add_argument("--host", default="127.0.0.1", help="bind address")
    sv.add_argument(
        "--port", type=int, default=8323, help="bind port (0 = ephemeral)"
    )
    sv.add_argument(
        "--scheduler",
        default="rle",
        choices=list_schedulers(),
        help="default scheduler for requests that omit one",
    )
    sv.add_argument(
        "--workers", type=int, default=2, help="broker worker tasks / threads"
    )
    sv.add_argument(
        "--queue-limit",
        type=int,
        default=1024,
        help="max distinct pending requests before 503 queue-full",
    )
    sv.add_argument(
        "--batch-max", type=int, default=32, help="max requests drained per batch"
    )
    sv.add_argument(
        "--tenant-rate",
        type=float,
        default=None,
        help="per-tenant token-bucket refill (req/s); omit to disable 429s",
    )
    sv.add_argument(
        "--tenant-burst",
        type=float,
        default=64.0,
        help="per-tenant token-bucket burst capacity",
    )
    sv.add_argument(
        "--no-cache",
        action="store_true",
        help="compute every request from scratch (no ScheduleCache front)",
    )
    sv.add_argument(
        "--cache-warm",
        action="store_true",
        help="enable the cache's canonical/warm tiers (answers may be "
        "remapped/repaired instead of bit-identical to direct runs)",
    )
    sv.add_argument(
        "--cache-dir", default=None, help="persist the schedule cache under DIR"
    )
    sv.add_argument(
        "--cache-capacity", type=int, default=512, help="schedule-cache capacity"
    )
    sv.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        help="max concurrently open delta sessions before 503",
    )
    sv.add_argument(
        "--quiet", action="store_true", help="suppress the per-request access log"
    )
    _add_backend_flag(sv)
    sv.set_defaults(fn=cmd_serve)

    lt = sub.add_parser(
        "loadtest",
        help="drive a deterministic open-loop load against the service",
    )
    lt.add_argument(
        "--url",
        default=None,
        help="target service, e.g. http://127.0.0.1:8323; omitted = "
        "self-serve an in-process server",
    )
    lt.add_argument(
        "--clients", type=int, default=100, help="concurrent persistent clients"
    )
    lt.add_argument(
        "--ticks", type=int, default=2, help="synchronized burst rounds"
    )
    lt.add_argument(
        "--arrival",
        default="spikes",
        choices=("poisson", "onoff", "diurnal", "spikes"),
        help="workload arrival family shaping per-tick request counts",
    )
    lt.add_argument(
        "--pool", type=int, default=4, help="distinct topologies in the request mix"
    )
    lt.add_argument(
        "--n-links", type=int, default=12, help="links per request topology"
    )
    lt.add_argument(
        "--scheduler", default="rle", choices=list_schedulers(), help="scheduler"
    )
    lt.add_argument(
        "--tenants", type=int, default=1, help="tenant labels cycled across clients"
    )
    lt.add_argument("--seed", type=int, default=0, help="trace + topology seed")
    lt.add_argument(
        "--tick-seconds",
        type=float,
        default=0.0,
        help="pause between burst rounds (0 = back-to-back)",
    )
    lt.add_argument(
        "--timeout", type=float, default=60.0, help="per-request client timeout"
    )
    lt.add_argument(
        "--max-p99-ms",
        type=float,
        default=None,
        help="fail when p99 latency exceeds this many milliseconds",
    )
    lt.add_argument(
        "--min-ok",
        type=int,
        default=None,
        help="fail when fewer than N requests got a 2xx schedule",
    )
    lt.add_argument(
        "--min-peak",
        type=int,
        default=None,
        help="fail when peak concurrent in-flight requests stays below N",
    )
    lt.add_argument(
        "--max-transport-errors",
        type=int,
        default=0,
        help="tolerated connection-level failures (default 0)",
    )
    lt.add_argument(
        "--output", default=None, help="also write the JSON report to this path"
    )
    lt.set_defaults(fn=cmd_loadtest)

    return parser


def _run_observed(args: argparse.Namespace) -> int:
    """Run the selected command under the requested observability wrappers."""
    want_obs = bool(args.trace or args.metrics)
    if want_obs:
        obs.enable()
        obs.reset()
    try:
        if args.profile:
            from repro.obs.profile import profile_call

            code, report = profile_call(args.fn, args)
            print(report.top(25), file=sys.stderr)
        else:
            with span("cli.run", command=args.command):
                code = args.fn(args)
        if args.trace:
            from repro.obs.export import write_trace

            write_trace(
                args.trace,
                obs.drain_spans(),
                metrics_snapshot=obs_metrics.snapshot(),
                command=args.command,
            )
            print(f"wrote trace to {args.trace}", file=sys.stderr)
        if args.metrics:
            print(obs_metrics.format_snapshot(), file=sys.stderr)
        return code
    finally:
        if want_obs:
            obs.disable()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _run_observed(args)


if __name__ == "__main__":
    sys.exit(main())
