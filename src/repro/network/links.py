"""Link containers.

:class:`LinkSet` is the central data structure of the library: a
struct-of-arrays collection of ``N`` sender/receiver pairs with data
rates.  Keeping coordinates in ``(N, 2)`` arrays means the
sender-to-receiver distance matrix — the input to every interference
computation — is a single broadcasting expression
(:meth:`LinkSet.sender_receiver_distances`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.geometry.distance import cross_distances
from repro.geometry.points import as_points


@dataclass(frozen=True)
class Link:
    """A single directed transmission link (convenience view).

    ``LinkSet`` is the working representation; ``Link`` exists for
    ergonomic construction and iteration in examples and tests.
    """

    sender: tuple[float, float]
    receiver: tuple[float, float]
    rate: float = 1.0

    @property
    def length(self) -> float:
        sx, sy = self.sender
        rx, ry = self.receiver
        return float(np.hypot(rx - sx, ry - sy))


@dataclass(frozen=True)
class LinkSet:
    """An immutable set of ``N`` links in struct-of-arrays layout.

    Attributes
    ----------
    senders : (N, 2) float array
        Sender coordinates ``s_i``.
    receivers : (N, 2) float array
        Receiver coordinates ``r_i``.
    rates : (N,) float array
        Per-link data rates ``lambda_i`` (all 1.0 in the paper's
        experiments, arbitrary positive in the general Fading-R-LS).
    """

    senders: np.ndarray
    receivers: np.ndarray
    rates: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        s = as_points(self.senders, "senders")
        r = as_points(self.receivers, "receivers")
        if s.shape != r.shape:
            raise ValueError(
                f"senders {s.shape} and receivers {r.shape} must have equal shapes"
            )
        if self.rates is None:
            rates = np.ones(s.shape[0], dtype=float)
        else:
            rates = np.asarray(self.rates, dtype=float).reshape(-1)
            if rates.shape[0] != s.shape[0]:
                raise ValueError(
                    f"rates has length {rates.shape[0]}, expected {s.shape[0]}"
                )
            if np.any(rates <= 0) or not np.all(np.isfinite(rates)):
                raise ValueError("rates must be positive and finite")
        lengths = np.sqrt(np.einsum("ij,ij->i", r - s, r - s))
        if np.any(lengths <= 0):
            raise ValueError("every link must have positive length (sender != receiver)")
        # Freeze the arrays: LinkSet is shared between schedulers.
        for arr in (s, r, rates):
            arr.setflags(write=False)
        object.__setattr__(self, "senders", s)
        object.__setattr__(self, "receivers", r)
        object.__setattr__(self, "rates", rates)
        object.__setattr__(self, "_lengths", lengths)

    # -- construction -------------------------------------------------

    @classmethod
    def from_links(cls, links: Iterable[Link]) -> "LinkSet":
        """Build a ``LinkSet`` from an iterable of :class:`Link`."""
        links = list(links)
        if not links:
            return cls.empty()
        return cls(
            senders=np.array([l.sender for l in links], dtype=float),
            receivers=np.array([l.receiver for l in links], dtype=float),
            rates=np.array([l.rate for l in links], dtype=float),
        )

    @classmethod
    def empty(cls) -> "LinkSet":
        """The empty link set (zero links)."""
        z = np.zeros((0, 2), dtype=float)
        return cls(senders=z, receivers=z.copy(), rates=np.zeros(0, dtype=float))

    # -- basic properties ---------------------------------------------

    def __len__(self) -> int:
        return int(self.senders.shape[0])

    def __iter__(self) -> Iterator[Link]:
        for i in range(len(self)):
            yield self.link(i)

    def link(self, i: int) -> Link:
        """The ``i``-th link as a :class:`Link` view."""
        return Link(
            sender=(float(self.senders[i, 0]), float(self.senders[i, 1])),
            receiver=(float(self.receivers[i, 0]), float(self.receivers[i, 1])),
            rate=float(self.rates[i]),
        )

    @property
    def lengths(self) -> np.ndarray:
        """Link lengths ``d_ii``; shape ``(N,)``.  Cached at construction."""
        return self._lengths  # type: ignore[attr-defined]

    @property
    def has_uniform_rates(self) -> bool:
        """True when all rates are equal (RLE's special case)."""
        if len(self) == 0:
            return True
        return bool(np.all(self.rates == self.rates[0]))

    # -- geometry -----------------------------------------------------

    def sender_receiver_distances(self) -> np.ndarray:
        """Distance matrix ``D[i, j] = d(s_i, r_j)``; shape ``(N, N)``.

        ``D[i, i]`` is the length of link ``i``; off-diagonal entries
        are interferer-to-victim distances.
        """
        return cross_distances(self.senders, self.receivers)

    def sender_distances(self) -> np.ndarray:
        """Sender-to-sender distance matrix; shape ``(N, N)``."""
        return cross_distances(self.senders, self.senders)

    def receiver_distances(self) -> np.ndarray:
        """Receiver-to-receiver distance matrix; shape ``(N, N)``."""
        return cross_distances(self.receivers, self.receivers)

    def distance_spread(self) -> float:
        """``Delta``: ratio of max to min distance over all nodes.

        This is the quantity in RLE's ``O(Delta^alpha)`` guarantee from
        the paper's contribution list.
        """
        nodes = np.vstack([self.senders, self.receivers])
        d = cross_distances(nodes, nodes)
        n = nodes.shape[0]
        iu = np.triu_indices(n, k=1)
        vals = d[iu]
        vals = vals[vals > 0]
        if vals.size == 0:
            raise ValueError("distance spread undefined: all nodes coincide")
        return float(vals.max() / vals.min())

    # -- subsetting ---------------------------------------------------

    def subset(self, indices: Sequence[int] | np.ndarray) -> "LinkSet":
        """A new ``LinkSet`` containing links ``indices`` (in order)."""
        idx = np.asarray(indices, dtype=np.int64).reshape(-1)
        if idx.size and (idx.min() < 0 or idx.max() >= len(self)):
            raise IndexError(f"indices out of range for {len(self)} links")
        return LinkSet(
            senders=self.senders[idx].copy(),
            receivers=self.receivers[idx].copy(),
            rates=self.rates[idx].copy(),
        )

    def mask(self, keep: np.ndarray) -> "LinkSet":
        """Subset by boolean mask of length ``N``."""
        m = np.asarray(keep, dtype=bool).reshape(-1)
        if m.shape[0] != len(self):
            raise ValueError(f"mask length {m.shape[0]} != {len(self)}")
        return self.subset(np.flatnonzero(m))

    def concat(self, other: "LinkSet") -> "LinkSet":
        """Concatenate two link sets (self's links first)."""
        return LinkSet(
            senders=np.vstack([self.senders, other.senders]),
            receivers=np.vstack([self.receivers, other.receivers]),
            rates=np.concatenate([self.rates, other.rates]),
        )

    def with_rates(self, rates: np.ndarray) -> "LinkSet":
        """Copy of this link set with different rates."""
        return LinkSet(senders=self.senders.copy(), receivers=self.receivers.copy(), rates=rates)

    def total_rate(self, indices: Optional[np.ndarray] = None) -> float:
        """Sum of rates over ``indices`` (or all links)."""
        if indices is None:
            return float(self.rates.sum())
        idx = np.asarray(indices, dtype=np.int64).reshape(-1)
        return float(self.rates[idx].sum())
