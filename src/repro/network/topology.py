"""Topology (workload) generators.

:func:`paper_topology` reproduces Section V's setup exactly: senders
uniform in a square region, each receiver at a uniformly random distance
in ``[min_length, max_length]`` and uniformly random direction from its
sender.  The other generators provide the stress shapes used by the
extended benchmarks (clustered hot spots, regular grids, chains, and
an exponential length spread that drives ``g(L)`` up).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.region import Region
from repro.network.links import LinkSet
from repro.utils.rng import SeedLike, as_rng


def _place_receivers(
    senders: np.ndarray,
    lengths: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Receivers at given distances from senders, random directions."""
    n = senders.shape[0]
    theta = rng.uniform(0.0, 2.0 * np.pi, size=n)
    offsets = np.empty_like(senders)
    offsets[:, 0] = lengths * np.cos(theta)
    offsets[:, 1] = lengths * np.sin(theta)
    return senders + offsets


def paper_topology(
    n_links: int,
    *,
    region_side: float = 500.0,
    min_length: float = 5.0,
    max_length: float = 20.0,
    rate: float = 1.0,
    seed: SeedLike = None,
) -> LinkSet:
    """The paper's Section-V workload.

    Each sender gets a uniform random location in a
    ``region_side x region_side`` square; each receiver is placed at
    distance ``U[min_length, max_length]`` in a uniform random direction
    (receivers may land slightly outside the square, as in the paper,
    which constrains only sender placement).

    Parameters mirror the paper's defaults: 500x500 region, link lengths
    in [5, 20], unit rates.
    """
    if n_links < 0:
        raise ValueError("n_links must be >= 0")
    if not 0 < min_length <= max_length:
        raise ValueError(f"need 0 < min_length <= max_length, got [{min_length}, {max_length}]")
    rng = as_rng(seed)
    region = Region.square(region_side)
    senders = region.sample_uniform(n_links, seed=rng)
    lengths = rng.uniform(min_length, max_length, size=n_links)
    receivers = _place_receivers(senders, lengths, rng)
    rates = np.full(n_links, float(rate))
    return LinkSet(senders=senders, receivers=receivers, rates=rates)


def clustered_topology(
    n_links: int,
    *,
    n_clusters: int = 5,
    region_side: float = 500.0,
    cluster_std: float = 25.0,
    min_length: float = 5.0,
    max_length: float = 20.0,
    rate: float = 1.0,
    seed: SeedLike = None,
) -> LinkSet:
    """Hot-spot workload: senders drawn from Gaussian clusters.

    Stresses the schedulers where interference is locally dense — the
    regime where fading-susceptible baselines fail hardest.
    """
    if n_clusters < 1:
        raise ValueError("n_clusters must be >= 1")
    rng = as_rng(seed)
    region = Region.square(region_side)
    centers = region.sample_uniform(n_clusters, seed=rng)
    assignment = rng.integers(0, n_clusters, size=n_links)
    senders = centers[assignment] + rng.normal(0.0, cluster_std, size=(n_links, 2))
    senders = region.clamp(senders)
    lengths = rng.uniform(min_length, max_length, size=n_links)
    receivers = _place_receivers(senders, lengths, rng)
    return LinkSet(senders=senders, receivers=receivers, rates=np.full(n_links, float(rate)))


def grid_topology(
    side_count: int,
    *,
    spacing: float = 50.0,
    link_length: float = 10.0,
    rate: float = 1.0,
    jitter: float = 0.0,
    seed: SeedLike = None,
) -> LinkSet:
    """Regular ``side_count x side_count`` sender lattice.

    A deterministic topology (up to optional jitter) for tests that need
    predictable geometry, e.g. verifying LDP's per-square picks.
    """
    if side_count < 1:
        raise ValueError("side_count must be >= 1")
    rng = as_rng(seed)
    xs, ys = np.meshgrid(
        np.arange(side_count, dtype=float) * spacing,
        np.arange(side_count, dtype=float) * spacing,
        indexing="ij",
    )
    senders = np.column_stack([xs.ravel(), ys.ravel()])
    if jitter > 0:
        senders = senders + rng.uniform(-jitter, jitter, size=senders.shape)
    n = senders.shape[0]
    lengths = np.full(n, float(link_length))
    receivers = _place_receivers(senders, lengths, rng)
    return LinkSet(senders=senders, receivers=receivers, rates=np.full(n, float(rate)))


def chain_topology(
    n_links: int,
    *,
    hop: float = 40.0,
    link_length: float = 10.0,
    rate: float = 1.0,
) -> LinkSet:
    """Senders on a line, receivers directly to the right.

    The 1-D worst case used in hardness discussions (the knapsack
    reduction also lives on a line); fully deterministic.
    """
    if n_links < 0:
        raise ValueError("n_links must be >= 0")
    senders = np.zeros((n_links, 2), dtype=float)
    senders[:, 0] = np.arange(n_links, dtype=float) * hop
    receivers = senders.copy()
    receivers[:, 0] += link_length
    return LinkSet(senders=senders, receivers=receivers, rates=np.full(n_links, float(rate)))


def exponential_length_topology(
    n_links: int,
    *,
    region_side: float = 2000.0,
    base_length: float = 2.0,
    growth: float = 2.0,
    n_magnitudes: Optional[int] = None,
    rate: float = 1.0,
    seed: SeedLike = None,
) -> LinkSet:
    """Workload with exponentially spread link lengths.

    Link lengths are ``base_length * growth^k`` with ``k`` uniform over
    ``n_magnitudes`` values (default ``log2(n_links)+1``), driving the
    length diversity ``g(L)`` up — the regime where LDP's ``O(g(L))``
    factor actually bites.  Used by the ablation benchmarks.
    """
    if n_links < 0:
        raise ValueError("n_links must be >= 0")
    if growth <= 1.0:
        raise ValueError("growth must be > 1")
    rng = as_rng(seed)
    if n_magnitudes is None:
        n_magnitudes = max(1, int(np.log2(max(n_links, 2))) + 1)
    region = Region.square(region_side)
    senders = region.sample_uniform(n_links, seed=rng)
    mags = rng.integers(0, n_magnitudes, size=n_links)
    lengths = base_length * np.power(float(growth), mags.astype(float))
    receivers = _place_receivers(senders, lengths, rng)
    return LinkSet(senders=senders, receivers=receivers, rates=np.full(n_links, float(rate)))


def ppp_topology(
    intensity: float,
    *,
    region_side: float = 500.0,
    min_length: float = 5.0,
    max_length: float = 20.0,
    rate: float = 1.0,
    seed: SeedLike = None,
) -> LinkSet:
    """Poisson-point-process workload of the SINR-analysis literature.

    The number of links is ``Poisson(intensity * area)`` and sender
    locations are uniform given the count — the stationary PPP on the
    region.  Receivers follow the paper's placement rule.  ``intensity``
    is links per unit area (e.g. ``1e-3`` gives ~250 links on the
    default 500x500 region).
    """
    if intensity <= 0:
        raise ValueError(f"intensity must be > 0, got {intensity}")
    rng = as_rng(seed)
    region = Region.square(region_side)
    n = int(rng.poisson(intensity * region.area))
    return paper_topology(
        n,
        region_side=region_side,
        min_length=min_length,
        max_length=max_length,
        rate=rate,
        seed=rng,
    )


def random_rates_topology(
    n_links: int,
    *,
    rate_low: float = 1.0,
    rate_high: float = 10.0,
    seed: SeedLike = None,
    **paper_kwargs,
) -> LinkSet:
    """Paper topology but with heterogeneous rates ``U[rate_low, rate_high]``.

    Exercises the general (non-uniform-rate) Fading-R-LS that LDP and
    the exact solvers handle but RLE's guarantee does not cover.
    """
    if not 0 < rate_low <= rate_high:
        raise ValueError("need 0 < rate_low <= rate_high")
    rng = as_rng(seed)
    base = paper_topology(n_links, seed=rng, **paper_kwargs)
    rates = rng.uniform(rate_low, rate_high, size=n_links)
    return base.with_rates(rates)
