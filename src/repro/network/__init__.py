"""Network substrate: links, topologies, and link-length diversity.

- :mod:`repro.network.links` — the :class:`LinkSet` struct-of-arrays
  container every scheduler consumes,
- :mod:`repro.network.topology` — workload generators, including the
  paper's Section-V deployment,
- :mod:`repro.network.diversity` — length-diversity ``G(L)`` / ``g(L)``
  (Definition 4.1) and the length-class partition used by LDP.
"""

from repro.network.delta import LinkDelta, apply_delta
from repro.network.diversity import length_classes, length_diversity, length_diversity_set
from repro.network.links import Link, LinkSet
from repro.network.mobility import (
    DeltaTrace,
    random_waypoint_delta_trace,
    random_waypoint_trace,
    schedule_churn,
)
from repro.network.topology import (
    chain_topology,
    clustered_topology,
    exponential_length_topology,
    grid_topology,
    paper_topology,
    ppp_topology,
    random_rates_topology,
)

__all__ = [
    "Link",
    "LinkSet",
    "paper_topology",
    "clustered_topology",
    "grid_topology",
    "chain_topology",
    "exponential_length_topology",
    "ppp_topology",
    "random_rates_topology",
    "random_waypoint_trace",
    "random_waypoint_delta_trace",
    "DeltaTrace",
    "LinkDelta",
    "apply_delta",
    "schedule_churn",
    "length_diversity_set",
    "length_diversity",
    "length_classes",
]
