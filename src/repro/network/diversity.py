"""Link-length diversity (Definition 4.1) and LDP's length classes.

``G(L) = { h | exists l, l' in L : floor(log2(d(l) / d(l'))) = h }`` and
``g(L) = |G(L)|``.  The paper's LDP builds one class per magnitude
``h_k`` in the *non-negative* diversity set, each class containing every
link of length ``< 2^(h_k + 1) * delta`` where ``delta`` is the shortest
link length — classes are upper-bounded only (the paper's improvement
over [14], whose classes are bounded on both sides).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.network.links import LinkSet


def length_magnitudes(lengths: np.ndarray) -> np.ndarray:
    """Magnitude ``h_i = floor(log2(d_i / delta))`` of each link length.

    ``delta`` is the minimum length; magnitudes are >= 0.  A tiny
    relative tolerance absorbs floating-point noise at exact powers of
    two (e.g. length exactly ``2 * delta`` belongs to magnitude 1).
    """
    d = np.asarray(lengths, dtype=float).reshape(-1)
    if d.size == 0:
        return np.zeros(0, dtype=np.int64)
    if np.any(d <= 0):
        raise ValueError("link lengths must be positive")
    delta = d.min()
    ratio = d / delta
    mags = np.floor(np.log2(ratio) * (1.0 + 1e-12) + 1e-12).astype(np.int64)
    return np.maximum(mags, 0)


def length_diversity_set(links: LinkSet | np.ndarray) -> List[int]:
    """The sorted set of distinct length magnitudes present in ``links``.

    This is ``G(L)`` restricted to non-negative ``h`` (ratios taken
    against the shortest link), which is the form LDP consumes.
    """
    lengths = links.lengths if isinstance(links, LinkSet) else np.asarray(links, dtype=float)
    if lengths.size == 0:
        return []
    return sorted(set(int(h) for h in length_magnitudes(lengths)))


def length_diversity(links: LinkSet | np.ndarray) -> int:
    """``g(L)``: the number of distinct length magnitudes."""
    return len(length_diversity_set(links))


def length_classes(
    links: LinkSet,
    *,
    two_sided: bool = False,
) -> List[np.ndarray]:
    """Partition-by-magnitude index sets for LDP.

    For each magnitude ``h_k`` in ``G(L)`` returns the indices of links
    eligible for class ``k``:

    - one-sided (paper's LDP): all links with ``d < 2^(h_k+1) delta``,
      i.e. every link whose magnitude is **at most** ``h_k`` — shorter
      links may ride along in a longer class because their transmissions
      are only easier;
    - two-sided (the [14]/ApproxLogN variant, used by ablation A1):
      exactly the links with magnitude ``h_k``.

    Returns a list parallel to :func:`length_diversity_set`.
    """
    mags = length_magnitudes(links.lengths)
    classes: List[np.ndarray] = []
    for h in length_diversity_set(links):
        if two_sided:
            idx = np.flatnonzero(mags == h)
        else:
            idx = np.flatnonzero(mags <= h)
        classes.append(idx)
    return classes


def class_length_bound(links: LinkSet, h: int) -> float:
    """Upper bound ``2^(h+1) * delta`` on link length in class ``h``."""
    if len(links) == 0:
        raise ValueError("empty link set has no length bound")
    delta = float(links.lengths.min())
    return (2.0 ** (h + 1)) * delta
