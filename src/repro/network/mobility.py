"""Mobility workloads (random waypoint).

The paper motivates fading with "mobility in a multi-path propagation
environment" (Section I).  This module provides the standard
random-waypoint mobility model over the deployment region so the
library can study *time-varying* topologies: each link's sender wanders
between uniformly chosen waypoints at a uniformly chosen speed, and its
receiver holds a fixed offset (a device pair moving together).

:func:`random_waypoint_trace` yields one :class:`LinkSet` per time
step; :func:`schedule_churn` measures how much a scheduler's output
shifts between consecutive steps — the metric the mobility example
reports.

:class:`DeltaTrace` is the churn-native view of the same dynamics: an
initial :class:`LinkSet` plus one
:class:`~repro.network.delta.LinkDelta` per step, the input format of
:class:`repro.core.incremental.IncrementalScheduler`.  With a positive
``move_threshold`` a link only emits a move once its sender has
drifted at least that far from its last emitted position, so per-step
deltas stay sparse (the emitted geometry is a lazy, threshold-accurate
approximation of the exact trajectories; ``move_threshold=0`` emits
every link every step and reproduces :func:`random_waypoint_trace`
positions exactly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.geometry.region import Region
from repro.network.delta import LinkDelta, apply_delta
from repro.network.links import LinkSet
from repro.utils.rng import SeedLike, as_rng


def _rwp_init(
    n_links: int,
    region: Region,
    speed_range: Tuple[float, float],
    min_length: float,
    max_length: float,
    rng: np.random.Generator,
):
    """Initial RWP state; one draw order shared by both trace builders."""
    lo, hi = speed_range
    positions = region.sample_uniform(n_links, seed=rng)
    lengths = rng.uniform(min_length, max_length, size=n_links)
    theta = rng.uniform(0, 2 * np.pi, size=n_links)
    offsets = np.column_stack([lengths * np.cos(theta), lengths * np.sin(theta)])
    waypoints = region.sample_uniform(n_links, seed=rng)
    speeds = rng.uniform(lo, hi, size=n_links)
    return positions, offsets, waypoints, speeds


def _rwp_advance(
    positions: np.ndarray,
    waypoints: np.ndarray,
    speeds: np.ndarray,
    region: Region,
    speed_range: Tuple[float, float],
    dt: float,
    rng: np.random.Generator,
) -> None:
    """Advance every sender one step toward its waypoint (in place)."""
    lo, hi = speed_range
    to_wp = waypoints - positions
    dist = np.sqrt(np.einsum("ij,ij->i", to_wp, to_wp))
    step = speeds * dt
    arrive = dist <= step
    # Non-arrivers move along the unit direction; arrivers land.
    safe = np.where(dist > 0, dist, 1.0)
    positions[:] = np.where(
        arrive[:, None], waypoints, positions + to_wp / safe[:, None] * step[:, None]
    )
    # Arrivers pick a fresh waypoint and speed.
    n_arrive = int(arrive.sum())
    if n_arrive:
        waypoints[arrive] = region.sample_uniform(n_arrive, seed=rng)
        speeds[arrive] = rng.uniform(lo, hi, size=n_arrive)


def _check_rwp_args(n_steps: int, speed_range: Tuple[float, float]) -> None:
    if n_steps < 1:
        raise ValueError("n_steps must be >= 1")
    lo, hi = speed_range
    if not 0 < lo <= hi:
        raise ValueError(f"need 0 < min speed <= max speed, got {speed_range}")


def random_waypoint_trace(
    n_links: int,
    n_steps: int,
    *,
    region_side: float = 500.0,
    speed_range: tuple[float, float] = (1.0, 5.0),
    dt: float = 1.0,
    min_length: float = 5.0,
    max_length: float = 20.0,
    rate: float = 1.0,
    seed: SeedLike = None,
) -> List[LinkSet]:
    """Random-waypoint trajectories; returns ``n_steps`` LinkSets.

    Each sender starts uniform in the region, picks a uniform waypoint
    and a speed in ``speed_range``, walks toward it ``dt`` at a time,
    and repicks on arrival.  The receiver offset (random length in
    ``[min_length, max_length]`` and direction) is fixed per link, so
    link lengths are constant while interference geometry evolves.
    """
    _check_rwp_args(n_steps, speed_range)
    rng = as_rng(seed)
    region = Region.square(region_side)
    positions, offsets, waypoints, speeds = _rwp_init(
        n_links, region, speed_range, min_length, max_length, rng
    )
    trace: List[LinkSet] = []
    rates = np.full(n_links, float(rate))
    for _ in range(n_steps):
        trace.append(
            LinkSet(senders=positions.copy(), receivers=positions + offsets, rates=rates.copy())
        )
        _rwp_advance(positions, waypoints, speeds, region, speed_range, dt, rng)
    return trace


@dataclass(frozen=True)
class DeltaTrace:
    """A dynamic-network workload as ``initial`` + one delta per step.

    The effective link set at step ``t`` is ``initial`` with
    ``deltas[0..t-1]`` applied in order; :meth:`linksets` materialises
    that sequence (the reference the incremental engine is verified
    against), and :meth:`__len__` counts steps (``len(deltas) + 1``).
    """

    initial: LinkSet
    deltas: Tuple[LinkDelta, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "deltas", tuple(self.deltas))

    def __len__(self) -> int:
        return len(self.deltas) + 1

    @property
    def n_steps(self) -> int:
        return len(self)

    def linksets(self) -> Iterator[LinkSet]:
        """Yield the effective :class:`LinkSet` of every step, in order."""
        current = self.initial
        yield current
        for delta in self.deltas:
            current = apply_delta(current, delta)
            yield current

    def delta_sizes(self) -> List[int]:
        """Links touched (moved + removed + inserted) per delta."""
        return [d.n_moved + d.n_removed + d.n_inserted for d in self.deltas]


def random_waypoint_delta_trace(
    n_links: int,
    n_steps: int,
    *,
    region_side: float = 500.0,
    speed_range: tuple[float, float] = (1.0, 5.0),
    dt: float = 1.0,
    min_length: float = 5.0,
    max_length: float = 20.0,
    rate: float = 1.0,
    move_threshold: float = 0.0,
    seed: SeedLike = None,
) -> DeltaTrace:
    """Random-waypoint mobility as a sparse :class:`DeltaTrace`.

    Same dynamics and RNG stream as :func:`random_waypoint_trace` (with
    ``move_threshold=0`` the emitted positions match it exactly).  A
    positive ``move_threshold`` emits a move for a link only once its
    sender has drifted at least that far (Euclidean) from its last
    emitted position, bounding the emitted geometry's error by the
    threshold while shrinking each step's delta to the links that
    actually travelled — the regime where the incremental engine's
    O(kN) updates beat O(N^2) rebuilds.
    """
    _check_rwp_args(n_steps, speed_range)
    if move_threshold < 0:
        raise ValueError(f"move_threshold must be >= 0, got {move_threshold}")
    rng = as_rng(seed)
    region = Region.square(region_side)
    positions, offsets, waypoints, speeds = _rwp_init(
        n_links, region, speed_range, min_length, max_length, rng
    )
    rates = np.full(n_links, float(rate))
    initial = LinkSet(
        senders=positions.copy(), receivers=positions + offsets, rates=rates.copy()
    )
    emitted = positions.copy()
    deltas: List[LinkDelta] = []
    for _ in range(n_steps - 1):
        _rwp_advance(positions, waypoints, speeds, region, speed_range, dt, rng)
        if move_threshold > 0.0:
            drift = positions - emitted
            moved = np.flatnonzero(
                np.sqrt(np.einsum("ij,ij->i", drift, drift)) >= move_threshold
            )
        else:
            moved = np.arange(n_links, dtype=np.int64)
        emitted[moved] = positions[moved]
        deltas.append(
            LinkDelta.move(
                moved, positions[moved].copy(), positions[moved] + offsets[moved]
            )
        )
    return DeltaTrace(initial=initial, deltas=tuple(deltas))


def schedule_churn(schedules) -> List[float]:
    """Jaccard distance between consecutive schedules' active sets.

    ``churn[t] = 1 - |A_t & A_{t+1}| / |A_t | A_{t+1}|`` — 0 when the
    schedule is stable, 1 when it is completely replaced.  Length is
    ``len(schedules) - 1``.
    """
    out: List[float] = []
    for a, b in zip(schedules, schedules[1:]):
        sa = set(np.asarray(a.active).tolist())
        sb = set(np.asarray(b.active).tolist())
        union = sa | sb
        if not union:
            out.append(0.0)
        else:
            out.append(1.0 - len(sa & sb) / len(union))
    return out
