"""Mobility workloads (random waypoint).

The paper motivates fading with "mobility in a multi-path propagation
environment" (Section I).  This module provides the standard
random-waypoint mobility model over the deployment region so the
library can study *time-varying* topologies: each link's sender wanders
between uniformly chosen waypoints at a uniformly chosen speed, and its
receiver holds a fixed offset (a device pair moving together).

:func:`random_waypoint_trace` yields one :class:`LinkSet` per time
step; :func:`schedule_churn` measures how much a scheduler's output
shifts between consecutive steps — the metric the mobility example
reports.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.geometry.region import Region
from repro.network.links import LinkSet
from repro.utils.rng import SeedLike, as_rng


def random_waypoint_trace(
    n_links: int,
    n_steps: int,
    *,
    region_side: float = 500.0,
    speed_range: tuple[float, float] = (1.0, 5.0),
    dt: float = 1.0,
    min_length: float = 5.0,
    max_length: float = 20.0,
    rate: float = 1.0,
    seed: SeedLike = None,
) -> List[LinkSet]:
    """Random-waypoint trajectories; returns ``n_steps`` LinkSets.

    Each sender starts uniform in the region, picks a uniform waypoint
    and a speed in ``speed_range``, walks toward it ``dt`` at a time,
    and repicks on arrival.  The receiver offset (random length in
    ``[min_length, max_length]`` and direction) is fixed per link, so
    link lengths are constant while interference geometry evolves.
    """
    if n_steps < 1:
        raise ValueError("n_steps must be >= 1")
    lo, hi = speed_range
    if not 0 < lo <= hi:
        raise ValueError(f"need 0 < min speed <= max speed, got {speed_range}")
    rng = as_rng(seed)
    region = Region.square(region_side)
    positions = region.sample_uniform(n_links, seed=rng)
    lengths = rng.uniform(min_length, max_length, size=n_links)
    theta = rng.uniform(0, 2 * np.pi, size=n_links)
    offsets = np.column_stack([lengths * np.cos(theta), lengths * np.sin(theta)])
    waypoints = region.sample_uniform(n_links, seed=rng)
    speeds = rng.uniform(lo, hi, size=n_links)

    trace: List[LinkSet] = []
    rates = np.full(n_links, float(rate))
    for _ in range(n_steps):
        trace.append(
            LinkSet(senders=positions.copy(), receivers=positions + offsets, rates=rates.copy())
        )
        # Advance every sender toward its waypoint.
        to_wp = waypoints - positions
        dist = np.sqrt(np.einsum("ij,ij->i", to_wp, to_wp))
        step = speeds * dt
        arrive = dist <= step
        # Non-arrivers move along the unit direction; arrivers land.
        safe = np.where(dist > 0, dist, 1.0)
        positions = np.where(
            arrive[:, None], waypoints, positions + to_wp / safe[:, None] * step[:, None]
        )
        # Arrivers pick a fresh waypoint and speed.
        n_arrive = int(arrive.sum())
        if n_arrive:
            waypoints[arrive] = region.sample_uniform(n_arrive, seed=rng)
            speeds[arrive] = rng.uniform(lo, hi, size=n_arrive)
    return trace


def schedule_churn(schedules) -> List[float]:
    """Jaccard distance between consecutive schedules' active sets.

    ``churn[t] = 1 - |A_t & A_{t+1}| / |A_t | A_{t+1}|`` — 0 when the
    schedule is stable, 1 when it is completely replaced.  Length is
    ``len(schedules) - 1``.
    """
    out: List[float] = []
    for a, b in zip(schedules, schedules[1:]):
        sa = set(np.asarray(a.active).tolist())
        sb = set(np.asarray(b.active).tolist())
        union = sa | sb
        if not union:
            out.append(0.0)
        else:
            out.append(1.0 - len(sa & sb) / len(union))
    return out
