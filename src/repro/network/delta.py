"""Link-churn deltas.

Dynamic-network workloads (mobility, arrivals, departures) change only
a few links per time step; rebuilding a fresh :class:`LinkSet` every
step throws that locality away and forces every consumer back into
O(N^2) work.  A :class:`LinkDelta` is the explicit, replayable record
of one step's churn — *move* these links, *remove* those, *insert* the
new ones — that lets :class:`repro.core.incremental.IncrementalScheduler`
update its cached interference state in O(kN) for a k-link delta.

Deltas apply in a fixed order: **moves, then removes, then inserts**.
``moves`` and ``removes`` index into the link array *as it stood before
the delta*; inserted links append at the end, so surviving links keep
their relative order and an index map between the two generations is
cheap to construct (:meth:`LinkDelta.survivor_indices`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.network.links import LinkSet


def _as_index_array(value, name: str) -> np.ndarray:
    idx = np.asarray(
        value if value is not None else (), dtype=np.int64
    ).reshape(-1)
    if idx.size and np.unique(idx).size != idx.size:
        raise ValueError(f"{name} indices must be unique")
    if idx.size and idx.min() < 0:
        raise ValueError(f"{name} indices must be non-negative")
    return idx


@dataclass(frozen=True)
class LinkDelta:
    """One step of link churn: moves, removals, insertions.

    Attributes
    ----------
    moves : (k,) int array
        Indices (into the pre-delta link array) of links whose
        endpoints change.
    new_senders, new_receivers : (k, 2) float arrays
        The moved links' updated endpoint coordinates, aligned with
        ``moves``.
    removes : (m,) int array
        Indices (into the pre-delta link array) of links that leave the
        network.  A link may not both move and be removed in the same
        delta.
    inserts : LinkSet, optional
        Links that join the network; they append after the survivors.
    """

    moves: np.ndarray = None  # type: ignore[assignment]
    new_senders: np.ndarray = None  # type: ignore[assignment]
    new_receivers: np.ndarray = None  # type: ignore[assignment]
    removes: np.ndarray = None  # type: ignore[assignment]
    inserts: Optional[LinkSet] = None

    def __post_init__(self) -> None:
        moves = _as_index_array(self.moves, "moves")
        removes = _as_index_array(self.removes, "removes")
        if np.intersect1d(moves, removes).size:
            raise ValueError("a link may not both move and be removed in one delta")
        ns = np.asarray(
            self.new_senders if self.new_senders is not None else np.zeros((0, 2)),
            dtype=float,
        )
        nr = np.asarray(
            self.new_receivers if self.new_receivers is not None else np.zeros((0, 2)),
            dtype=float,
        )
        if ns.shape != (moves.size, 2) or nr.shape != (moves.size, 2):
            raise ValueError(
                f"new_senders/new_receivers must have shape ({moves.size}, 2), "
                f"got {ns.shape} and {nr.shape}"
            )
        if self.inserts is not None and not isinstance(self.inserts, LinkSet):
            raise TypeError(
                f"inserts must be a LinkSet, got {type(self.inserts).__name__}"
            )
        for arr in (moves, removes, ns, nr):
            arr.setflags(write=False)
        object.__setattr__(self, "moves", moves)
        object.__setattr__(self, "removes", removes)
        object.__setattr__(self, "new_senders", ns)
        object.__setattr__(self, "new_receivers", nr)

    # -- introspection ------------------------------------------------

    @property
    def n_moved(self) -> int:
        return int(self.moves.size)

    @property
    def n_removed(self) -> int:
        return int(self.removes.size)

    @property
    def n_inserted(self) -> int:
        return 0 if self.inserts is None else len(self.inserts)

    @property
    def is_empty(self) -> bool:
        """True when applying this delta is a no-op."""
        return self.n_moved == 0 and self.n_removed == 0 and self.n_inserted == 0

    def touched(self, n_before: int) -> np.ndarray:
        """Post-delta indices of links this delta moved or inserted.

        These are the links whose interference rows changed — the
        natural re-admission candidate set for warm-start repair.
        """
        keep = np.ones(n_before, dtype=bool)
        keep[self.removes] = False
        new_index = np.cumsum(keep) - 1  # old index -> post-removal index
        # Moves and removes are disjoint by construction, so every moved
        # link survives into the new generation.
        moved = new_index[self.moves]
        n_after = int(keep.sum())
        inserted = np.arange(n_after, n_after + self.n_inserted, dtype=np.int64)
        return np.concatenate([np.sort(moved), inserted])

    def survivor_indices(self, n_before: int) -> np.ndarray:
        """Pre-delta indices of the links that survive, in kept order."""
        keep = np.ones(n_before, dtype=bool)
        if self.removes.size and self.removes.max() >= n_before:
            raise IndexError(
                f"removes reference link {int(self.removes.max())} "
                f"but the set has only {n_before} links"
            )
        keep[self.removes] = False
        return np.flatnonzero(keep)

    # -- construction helpers -----------------------------------------

    @classmethod
    def empty(cls) -> "LinkDelta":
        return cls()

    @classmethod
    def move(
        cls, indices, new_senders: np.ndarray, new_receivers: np.ndarray
    ) -> "LinkDelta":
        """A pure-movement delta (the mobility-trace case)."""
        return cls(moves=indices, new_senders=new_senders, new_receivers=new_receivers)


def apply_delta(links: LinkSet, delta: LinkDelta) -> LinkSet:
    """Replay one delta against a :class:`LinkSet`, returning a new set.

    This is the *reference semantics* of a delta (moves, then removes,
    then inserts); the incremental engine must agree with it exactly,
    and tests pin that agreement bit-for-bit.
    """
    n = len(links)
    if delta.moves.size and delta.moves.max() >= n:
        raise IndexError(
            f"moves reference link {int(delta.moves.max())} "
            f"but the set has only {n} links"
        )
    senders = links.senders.copy()
    receivers = links.receivers.copy()
    rates = links.rates.copy()
    senders[delta.moves] = delta.new_senders
    receivers[delta.moves] = delta.new_receivers
    keep = delta.survivor_indices(n)
    senders, receivers, rates = senders[keep], receivers[keep], rates[keep]
    if delta.inserts is not None and len(delta.inserts):
        senders = np.vstack([senders, delta.inserts.senders])
        receivers = np.vstack([receivers, delta.inserts.receivers])
        rates = np.concatenate([rates, delta.inserts.rates])
    return LinkSet(senders=senders, receivers=receivers, rates=rates)
