"""Fault plans: which unit fails, how, and for how many attempts.

A plan is pure data — a mapping from work-unit keys (the executor's
``unit_key`` strings) to fault specifications.  Everything is
deterministic: hand-written plans are explicit, and
:meth:`FaultPlan.from_seed` derives the faulted subset and kinds from a
root seed via :func:`repro.utils.rng.stable_seed`, so a chaos test can
regenerate the exact same adversity on every run.

Plans serialise to compact JSON (:meth:`FaultPlan.to_json`) because the
activation mechanism is an environment variable — see
:mod:`repro.faults.inject`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.utils.rng import stable_seed

#: Supported fault kinds:
#:
#: - ``crash``  — raise :class:`~repro.faults.inject.InjectedFault`;
#: - ``die``    — kill the worker process outright (``os._exit``),
#:   breaking the whole pool; downgraded to ``crash`` when injected in
#:   the coordinating parent process;
#: - ``hang``   — sleep ``seconds`` (tripping any per-unit timeout),
#:   then raise so serial execution also terminates;
#: - ``poison`` — return a :class:`~repro.faults.inject.PoisonResult`
#:   instead of running the unit (models corrupt worker output);
#: - ``oom``    — raise ``MemoryError``, as a worker whose replay
#:   cannot fit its ``max_bytes`` budget would.
FAULT_KINDS: Tuple[str, ...] = ("crash", "die", "hang", "poison", "oom")


@dataclass(frozen=True)
class FaultSpec:
    """One unit's fault: ``kind`` armed for its first ``attempts`` tries.

    The injection predicate is ``attempt < attempts`` — attempt numbers
    are 0-based, so ``attempts=2`` fails the first two tries and lets
    the third through.  ``seconds`` only matters for ``hang``.
    """

    kind: str
    attempts: int = 1
    seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}")
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if not self.seconds > 0:
            raise ValueError(f"seconds must be > 0, got {self.seconds}")

    def fires(self, attempt: int) -> bool:
        """Whether the fault is armed for 0-based try ``attempt``."""
        return attempt < self.attempts


@dataclass(frozen=True)
class FaultPlan:
    """Immutable mapping of work-unit keys to :class:`FaultSpec`\\ s."""

    faults: Mapping[str, FaultSpec]

    def __post_init__(self) -> None:
        fixed: Dict[str, FaultSpec] = {}
        for key, spec in dict(self.faults).items():
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"plan entry {key!r} is not a FaultSpec: {spec!r}")
            fixed[str(key)] = spec
        object.__setattr__(self, "faults", fixed)

    def __len__(self) -> int:
        return len(self.faults)

    @property
    def is_empty(self) -> bool:
        return not self.faults

    def spec_for(self, key: str) -> Optional[FaultSpec]:
        """The fault armed for ``key``, or ``None``."""
        return self.faults.get(key)

    def to_json(self) -> str:
        """Compact, key-sorted JSON (the env-var wire format)."""
        return json.dumps(
            {
                key: {"kind": s.kind, "attempts": s.attempts, "seconds": s.seconds}
                for key, s in self.faults.items()
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Inverse of :meth:`to_json`; raises ``ValueError`` on junk."""
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed fault plan JSON: {exc}") from exc
        if not isinstance(raw, dict):
            raise ValueError(f"fault plan must be a JSON object, got {type(raw).__name__}")
        faults = {}
        for key, entry in raw.items():
            if not isinstance(entry, dict) or "kind" not in entry:
                raise ValueError(f"fault plan entry {key!r} is malformed: {entry!r}")
            faults[key] = FaultSpec(
                kind=entry["kind"],
                attempts=int(entry.get("attempts", 1)),
                seconds=float(entry.get("seconds", 5.0)),
            )
        return cls(faults)

    @classmethod
    def from_seed(
        cls,
        seed: int,
        keys: Iterable[str],
        *,
        rate: float = 0.25,
        kinds: Sequence[str] = ("crash", "poison", "oom"),
        attempts: int = 1,
        seconds: float = 5.0,
    ) -> "FaultPlan":
        """Derive a plan over ``keys``: each key faulted with ``rate``.

        Both the faulted subset and each fault's kind derive from
        ``stable_seed`` of ``(seed, key)``, so the plan depends only on
        the key set and the seed — never on iteration order or process.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}")
        faults: Dict[str, FaultSpec] = {}
        for key in keys:
            draw = stable_seed("fault-draw", key, root=seed) / float(1 << 63)
            if draw >= rate:
                continue
            kind = kinds[stable_seed("fault-kind", key, root=seed) % len(kinds)]
            faults[str(key)] = FaultSpec(kind=kind, attempts=attempts, seconds=seconds)
        return cls(faults)
