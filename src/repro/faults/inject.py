"""Fault activation and the injection point.

Activation is an **environment variable** (:data:`ENV_PLAN` holds the
plan's JSON), deliberately: worker processes created by a
``ProcessPoolExecutor`` inherit the parent's environment at spawn time,
so a plan activated before the pool exists is visible inside every
worker with no pickling or configuration plumbing.  :data:`ENV_PARENT`
records the activating process's pid so process-killing faults can be
downgraded to plain exceptions when they would otherwise take down the
coordinator itself.

:func:`maybe_inject` is called by the resilient executor
(:mod:`repro.sim.resilient`) with the unit's key and 0-based attempt
number, *before* the unit body runs.  Faulted attempts therefore
consume no randomness and record no metrics — retrying a unit re-runs
exactly the computation the fault pre-empted.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.faults.plan import FaultPlan

#: Environment variable carrying the active plan's JSON.
ENV_PLAN = "REPRO_FAULT_PLAN"
#: Environment variable carrying the activating (parent) process's pid.
ENV_PARENT = "REPRO_FAULT_PARENT"

#: ``os._exit`` status used by ``die`` faults — distinctive in worker
#: post-mortems, never seen by callers (the pool reports the death as a
#: ``BrokenProcessPool``).
DIE_EXIT_CODE = 86

# Parse cache: (raw env string, parsed plan).  Plans are immutable and
# the env var rarely changes, so re-parsing per call would be pure waste.
_cache: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


class InjectedFault(RuntimeError):
    """An artificially injected unit failure (``crash``/``hang`` kinds)."""

    def __init__(self, key: str, kind: str):
        super().__init__(f"injected {kind} fault for unit {key!r}")
        self.key = key
        self.kind = kind


@dataclass(frozen=True)
class PoisonResult:
    """The corrupt value a ``poison`` fault returns in place of a result.

    Picklable so it can cross the process boundary like a real result;
    the executor's validator rejects it and schedules a retry.
    """

    key: str
    attempt: int


def activate(plan: FaultPlan) -> None:
    """Arm ``plan`` for this process and all future child processes."""
    os.environ[ENV_PLAN] = plan.to_json()
    os.environ[ENV_PARENT] = str(os.getpid())


def deactivate() -> None:
    """Disarm any active plan (idempotent)."""
    os.environ.pop(ENV_PLAN, None)
    os.environ.pop(ENV_PARENT, None)


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Context manager: activate ``plan``, restore the previous state after.

    The restore puts back whatever plan (or absence) was active before,
    so chaos tests nest and clean up even on failure.
    """
    previous = os.environ.get(ENV_PLAN)
    previous_parent = os.environ.get(ENV_PARENT)
    activate(plan)
    try:
        yield plan
    finally:
        if previous is None:
            deactivate()
        else:
            os.environ[ENV_PLAN] = previous
            if previous_parent is not None:
                os.environ[ENV_PARENT] = previous_parent


def active_plan() -> Optional[FaultPlan]:
    """The currently armed plan, or ``None`` (cached per env value)."""
    global _cache
    raw = os.environ.get(ENV_PLAN)
    if raw is None:
        return None
    cached_raw, cached_plan = _cache
    if raw == cached_raw:
        return cached_plan
    plan = FaultPlan.from_json(raw)
    _cache = (raw, plan)
    return plan


def in_activating_process() -> bool:
    """Whether this process is the one that activated the plan."""
    return os.environ.get(ENV_PARENT) == str(os.getpid())


def maybe_inject(key: str, attempt: int) -> Optional[PoisonResult]:
    """Fire the fault armed for ``(key, attempt)``, if any.

    Returns ``None`` when no fault fires (the caller proceeds with the
    real computation) or a :class:`PoisonResult` the caller must return
    in place of the real result.  ``crash``/``hang`` raise
    :class:`InjectedFault`, ``oom`` raises ``MemoryError``, and ``die``
    kills the process — unless this *is* the activating process, where
    dying would destroy the coordinator, so it downgrades to ``crash``.
    """
    plan = active_plan()
    if plan is None:
        return None
    spec = plan.spec_for(key)
    if spec is None or not spec.fires(attempt):
        return None
    if spec.kind == "poison":
        return PoisonResult(key=key, attempt=attempt)
    if spec.kind == "oom":
        raise MemoryError(f"injected memory blowout for unit {key!r} (attempt {attempt})")
    if spec.kind == "hang":
        time.sleep(spec.seconds)
        raise InjectedFault(key, "hang")
    if spec.kind == "die" and not in_activating_process():
        os._exit(DIE_EXIT_CODE)
    # "crash", or "die" downgraded inside the coordinating process.
    raise InjectedFault(key, spec.kind)
