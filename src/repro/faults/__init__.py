"""``repro.faults`` — deterministic fault injection for chaos testing.

Long Monte-Carlo sweeps fan out over worker processes
(:mod:`repro.sim.parallel`); this package makes their failure modes
*reproducible* so the resilient executor can be tested instead of
trusted.  A :class:`FaultPlan` maps work-unit keys to
:class:`FaultSpec`\\ s — *crash*, *die* (kill the worker process),
*hang*, *poison* (return a corrupt result), or *oom* — each armed for
the unit's first ``attempts`` tries and inert afterwards, so a bounded
retry always reaches the real computation.

Plans are seed-derived (:meth:`FaultPlan.from_seed`) or hand-built, and
activate through an environment variable (:func:`inject.injected`), so
worker processes spawned by a pool inherit the plan with no extra
plumbing.  The injection point itself lives in the executor
(:mod:`repro.sim.resilient`), *before* the unit body runs — a faulted
attempt therefore records no metrics and touches no RNG stream, which
is what keeps recovered sweeps bit-identical to fault-free ones (see
``docs/ROBUSTNESS.md``).
"""

from repro.faults.inject import (
    ENV_PARENT,
    ENV_PLAN,
    InjectedFault,
    PoisonResult,
    activate,
    active_plan,
    deactivate,
    injected,
    maybe_inject,
)
from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultSpec

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "ENV_PLAN",
    "ENV_PARENT",
    "InjectedFault",
    "PoisonResult",
    "activate",
    "deactivate",
    "injected",
    "active_plan",
    "maybe_inject",
]
