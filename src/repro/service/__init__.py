"""Scheduling-as-a-service: an asyncio HTTP layer over the schedulers.

The package splits plexi-style into a transport
(:mod:`repro.service.server` — routing, JSON schemas, validation) and a
scheduling brain (:mod:`repro.service.broker` — bounded queue,
coalescing by :func:`~repro.cache.fingerprint.exact_key`, per-tenant
token buckets, 429/503 backpressure, a worker pool draining through
:class:`~repro.cache.ScheduleCache` into :mod:`repro.backend`), plus a
deterministic load generator (:mod:`repro.service.loadgen`) reusing the
:mod:`repro.workload` arrival families.

Run it with ``repro serve`` and drive it with ``repro loadtest``; the
wire contract lives in ``docs/SERVICE.md``.  The stdlib core keeps
tier-1 dependency-free; a FastAPI/uvicorn adapter can be layered on via
the optional ``service`` extra.
"""

from repro.service.broker import (
    AdmissionError,
    Overloaded,
    RateLimited,
    ScheduleBroker,
    ServiceError,
    SessionExists,
    SessionLimit,
    TokenBucket,
    UnknownSession,
    WIRE_ERROR_CODES,
)
from repro.service.loadgen import LoadReport, raise_nofile_limit, run_loadgen
from repro.service.server import ROUTE_TEMPLATES, ScheduleServer

__all__ = [
    "AdmissionError",
    "LoadReport",
    "Overloaded",
    "ROUTE_TEMPLATES",
    "RateLimited",
    "ScheduleBroker",
    "ScheduleServer",
    "ServiceError",
    "SessionExists",
    "SessionLimit",
    "TokenBucket",
    "UnknownSession",
    "WIRE_ERROR_CODES",
    "raise_nofile_limit",
    "run_loadgen",
]
