"""The scheduling brain of :mod:`repro.service`.

The broker sits between the HTTP transport and the schedulers, plexi's
``maestro`` to :mod:`repro.service.server`'s ``endpoint``: the server
parses and answers, the broker decides *whether* and *how* a request is
served.

Admission control happens at submit time, synchronously and
deterministically:

1. **Per-tenant token buckets** — each tenant refills at
   ``tenant_rate`` requests/second up to a burst of ``tenant_burst``;
   an empty bucket raises :class:`RateLimited` (HTTP 429).  The clock
   is injectable, so the refill schedule — and therefore the exact
   accept/reject pattern of a burst — is reproducible in tests.
2. **Bounded queue** — at most ``queue_limit`` distinct requests may be
   pending; beyond that :class:`Overloaded` (HTTP 503) is raised
   immediately instead of letting latency grow without bound.

Between admission and compute, identical requests **coalesce**: the
queue is keyed by :func:`repro.cache.fingerprint.exact_key`, so any
request bit-identical to one already in flight attaches to its future
instead of occupying a queue slot — a thousand clients asking for the
same topology cost one scheduler run.  Workers drain the queue in
batches and compute through a :class:`~repro.cache.ScheduleCache`
(transparent mode by default, so every answer is bit-identical to a
direct scheduler call) into :mod:`repro.backend`'s kernels.

Sessions wrap :class:`~repro.core.incremental.IncrementalScheduler`:
open with a topology, then stream :class:`~repro.network.delta.LinkDelta`
objects for warm repairs without recomputation.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.cache.fingerprint import exact_key, scheduler_identity
from repro.cache.store import ScheduleCache
from repro.core.base import get_scheduler
from repro.core.incremental import IncrementalScheduler
from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.network.delta import LinkDelta
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.service import schemas

__all__ = [
    "AdmissionError",
    "Overloaded",
    "RateLimited",
    "ScheduleBroker",
    "ServiceError",
    "SessionExists",
    "SessionLimit",
    "TokenBucket",
    "UnknownSession",
    "WIRE_ERROR_CODES",
]


class ServiceError(Exception):
    """Base for every error the broker maps onto an HTTP status.

    Subclasses pin ``status`` and a stable ``code`` that the server
    copies into the response body; clients match on codes.
    """

    status = 500
    code = "internal-error"

    def __init__(self, message: str, *, retry_after: Optional[float] = None):
        super().__init__(message)
        self.retry_after = retry_after


class AdmissionError(ServiceError):
    """A request refused at the door (never queued, never computed)."""

    status = 503
    code = "overloaded"


class RateLimited(AdmissionError):
    """Per-tenant token bucket empty: HTTP 429, retry after refill."""

    status = 429
    code = "tenant-rate-exceeded"


class Overloaded(AdmissionError):
    """Bounded request queue full: HTTP 503, shed load now."""

    status = 503
    code = "queue-full"


class SessionLimit(AdmissionError):
    """Session table full: HTTP 503 for session opens."""

    status = 503
    code = "session-capacity"


class UnknownSession(ServiceError):
    """Delta for a session id that was never opened: HTTP 404."""

    status = 404
    code = "unknown-session"


class SessionExists(ServiceError):
    """Open for a session id already in use: HTTP 409."""

    status = 409
    code = "session-exists"


#: Every wire-visible error code, for the docs-contract check: each of
#: these must be documented in docs/SERVICE.md.
WIRE_ERROR_CODES: Tuple[str, ...] = (
    # admission and session errors (this module)
    RateLimited.code,
    Overloaded.code,
    SessionLimit.code,
    UnknownSession.code,
    SessionExists.code,
    ServiceError.code,
    # request validation (repro.service.schemas)
    schemas.CODE_BAD_JSON,
    schemas.CODE_BAD_TOPOLOGY,
    schemas.CODE_BAD_DELTA,
    schemas.CODE_BAD_SESSION_REQUEST,
    schemas.CODE_UNKNOWN_SCHEDULER,
    schemas.CODE_TOO_MANY_LINKS,
    # transport-level framing/routing (repro.service.server literals)
    "bad-request",
    "body-too-large",
    "method-not-allowed",
    "unknown-route",
)


class TokenBucket:
    """A classic token bucket with an injectable monotonic clock.

    Refills continuously at ``rate`` tokens/second up to ``burst``;
    :meth:`try_acquire` spends one token or reports failure.  With a
    fake clock the accept/reject sequence of any request schedule is a
    pure function of the timestamps — the determinism the overload
    tests pin.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError(f"rate and burst must be > 0, got {rate}, {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now

    def try_acquire(self) -> bool:
        """Spend one token if available; never blocks."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until one token is available (0 when it already is)."""
        self._refill()
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self.rate


@dataclass(frozen=True)
class ScheduleRequest:
    """One unit of work: schedule ``problem`` with ``scheduler``."""

    problem: FadingRLS
    scheduler: str = "rle"
    tenant: str = "default"


@dataclass
class _Session:
    engine: IncrementalScheduler
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    seq: int = 0


class ScheduleBroker:
    """Bounded queue + coalescing + token buckets + a worker pool.

    Parameters
    ----------
    scheduler:
        Default scheduler name for requests that do not specify one.
    queue_limit:
        Maximum *distinct* pending requests; coalesced duplicates do
        not count.  Beyond it, :meth:`submit` raises :class:`Overloaded`.
    batch_max:
        Workers drain up to this many queued requests per batch and
        compute them in one executor hop.
    n_workers:
        Draining worker tasks (and executor threads).  Results are
        bit-identical at any worker count; more workers only overlap
        the numpy compute of distinct topologies.
    tenant_rate, tenant_burst:
        Per-tenant token-bucket parameters.  ``tenant_rate=None``
        disables rate limiting entirely.
    cache:
        A :class:`ScheduleCache` fronting the schedulers, or ``None``
        to compute every request from scratch.  The default is a
        transparent (``warm_start=False``) cache, preserving the
        bit-identity contract with direct scheduling.
    max_sessions:
        Cap on concurrently open delta sessions.
    inline:
        Compute on the event loop instead of executor threads; used by
        the verification harness where thread hops add nothing.
    clock:
        Monotonic clock shared by all token buckets (injectable for
        deterministic tests).
    """

    def __init__(
        self,
        *,
        scheduler: str = "rle",
        queue_limit: int = 1024,
        batch_max: int = 32,
        n_workers: int = 2,
        tenant_rate: Optional[float] = None,
        tenant_burst: float = 64.0,
        cache: Optional[ScheduleCache] = None,
        use_cache: bool = True,
        max_sessions: int = 64,
        inline: bool = False,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.default_scheduler = scheduler
        get_scheduler(scheduler)  # fail fast on unknown names
        self.queue_limit = int(queue_limit)
        self.batch_max = int(batch_max)
        self.n_workers = int(n_workers)
        self.tenant_rate = tenant_rate
        self.tenant_burst = float(tenant_burst)
        self.max_sessions = int(max_sessions)
        self.inline = bool(inline)
        self._clock = clock
        if cache is not None:
            self._cache: Optional[ScheduleCache] = cache
        elif use_cache:
            self._cache = ScheduleCache(capacity=512, warm_start=False)
        else:
            self._cache = None
        #: ScheduleCache is not thread-safe; serialize access across
        #: executor threads.  Hits are O(N) hashing, so the lock is
        #: cheap except when distinct misses pile up simultaneously.
        self._cache_lock = threading.Lock()
        self._queue: asyncio.Queue = asyncio.Queue()
        self._inflight: Dict[str, asyncio.Future] = {}
        self._served: Set[str] = set()
        self._buckets: Dict[str, TokenBucket] = {}
        self._sessions: Dict[str, _Session] = {}
        self._workers: List[asyncio.Task] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._scheduler_ids: Dict[str, str] = {}
        self._seq = 0
        self._closed = False
        self._counters: Dict[str, int] = {
            "requests": 0,
            "scheduled": 0,
            "coalesced": 0,
            "rejected_429": 0,
            "rejected_503": 0,
            "batches": 0,
            "errors": 0,
            "sessions_opened": 0,
            "deltas_applied": 0,
        }

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        if self._workers:
            return
        if not self.inline:
            self._executor = ThreadPoolExecutor(
                max_workers=self.n_workers, thread_name_prefix="repro-service"
            )
        self._workers = [
            asyncio.ensure_future(self._worker()) for _ in range(self.n_workers)
        ]

    async def close(self, *, drain: bool = True) -> None:
        """Stop the workers; with ``drain`` finish queued work first."""
        if drain and self._workers:
            await self._queue.join()
        for worker in self._workers:
            worker.cancel()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        for fut in self._inflight.values():
            if not fut.done():
                fut.set_exception(Overloaded("broker closed"))
        self._inflight.clear()
        self._closed = True

    # -- admission + submit -------------------------------------------

    def _bucket(self, tenant: str) -> Optional[TokenBucket]:
        if self.tenant_rate is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.tenant_rate, self.tenant_burst, clock=self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def _scheduler_id(self, name: str) -> str:
        sid = self._scheduler_ids.get(name)
        if sid is None:
            sid = scheduler_identity(get_scheduler(name), None)
            self._scheduler_ids[name] = sid
        return sid

    def _next_trace_id(self, kind: str) -> str:
        self._seq += 1
        return f"{kind}-{self._seq:08d}"

    async def submit(
        self,
        problem: FadingRLS,
        *,
        scheduler: Optional[str] = None,
        tenant: str = "default",
    ) -> Dict[str, Any]:
        """Serve one schedule request through admission control.

        Returns ``{"schedule", "trace_id", "tier", "coalesced",
        "wall_seconds"}``; raises :class:`RateLimited` /
        :class:`Overloaded` when admission refuses, and re-raises
        scheduler failures.
        """
        if self._closed:
            raise Overloaded("broker is closed")
        name = scheduler or self.default_scheduler
        self._counters["requests"] += 1
        obs_metrics.inc("service.requests")
        trace_id = self._next_trace_id("req")
        t0 = time.perf_counter()
        bucket = self._bucket(tenant)
        if bucket is not None and not bucket.try_acquire():
            self._counters["rejected_429"] += 1
            obs_metrics.inc("service.rejected_429")
            raise RateLimited(
                f"tenant {tenant!r} exceeded {self.tenant_rate:g} req/s "
                f"(burst {self.tenant_burst:g})",
                retry_after=bucket.retry_after(),
            )
        key = exact_key(problem, self._scheduler_id(name))
        future = self._inflight.get(key)
        coalesced = future is not None
        if coalesced:
            self._counters["coalesced"] += 1
            obs_metrics.inc("service.coalesced")
        else:
            if self._queue.qsize() >= self.queue_limit:
                self._counters["rejected_503"] += 1
                obs_metrics.inc("service.rejected_503")
                raise Overloaded(
                    f"request queue full ({self.queue_limit} pending)"
                )
            future = asyncio.get_running_loop().create_future()
            self._inflight[key] = future
            self._queue.put_nowait((key, ScheduleRequest(problem, name, tenant), future))
        tier = "cache" if key in self._served else "miss"
        schedule = await asyncio.shield(future)
        return {
            "schedule": schedule,
            "trace_id": trace_id,
            "tier": tier,
            "coalesced": coalesced,
            "wall_seconds": time.perf_counter() - t0,
        }

    # -- the worker pool ----------------------------------------------

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            batch = [first]
            while len(batch) < self.batch_max:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self._counters["batches"] += 1
            obs_metrics.inc("service.batches")
            obs_metrics.observe("service.batch_size", len(batch))
            if self._executor is None:
                results = self._compute_batch(batch)
            else:
                results = await loop.run_in_executor(
                    self._executor, self._compute_batch, batch
                )
            for (key, _request, future), result in zip(batch, results):
                self._inflight.pop(key, None)
                self._served.add(key)
                if isinstance(result, Exception):
                    self._counters["errors"] += 1
                    obs_metrics.inc("service.errors")
                    if not future.done():
                        future.set_exception(result)
                else:
                    self._counters["scheduled"] += 1
                    obs_metrics.inc("service.scheduled")
                    if not future.done():
                        future.set_result(result)
                self._queue.task_done()

    def _compute_batch(self, batch: List[Tuple[str, ScheduleRequest, Any]]) -> List[Any]:
        """Schedule every request in ``batch`` (executor thread).

        Per-item failures come back as exception *values* so one bad
        topology fails only its own future, never the whole batch.
        """
        results: List[Any] = []
        with span("service.batch", size=len(batch)):
            for _key, request, _future in batch:
                try:
                    results.append(self._schedule_one(request))
                except Exception as exc:
                    results.append(exc)
        return results

    def _schedule_one(self, request: ScheduleRequest) -> Schedule:
        with span(
            "service.request",
            scheduler=request.scheduler,
            n=request.problem.n_links,
        ):
            if self._cache is not None:
                with self._cache_lock:
                    return self._cache.schedule(request.problem, request.scheduler)
            return get_scheduler(request.scheduler)(request.problem)

    # -- delta sessions -----------------------------------------------

    async def open_session(
        self,
        session_id: str,
        problem: FadingRLS,
        *,
        scheduler: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Open a delta session; returns its initial schedule."""
        if session_id in self._sessions:
            raise SessionExists(f"session {session_id!r} is already open")
        if len(self._sessions) >= self.max_sessions:
            self._counters["rejected_503"] += 1
            obs_metrics.inc("service.rejected_503")
            raise SessionLimit(
                f"session table full ({self.max_sessions} open sessions)"
            )
        engine = IncrementalScheduler(
            problem.links,
            scheduler=scheduler or self.default_scheduler,
            alpha=problem.alpha,
            gamma_th=problem.gamma_th,
            eps=problem.eps,
            noise=problem.noise,
            power=problem.power,
        )
        session = _Session(engine)
        self._sessions[session_id] = session
        self._counters["sessions_opened"] += 1
        obs_metrics.inc("service.sessions_opened")
        async with session.lock:
            schedule = await self._run_session_op(engine.schedule)
        return {
            "schedule": schedule,
            "trace_id": self._next_trace_id("ses"),
            "seq": session.seq,
        }

    async def apply_delta(self, session_id: str, delta: LinkDelta) -> Dict[str, Any]:
        """Stream one delta into an open session; returns the repair."""
        session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSession(f"no open session {session_id!r}")
        async with session.lock:
            schedule = await self._run_session_op(
                lambda: self._step_session(session, delta)
            )
            session.seq += 1
        self._counters["deltas_applied"] += 1
        obs_metrics.inc("service.deltas_applied")
        return {
            "schedule": schedule,
            "trace_id": self._next_trace_id("ses"),
            "seq": session.seq,
        }

    def _step_session(self, session: _Session, delta: LinkDelta) -> Schedule:
        with span("service.delta", n=session.engine.n_links):
            return session.engine.step(delta)

    async def _run_session_op(self, fn: Callable[[], Schedule]) -> Schedule:
        if self._executor is None:
            return fn()
        return await asyncio.get_running_loop().run_in_executor(self._executor, fn)

    def close_session(self, session_id: str) -> bool:
        """Drop a session; returns whether it existed."""
        return self._sessions.pop(session_id, None) is not None

    # -- introspection ------------------------------------------------

    @property
    def stats(self) -> Dict[str, Any]:
        """Counters, queue depth, sessions, and cache stats (statz body)."""
        out: Dict[str, Any] = dict(self._counters)
        out["queue_depth"] = self._queue.qsize()
        out["inflight"] = len(self._inflight)
        out["open_sessions"] = len(self._sessions)
        out["tenants"] = len(self._buckets)
        out["queue_limit"] = self.queue_limit
        out["batch_max"] = self.batch_max
        out["n_workers"] = self.n_workers
        out["cache"] = self._cache.stats if self._cache is not None else None
        return out
