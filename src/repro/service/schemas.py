"""JSON wire schemas for :mod:`repro.service`.

Parsing lives here — between the transport (:mod:`repro.service.server`)
and the scheduling brain (:mod:`repro.service.broker`) — so both the
HTTP layer and in-process callers (the load generator, tests) speak the
same dialect.  All failures raise
:class:`repro.utils.validation.ValidationError`, whose stable ``code``
the server copies verbatim into the 400 response body; clients match on
codes, never on messages.

A schedule request::

    {"topology": {"senders": [[x, y], ...], "receivers": [[x, y], ...],
                  "rates": [r, ...],             # optional, default 1.0
                  "alpha": 3.0, "gamma_th": 1.0, # optional channel params
                  "eps": 0.01, "noise": 0.0, "power": 1.0},
     "scheduler": "rle",                         # optional
     "tenant": "default"}                        # optional

A session request is either ``{"topology": ..., "scheduler": ...}``
(opens the session and returns the initial schedule) or
``{"delta": {"moves": [i, ...], "new_senders": [[x, y], ...],
"new_receivers": [...], "removes": [...], "inserts": {...}}}``
(streams one :class:`~repro.network.delta.LinkDelta` into the session's
:class:`~repro.core.incremental.IncrementalScheduler`).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.core.base import list_schedulers
from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.network.delta import LinkDelta
from repro.network.links import LinkSet
from repro.utils.validation import ValidationError, require

#: Stable reason codes for request-validation failures (400 responses).
CODE_BAD_JSON = "bad-json"
CODE_BAD_TOPOLOGY = "bad-topology"
CODE_BAD_DELTA = "bad-delta"
CODE_BAD_SESSION_REQUEST = "bad-session-request"
CODE_UNKNOWN_SCHEDULER = "unknown-scheduler"
CODE_TOO_MANY_LINKS = "too-many-links"

#: Hard per-request size cap; a topology larger than this is refused at
#: the door rather than scheduled (rle is O(N^2) — one pathological
#: request must not starve the worker pool).
MAX_LINKS = 4096


def _points(payload: Mapping[str, Any], field: str) -> np.ndarray:
    raw = payload.get(field)
    require(raw is not None, f"topology.{field} is required", code=CODE_BAD_TOPOLOGY)
    try:
        arr = np.asarray(raw, dtype=float)
    except (TypeError, ValueError):
        raise ValidationError(
            f"topology.{field} must be a list of [x, y] pairs",
            code=CODE_BAD_TOPOLOGY,
            param=field,
        ) from None
    if arr.ndim != 2 or arr.shape[1] != 2 or not np.all(np.isfinite(arr)):
        raise ValidationError(
            f"topology.{field} must be a finite (N, 2) array, got shape {arr.shape}",
            code=CODE_BAD_TOPOLOGY,
            param=field,
        )
    return arr


def _scalar(payload: Mapping[str, Any], field: str, default: float) -> float:
    raw = payload.get(field, default)
    try:
        value = float(raw)
    except (TypeError, ValueError):
        raise ValidationError(
            f"topology.{field} must be a number, got {raw!r}",
            code=CODE_BAD_TOPOLOGY,
            param=field,
        ) from None
    return value


def parse_topology(payload: Any) -> FadingRLS:
    """A :class:`FadingRLS` problem from its JSON ``topology`` object."""
    require(
        isinstance(payload, Mapping),
        "topology must be a JSON object",
        code=CODE_BAD_TOPOLOGY,
    )
    senders = _points(payload, "senders")
    receivers = _points(payload, "receivers")
    require(
        senders.shape == receivers.shape,
        f"senders {senders.shape} and receivers {receivers.shape} must match",
        code=CODE_BAD_TOPOLOGY,
    )
    require(
        senders.shape[0] <= MAX_LINKS,
        f"topology has {senders.shape[0]} links; the service caps requests "
        f"at {MAX_LINKS}",
        code=CODE_TOO_MANY_LINKS,
    )
    rates = payload.get("rates")
    if rates is not None:
        try:
            rates = np.asarray(rates, dtype=float).reshape(-1)
        except (TypeError, ValueError):
            raise ValidationError(
                "topology.rates must be a list of numbers",
                code=CODE_BAD_TOPOLOGY,
                param="rates",
            ) from None
    try:
        links = LinkSet(senders=senders, receivers=receivers, rates=rates)
        return FadingRLS(
            links=links,
            alpha=_scalar(payload, "alpha", 3.0),
            gamma_th=_scalar(payload, "gamma_th", 1.0),
            eps=_scalar(payload, "eps", 0.01),
            noise=_scalar(payload, "noise", 0.0),
            power=_scalar(payload, "power", 1.0),
        )
    except ValidationError:
        raise
    except ValueError as exc:
        raise ValidationError(str(exc), code=CODE_BAD_TOPOLOGY) from None


def parse_scheduler(payload: Mapping[str, Any]) -> str:
    """The validated scheduler name from a request payload."""
    name = payload.get("scheduler", "rle")
    available = list_schedulers()
    if name not in available:
        raise ValidationError(
            f"unknown scheduler {name!r}; available: {available}",
            code=CODE_UNKNOWN_SCHEDULER,
            param="scheduler",
        )
    return name


def parse_tenant(payload: Mapping[str, Any]) -> str:
    """The tenant label (defaults to ``"default"``)."""
    tenant = payload.get("tenant", "default")
    require(
        isinstance(tenant, str) and 0 < len(tenant) <= 64,
        "tenant must be a non-empty string of at most 64 characters",
        code=CODE_BAD_SESSION_REQUEST,
    )
    return tenant


def parse_schedule_request(payload: Any) -> Tuple[FadingRLS, str, str]:
    """``(problem, scheduler, tenant)`` from a ``POST /v1/schedule`` body."""
    require(
        isinstance(payload, Mapping),
        "request body must be a JSON object",
        code=CODE_BAD_JSON,
    )
    problem = parse_topology(payload.get("topology"))
    return problem, parse_scheduler(payload), parse_tenant(payload)


def parse_delta(payload: Any) -> LinkDelta:
    """A :class:`LinkDelta` from its JSON ``delta`` object."""
    require(
        isinstance(payload, Mapping),
        "delta must be a JSON object",
        code=CODE_BAD_DELTA,
    )
    inserts: Optional[LinkSet] = None
    raw_inserts = payload.get("inserts")
    if raw_inserts is not None:
        require(
            isinstance(raw_inserts, Mapping),
            "delta.inserts must be a JSON object with senders/receivers",
            code=CODE_BAD_DELTA,
        )
        try:
            rates = raw_inserts.get("rates")
            inserts = LinkSet(
                senders=np.asarray(raw_inserts.get("senders", []), dtype=float),
                receivers=np.asarray(raw_inserts.get("receivers", []), dtype=float),
                rates=np.asarray(rates, dtype=float) if rates is not None else None,
            )
        except (TypeError, ValueError) as exc:
            raise ValidationError(
                f"bad delta.inserts: {exc}", code=CODE_BAD_DELTA
            ) from None
    try:
        return LinkDelta(
            moves=np.asarray(payload.get("moves", []), dtype=np.int64),
            new_senders=np.asarray(payload.get("new_senders", []), dtype=float).reshape(-1, 2),
            new_receivers=np.asarray(payload.get("new_receivers", []), dtype=float).reshape(-1, 2),
            removes=np.asarray(payload.get("removes", []), dtype=np.int64),
            inserts=inserts,
        )
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"bad delta: {exc}", code=CODE_BAD_DELTA) from None


def schedule_payload(
    schedule: Schedule,
    problem: FadingRLS,
    *,
    trace_id: str,
    tier: str,
    coalesced: bool,
    wall_seconds: float,
) -> Dict[str, Any]:
    """The JSON body of a successful ``POST /v1/schedule`` response."""
    return {
        "trace_id": trace_id,
        "algorithm": schedule.algorithm,
        "active": [int(i) for i in schedule.active],
        "n_links": int(problem.n_links),
        "n_active": int(schedule.size),
        "tier": tier,
        "coalesced": bool(coalesced),
        "wall_seconds": round(float(wall_seconds), 6),
    }


def error_payload(code: str, message: str, **extra: Any) -> Dict[str, Any]:
    """The JSON body of every non-2xx response."""
    body: Dict[str, Any] = {"error": {"code": code, "message": message}}
    body["error"].update({k: v for k, v in extra.items() if v is not None})
    return body
