"""Deterministic load generator for :mod:`repro.service`.

Open-loop request generation driven by :mod:`repro.workload`'s arrival
families: the per-client request counts per tick come from
``ArrivalProcess.sample(n_links=clients, n_slots=ticks, seed=seed)``,
so a ``(family, clients, ticks, seed)`` tuple pins the entire offered
load bit-for-bit — the same property the workload golden traces rely
on.  Every client releases its tick-``t`` requests at the same instant
(an event barrier), so the ``spikes`` family reproduces the perfectly
correlated burst that admission control exists for.

Accounting is the core invariant: every request ends in exactly one of
``ok`` (2xx), ``rejected_429``, ``rejected_503``, ``other_status``, or
``transport_errors`` — :attr:`LoadReport.unaccounted` must be 0, which
is the "zero dropped-without-429" acceptance criterion.

Two drive modes share all bookkeeping:

- **HTTP** (``host``/``port``): one persistent stdlib-asyncio
  connection per client against a live ``repro serve`` process.
- **direct** (``broker=``): in-process :meth:`ScheduleBroker.submit`
  calls, used by unit and property tests where sockets add nothing.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.problem import FadingRLS
from repro.network.topology import paper_topology
from repro.service.broker import AdmissionError, ScheduleBroker
from repro.workload.generators import arrivals_from_spec

__all__ = ["LoadReport", "build_topology_payload", "raise_nofile_limit", "run_loadgen"]


def raise_nofile_limit(target: int = 8192) -> int:
    """Best-effort bump of ``RLIMIT_NOFILE`` (1k clients need >1k fds).

    Returns the soft limit now in effect; failures (non-POSIX, capped
    hard limit) leave the limit unchanged rather than raising.
    """
    try:
        import resource

        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft < target:
            wanted = target if hard == resource.RLIM_INFINITY else min(target, hard)
            resource.setrlimit(resource.RLIMIT_NOFILE, (wanted, hard))
            soft = wanted
        return soft
    except (ImportError, ValueError, OSError):  # pragma: no cover - platform caps
        return -1


@dataclass
class LoadReport:
    """Outcome accounting + latency percentiles of one loadgen run."""

    clients: int
    ticks: int
    arrival: str
    seed: int
    sent: int = 0
    ok: int = 0
    rejected_429: int = 0
    rejected_503: int = 0
    other_status: int = 0
    transport_errors: int = 0
    peak_inflight: int = 0
    wall_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list, repr=False)

    @property
    def unaccounted(self) -> int:
        """Requests with no recorded outcome; must be 0."""
        accounted = (
            self.ok
            + self.rejected_429
            + self.rejected_503
            + self.other_status
            + self.transport_errors
        )
        return self.sent - accounted

    @property
    def throughput_rps(self) -> float:
        return self.ok / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def percentile_ms(self, q: float) -> float:
        """The ``q``-quantile response latency in milliseconds."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        idx = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
        return ordered[idx] * 1000.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (counts, percentiles, throughput)."""
        return {
            "clients": self.clients,
            "ticks": self.ticks,
            "arrival": self.arrival,
            "seed": self.seed,
            "sent": self.sent,
            "ok": self.ok,
            "rejected_429": self.rejected_429,
            "rejected_503": self.rejected_503,
            "other_status": self.other_status,
            "transport_errors": self.transport_errors,
            "unaccounted": self.unaccounted,
            "peak_inflight": self.peak_inflight,
            "wall_seconds": round(self.wall_seconds, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "p50_ms": round(self.percentile_ms(0.50), 3),
            "p90_ms": round(self.percentile_ms(0.90), 3),
            "p99_ms": round(self.percentile_ms(0.99), 3),
        }


def build_topology_payload(problem: FadingRLS) -> Dict[str, Any]:
    """The JSON ``topology`` object for ``problem`` (wire format)."""
    links = problem.links
    return {
        "senders": links.senders.tolist(),
        "receivers": links.receivers.tolist(),
        "rates": links.rates.tolist(),
        "alpha": problem.alpha,
        "gamma_th": problem.gamma_th,
        "eps": problem.eps,
        "noise": problem.noise,
        "power": problem.power,
    }


def topology_pool(pool: int, n_links: int, seed: int) -> List[FadingRLS]:
    """``pool`` distinct deterministic problems for the request mix."""
    return [
        FadingRLS(links=paper_topology(n_links, seed=seed * 1000 + i))
        for i in range(pool)
    ]


def request_trace(clients: int, ticks: int, arrival: str, seed: int) -> np.ndarray:
    """Per-(tick, client) request counts from a workload arrival family.

    Tick 0 is clamped to at least one request per client, so a run with
    ``clients=K`` really does put ``K`` requests in flight at once.
    """
    process = arrivals_from_spec({"family": arrival})
    counts = process.sample(clients, ticks, seed=seed)
    counts = counts.copy()
    counts[0] = np.maximum(counts[0], 1)
    return counts


class _HttpClient:
    """One persistent keep-alive connection speaking minimal HTTP/1.1."""

    def __init__(self, host: str, port: int, timeout: float) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), self.timeout
        )

    async def request(self, raw: bytes) -> int:
        """Send one pre-serialised request; returns the response status.

        The response body is framed by ``Content-Length`` and drained so
        the connection stays usable for the next request.
        """
        assert self._reader is not None and self._writer is not None
        self._writer.write(raw)
        await self._writer.drain()
        head = await asyncio.wait_for(
            self._reader.readuntil(b"\r\n\r\n"), self.timeout
        )
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        if length:
            await asyncio.wait_for(self._reader.readexactly(length), self.timeout)
        return status

    async def aclose(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass


def _serialise_request(host: str, payload: Dict[str, Any]) -> bytes:
    body = json.dumps(payload).encode()
    return (
        f"POST /v1/schedule HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: keep-alive\r\n"
        f"\r\n"
    ).encode() + body


async def run_loadgen(
    *,
    host: Optional[str] = None,
    port: Optional[int] = None,
    broker: Optional[ScheduleBroker] = None,
    clients: int = 100,
    ticks: int = 2,
    arrival: str = "spikes",
    pool: int = 4,
    n_links: int = 12,
    scheduler: str = "rle",
    tenants: int = 1,
    seed: int = 0,
    tick_seconds: float = 0.0,
    timeout: float = 60.0,
) -> LoadReport:
    """Drive a deterministic open-loop load and account every request.

    Exactly one of ``host``/``port`` (HTTP mode) or ``broker`` (direct
    mode) must be given.
    """
    if (broker is None) == (host is None or port is None):
        raise ValueError("pass either host+port or broker, not both")
    counts = request_trace(clients, ticks, arrival, seed)
    problems = topology_pool(pool, n_links, seed)
    report = LoadReport(
        clients=clients, ticks=ticks, arrival=arrival, seed=seed,
        sent=int(counts.sum()),
    )
    raw_requests: List[List[bytes]] = []
    if broker is None:
        assert host is not None and port is not None
        raw_requests = [
            [
                _serialise_request(
                    host,
                    {
                        "topology": build_topology_payload(problem),
                        "scheduler": scheduler,
                        "tenant": f"tenant-{t}",
                    },
                )
                for problem in problems
            ]
            for t in range(tenants)
        ]

    tick_gates = [asyncio.Event() for _ in range(ticks)]
    # Barrier: no tick fires until every client has finished (or failed)
    # its connection attempt.  Without it, early-accepted clients can
    # complete whole request cycles while late ones still sit behind
    # the listen backlog, and measured concurrency plateaus near the
    # backlog instead of reaching ``clients``.
    all_ready = asyncio.Event()
    ready_count = 0

    def _ready() -> None:
        nonlocal ready_count
        ready_count += 1
        if ready_count >= clients:
            all_ready.set()

    if clients == 0:
        all_ready.set()
    inflight = 0

    def _track(delta: int) -> None:
        nonlocal inflight
        inflight += delta
        report.peak_inflight = max(report.peak_inflight, inflight)

    def _bucket(status: int) -> None:
        if 200 <= status < 300:
            report.ok += 1
        elif status == 429:
            report.rejected_429 += 1
        elif status == 503:
            report.rejected_503 += 1
        else:
            report.other_status += 1

    async def _client(c: int) -> None:
        tenant_idx = c % tenants
        planned = int(counts[:, c].sum())
        done = 0
        conn: Optional[_HttpClient] = None
        if broker is None:
            assert host is not None and port is not None
            conn = _HttpClient(host, port, timeout)
            try:
                await conn.connect()
            except (OSError, asyncio.TimeoutError):
                report.transport_errors += planned
                _ready()
                return
        _ready()
        try:
            for t in range(ticks):
                await tick_gates[t].wait()
                for r in range(int(counts[t, c])):
                    pool_idx = (c + t + r) % pool
                    t0 = time.perf_counter()
                    _track(+1)
                    try:
                        if conn is not None:
                            status = await conn.request(
                                raw_requests[tenant_idx][pool_idx]
                            )
                            _bucket(status)
                        else:
                            assert broker is not None
                            try:
                                await broker.submit(
                                    problems[pool_idx],
                                    scheduler=scheduler,
                                    tenant=f"tenant-{tenant_idx}",
                                )
                                report.ok += 1
                            except AdmissionError as exc:
                                _bucket(exc.status)
                            except Exception:
                                # a scheduler failure is the in-process
                                # twin of an HTTP 500
                                report.other_status += 1
                        done += 1
                        report.latencies.append(time.perf_counter() - t0)
                    except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError):
                        # The connection is unusable; this request and
                        # every remaining planned one count as transport
                        # errors so the accounting invariant still closes.
                        report.transport_errors += planned - done
                        return
                    finally:
                        _track(-1)
        finally:
            if conn is not None:
                await conn.aclose()

    async def _pacer() -> None:
        await all_ready.wait()
        for gate in tick_gates:
            gate.set()
            if tick_seconds > 0:
                await asyncio.sleep(tick_seconds)
            else:
                await asyncio.sleep(0)

    t_start = time.perf_counter()
    tasks = [asyncio.ensure_future(_client(c)) for c in range(clients)]
    pacer = asyncio.ensure_future(_pacer())
    await asyncio.gather(*tasks)
    await pacer
    report.wall_seconds = time.perf_counter() - t_start
    return report
