"""The HTTP transport of :mod:`repro.service` — stdlib asyncio only.

This is the "endpoint" half of the plexi-style split: it parses
HTTP/1.1 off the socket, validates JSON against
:mod:`repro.service.schemas`, and hands every decision to the
:class:`~repro.service.broker.ScheduleBroker`.  No scheduling policy
lives here.

Routes::

    GET  /v1/healthz              liveness + uptime
    GET  /v1/statz                broker/cache/session counters
    POST /v1/schedule             topology -> schedule (cache-tiered)
    POST /v1/sessions/{id}/delta  open a session / stream LinkDeltas

Error mapping: :class:`~repro.utils.validation.ValidationError` → 400
with the validator's stable ``code``; :class:`ServiceError` subclasses
→ their pinned status (429/503/404/409) and ``code``; anything else →
500 ``internal-error``.  Every response carries the request's trace id.

The server speaks enough HTTP/1.1 for real clients (``curl``, any
connection-pooling SDK): keep-alive with ``Content-Length`` framing,
``Connection: close`` honoured, oversized bodies refused with 413.  An
optional FastAPI/uvicorn adapter can layer on top via the ``service``
extra, but tier-1 never needs it.
"""

from __future__ import annotations

import asyncio
import json
import re
import time
from typing import Any, Callable, Dict, Optional, Tuple

from repro.service import schemas
from repro.service.broker import ScheduleBroker, ServiceError
from repro.utils.validation import ValidationError

__all__ = ["ROUTE_TEMPLATES", "ScheduleServer"]

#: The public routes, for docs/SERVICE.md's contract check: every
#: template must appear backticked in the '## Endpoints' section.
ROUTE_TEMPLATES: Tuple[str, ...] = (
    "GET /v1/healthz",
    "GET /v1/statz",
    "POST /v1/schedule",
    "POST /v1/sessions/{id}/delta",
)

_SESSION_RE = re.compile(r"^/v1/sessions/([A-Za-z0-9_.-]{1,64})/delta$")

#: Refuse request bodies beyond this many bytes with 413 (a 4096-link
#: topology serialises to ~300 KiB; 8 MiB leaves generous headroom).
MAX_BODY_BYTES = 8 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ScheduleServer:
    """Bind, accept, parse, route — the transport around a broker."""

    def __init__(
        self,
        broker: ScheduleBroker,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        access_log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.broker = broker
        self.host = host
        self.port = port
        self.access_log = access_log
        self._server: Optional[asyncio.AbstractServer] = None
        self._started = time.monotonic()

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``.

        ``port=0`` binds an ephemeral port (the tests' default), and the
        returned port is the real one.
        """
        # backlog above the default 100 so a synchronized 1000-client
        # connect burst is accepted instead of stalling in SYN retries
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, backlog=4096
        )
        self._started = time.monotonic()
        sockname = self._server.sockets[0].getsockname()
        self.port = sockname[1]
        return sockname[0], sockname[1]

    async def close(self) -> None:
        """Stop accepting and close listening sockets."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started

    # -- the connection loop ------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                    asyncio.LimitOverrunError,
                ):
                    break
                parsed = _parse_head(head)
                if parsed is None:
                    await self._respond(
                        writer, 400,
                        schemas.error_payload("bad-request", "malformed HTTP request"),
                        keep_alive=False,
                    )
                    break
                method, path, headers = parsed
                try:
                    length = int(headers.get("content-length", "0"))
                except ValueError:
                    length = -1
                if length < 0:
                    await self._respond(
                        writer, 400,
                        schemas.error_payload("bad-request", "bad Content-Length"),
                        keep_alive=False,
                    )
                    break
                if length > MAX_BODY_BYTES:
                    await self._respond(
                        writer, 413,
                        schemas.error_payload(
                            "body-too-large",
                            f"request body exceeds {MAX_BODY_BYTES} bytes",
                        ),
                        keep_alive=False,
                    )
                    break
                body = b""
                if length:
                    try:
                        body = await reader.readexactly(length)
                    except (asyncio.IncompleteReadError, ConnectionResetError):
                        break
                t0 = time.perf_counter()
                status, payload = await self._dispatch(method, path, body)
                keep_alive = headers.get("connection", "").lower() != "close"
                await self._respond(writer, status, payload, keep_alive=keep_alive)
                if self.access_log is not None:
                    wall_ms = (time.perf_counter() - t0) * 1000.0
                    trace = payload.get("trace_id") or payload.get("error", {}).get(
                        "trace_id", "-"
                    )
                    self.access_log(
                        f"{method} {path} {status} {wall_ms:.2f}ms {trace}"
                    )
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        *,
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode()
        writer.write(head + body)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # -- routing ------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            if path == "/v1/healthz":
                if method != "GET":
                    return 405, schemas.error_payload("method-not-allowed", method)
                return 200, {
                    "status": "ok",
                    "uptime_seconds": round(self.uptime_seconds, 3),
                }
            if path == "/v1/statz":
                if method != "GET":
                    return 405, schemas.error_payload("method-not-allowed", method)
                return 200, {
                    "status": "ok",
                    "uptime_seconds": round(self.uptime_seconds, 3),
                    "broker": self.broker.stats,
                }
            if path == "/v1/schedule":
                if method != "POST":
                    return 405, schemas.error_payload("method-not-allowed", method)
                return await self._schedule(body)
            m = _SESSION_RE.match(path)
            if m is not None:
                if method != "POST":
                    return 405, schemas.error_payload("method-not-allowed", method)
                return await self._session_delta(m.group(1), body)
            return 404, schemas.error_payload("unknown-route", f"{method} {path}")
        except ValidationError as exc:
            return 400, schemas.error_payload(exc.code, str(exc), param=exc.param)
        except ServiceError as exc:
            return exc.status, schemas.error_payload(
                exc.code, str(exc), retry_after=exc.retry_after
            )
        except Exception as exc:  # pragma: no cover - defensive catch-all
            return 500, schemas.error_payload("internal-error", str(exc))

    @staticmethod
    def _json(body: bytes) -> Any:
        try:
            return json.loads(body) if body else {}
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"request body is not valid JSON: {exc}", code=schemas.CODE_BAD_JSON
            ) from None

    async def _schedule(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        problem, scheduler, tenant = schemas.parse_schedule_request(self._json(body))
        result = await self.broker.submit(problem, scheduler=scheduler, tenant=tenant)
        return 200, schemas.schedule_payload(
            result["schedule"],
            problem,
            trace_id=result["trace_id"],
            tier=result["tier"],
            coalesced=result["coalesced"],
            wall_seconds=result["wall_seconds"],
        )

    async def _session_delta(
        self, session_id: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        payload = self._json(body)
        if not isinstance(payload, dict) or ("topology" in payload) == (
            "delta" in payload
        ):
            raise ValidationError(
                "session request must contain exactly one of 'topology' "
                "(open) or 'delta' (repair)",
                code=schemas.CODE_BAD_SESSION_REQUEST,
            )
        if "topology" in payload:
            problem = schemas.parse_topology(payload["topology"])
            scheduler = schemas.parse_scheduler(payload)
            result = await self.broker.open_session(
                session_id, problem, scheduler=scheduler
            )
        else:
            delta = schemas.parse_delta(payload["delta"])
            result = await self.broker.apply_delta(session_id, delta)
        schedule = result["schedule"]
        return 200, {
            "trace_id": result["trace_id"],
            "session": session_id,
            "seq": result["seq"],
            "algorithm": schedule.algorithm,
            "active": [int(i) for i in schedule.active],
            "n_active": int(schedule.size),
            "mode": schedule.diagnostics.get("mode"),
        }


def _parse_head(head: bytes) -> Optional[Tuple[str, str, Dict[str, str]]]:
    """``(method, path, lowercase headers)`` or ``None`` when malformed."""
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
        return None
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        return None
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            return None
        headers[name.strip().lower()] = value.strip()
    path = target.split("?", 1)[0]
    return method, path, headers
