"""Parameter-regime summaries.

Everything the paper derives from ``(alpha, gamma_th, eps)`` in one
struct: the interference budget, LDP's square-size factor (paper and
rigorous variants), the per-square capacity ``u``, RLE's elimination
radius across the ``c2`` grid, and both approximation-ratio formulas.
Used by the ``repro constants`` CLI command and handy when choosing
operating points (e.g. "how much bigger do LDP's squares get if I
tighten eps to 1e-3?").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.bounds import (
    ldp_approximation_ratio,
    ldp_beta,
    ldp_rigorous_beta,
    ldp_square_capacity,
    rle_approximation_ratio,
    rle_c1,
)
from repro.core.problem import gamma_epsilon


@dataclass(frozen=True)
class RegimeSummary:
    """Derived constants for one ``(alpha, gamma_th, eps)`` regime."""

    alpha: float
    gamma_th: float
    eps: float
    gamma_eps: float
    ldp_beta: float
    ldp_beta_rigorous: float
    ldp_square_capacity: int
    rle_c1_by_c2: Dict[float, float]
    rle_ratio_by_c2: Dict[float, float]
    ldp_ratio_per_gl: float  # the 16 multiplier: ratio = this * g(L)

    @property
    def budget_vs_deterministic(self) -> float:
        """How much stricter fading is: ``1 / gamma_eps``."""
        return 1.0 / self.gamma_eps


def summarize_regime(
    alpha: float,
    gamma_th: float = 1.0,
    eps: float = 0.01,
    *,
    c2_grid: Sequence[float] = (0.25, 0.5, 0.75),
) -> RegimeSummary:
    """Compute all derived constants for one regime (``alpha > 2``)."""
    g_eps = gamma_epsilon(eps)
    return RegimeSummary(
        alpha=float(alpha),
        gamma_th=float(gamma_th),
        eps=float(eps),
        gamma_eps=g_eps,
        ldp_beta=ldp_beta(alpha, gamma_th, g_eps),
        ldp_beta_rigorous=ldp_rigorous_beta(alpha, gamma_th, g_eps),
        ldp_square_capacity=ldp_square_capacity(alpha, gamma_th, g_eps),
        rle_c1_by_c2={float(c2): rle_c1(alpha, gamma_th, g_eps, c2) for c2 in c2_grid},
        rle_ratio_by_c2={
            float(c2): rle_approximation_ratio(alpha, eps, gamma_th, c2) for c2 in c2_grid
        },
        ldp_ratio_per_gl=ldp_approximation_ratio(1),
    )


def constants_table(
    alphas: Sequence[float] = (2.5, 3.0, 3.5, 4.0, 4.5),
    gamma_th: float = 1.0,
    eps: float = 0.01,
) -> str:
    """Aligned text table of the key constants across an alpha sweep."""
    from repro.experiments.reporting import format_table

    rows = []
    for alpha in alphas:
        s = summarize_regime(alpha, gamma_th, eps)
        rows.append(
            [
                s.alpha,
                s.gamma_eps,
                s.ldp_beta,
                s.ldp_beta_rigorous,
                s.ldp_square_capacity,
                s.rle_c1_by_c2[0.5],
            ]
        )
    return format_table(
        ["alpha", "gamma_eps", "beta (Eq.37)", "beta (rigorous)", "u (Eq.49)", "c1 (c2=0.5)"],
        rows,
        float_fmt="{:.4g}",
    )
