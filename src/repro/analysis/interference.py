"""Interference-field analysis.

Tools for inspecting the interference landscape a schedule creates:

- :func:`interference_field` — the aggregate interference factor a
  hypothetical *probe link* of length ``probe_length`` would see at
  every point of a grid over the region (a heatmap array; plot it or
  feed it to placement logic: "where could one more link still fit?");
- :func:`admissible_fraction` — the fraction of the region where a
  probe link would still be informed (the schedule's *leftover
  capacity* in space);
- :func:`victim_hotspots` — the scheduled receivers closest to their
  budget (the links that will fail first if anything changes).

All field evaluation is a single broadcasting expression over
``(grid points x active senders)``.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.geometry.region import Region


def interference_field(
    problem: FadingRLS,
    schedule: Schedule | np.ndarray,
    region: Region,
    *,
    probe_length: float = 10.0,
    resolution: int = 50,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Aggregate interference factor on a probe receiver over a grid.

    The probe is a hypothetical link of length ``probe_length`` whose
    receiver sits at each grid point; the field value is
    ``sum_i log1p(gamma_th * P_i d_i^-alpha / (P_probe L^-alpha))``
    over the schedule's senders (probe transmit power = the problem's
    uniform ``power``).

    Returns ``(xs, ys, field)`` with ``field`` of shape
    ``(resolution, resolution)`` indexed ``[iy, ix]``.
    """
    if probe_length <= 0:
        raise ValueError("probe_length must be > 0")
    if resolution < 2:
        raise ValueError("resolution must be >= 2")
    active = schedule.active if isinstance(schedule, Schedule) else np.asarray(schedule)
    mask = problem.active_mask(active)
    idx = np.flatnonzero(mask)
    xs = np.linspace(region.xmin, region.xmax, resolution)
    ys = np.linspace(region.ymin, region.ymax, resolution)
    if idx.size == 0:
        return xs, ys, np.zeros((resolution, resolution))
    gx, gy = np.meshgrid(xs, ys)
    points = np.column_stack([gx.ravel(), gy.ravel()])  # (R^2, 2)
    senders = problem.links.senders[idx]
    powers = problem.tx_powers()[idx]
    diff = points[:, None, :] - senders[None, :, :]
    d = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    d = np.maximum(d, 1e-9)  # a probe on top of a sender: huge, not inf
    alpha, gamma = problem.alpha, problem.gamma_th
    probe_mean = problem.power * probe_length**-alpha
    factors = np.log1p(gamma * (powers[None, :] * d**-alpha) / probe_mean)
    field = factors.sum(axis=1).reshape(resolution, resolution)
    return xs, ys, field


def admissible_fraction(
    problem: FadingRLS,
    schedule: Schedule | np.ndarray,
    region: Region,
    *,
    probe_length: float = 10.0,
    resolution: int = 50,
) -> float:
    """Fraction of grid points where a probe link would be informed
    (field value + probe noise factor within ``gamma_eps``)."""
    _, _, field = interference_field(
        problem, schedule, region, probe_length=probe_length, resolution=resolution
    )
    probe_nu = problem.gamma_th * problem.noise * probe_length**problem.alpha / problem.power
    return float(np.mean(field + probe_nu <= problem.gamma_eps))


def victim_hotspots(
    problem: FadingRLS,
    schedule: Schedule | np.ndarray,
    *,
    top_k: int = 5,
) -> List[Tuple[int, float]]:
    """Scheduled links ordered by least remaining budget.

    Returns up to ``top_k`` pairs ``(link index, slack)`` ascending in
    slack (most endangered first).  Slack can be negative for an
    infeasible schedule.
    """
    active = schedule.active if isinstance(schedule, Schedule) else np.asarray(schedule)
    mask = problem.active_mask(active)
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return []
    slack = problem.effective_budgets()[idx] - problem.interference_on(mask)[idx]
    order = np.argsort(slack)
    return [(int(idx[i]), float(slack[i])) for i in order[:top_k]]
