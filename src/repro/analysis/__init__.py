"""Analysis utilities.

- :mod:`repro.analysis.regimes` — derived-constant summaries across
  parameter regimes (what does (alpha, gamma_th, eps) imply for square
  sizes, elimination radii, capacities and ratios?),
- :mod:`repro.analysis.density` — spatial-reuse analysis: analytic
  density ceilings implied by the algorithms' exclusion geometry, and
  empirical density measurement on schedules,
- :mod:`repro.analysis.interference` — interference-field heatmaps,
  leftover spatial capacity, and victim-hotspot ranking.
"""

from repro.analysis.density import (
    empirical_density,
    ldp_density_ceiling,
    rle_density_ceiling,
)
from repro.analysis.interference import (
    admissible_fraction,
    interference_field,
    victim_hotspots,
)
from repro.analysis.regimes import RegimeSummary, constants_table, summarize_regime

__all__ = [
    "RegimeSummary",
    "summarize_regime",
    "constants_table",
    "empirical_density",
    "rle_density_ceiling",
    "ldp_density_ceiling",
    "interference_field",
    "admissible_fraction",
    "victim_hotspots",
]
