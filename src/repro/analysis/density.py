"""Spatial-reuse (density) analysis.

Each algorithm's feasibility argument is an exclusion geometry, which
caps how many links per unit area one slot can carry:

- **RLE** keeps every pair of scheduled senders at least
  ``(c1 - 1) * d_min_link`` apart (Lemma 4.1), so a region of area ``A``
  fits at most roughly ``A / (pi ((c1-1) d / 2)^2)`` links of length
  ``d`` (a circle-packing bound);
- **LDP** schedules at most one link per same-colour square of side
  ``beta_k``, i.e. one per ``4 beta_k^2`` of area for class ``k``.

These ceilings explain the Fig. 6 curves quantitatively (throughput
saturates once the region fills) and give deployment-time answers:
"how many concurrent links can this field support at eps = 0.01?"
:func:`empirical_density` measures the realised density for comparison.
"""

from __future__ import annotations

import numpy as np

from repro.core.bounds import ldp_beta, ldp_square_size, rle_c1
from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule


def rle_density_ceiling(
    alpha: float,
    gamma_th: float,
    gamma_eps: float,
    link_length: float,
    *,
    c2: float = 0.5,
) -> float:
    """Upper bound on RLE's scheduled links per unit area.

    Packing circles of radius ``(c1 - 1) * link_length / 2`` (half the
    Lemma 4.1 separation) around scheduled senders cannot overlap, so
    density <= ``1 / (pi ((c1-1) L / 2)^2)``.
    """
    c1 = rle_c1(alpha, gamma_th, gamma_eps, c2)
    radius = (c1 - 1.0) * link_length / 2.0
    return float(1.0 / (np.pi * radius**2))


def ldp_density_ceiling(
    alpha: float,
    gamma_th: float,
    gamma_eps: float,
    link_length: float,
) -> float:
    """Upper bound on LDP's scheduled links per unit area.

    For a uniform-length workload (``delta = link_length``, class
    ``h = 0``) the cells have side ``beta_0 = 2 * beta * link_length``;
    the winning schedule uses one colour, and each colour owns one cell
    per ``(2 beta_0)^2`` of area with at most one link in it, so

        ``density <= 1 / (4 * beta_0^2) = 1 / (16 beta^2 L^2)``.
    """
    beta = ldp_beta(alpha, gamma_th, gamma_eps)
    side = ldp_square_size(0, link_length, beta)  # 2 * beta * L
    return float(1.0 / (4.0 * side**2))


def empirical_density(problem: FadingRLS, schedule: Schedule, region_area: float) -> float:
    """Realised scheduled-link density (links per unit area)."""
    if region_area <= 0:
        raise ValueError("region_area must be > 0")
    return schedule.size / region_area
