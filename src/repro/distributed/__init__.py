"""Distributed-protocol simulation substrate.

The paper's conclusion references a decentralised scheduler (DLS) whose
description did not survive into the published text.  The library's
:mod:`repro.core.dls` reconstructs its *dynamics* with centralised
matrix algebra; this package provides the honest version: a synchronous
message-passing engine where every link is a node that only sees its
own measurements and received messages.

- :mod:`repro.distributed.engine` — nodes, synchronous rounds, message
  delivery and counting,
- :mod:`repro.distributed.dls_protocol` — DLS implemented as a real
  protocol on that engine; its output distribution matches the
  matrix-based ``dls_schedule`` (tests pin the equivalence for the
  backoff phase), and the engine reports the rounds and messages a
  deployment would pay.
"""

from repro.distributed.dls_protocol import DlsProtocolResult, run_dls_protocol
from repro.distributed.engine import Message, Node, SyncEngine

__all__ = [
    "SyncEngine",
    "Node",
    "Message",
    "run_dls_protocol",
    "DlsProtocolResult",
]
