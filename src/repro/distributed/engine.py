"""Synchronous message-passing engine.

A minimal, dependency-free round-based model:

- a :class:`Node` holds local state and implements ``step(round, inbox)
  -> list[Message]``;
- the :class:`SyncEngine` delivers every round's messages to their
  recipients at the start of the next round (synchronous model), counts
  traffic, and stops when every node reports ``done`` (or a round cap
  hits).

The engine is deliberately tiny — just enough to express contention
protocols like DLS honestly (local state + explicit messages), with
the bookkeeping (messages per round, convergence round) the evaluation
needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass(frozen=True)
class Message:
    """One message: sender id, recipient id, free-form payload."""

    sender: int
    recipient: int
    payload: Any = None


class Node:
    """Base class for protocol participants.

    Subclasses override :meth:`step`; ``self.node_id`` is assigned by
    the engine at registration.
    """

    node_id: int = -1

    def step(self, round_index: int, inbox: Sequence[Message]) -> List[Message]:
        """Process one synchronous round; return outgoing messages."""
        raise NotImplementedError

    @property
    def done(self) -> bool:
        """Whether this node has terminated (engine stops when all are)."""
        return False


@dataclass
class EngineStats:
    """Traffic and convergence bookkeeping."""

    rounds: int = 0
    total_messages: int = 0
    messages_per_round: List[int] = field(default_factory=list)


class SyncEngine:
    """Run nodes in synchronous rounds until all done (or max_rounds)."""

    def __init__(self, nodes: Sequence[Node]):
        self.nodes: List[Node] = list(nodes)
        for i, node in enumerate(self.nodes):
            node.node_id = i
        self.stats = EngineStats()
        self._pending: Dict[int, List[Message]] = {}

    def run(self, *, max_rounds: int = 10_000) -> EngineStats:
        """Execute rounds; raises ``RuntimeError`` on non-termination."""
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        for round_index in range(max_rounds):
            if all(node.done for node in self.nodes):
                return self.stats
            outboxes: List[Message] = []
            for node in self.nodes:
                inbox = self._pending.get(node.node_id, [])
                out = node.step(round_index, inbox)
                for msg in out:
                    if not 0 <= msg.recipient < len(self.nodes):
                        raise ValueError(
                            f"node {node.node_id} addressed unknown node {msg.recipient}"
                        )
                outboxes.extend(out)
            self._pending = {}
            for msg in outboxes:
                self._pending.setdefault(msg.recipient, []).append(msg)
            self.stats.rounds += 1
            self.stats.total_messages += len(outboxes)
            self.stats.messages_per_round.append(len(outboxes))
        if all(node.done for node in self.nodes):
            return self.stats
        raise RuntimeError(f"protocol did not terminate within {max_rounds} rounds")
