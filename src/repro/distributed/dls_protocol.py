"""DLS as an honest message-passing protocol.

Protocol design (local information only):

- every link-node knows its channel gains to its *neighbours* — the
  links whose interference factor on it exceeds a small threshold
  (below the threshold the gain is unmeasurable in practice); the
  neighbour relation and the factors are precomputed by the runner,
  which plays the role of the physical channel;
- rounds alternate **beacon** and **decide**: active nodes beacon their
  neighbours; each node sums the factors of the beacons it heard and,
  if its *margined* budget is exceeded, deactivates with probability
  ``backoff`` — escalating with consecutive violations so dense knots
  melt almost surely;
- a node declares itself done after two consecutive violation-free
  decide rounds with an unchanged neighbourhood — once nothing
  violates, nobody changes state, so the protocol freezes and every
  node detects it locally.

Two deliberate approximations, both *conservative*:

1. interference from non-neighbours (below-threshold factors) is
   invisible to a node, so the node budgets only
   ``(1 - margin) * budget`` for what it can see, with the threshold
   chosen so the invisible remainder can never exceed
   ``margin * budget`` — the output is feasible against the *full*
   interference matrix (tests verify);
2. there is no join phase (a silent node cannot prove the coast is
   clear without global knowledge); the protocol's schedules are
   therefore denser-margined but smaller than
   :func:`repro.core.dls.dls_schedule` with joining.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.distributed.engine import EngineStats, Message, Node, SyncEngine
from repro.utils.rng import SeedLike, spawn_rngs


class _DlsNode(Node):
    """One link of the DLS protocol."""

    def __init__(
        self,
        neighbors: np.ndarray,
        gains_in: dict,
        budget: float,
        backoff: float,
        rng: np.random.Generator,
        initially_active: bool,
    ):
        self.neighbors = neighbors  # node ids I must beacon to
        self.gains_in = gains_in  # sender id -> interference factor on me
        self.budget = budget
        self.backoff = backoff
        self.rng = rng
        self.active = initially_active
        self.violation_streak = 0
        self.calm_rounds = 0
        self._done = False

    def step(self, round_index: int, inbox) -> List[Message]:
        """Even rounds beacon; odd rounds measure and decide."""
        if round_index % 2 == 0:
            # Beacon phase: active nodes announce themselves.  Done
            # nodes keep beaconing — their interference is physical;
            # going silent would make neighbours under-measure.
            if self.active:
                return [Message(self.node_id, int(n), "BEACON") for n in self.neighbors]
            return []
        # Decide phase.
        measured = sum(self.gains_in.get(msg.sender, 0.0) for msg in inbox)
        if self.active and measured > self.budget:
            self.violation_streak += 1
            self.calm_rounds = 0
            # Escalating backoff: stay with prob (1-backoff)^streak.
            if self.rng.uniform() >= (1.0 - self.backoff) ** self.violation_streak:
                self.active = False
        else:
            self.violation_streak = 0
            self.calm_rounds += 1
            if self.calm_rounds >= 2:
                self._done = True
        return []

    @property
    def done(self) -> bool:
        """Terminated: two consecutive calm decide rounds."""
        return self._done


@dataclass(frozen=True)
class DlsProtocolResult:
    """Schedule plus the protocol's operational costs."""

    schedule: Schedule
    rounds: int
    total_messages: int
    mean_neighbors: float


def run_dls_protocol(
    problem: FadingRLS,
    *,
    p0: float = 0.5,
    backoff: float = 0.5,
    margin: float = 0.25,
    max_rounds: int = 20_000,
    seed: SeedLike = None,
) -> DlsProtocolResult:
    """Run the message-passing DLS and return schedule + traffic stats.

    Parameters
    ----------
    p0, backoff:
        Initial activation probability and per-violation deactivation
        probability (escalating with consecutive violations).
    margin:
        Fraction of each budget reserved for invisible (below-threshold)
        interference; the neighbour threshold is
        ``margin * budget / N`` so the reserve is always sufficient.
    max_rounds:
        Engine cap (beacon + decide rounds both count).
    """
    if not 0.0 < p0 <= 1.0:
        raise ValueError(f"p0 must be in (0, 1], got {p0}")
    if not 0.0 < backoff < 1.0:
        raise ValueError(f"backoff must be in (0, 1), got {backoff}")
    if not 0.0 < margin < 1.0:
        raise ValueError(f"margin must be in (0, 1), got {margin}")
    n = problem.n_links
    if n == 0:
        return DlsProtocolResult(Schedule.empty("dls_protocol"), 0, 0, 0.0)
    f = problem.interference_matrix()
    budgets = problem.effective_budgets()
    rngs = spawn_rngs(seed, n + 1)
    init_rng = rngs[-1]

    nodes: List[_DlsNode] = []
    neighbor_counts = []
    for j in range(n):
        budget = float(budgets[j])
        serviceable = budget > 0
        threshold = margin * max(budget, 0.0) / n if serviceable else np.inf
        in_neighbors = np.flatnonzero(f[:, j] > threshold)
        gains_in = {int(i): float(f[i, j]) for i in in_neighbors}
        # Node j must beacon everyone who can hear it above *their* threshold;
        # computed after all thresholds exist, so do a second pass below.
        nodes.append(
            _DlsNode(
                neighbors=np.zeros(0, dtype=np.int64),  # filled in pass 2
                gains_in=gains_in,
                budget=(1.0 - margin) * budget if serviceable else -1.0,
                backoff=backoff,
                rng=rngs[j],
                initially_active=serviceable and bool(init_rng.uniform() < p0),
            )
        )
    # Pass 2: sender i beacons to every j that registered i as a neighbour.
    out_neighbors: List[List[int]] = [[] for _ in range(n)]
    for j, node in enumerate(nodes):
        for i in node.gains_in:
            out_neighbors[i].append(j)
    for i, node in enumerate(nodes):
        node.neighbors = np.asarray(sorted(out_neighbors[i]), dtype=np.int64)
        neighbor_counts.append(len(out_neighbors[i]))

    engine = SyncEngine(nodes)
    stats: EngineStats = engine.run(max_rounds=max_rounds)

    active = np.array([i for i, node in enumerate(nodes) if node.active], dtype=np.int64)
    schedule = Schedule(
        active=active,
        algorithm="dls_protocol",
        diagnostics={
            "rounds": stats.rounds,
            "total_messages": stats.total_messages,
            "margin": margin,
        },
    )
    return DlsProtocolResult(
        schedule=schedule,
        rounds=stats.rounds,
        total_messages=stats.total_messages,
        mean_neighbors=float(np.mean(neighbor_counts)) if neighbor_counts else 0.0,
    )
