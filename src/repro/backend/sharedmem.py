"""Zero-copy shared-memory fan-out for work-unit grids.

The plain executor ships each :class:`~repro.sim.parallel.WorkUnit`
with a workload *factory*: every worker regenerates the link set and
rebuilds the O(N^2) distance and interference-factor matrices — once
per ``(rep, scheduler)`` cell, so a sweep with ``S`` schedulers pays
the F-build ``S`` times per repetition.  The sharedmem backend instead
materialises each repetition's problem **once** in the parent, places
the arrays in ``multiprocessing.shared_memory`` segments, and fans out
:class:`SharedUnit`\\ s that carry only segment names + shapes
(:class:`ShmArrayRef`).  Workers map the segments read-only; the
problem cache is pre-seeded with the shared distance and F matrices, so
no worker ever rebuilds or copies them.

Lifecycle and leak guards
-------------------------
Segments are owned by the parent's :class:`ShmArena`:

- the arena is a context manager; :func:`repro.sim.parallel.execute_units`
  closes it in a ``finally`` even when the map raises;
- an ``atexit`` hook closes any arena that survives to interpreter
  shutdown (crash-path guard), and the chaos suite asserts no segment
  outlives a run even when workers are killed mid-unit;
- on this Python (3.11+ POSIX) *attaching* registers the segment with
  the ``multiprocessing.resource_tracker`` again.  What to do about
  that depends on whose tracker the attaching process talks to.  A
  **fork**-started worker inherits the parent's tracker: the re-register
  is an idempotent set-add and must be left alone — unregistering would
  strip the parent's create-side entry and break its leak guard.  A
  **spawn**-started worker owns a private tracker: there the entry must
  be dropped, or the worker's tracker "cleans up" (unlinks) the parent's
  live segments when the worker exits.  :func:`attach` distinguishes the
  two by whether the process already had a running tracker before its
  first attach (inherited ⇒ shared; fresh ⇒ private).
- workers cache attachments per segment name with a small LRU bound, so
  a long-lived pool serving many repetition groups releases mappings of
  segments the parent has already unlinked instead of pinning their
  memory until pool shutdown.

Interop with the resilient executor: a pool rebuild kills workers
outright; their mappings die with them (the kernel drops the reference
counts), the parent's segments remain valid, and resubmitted units
re-attach in the fresh workers.  The final serial-fallback attempt
attaches from the parent process itself, which is equally valid.
"""

from __future__ import annotations

import atexit
import os
import secrets
import weakref
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.network.links import LinkSet
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.sim.metrics import SimulationResult
from repro.utils.rng import stable_seed


@dataclass(frozen=True)
class ShmArrayRef:
    """A picklable pointer to an array in a shared-memory segment."""

    name: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


#: Arenas still open in this process (leak guard; see :func:`_atexit_sweep`).
_LIVE_ARENAS: "weakref.WeakSet[ShmArena]" = weakref.WeakSet()


def _atexit_sweep() -> None:  # pragma: no cover - crash-path guard
    for arena in list(_LIVE_ARENAS):
        arena.close()


atexit.register(_atexit_sweep)


class ShmArena:
    """Parent-side owner of a set of shared-memory segments.

    ``share`` copies an array into a fresh segment and returns its
    :class:`ShmArrayRef`; ``close`` unlinks everything.  Closing twice
    is safe; segments are unlinked exactly once.
    """

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self._closed = False
        self._seq = 0
        _LIVE_ARENAS.add(self)

    def share(self, array: np.ndarray) -> ShmArrayRef:
        """Materialise ``array`` in a new segment (one copy, at create)."""
        if self._closed:
            raise RuntimeError("arena is closed")
        arr = np.ascontiguousarray(array)
        # Short names keep POSIX shm_open happy on every platform
        # (macOS caps them at 31 chars); the token guards against the
        # pid being recycled while a stale segment lingers.
        name = f"rls{os.getpid() % 1000000}x{self._seq}x{secrets.token_hex(3)}"
        self._seq += 1
        seg = shared_memory.SharedMemory(name=name, create=True, size=max(1, arr.nbytes))
        self._segments.append(seg)
        if arr.nbytes:
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
            view[...] = arr
        obs_metrics.inc("backend.shm_segments_created")
        obs_metrics.inc("backend.shm_bytes_shared", int(arr.nbytes))
        return ShmArrayRef(name=seg.name, shape=tuple(arr.shape), dtype=arr.dtype.str)

    def segment_names(self) -> List[str]:
        """Names of the segments this arena currently owns."""
        return [seg.name for seg in self._segments]

    def close(self) -> None:
        """Unlink every owned segment (idempotent, best-effort)."""
        if self._closed:
            return
        self._closed = True
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
                obs_metrics.inc("backend.shm_segments_unlinked")
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()
        _LIVE_ARENAS.discard(self)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-path guard
        try:
            self.close()
        except Exception:
            pass


#: Worker-side attachment cache: segment name -> (handle, read-only array).
#: Segments are immutable once shared, so a worker maps each one once and
#: serves every subsequent unit from the same mapping (zero copies).  The
#: cache is insertion-ordered and LRU-bounded: one payload attaches five
#: segments, so the bound keeps dozens of recent groups hot while letting
#: a long-lived pool drop mappings of segments already unlinked upstream.
_ATTACHED: Dict[str, Tuple[shared_memory.SharedMemory, np.ndarray]] = {}
_ATTACH_CACHE_MAX = 64

#: Lazily computed, once per process: does this process own a *private*
#: resource tracker (spawn-started worker), in which case attach-side
#: registrations must be dropped?  ``None`` = not yet decided.  Inherited
#: trackers (fork workers, the parent itself) already hold the create-side
#: entry, and unregistering there would strip the parent's leak guard.
_PRIVATE_TRACKER: Optional[bool] = None


def _has_private_tracker() -> bool:
    global _PRIVATE_TRACKER
    if _PRIVATE_TRACKER is None:
        tracker = getattr(resource_tracker, "_resource_tracker", None)
        # A tracker with a live fd was started before this call — either
        # by this process (parent creating segments) or pre-fork (shared
        # with the parent).  A fresh spawn-started worker has no fd yet.
        _PRIVATE_TRACKER = getattr(tracker, "_fd", None) is None
    return _PRIVATE_TRACKER


def attach(ref: ShmArrayRef) -> np.ndarray:
    """Map a shared array read-only (cached per process)."""
    cached = _ATTACHED.pop(ref.name, None)
    if cached is not None:
        _ATTACHED[ref.name] = cached  # refresh LRU position
        obs_metrics.inc("backend.shm_attach_hits")
        return cached[1]
    # Decide tracker ownership *before* SharedMemory() lazily starts one.
    private_tracker = _has_private_tracker()
    seg = shared_memory.SharedMemory(name=ref.name)
    if private_tracker:
        try:
            # This spawn-started worker's own tracker would unlink the
            # parent's segment at worker exit; drop the attach-side entry.
            resource_tracker.unregister(seg._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:  # pragma: no cover - tracker variations
            pass
    arr = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf)
    arr.setflags(write=False)
    while len(_ATTACHED) >= _ATTACH_CACHE_MAX:
        oldest = next(iter(_ATTACHED))
        old_seg, _ = _ATTACHED.pop(oldest)
        try:
            old_seg.close()
        except Exception:  # pragma: no cover - best-effort eviction
            pass
    _ATTACHED[ref.name] = (seg, arr)
    obs_metrics.inc("backend.shm_attaches")
    return arr


def detach_all() -> None:
    """Drop this process's attachment cache (tests / explicit cleanup)."""
    for seg, _ in _ATTACHED.values():
        try:
            seg.close()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
    _ATTACHED.clear()


@dataclass(frozen=True)
class SharedProblemPayload:
    """Everything a worker needs to reconstruct a problem, zero-copy.

    Geometry, distance matrix, and F matrix live in shared segments;
    scalars travel inline.  ``build_problem`` attaches the arrays and
    pre-seeds the :class:`FadingRLS` cache, so the worker never runs
    the O(N^2) builds.
    """

    senders: ShmArrayRef
    receivers: ShmArrayRef
    rates: ShmArrayRef
    distances: ShmArrayRef
    fmatrix: ShmArrayRef
    alpha: float
    gamma_th: float
    eps: float
    noise: float

    def build_problem(self) -> FadingRLS:
        """Attach the shared arrays and assemble a cache-seeded problem."""
        with span("backend.shm_attach", n=self.fmatrix.shape[0]):
            links = LinkSet(
                senders=attach(self.senders),
                receivers=attach(self.receivers),
                rates=attach(self.rates),
            )
            problem = FadingRLS(
                links=links,
                alpha=self.alpha,
                gamma_th=self.gamma_th,
                eps=self.eps,
                noise=self.noise,
            )
            problem._cache["distances"] = attach(self.distances)
            problem._cache["F"] = attach(self.fmatrix)
        return problem


@dataclass(frozen=True)
class SharedUnit:
    """A work unit whose problem lives in shared memory.

    Mirrors :class:`~repro.sim.parallel.WorkUnit` minus the workload
    factory (the parent already ran it) plus the shared payload.  Seeds
    still derive from the unit identity, so results are bit-identical
    to the plain executor's.
    """

    tag: Any
    rep: int
    name: str
    scheduler: Callable[..., Schedule]
    payload: SharedProblemPayload
    n_trials: int
    root_seed: int
    scheduler_kwargs: Mapping[str, Any] = field(default_factory=dict)
    noise: float = 0.0
    max_bytes: Optional[int] = None
    channel: Optional[str] = None
    power_policy: str = "uniform"


def execute_shared_unit(unit: SharedUnit) -> SimulationResult:
    """Run one :class:`SharedUnit` — the sharedmem worker function."""
    from repro.backend import base
    from repro.core.powercontrol import run_scheduler_with_power
    from repro.sim.montecarlo import simulate_schedule

    with base.use("sharedmem"):
        with span("parallel.unit", rep=unit.rep, algorithm=unit.name):
            problem = unit.payload.build_problem()
            with span("scheduler.run", algorithm=unit.name):
                # Re-powering drops the shared F cache (with_powers), so
                # the non-uniform policies rebuild F from the attached
                # distances — the same bits the plain executor computes.
                schedule, powered = run_scheduler_with_power(
                    problem,
                    unit.scheduler,
                    unit.power_policy,
                    dict(unit.scheduler_kwargs),
                )
            obs_metrics.inc("scheduler.links_admitted", schedule.size)
            return simulate_schedule(
                powered,
                schedule,
                n_trials=unit.n_trials,
                seed=stable_seed("fading", unit.rep, unit.name, root=unit.root_seed),
                max_bytes=unit.max_bytes,
                channel=unit.channel,
            )


def materialize_units(units) -> Tuple[List[SharedUnit], ShmArena]:
    """Build each distinct problem once and share it across its units.

    Units are grouped by everything that determines their problem
    (repetition, root seed, workload identity, channel parameters); one
    :class:`SharedProblemPayload` per group backs every unit in it.
    The caller owns the returned arena and must ``close()`` it after
    the map completes (segments must outlive the last worker attach).
    """
    from repro.sim.parallel import _describe_callable

    arena = ShmArena()
    payloads: Dict[Tuple, SharedProblemPayload] = {}
    shared: List[SharedUnit] = []
    try:
        with span("backend.shm_materialize", units=len(units)):
            for unit in units:
                key = (
                    unit.rep,
                    unit.root_seed,
                    _describe_callable(unit.workload),
                    unit.alpha,
                    unit.gamma_th,
                    unit.eps,
                    unit.noise,
                )
                payload = payloads.get(key)
                if payload is None:
                    links = unit.workload(
                        stable_seed("workload", unit.rep, root=unit.root_seed)
                    )
                    problem = FadingRLS(
                        links=links,
                        alpha=unit.alpha,
                        gamma_th=unit.gamma_th,
                        eps=unit.eps,
                        noise=unit.noise,
                    )
                    payload = SharedProblemPayload(
                        senders=arena.share(links.senders),
                        receivers=arena.share(links.receivers),
                        rates=arena.share(links.rates),
                        distances=arena.share(problem.distances()),
                        fmatrix=arena.share(problem.interference_matrix()),
                        alpha=unit.alpha,
                        gamma_th=unit.gamma_th,
                        eps=unit.eps,
                        noise=unit.noise,
                    )
                    payloads[key] = payload
                    obs_metrics.inc("backend.problems_shared")
                shared.append(
                    SharedUnit(
                        tag=unit.tag,
                        rep=unit.rep,
                        name=unit.name,
                        scheduler=unit.scheduler,
                        payload=payload,
                        n_trials=unit.n_trials,
                        root_seed=unit.root_seed,
                        scheduler_kwargs=unit.scheduler_kwargs,
                        noise=unit.noise,
                        max_bytes=unit.max_bytes,
                        channel=unit.channel,
                        power_policy=unit.power_policy,
                    )
                )
    except Exception:
        arena.close()
        raise
    return shared, arena
