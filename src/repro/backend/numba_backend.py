"""Optional numba (``@njit``) kernels for the F-build and feasibility.

Import-guarded: the module always imports, exposing
:data:`NUMBA_AVAILABLE`; the kernels raise a clear error when numba is
missing, and :func:`repro.backend.base.resolve` turns that into an
automatic fallback to the numpy backend.

Bit-identity notes
------------------
The compiled F-build applies exactly the reference's scalar operation
chain per cell — ``(d_jj / d_ij) ** alpha``, optional ``* (P_i / P_j)``,
then ``log1p(gamma_th * r)`` — so on platforms where numpy's float64
``power``/``log1p`` loops call the same libm the compiled code does
(the common case: CPython manylinux wheels + glibc), the matrix is
bit-identical to :func:`repro.backend.kernels.fmatrix`; the
``backend-vs-numpy`` differential check enforces this wherever numba is
installed.  The feasibility kernel accumulates the gathered column sums
sequentially, which can differ from numpy's pairwise reduction by
O(ulp) — like every backend, it is pinned on the *verdict*, not the
partial sums.

Monte-Carlo stays on the numpy kernel for all backends: the RNG stream
layout (one exponential stream in C order, diagonal interleaved — see
:mod:`repro.channel.sampling`) is a seed-compatibility contract, and a
compiled sampler could not consume ``numpy.random.Generator`` streams
identically.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    NUMBA_AVAILABLE = True
except Exception:  # pragma: no cover - the common (bare) environment
    njit = None
    NUMBA_AVAILABLE = False


if NUMBA_AVAILABLE:  # pragma: no cover - compiled path, covered in CI

    @njit(cache=True)
    def _fmatrix_uniform(d: np.ndarray, alpha: float, gamma_th: float) -> np.ndarray:
        n = d.shape[0]
        out = np.empty((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(n):
                if i == j:
                    out[i, j] = 0.0
                else:
                    r = (d[j, j] / d[i, j]) ** alpha
                    out[i, j] = np.log1p(gamma_th * r)
        return out

    @njit(cache=True)
    def _fmatrix_powers(
        d: np.ndarray, alpha: float, gamma_th: float, p: np.ndarray
    ) -> np.ndarray:
        n = d.shape[0]
        out = np.empty((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(n):
                if i == j:
                    out[i, j] = 0.0
                else:
                    r = (d[j, j] / d[i, j]) ** alpha
                    r = r * (p[i] / p[j])
                    out[i, j] = np.log1p(gamma_th * r)
        return out

    @njit(cache=True)
    def _feasible(
        f: np.ndarray, idx: np.ndarray, budgets: np.ndarray, tol: float
    ) -> bool:
        k = idx.shape[0]
        for a in range(k):
            j = idx[a]
            load = 0.0
            for b in range(k):
                load += f[idx[b], j]
            if load > budgets[j] + tol:
                return False
        return True


def _require_numba() -> None:
    if not NUMBA_AVAILABLE:
        raise ModuleNotFoundError(
            "numba is not installed; use the numpy or sharedmem backend"
        )


def fmatrix(
    distances: np.ndarray,
    alpha: float,
    gamma_th: float,
    powers: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Compiled Eq. 17 F-matrix build (signature of ``kernels.fmatrix``)."""
    _require_numba()
    d = np.ascontiguousarray(distances, dtype=float)
    n = d.shape[0]
    if d.shape != (n, n):
        raise ValueError(f"distances must be square, got {d.shape}")
    if n == 0:
        return np.zeros((0, 0), dtype=float)
    if powers is None:
        return _fmatrix_uniform(d, float(alpha), float(gamma_th))
    p = np.ascontiguousarray(powers, dtype=float).reshape(-1)
    if p.shape[0] != n:
        raise ValueError(f"powers has length {p.shape[0]}, expected {n}")
    if np.any(p <= 0):
        raise ValueError("powers must be positive")
    return _fmatrix_powers(d, float(alpha), float(gamma_th), p)


def feasible_verdict(
    f: np.ndarray,
    idx: np.ndarray,
    budgets: np.ndarray,
    tol: float = 1e-12,
) -> bool:
    """Compiled Corollary 3.1 verdict (signature of ``kernels.feasible_verdict``)."""
    _require_numba()
    idx = np.ascontiguousarray(idx, dtype=np.int64).reshape(-1)
    if idx.size == 0:
        return True
    return bool(
        _feasible(
            np.ascontiguousarray(f, dtype=float),
            idx,
            np.ascontiguousarray(budgets, dtype=float),
            float(tol),
        )
    )


def warmup(n: int = 8) -> None:
    """Trigger JIT compilation off the measured path (benchmarks, CI)."""
    _require_numba()
    d = np.abs(np.random.default_rng(0).normal(5.0, 1.0, size=(n, n))) + 1.0
    f = fmatrix(d, 3.0, 1.0)
    fmatrix(d, 3.0, 1.0, powers=np.ones(n))
    feasible_verdict(f, np.arange(n), np.full(n, 1.0))
