"""Pluggable compute backends for the scheduling/simulation hot path.

A :class:`ComputeBackend` bundles the three kernel entry points the
rest of the library dispatches through (F-matrix build, Corollary 3.1
feasibility verdict, Monte-Carlo chunk reduction) plus a flag telling
the executor layer whether work units should fan out through the
zero-copy shared-memory plane (:mod:`repro.backend.sharedmem`).

Three backends ship:

``numpy``
    The reference: vectorised numpy kernels
    (:mod:`repro.backend.kernels`), plain pickling fan-out.  Always
    available; every other backend is pinned bit-identical to it by the
    ``backend-vs-numpy`` differential check.
``sharedmem``
    Same numpy kernels, but :func:`repro.sim.parallel.execute_units`
    materialises each repetition's problem (coordinates, distance
    matrix, F matrix) **once** in the parent and shares it with workers
    through ``multiprocessing.shared_memory`` — work units cross the
    process boundary carrying segment names instead of arrays.
``numba``
    Optional ``@njit``-compiled F-build and feasibility kernels
    (:mod:`repro.backend.numba_backend`), import-guarded: resolving it
    on a machine without numba falls back to ``numpy`` with a logged
    reason instead of failing.

Selection model
---------------
The active backend is **process-level state** (like the observability
switch): :func:`set_active` installs one, :func:`use` scopes one to a
``with`` block, and :meth:`FadingRLS.interference_matrix` /
``is_feasible`` / ``simulate_trials`` consult :func:`get_active` at
call time.  Worker processes re-install the backend named by their
:class:`~repro.sim.parallel.WorkUnit`, so selection survives the pool
boundary.  Resolution never raises for a *known but unavailable*
backend — it degrades to ``numpy`` and records the reason (the
``backend.fallbacks`` counter and the returned reason string); unknown
names raise ``ValueError`` listing the registry.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.backend import kernels
from repro.obs import metrics as obs_metrics

#: Names accepted by configs and ``--backend`` (registration order).
BACKEND_NAMES: Tuple[str, ...] = ("numpy", "sharedmem", "numba")


class ComputeBackend:
    """One compute-backend implementation (see the module docstring).

    Parameters
    ----------
    name:
        Registry key (``"numpy"``, ``"sharedmem"``, ``"numba"``).
    fmatrix, feasible_verdict, mc_success_chunk:
        Kernel callables with the signatures of their
        :mod:`repro.backend.kernels` references.
    shared_fanout:
        Whether :func:`repro.sim.parallel.execute_units` should route
        unit grids through the shared-memory plane.
    """

    def __init__(
        self,
        name: str,
        *,
        fmatrix: Callable[..., np.ndarray] = kernels.fmatrix,
        feasible_verdict: Callable[..., bool] = kernels.feasible_verdict,
        mc_success_chunk: Callable[..., np.ndarray] = kernels.mc_success_chunk,
        shared_fanout: bool = False,
    ) -> None:
        self.name = name
        self.fmatrix = fmatrix
        self.feasible_verdict = feasible_verdict
        self.mc_success_chunk = mc_success_chunk
        self.shared_fanout = shared_fanout

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ComputeBackend({self.name!r})"


def _numpy_backend() -> ComputeBackend:
    return ComputeBackend("numpy")


def _sharedmem_backend() -> ComputeBackend:
    # Kernels are the numpy reference; only the fan-out plane differs.
    return ComputeBackend("sharedmem", shared_fanout=True)


def _numba_backend() -> ComputeBackend:
    from repro.backend import numba_backend

    if not numba_backend.NUMBA_AVAILABLE:
        raise ModuleNotFoundError(
            "numba is not installed; the numba backend needs it "
            "(pip install numba, or use --backend numpy/sharedmem)"
        )
    return ComputeBackend(
        "numba",
        fmatrix=numba_backend.fmatrix,
        feasible_verdict=numba_backend.feasible_verdict,
    )


#: Lazy constructors — a backend's imports only run when it is resolved.
_FACTORIES: Dict[str, Callable[[], ComputeBackend]] = {
    "numpy": _numpy_backend,
    "sharedmem": _sharedmem_backend,
    "numba": _numba_backend,
}

_instances: Dict[str, ComputeBackend] = {}
_active: Optional[ComputeBackend] = None


def available_backends() -> Tuple[str, ...]:
    """Registry names that resolve on this machine, in registry order."""
    out = []
    for name in BACKEND_NAMES:
        backend, reason = resolve(name)
        if reason is None and backend.name == name:
            out.append(name)
    return tuple(out)


def resolve(name: Optional[str]) -> Tuple[ComputeBackend, Optional[str]]:
    """Resolve a backend name, degrading to numpy when unavailable.

    Returns ``(backend, fallback_reason)``; ``fallback_reason`` is
    ``None`` when the requested backend resolved as asked.  ``None`` or
    ``"auto"`` mean "the default" (numpy).  Unknown names raise.
    """
    if name is None or name == "auto":
        name = "numpy"
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown backend {name!r}; choose from {', '.join(BACKEND_NAMES)}"
        )
    if name in _instances:
        return _instances[name], None
    try:
        backend = _FACTORIES[name]()
    except Exception as exc:
        reason = f"backend {name!r} unavailable ({exc}); falling back to numpy"
        obs_metrics.inc("backend.fallbacks")
        return resolve("numpy")[0], reason
    _instances[name] = backend
    return backend, None


def get_active() -> ComputeBackend:
    """The backend current computations dispatch through."""
    global _active
    if _active is None:
        _active = resolve("numpy")[0]
    return _active


def set_active(name: Optional[str]) -> Tuple[ComputeBackend, Optional[str]]:
    """Install the process-level active backend (with auto-fallback).

    Returns the same ``(backend, fallback_reason)`` pair as
    :func:`resolve` so callers can surface the degradation to the user.
    """
    global _active
    backend, reason = resolve(name)
    _active = backend
    obs_metrics.inc("backend.selects")
    return backend, reason


@contextmanager
def use(name: Optional[str]) -> Iterator[ComputeBackend]:
    """Scope the active backend to a ``with`` block, then restore."""
    global _active
    previous = _active
    backend, _ = set_active(name)
    try:
        yield backend
    finally:
        _active = previous
