"""Allocation-conscious numpy kernels shared by every compute backend.

These are the reference implementations of the three hot-path
computations the backend layer (:mod:`repro.backend.base`) dispatches:

- :func:`fmatrix` — the Eq. 17 interference-factor matrix build,
  operation-for-operation identical to the historical
  :func:`repro.core.problem.interference_factors` body (that function
  now delegates here through the active backend);
- :func:`active_interference` / :func:`feasible_verdict` — the
  Corollary 3.1 feasibility check restricted to the active set.  Where
  :meth:`FadingRLS.interference_on` reduces a full ``(N,)`` masked
  matvec (O(N^2)), the verdict only needs the ``K = |P|`` active
  columns, so the kernel gathers the ``(K, K)`` sub-matrix and reduces
  it — O(K^2) — which is the single biggest win for the schedulers'
  ``K << N`` regime;
- :class:`MCScratch` + :func:`mc_success_chunk` — the Monte-Carlo
  success reduction for one streamed fading chunk, writing through
  preallocated buffers so the per-chunk temporaries (interference sums,
  SINR, positivity mask) are materialised once per replay instead of
  once per chunk.

Bit-identity contract
---------------------
``mc_success_chunk`` produces the *same bits* as the historical
``instantaneous_sinr(z) >= gamma_th`` path: the reductions use the same
numpy pairwise summation (``np.sum`` with ``out=`` equals the allocating
form), division happens only where the denominator is positive, and
zero-denominator receivers decode with SINR ``inf`` exactly as before.
``feasible_verdict`` reproduces the historical *verdict* (a boolean),
not the historical partial sums: summing ``K`` gathered rows groups the
pairwise reduction differently from the masked ``N``-row matvec, so the
float loads may differ by O(ulp) — every consumer of float interference
sums (:meth:`FadingRLS.interference_on`, the incremental ledger) keeps
its original reduction, and only the threshold comparisons route here.
:func:`gathered_interference` is the ledger's shared sub-matrix
reduction, bit-identical to the expression the incremental engine has
always used.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def fmatrix(
    distances: np.ndarray,
    alpha: float,
    gamma_th: float,
    powers: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Interference-factor matrix ``F`` (Eq. 17) — numpy reference.

    ``F[i, j] = ln(1 + gamma_th * (P_i d_ij^-alpha)/(P_j d_jj^-alpha))``
    for ``i != j``, ``F[i, i] = 0``.  The arithmetic (including operation
    order) is the contract every backend must reproduce bit-for-bit.
    """
    d = np.asarray(distances, dtype=float)
    n = d.shape[0]
    if d.shape != (n, n):
        raise ValueError(f"distances must be square, got {d.shape}")
    if n == 0:
        return np.zeros((0, 0), dtype=float)
    own = np.diag(d)
    ratio = (own[None, :] / d) ** alpha
    if powers is not None:
        p = np.asarray(powers, dtype=float).reshape(-1)
        if p.shape[0] != n:
            raise ValueError(f"powers has length {p.shape[0]}, expected {n}")
        if np.any(p <= 0):
            raise ValueError("powers must be positive")
        ratio = ratio * (p[:, None] / p[None, :])
    f = np.log1p(gamma_th * ratio)
    np.fill_diagonal(f, 0.0)
    return f


def gathered_interference(
    f: np.ndarray, rows: np.ndarray, cols: np.ndarray
) -> np.ndarray:
    """Column sums of ``F`` over a row subset, at selected columns.

    ``out[c] = sum_{i in rows} F[i, cols[c]]`` — the incremental
    ledger's refresh expression, shared here so every backend and the
    engine agree on the reduction (numpy pairwise summation over the
    gathered block, exactly ``f[np.ix_(rows, cols)].sum(axis=0)``).
    """
    return f[np.ix_(rows, cols)].sum(axis=0)


def active_interference(f: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Interference load at each *active* receiver from the active set.

    ``out[a] = sum_{i in idx} F[i, idx[a]]`` — the O(K^2) gathered form
    of the Corollary 3.1 left-hand side (``F`` has a zero diagonal, so
    a receiver never counts itself).  Returns ``(K,)`` floats aligned
    with ``idx``.
    """
    idx = np.asarray(idx, dtype=np.int64).reshape(-1)
    if idx.size == 0:
        return np.zeros(0, dtype=float)
    return np.add.reduce(f[np.ix_(idx, idx)], axis=0)


def feasible_verdict(
    f: np.ndarray,
    idx: np.ndarray,
    budgets: np.ndarray,
    tol: float = 1e-12,
) -> bool:
    """Corollary 3.1 verdict for an active index set.

    True iff every active receiver's gathered interference load fits
    its effective budget (``gamma_eps - nu_j``) within ``tol``.  The
    empty set is trivially feasible.
    """
    idx = np.asarray(idx, dtype=np.int64).reshape(-1)
    if idx.size == 0:
        return True
    load = active_interference(f, idx)
    return bool(np.all(load <= budgets[idx] + tol))


class MCScratch:
    """Reusable reduction buffers for a Monte-Carlo replay.

    One replay streams equal-size fading chunks (the tail chunk may be
    smaller); the scratch allocates its ``(T_c, K)`` buffers on first
    use and hands out views, so subsequent chunks reduce with **zero**
    new array allocations.  Not thread-safe; use one scratch per replay
    (or per worker — shapes re-grow on demand).
    """

    __slots__ = ("_interference", "_sinr", "_positive")

    def __init__(self) -> None:
        self._interference: Optional[np.ndarray] = None
        self._sinr: Optional[np.ndarray] = None
        self._positive: Optional[np.ndarray] = None

    def buffers(self, t: int, k: int):
        """``(interference, sinr, positive)`` views of shape ``(t, k)``."""
        cur = self._interference
        if cur is None or cur.shape[0] < t or cur.shape[1] != k:
            rows = t if cur is None or cur.shape[1] != k else max(t, cur.shape[0])
            self._interference = np.empty((rows, k), dtype=float)
            self._sinr = np.empty((rows, k), dtype=float)
            self._positive = np.empty((rows, k), dtype=bool)
        return (
            self._interference[:t],
            self._sinr[:t],
            self._positive[:t],
        )


def mc_success_chunk(
    z: np.ndarray,
    gamma_th: float,
    noise: float,
    out: np.ndarray,
    scratch: Optional[MCScratch] = None,
) -> np.ndarray:
    """Per-trial decode successes for one ``(T_c, K, K)`` fading chunk.

    Writes ``out[t, a] = (SINR of active link a in trial t) >= gamma_th``
    into the caller's boolean slab and returns it.  Bit-identical to
    ``instantaneous_sinr(z, noise=noise) >= gamma_th`` (see the module
    docstring); with a :class:`MCScratch` the reduction allocates
    nothing beyond the scratch's one-time buffers.
    """
    zz = np.asarray(z, dtype=float)
    if zz.ndim != 3 or zz.shape[1] != zz.shape[2]:
        raise ValueError(f"z must have shape (T, K, K), got {zz.shape}")
    t_c, k = zz.shape[0], zz.shape[1]
    if out.shape != (t_c, k):
        raise ValueError(f"out must have shape ({t_c}, {k}), got {out.shape}")
    if scratch is None:
        scratch = MCScratch()
    interference, sinr, positive = scratch.buffers(t_c, k)
    signal = np.diagonal(zz, axis1=1, axis2=2)
    np.sum(zz, axis=1, out=interference)
    np.subtract(interference, signal, out=interference)
    np.add(interference, noise, out=interference)  # denom = I + N0
    np.greater(interference, 0.0, out=positive)
    sinr.fill(np.inf)  # zero-denominator receivers decode: SINR = inf
    np.divide(signal, interference, out=sinr, where=positive)
    np.greater_equal(sinr, gamma_th, out=out)
    return out
