"""Pluggable compute backends (numpy / sharedmem / numba).

See :mod:`repro.backend.base` for the selection model and
:mod:`repro.backend.kernels` for the reference kernels.  The
shared-memory fan-out plane lives in :mod:`repro.backend.sharedmem`;
it is imported lazily (it depends on the core problem types) — import
it directly rather than through this package root.
"""

from repro.backend.base import (  # noqa: F401
    BACKEND_NAMES,
    ComputeBackend,
    available_backends,
    get_active,
    resolve,
    set_active,
    use,
)

__all__ = [
    "BACKEND_NAMES",
    "ComputeBackend",
    "available_backends",
    "get_active",
    "resolve",
    "set_active",
    "use",
]
