"""Workload analyzers: delay/backlog statistics and stability sweeps.

Three layers on top of :func:`repro.workload.queues.simulate_workload`:

- :func:`summarize_workload` reduces one trajectory to the reporting
  statistics (delay percentiles, backlog averages, drift);
- :func:`sweep_rates` fans one scenario out over an offered-load grid
  (``arrivals.scaled(factor)`` per point) through
  :func:`repro.sim.parallel.parallel_map` — each point's seed is
  derived from the *factor value*, not the execution order, so the
  sweep is bit-identical for every ``n_jobs``;
- :func:`stability_region` locates the empirical divergence threshold
  lambda* by a coarse geometric probe grid followed by bisection on
  the bracketing interval, reporting the estimate in both scale-factor
  and packets/link/slot units.

Divergence verdict
------------------
An unstable queueing system drifts: total backlog grows linearly at
rate ``(offered - served)`` once the scheduler saturates.  The verdict
(:func:`is_divergent`) therefore requires **both** a positive tail
drift (:func:`drift_estimate`, least-squares slope over the trailing
half of the horizon, normalised per link) and a final backlog well
above the per-link noise floor — either alone misfires on short
horizons (a lucky burst inflates the final backlog; a draining warmup
inflates the slope).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import base as backend_base
from repro.core.problem import FadingRLS
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.sim.parallel import parallel_map
from repro.utils.rng import stable_seed
from repro.workload.generators import ArrivalProcess
from repro.workload.queues import WorkloadResult, simulate_workload

__all__ = [
    "WorkloadStats",
    "StabilityEstimate",
    "drift_estimate",
    "is_divergent",
    "summarize_workload",
    "sweep_rates",
    "stability_region",
]


@dataclass(frozen=True)
class WorkloadStats:
    """Scalar summary of one workload trajectory (reporting payload)."""

    n_slots: int
    n_links: int
    policy: str
    algorithm: str
    arrived: int
    served: int
    dropped: int
    failed: int
    delivery_ratio: float
    mean_delay: float
    p50_delay: float
    p95_delay: float
    p99_delay: float
    mean_backlog: float
    final_backlog: int
    drift: float

    def to_dict(self) -> dict:
        """JSON-ready dict (NaN delays become ``None``)."""
        out = {}
        for key in self.__dataclass_fields__:
            value = getattr(self, key)
            if isinstance(value, float) and not np.isfinite(value):
                value = None
            out[key] = value
        return out


def drift_estimate(result: WorkloadResult, *, tail: float = 0.5) -> float:
    """Least-squares backlog growth rate, packets/slot/link.

    Fits a line to the total-backlog trajectory over the trailing
    ``tail`` fraction of the horizon (the quasi-stationary part) and
    normalises the slope by the number of links.  Positive drift means
    offered load exceeds served capacity.
    """
    if not 0.0 < tail <= 1.0:
        raise ValueError(f"tail must be in (0, 1], got {tail}")
    total = result.total_backlog
    start = int(np.floor(result.n_slots * (1.0 - tail)))
    window = total[start:]
    if window.size < 2 or result.n_links == 0:
        return 0.0
    t = np.arange(window.size, dtype=float)
    slope = float(np.polyfit(t, window.astype(float), 1)[0])
    return slope / result.n_links


def is_divergent(
    result: WorkloadResult,
    *,
    drift_tol: float = 0.02,
    backlog_floor: float = 4.0,
) -> bool:
    """Divergence verdict: positive tail drift AND elevated final backlog.

    ``drift_tol`` is in packets/slot/link; ``backlog_floor`` scales the
    per-link final-backlog threshold.  See the module docstring for why
    both conditions are required.
    """
    if result.n_slots == 0 or result.n_links == 0:
        return False
    drifting = drift_estimate(result) > drift_tol
    backlogged = result.final_backlog > backlog_floor * result.n_links
    return bool(drifting and backlogged)


def summarize_workload(result: WorkloadResult, *, warmup: int = 0) -> WorkloadStats:
    """Reduce a trajectory to its scalar reporting statistics."""
    return WorkloadStats(
        n_slots=result.n_slots,
        n_links=result.n_links,
        policy=result.policy,
        algorithm=result.algorithm,
        arrived=result.arrived,
        served=result.served,
        dropped=result.dropped,
        failed=result.failed,
        delivery_ratio=result.delivery_ratio,
        mean_delay=result.mean_delay,
        p50_delay=result.delay_percentile(50),
        p95_delay=result.delay_percentile(95),
        p99_delay=result.delay_percentile(99),
        mean_backlog=result.mean_backlog(warmup),
        final_backlog=result.final_backlog,
        drift=drift_estimate(result),
    )


@dataclass(frozen=True)
class _SweepPoint:
    """One picklable offered-load probe (crosses the pool boundary)."""

    problem: FadingRLS
    arrivals: ArrivalProcess
    scheduler: str
    factor: float
    n_slots: int
    seed: int
    policy: str
    max_queue: Optional[int]
    backend: str
    scheduler_kwargs: Tuple[Tuple[str, object], ...] = ()


def _point_seed(root: int, factor: float) -> int:
    # Identity-derived from the factor *value* (shortest-repr float
    # formatting is canonical), never from grid position — inserting or
    # reordering probes cannot change any existing probe's trajectory.
    return stable_seed("workload.sweep", repr(float(factor)), root=root)


def _simulate_point(point: _SweepPoint) -> WorkloadResult:
    with backend_base.use(point.backend):
        return simulate_workload(
            point.problem,
            point.arrivals.scaled(point.factor),
            point.scheduler,
            n_slots=point.n_slots,
            seed=_point_seed(point.seed, point.factor),
            policy=point.policy,
            max_queue=point.max_queue,
            scheduler_kwargs=dict(point.scheduler_kwargs),
        )


def sweep_rates(
    problem: FadingRLS,
    arrivals: ArrivalProcess,
    scheduler: str = "rle",
    factors: Sequence[float] = (0.5, 1.0, 2.0),
    *,
    n_slots: int = 200,
    seed: int = 0,
    policy: str = "backlogged",
    max_queue: Optional[int] = None,
    n_jobs: Optional[int] = 1,
    scheduler_kwargs: Optional[dict] = None,
) -> List[WorkloadResult]:
    """Simulate the scenario at every offered-load factor, in parallel.

    Each point runs ``arrivals.scaled(factor)`` with a seed derived
    from the factor value, so the returned trajectories are
    **bit-identical** for every ``n_jobs`` (the property suite asserts
    byte equality across 1/2/4).  ``scheduler`` must be a registry name
    (the point must pickle for ``n_jobs > 1``).
    """
    points = [
        _SweepPoint(
            problem=problem,
            arrivals=arrivals,
            scheduler=scheduler,
            factor=float(f),
            n_slots=n_slots,
            seed=seed,
            policy=policy,
            max_queue=max_queue,
            backend=backend_base.get_active().name,
            scheduler_kwargs=tuple(sorted((scheduler_kwargs or {}).items())),
        )
        for f in factors
    ]
    with span("workload.sweep", points=len(points), policy=policy):
        results = parallel_map(_simulate_point, points, n_jobs=n_jobs)
    obs_metrics.inc("workload.sweep_points", len(points))
    return results


@dataclass(frozen=True)
class StabilityEstimate:
    """Empirical stability-region estimate from probe + bisection.

    Attributes
    ----------
    factor_lo / factor_hi:
        The final bracket: the largest factor observed stable and the
        smallest observed divergent.  When the sweep never observed one
        side, that bound is the sweep limit and ``bracketed`` is False.
    factor_star:
        Point estimate of the critical scale factor (bracket midpoint).
    lam_star:
        The same estimate in packets/link/slot
        (``factor_star * base_rate``).
    base_rate:
        The unscaled generator's mean rate, packets/link/slot.
    bracketed:
        Whether divergence was actually bracketed inside the sweep
        range (a False value means ``factor_star`` is a one-sided
        bound, not an interior estimate).
    probes:
        Every ``(factor, drift, final_backlog, divergent)`` evaluated,
        in evaluation order (grid first, then bisection).
    """

    factor_lo: float
    factor_hi: float
    factor_star: float
    lam_star: float
    base_rate: float
    bracketed: bool
    probes: Tuple[Tuple[float, float, int, bool], ...] = field(repr=False)

    def to_dict(self) -> dict:
        """JSON-serialisable form, with probes expanded to records."""
        return {
            "factor_lo": self.factor_lo,
            "factor_hi": self.factor_hi,
            "factor_star": self.factor_star,
            "lam_star": self.lam_star,
            "base_rate": self.base_rate,
            "bracketed": self.bracketed,
            "n_probes": len(self.probes),
            "probes": [
                {
                    "factor": f,
                    "drift": drift,
                    "final_backlog": backlog,
                    "divergent": divergent,
                }
                for f, drift, backlog, divergent in self.probes
            ],
        }


def stability_region(
    problem: FadingRLS,
    arrivals: ArrivalProcess,
    scheduler: str = "rle",
    *,
    factor_lo: float = 0.1,
    factor_hi: float = 8.0,
    n_grid: int = 5,
    max_iter: int = 8,
    rel_tol: float = 0.05,
    n_slots: int = 300,
    seed: int = 0,
    policy: str = "backlogged",
    n_jobs: Optional[int] = 1,
    scheduler_kwargs: Optional[dict] = None,
    drift_tol: float = 0.02,
    backlog_floor: float = 4.0,
) -> StabilityEstimate:
    """Locate the empirical divergence threshold by grid + bisection.

    Phase 1 probes a geometric grid of ``n_grid`` factors across
    ``[factor_lo, factor_hi]`` (fanned out over ``n_jobs``); phase 2
    bisects the first stable/divergent bracket until the interval
    shrinks below ``rel_tol`` relatively or ``max_iter`` probes are
    spent.  Every probe's seed derives from its factor value, so the
    estimate is independent of ``n_jobs`` and probe order.

    Queues must be unbounded here: a finite ``max_queue`` converts
    overload into drops instead of drift and hides divergence, so this
    sweep always runs without a queue cap.
    """
    if not 0 < factor_lo < factor_hi:
        raise ValueError(
            f"need 0 < factor_lo < factor_hi, got {factor_lo}, {factor_hi}"
        )
    if n_grid < 2:
        raise ValueError(f"n_grid must be >= 2, got {n_grid}")
    base_rate = arrivals.mean_rate()
    if not base_rate > 0:
        raise ValueError("arrivals.mean_rate() must be > 0 to sweep load")

    probes: List[Tuple[float, float, int, bool]] = []

    def record(factor: float, result: WorkloadResult) -> bool:
        divergent = is_divergent(
            result, drift_tol=drift_tol, backlog_floor=backlog_floor
        )
        probes.append(
            (float(factor), drift_estimate(result), result.final_backlog, divergent)
        )
        return divergent

    with span("workload.stability", grid=n_grid, max_iter=max_iter):
        grid = np.geomspace(factor_lo, factor_hi, n_grid)
        results = sweep_rates(
            problem,
            arrivals,
            scheduler,
            grid,
            n_slots=n_slots,
            seed=seed,
            policy=policy,
            max_queue=None,
            n_jobs=n_jobs,
            scheduler_kwargs=scheduler_kwargs,
        )
        verdicts = [record(f, r) for f, r in zip(grid, results)]

        # Bracket: last stable factor before the first divergent one.
        first_div = next((i for i, v in enumerate(verdicts) if v), None)
        if first_div is None:
            # Stable everywhere we looked: lambda* is at least factor_hi.
            estimate = StabilityEstimate(
                factor_lo=float(grid[-1]),
                factor_hi=float(factor_hi),
                factor_star=float(factor_hi),
                lam_star=float(factor_hi) * base_rate,
                base_rate=base_rate,
                bracketed=False,
                probes=tuple(probes),
            )
        elif first_div == 0:
            # Divergent already at the bottom of the range.
            estimate = StabilityEstimate(
                factor_lo=float(factor_lo),
                factor_hi=float(grid[0]),
                factor_star=float(factor_lo),
                lam_star=float(factor_lo) * base_rate,
                base_rate=base_rate,
                bracketed=False,
                probes=tuple(probes),
            )
        else:
            lo = float(grid[first_div - 1])
            hi = float(grid[first_div])
            for _ in range(max_iter):
                if (hi - lo) <= rel_tol * hi:
                    break
                mid = 0.5 * (lo + hi)
                result = _simulate_point(
                    _SweepPoint(
                        problem=problem,
                        arrivals=arrivals,
                        scheduler=scheduler,
                        factor=mid,
                        n_slots=n_slots,
                        seed=seed,
                        policy=policy,
                        max_queue=None,
                        backend=backend_base.get_active().name,
                        scheduler_kwargs=tuple(
                            sorted((scheduler_kwargs or {}).items())
                        ),
                    )
                )
                if record(mid, result):
                    hi = mid
                else:
                    lo = mid
            mid = 0.5 * (lo + hi)
            estimate = StabilityEstimate(
                factor_lo=lo,
                factor_hi=hi,
                factor_star=mid,
                lam_star=mid * base_rate,
                base_rate=base_rate,
                bracketed=True,
                probes=tuple(probes),
            )
    obs_metrics.inc("workload.stability_probes", len(probes))
    return estimate
