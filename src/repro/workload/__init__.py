"""Traffic-driven workloads: arrivals, slotted queues, stability.

The workload subsystem (ROADMAP O2) turns one-shot scheduling into the
queueing setting of "Wireless Network Stability in the SINR Model":

- :mod:`repro.workload.generators` — declarative per-link arrival
  processes (Poisson, bursty on/off, diurnal, adversarial spikes),
  bit-reproducible under the identity-derived seed contract;
- :mod:`repro.workload.queues` — the slotted FIFO queue simulator
  coupling arrivals to the repo's schedulers (one-shot, multislot
  cover, incremental under churn) through Monte-Carlo fading;
- :mod:`repro.workload.analyzers` — delay/backlog statistics, drift
  estimation, offered-load sweeps and the empirical stability-region
  bisection;
- :mod:`repro.workload.scenario` — JSON scenario configs and the
  end-to-end runner behind ``repro traffic``.
"""

from repro.workload.analyzers import (
    StabilityEstimate,
    WorkloadStats,
    drift_estimate,
    is_divergent,
    stability_region,
    summarize_workload,
    sweep_rates,
)
from repro.workload.generators import (
    ARRIVAL_FAMILIES,
    ArrivalProcess,
    DiurnalArrivals,
    OnOffArrivals,
    PoissonArrivals,
    SpikeArrivals,
    arrivals_from_spec,
    spec_of,
)
from repro.workload.queues import POLICIES, WorkloadResult, simulate_workload
from repro.workload.scenario import WorkloadScenario, run_scenario

__all__ = [
    "ARRIVAL_FAMILIES",
    "ArrivalProcess",
    "DiurnalArrivals",
    "OnOffArrivals",
    "POLICIES",
    "PoissonArrivals",
    "SpikeArrivals",
    "StabilityEstimate",
    "WorkloadResult",
    "WorkloadScenario",
    "WorkloadStats",
    "arrivals_from_spec",
    "drift_estimate",
    "is_divergent",
    "run_scenario",
    "simulate_workload",
    "spec_of",
    "stability_region",
    "summarize_workload",
    "sweep_rates",
]
