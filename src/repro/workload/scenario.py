"""Declarative workload scenarios: one JSON dict -> one traffic run.

A :class:`WorkloadScenario` is the config-file surface of the workload
subsystem: topology + channel + arrival process + service policy +
stability-sweep knobs, all plain JSON values, round-tripping through
:meth:`~WorkloadScenario.to_dict` / :meth:`~WorkloadScenario.from_dict`.
``repro traffic --config scenario.json`` (and
:func:`run_scenario` programmatically) executes one end-to-end:
simulate the base trajectory, summarise it, and — unless disabled —
sweep the offered load for the empirical stability region.

Example scenario file::

    {
      "name": "paper-12-poisson",
      "topology": "paper", "n_links": 12, "topology_seed": 1,
      "alpha": 3.0, "gamma_th": 1.0, "eps": 0.05,
      "arrivals": {"family": "poisson", "rate": 0.05},
      "scheduler": "rle", "policy": "backlogged",
      "n_slots": 300, "seed": 0,
      "stability": {"factor_lo": 0.1, "factor_hi": 8.0}
    }

Unknown keys anywhere in the dict raise (scenario files are interfaces;
typos must not silently fall back to defaults — same contract as
:func:`repro.workload.generators.arrivals_from_spec`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, Optional

from repro.core.problem import FadingRLS
from repro.network.links import LinkSet
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.workload.analyzers import (
    stability_region,
    summarize_workload,
)
from repro.workload.generators import (
    ArrivalProcess,
    PoissonArrivals,
    arrivals_from_spec,
    spec_of,
)
from repro.workload.queues import POLICIES, simulate_workload

__all__ = ["TOPOLOGIES", "WorkloadScenario", "run_scenario"]

#: Topology families a scenario may name (mirrors the CLI generators).
TOPOLOGIES = ("paper", "clustered", "grid", "chain", "exponential")

#: Stability-sweep knobs accepted in the ``stability`` sub-dict, with
#: their defaults (None = derive at run time).
_STABILITY_DEFAULTS: Dict[str, Any] = {
    "factor_lo": 0.1,
    "factor_hi": 8.0,
    "n_grid": 5,
    "max_iter": 8,
    "rel_tol": 0.05,
    "n_slots": None,  # default: the scenario's own n_slots
    "drift_tol": 0.02,
    "backlog_floor": 4.0,
}


def make_topology(name: str, n: int, seed: int) -> LinkSet:
    """Build a named topology (the library-level twin of the CLI switch)."""
    from repro.network import topology as topo

    if name == "paper":
        return topo.paper_topology(n, seed=seed)
    if name == "clustered":
        return topo.clustered_topology(n, seed=seed)
    if name == "grid":
        side = max(1, int(round(n**0.5)))
        return topo.grid_topology(side, seed=seed)
    if name == "chain":
        return topo.chain_topology(n)
    if name == "exponential":
        return topo.exponential_length_topology(n, seed=seed)
    raise ValueError(f"unknown topology {name!r}; choose from {TOPOLOGIES}")


@dataclass(frozen=True)
class WorkloadScenario:
    """One declarative traffic experiment (see the module docstring)."""

    name: str = "scenario"
    topology: str = "paper"
    n_links: int = 12
    topology_seed: int = 1
    alpha: float = 3.0
    gamma_th: float = 1.0
    eps: float = 0.05
    noise: float = 0.0
    power: float = 1.0
    arrivals: ArrivalProcess = field(default_factory=PoissonArrivals)
    scheduler: str = "rle"
    scheduler_kwargs: Dict[str, Any] = field(default_factory=dict)
    policy: str = "backlogged"
    n_slots: int = 300
    seed: int = 0
    warmup: int = 0
    max_queue: Optional[int] = None
    #: None disables the stability sweep; a dict overrides
    #: :data:`_STABILITY_DEFAULTS` entries.
    stability: Optional[Dict[str, Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; choose from {TOPOLOGIES}"
            )
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; choose from {POLICIES}"
            )
        if self.n_slots < 0:
            raise ValueError(f"n_slots must be >= 0, got {self.n_slots}")
        if not 0 <= self.warmup <= self.n_slots:
            raise ValueError(
                f"warmup must be in [0, n_slots={self.n_slots}], got {self.warmup}"
            )
        if not isinstance(self.arrivals, ArrivalProcess):
            raise TypeError(
                f"arrivals must be an ArrivalProcess, got "
                f"{type(self.arrivals).__name__}"
            )
        if self.stability is not None:
            unknown = sorted(set(self.stability) - set(_STABILITY_DEFAULTS))
            if unknown:
                raise ValueError(
                    f"unknown stability option(s) {unknown}; "
                    f"accepted: {sorted(_STABILITY_DEFAULTS)}"
                )

    # -- construction ---------------------------------------------------

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkloadScenario":
        """Build from a plain JSON dict; unknown keys raise."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown scenario key(s) {unknown}; accepted: {sorted(known)}"
            )
        params = dict(data)
        if "arrivals" in params and isinstance(params["arrivals"], dict):
            params["arrivals"] = arrivals_from_spec(params["arrivals"])
        return cls(**params)

    @classmethod
    def from_json(cls, path: str | Path) -> "WorkloadScenario":
        """Load a scenario file."""
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready round-trip dict (``from_dict(to_dict(s)) == s``)."""
        out: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = spec_of(value) if f.name == "arrivals" else value
        return out

    # -- execution ------------------------------------------------------

    def build_links(self) -> LinkSet:
        """Materialise the declared topology."""
        return make_topology(self.topology, self.n_links, self.topology_seed)

    def build_problem(self) -> FadingRLS:
        """Materialise the scheduling instance (topology + channel)."""
        return FadingRLS(
            links=self.build_links(),
            alpha=self.alpha,
            gamma_th=self.gamma_th,
            eps=self.eps,
            noise=self.noise,
            power=self.power,
        )

    def stability_options(self) -> Optional[Dict[str, Any]]:
        """The resolved sweep knobs, or None when the sweep is disabled."""
        if self.stability is None:
            return None
        options = dict(_STABILITY_DEFAULTS)
        options.update(self.stability)
        if options["n_slots"] is None:
            options["n_slots"] = self.n_slots
        return options


def run_scenario(
    scenario: WorkloadScenario,
    *,
    n_jobs: Optional[int] = 1,
    cache=None,
) -> Dict[str, Any]:
    """Execute one scenario end-to-end; returns the JSON-ready payload.

    The payload carries the scenario echo (provenance), the base
    trajectory's summary statistics, and — when the scenario enables it
    — the stability-region estimate.  Every random draw derives from
    the scenario's seeds, so the payload is bit-reproducible for any
    ``n_jobs``.  ``cache`` optionally routes the base trajectory's
    per-slot scheduler runs through a
    :class:`~repro.cache.store.ScheduleCache` (its hit/miss statistics
    join the payload; the stability sweep stays uncached — it fans out
    over processes).
    """
    problem = scenario.build_problem()
    with span("workload.scenario", scenario=scenario.name, links=problem.n_links):
        result = simulate_workload(
            problem,
            scenario.arrivals,
            scenario.scheduler,
            n_slots=scenario.n_slots,
            seed=scenario.seed,
            policy=scenario.policy,
            max_queue=scenario.max_queue,
            scheduler_kwargs=scenario.scheduler_kwargs,
            cache=cache,
        )
        stats = summarize_workload(result, warmup=scenario.warmup)
        options = scenario.stability_options()
        estimate = None
        if options is not None:
            sweep_slots = options.pop("n_slots")
            estimate = stability_region(
                problem,
                scenario.arrivals,
                scenario.scheduler,
                n_slots=sweep_slots,
                seed=scenario.seed,
                policy=scenario.policy,
                n_jobs=n_jobs,
                scheduler_kwargs=scenario.scheduler_kwargs,
                **options,
            )
    obs_metrics.inc("workload.scenarios_run")
    payload = {
        "scenario": scenario.to_dict(),
        "stats": stats.to_dict(),
        "stability": None if estimate is None else estimate.to_dict(),
    }
    if cache is not None:
        cache.flush()
        payload["cache"] = cache.stats
    return payload
