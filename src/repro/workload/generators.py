"""Stochastic per-link packet-arrival processes.

The workload layer turns the repo's one-shot scheduling experiments
into the traffic-driven setting of "Wireless Network Stability in the
SINR Model" (Ásgeirsson-Halldórsson-Mitra): per-link packet arrivals
over a slotted horizon, served by a scheduler each slot.  This module
supplies the arrival side as declarative, config-constructible
generators:

``poisson``
    Independent Poisson(rate) arrivals per link per slot — the
    memoryless baseline every stability result is stated against.
``onoff``
    A two-state Markov-modulated Poisson process (bursty MMPP): each
    link flips between an *on* state (rate ``rate_on``) and an *off*
    state (rate ``rate_off``) with per-slot transition probabilities.
    Burst lengths are geometric; the long-run mean rate is
    ``duty * rate_on + (1 - duty) * rate_off``.
``diurnal``
    Poisson arrivals whose rate follows a raised-cosine day curve
    between ``base_rate`` and ``peak_rate`` with period ``period``
    slots — the workload shape of daily user traffic.
``spikes``
    Adversarial load: Poisson background at ``base_rate`` plus a
    deterministic burst of ``spike_size`` packets on every link, every
    ``spike_every`` slots — the worst case for drain scheduling
    because the spikes are perfectly synchronised.

Determinism contract
--------------------
``sample(n_links, n_slots, seed)`` is a pure function of the
generator's parameters and its arguments.  Every generator derives one
``numpy`` PCG64 stream from the seed and draws the whole
``(n_slots, n_links)`` trace in a single fixed C-order pass, so traces
are **bit-reproducible** across processes, platforms and ``n_jobs``
values (the golden-trace tests under ``tests/goldens/`` pin the exact
bytes).  Generators are frozen dataclasses of plain floats — picklable
for process fan-out, hashable for caching.

``scaled(factor)`` returns a copy with every rate multiplied by
``factor``; the stability analyzer sweeps this scalar to locate the
divergence threshold (see :mod:`repro.workload.analyzers`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Type

import numpy as np

from repro.utils.rng import as_rng

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "OnOffArrivals",
    "DiurnalArrivals",
    "SpikeArrivals",
    "ARRIVAL_FAMILIES",
    "arrivals_from_spec",
    "spec_of",
]


def _check_rate(value: float, name: str) -> None:
    if not value >= 0.0:  # also catches NaN
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def _check_shape(n_links: int, n_slots: int) -> None:
    if n_links < 0:
        raise ValueError(f"n_links must be >= 0, got {n_links}")
    if n_slots < 0:
        raise ValueError(f"n_slots must be >= 0, got {n_slots}")


class ArrivalProcess:
    """Base protocol: a deterministic packet-arrival trace factory.

    Subclasses are frozen dataclasses whose :meth:`sample` draws a
    ``(n_slots, n_links)`` int64 matrix of per-slot packet counts as a
    pure function of ``(parameters, n_links, n_slots, seed)``.
    """

    #: Registry name; set by each concrete family.
    family: str = "abstract"

    def sample(self, n_links: int, n_slots: int, *, seed: int) -> np.ndarray:
        """Draw the ``(n_slots, n_links)`` int64 packet-count trace."""
        raise NotImplementedError

    def scaled(self, factor: float) -> "ArrivalProcess":
        """A copy with every rate multiplied by ``factor`` (>= 0)."""
        raise NotImplementedError

    def mean_rate(self) -> float:
        """Long-run expected packets per link per slot."""
        raise NotImplementedError


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Independent Poisson arrivals at ``rate`` packets/link/slot."""

    rate: float = 0.05
    family = "poisson"

    def __post_init__(self) -> None:
        _check_rate(self.rate, "rate")

    def sample(self, n_links: int, n_slots: int, *, seed: int) -> np.ndarray:
        """One i.i.d. Poisson draw per (slot, link) cell."""
        _check_shape(n_links, n_slots)
        rng = as_rng(seed)
        return rng.poisson(self.rate, size=(n_slots, n_links)).astype(np.int64)

    def scaled(self, factor: float) -> "PoissonArrivals":
        """A copy with ``rate`` multiplied by ``factor``."""
        _check_rate(factor, "factor")
        return replace(self, rate=self.rate * factor)

    def mean_rate(self) -> float:
        """Exactly ``rate``."""
        return self.rate


@dataclass(frozen=True)
class OnOffArrivals(ArrivalProcess):
    """Bursty two-state MMPP: per-link on/off Markov chain x Poisson.

    Each link's state chain starts *off*, flips off->on with
    probability ``p_on`` and on->off with probability ``p_off`` per
    slot, and emits Poisson(``rate_on``) packets while on and
    Poisson(``rate_off``) while off.  The stationary duty cycle is
    ``p_on / (p_on + p_off)`` (0 when both are 0).
    """

    rate_on: float = 0.5
    rate_off: float = 0.0
    p_on: float = 0.1
    p_off: float = 0.3
    family = "onoff"

    def __post_init__(self) -> None:
        _check_rate(self.rate_on, "rate_on")
        _check_rate(self.rate_off, "rate_off")
        for name in ("p_on", "p_off"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v!r}")

    @property
    def duty(self) -> float:
        denom = self.p_on + self.p_off
        return self.p_on / denom if denom > 0 else 0.0

    def sample(self, n_links: int, n_slots: int, *, seed: int) -> np.ndarray:
        """Per-link on/off chains, then Poisson counts at the state rate."""
        _check_shape(n_links, n_slots)
        rng = as_rng(seed)
        # Fixed draw order: all state-transition uniforms first, then
        # all Poisson counts — one C-order pass each, so the trace
        # bytes never depend on how the consumer chunks the horizon.
        flips = rng.random(size=(n_slots, n_links))
        on = np.zeros((n_slots, n_links), dtype=bool)
        state = np.zeros(n_links, dtype=bool)
        for t in range(n_slots):
            state = np.where(state, flips[t] >= self.p_off, flips[t] < self.p_on)
            on[t] = state
        lam = np.where(on, self.rate_on, self.rate_off)
        return rng.poisson(lam).astype(np.int64)

    def scaled(self, factor: float) -> "OnOffArrivals":
        """A copy with both state rates multiplied by ``factor``."""
        _check_rate(factor, "factor")
        return replace(
            self, rate_on=self.rate_on * factor, rate_off=self.rate_off * factor
        )

    def mean_rate(self) -> float:
        """Duty-weighted average of the on and off rates."""
        d = self.duty
        return d * self.rate_on + (1.0 - d) * self.rate_off


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Poisson arrivals with a raised-cosine day curve.

    The per-slot rate is
    ``base_rate + (peak_rate - base_rate) * (1 - cos(2 pi t / period)) / 2``
    — it starts at ``base_rate`` (t = 0), peaks at ``peak_rate`` half a
    period later, and averages ``(base_rate + peak_rate) / 2``.
    """

    base_rate: float = 0.02
    peak_rate: float = 0.1
    period: int = 100
    family = "diurnal"

    def __post_init__(self) -> None:
        _check_rate(self.base_rate, "base_rate")
        _check_rate(self.peak_rate, "peak_rate")
        if self.period < 1:
            raise ValueError(f"period must be >= 1, got {self.period}")

    def rate_at(self, t: np.ndarray | int) -> np.ndarray:
        """The modulated rate at slot(s) ``t``."""
        phase = 2.0 * np.pi * np.asarray(t, dtype=float) / self.period
        return self.base_rate + (self.peak_rate - self.base_rate) * 0.5 * (
            1.0 - np.cos(phase)
        )

    def sample(self, n_links: int, n_slots: int, *, seed: int) -> np.ndarray:
        """Poisson draws at the slot-dependent :meth:`rate_at` rate."""
        _check_shape(n_links, n_slots)
        rng = as_rng(seed)
        lam = np.broadcast_to(
            self.rate_at(np.arange(n_slots))[:, None], (n_slots, n_links)
        )
        return rng.poisson(lam).astype(np.int64)

    def scaled(self, factor: float) -> "DiurnalArrivals":
        """A copy with base and peak rates multiplied by ``factor``."""
        _check_rate(factor, "factor")
        return replace(
            self,
            base_rate=self.base_rate * factor,
            peak_rate=self.peak_rate * factor,
        )

    def mean_rate(self) -> float:
        """The raised-cosine average ``(base_rate + peak_rate) / 2``."""
        return 0.5 * (self.base_rate + self.peak_rate)


@dataclass(frozen=True)
class SpikeArrivals(ArrivalProcess):
    """Adversarial synchronised spike train over a Poisson background.

    Every ``spike_every`` slots (at ``t = offset, offset + spike_every,
    ...``) every link receives ``spike_size`` extra packets in the same
    slot — the perfectly correlated burst that maximises instantaneous
    backlog for a given mean rate.  ``spike_size`` is real-valued under
    :meth:`scaled`; the integer part arrives deterministically and the
    fractional remainder as an independent Bernoulli per link.
    """

    base_rate: float = 0.01
    spike_size: float = 3.0
    spike_every: int = 50
    offset: int = 0
    family = "spikes"

    def __post_init__(self) -> None:
        _check_rate(self.base_rate, "base_rate")
        _check_rate(self.spike_size, "spike_size")
        if self.spike_every < 1:
            raise ValueError(f"spike_every must be >= 1, got {self.spike_every}")
        if not 0 <= self.offset < self.spike_every:
            raise ValueError(
                f"offset must be in [0, spike_every), got {self.offset}"
            )

    def sample(self, n_links: int, n_slots: int, *, seed: int) -> np.ndarray:
        """Poisson background plus deterministic spikes every period."""
        _check_shape(n_links, n_slots)
        rng = as_rng(seed)
        out = rng.poisson(self.base_rate, size=(n_slots, n_links)).astype(np.int64)
        whole = int(np.floor(self.spike_size))
        frac = self.spike_size - whole
        spike_slots = np.arange(self.offset, n_slots, self.spike_every)
        if spike_slots.size:
            out[spike_slots] += whole
            if frac > 0.0:
                extra = rng.random(size=(spike_slots.size, n_links)) < frac
                out[spike_slots] += extra.astype(np.int64)
        return out

    def scaled(self, factor: float) -> "SpikeArrivals":
        """A copy with background and spike size multiplied by ``factor``."""
        _check_rate(factor, "factor")
        return replace(
            self,
            base_rate=self.base_rate * factor,
            spike_size=self.spike_size * factor,
        )

    def mean_rate(self) -> float:
        """Background rate plus the amortised per-slot spike mass."""
        return self.base_rate + self.spike_size / self.spike_every


#: Registry: family name -> generator class (declarative-config keys).
ARRIVAL_FAMILIES: Dict[str, Type[ArrivalProcess]] = {
    "poisson": PoissonArrivals,
    "onoff": OnOffArrivals,
    "diurnal": DiurnalArrivals,
    "spikes": SpikeArrivals,
}


def arrivals_from_spec(spec: Dict[str, Any]) -> ArrivalProcess:
    """Build a generator from a declarative spec dict.

    The spec carries a ``family`` key naming the registry entry plus
    that family's constructor parameters, e.g.
    ``{"family": "poisson", "rate": 0.05}``.  Unknown families and
    unknown parameters raise ``ValueError`` (typos in scenario configs
    must not silently fall back to defaults).
    """
    if "family" not in spec:
        raise ValueError(
            f"arrival spec needs a 'family' key; choose from "
            f"{sorted(ARRIVAL_FAMILIES)}"
        )
    family = spec["family"]
    if family not in ARRIVAL_FAMILIES:
        raise ValueError(
            f"unknown arrival family {family!r}; choose from "
            f"{sorted(ARRIVAL_FAMILIES)}"
        )
    cls = ARRIVAL_FAMILIES[family]
    known = {f.name for f in fields(cls)}
    params = {k: v for k, v in spec.items() if k != "family"}
    unknown = sorted(set(params) - known)
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {unknown} for arrival family {family!r}; "
            f"accepted: {sorted(known)}"
        )
    return cls(**params)


def spec_of(process: ArrivalProcess) -> Dict[str, Any]:
    """The declarative spec that reconstructs ``process`` (round-trip)."""
    out: Dict[str, Any] = {"family": process.family}
    for f in fields(process):
        out[f.name] = getattr(process, f.name)
    return out
