"""Slotted queue simulator: arrivals x scheduler x fading, over time.

The coupling loop of the workload subsystem.  Each slot ``t``:

1. **arrivals** — the trace row ``arrivals[t]`` (drawn once, up front,
   by an :class:`~repro.workload.generators.ArrivalProcess`) joins each
   link's FIFO queue, subject to an optional per-link capacity
   (``max_queue``; overflow packets are *dropped* and counted);
2. **scheduling** — a service policy picks a feasible transmission set
   among the backlogged links:

   - ``backlogged`` (default): run the one-shot scheduler on the
     sub-instance induced by the backlogged links (the classic
     queue-aware setting of the paper's refs [2], [3]);
   - ``multislot``: build one cover frame of *all* links up front via
     :func:`repro.core.multislot.multislot_schedule` and serve slot
     ``t`` with frame slot ``t mod n_frame`` restricted to backlogged
     links (TDMA-style, no per-slot scheduler runs);
   - ``incremental``: maintain an
     :class:`~repro.core.incremental.IncrementalScheduler` over the
     *backlogged* link set, feeding it remove/insert
     :class:`~repro.network.delta.LinkDelta`\\ s as queues drain and
     fill — link churn driven by the traffic itself;

3. **transmission** — one Monte-Carlo fading realisation (through the
   active :mod:`repro.backend` kernels, bit-identical across backends)
   decides per-link success; each scheduled link attempts its
   head-of-line packet, successes drain the FIFO, failures stay queued
   and retry.

Determinism contract
--------------------
The whole trajectory is a pure function of
``(problem, arrivals, scheduler, policy, n_slots, seed)``.  All
randomness is *identity-derived* via
:func:`~repro.utils.rng.stable_seed`: the arrival trace from
``("workload.arrivals", seed)`` and each slot's fading draw from
``("workload.fading", t, seed)`` — never from a shared sequential
stream — so trajectories are **bit-identical** across compute
backends, process boundaries and any ``n_jobs`` fan-out of a
surrounding sweep.  The property suite asserts equality on
:meth:`WorkloadResult.trajectory_bytes`, not closeness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

import numpy as np

from repro.core.base import get_scheduler
from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.network.delta import LinkDelta
from repro.network.links import LinkSet
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.sim.montecarlo import simulate_slot
from repro.utils.rng import stable_seed
from repro.workload.generators import ArrivalProcess

__all__ = ["POLICIES", "WorkloadResult", "simulate_workload"]

#: Service-policy names accepted by :func:`simulate_workload`.
POLICIES = ("backlogged", "multislot", "incremental")

SchedulerLike = Union[str, Callable[..., Schedule]]


@dataclass(frozen=True)
class WorkloadResult:
    """Full trajectory record of one workload simulation.

    Attributes
    ----------
    n_slots, n_links:
        Horizon and instance size.
    policy, algorithm:
        Service policy and underlying scheduler name.
    arrived / served / dropped / failed:
        Total packets generated, delivered, dropped at a full queue,
        and failed transmission attempts (failures lose slots, not
        packets).
    queue_trajectory : (n_slots, n_links) int64
        Per-link queue length at the *end* of each slot — the
        bit-identity anchor of the determinism contract.
    scheduled_per_slot : (n_slots,) int64
        Transmission attempts per slot (the scheduled backlogged set).
    served_per_slot : (n_slots,) int64
        Successful deliveries per slot.
    delays : (served,) int64
        Slots-in-system of every delivered packet, in delivery order.
    per_link_arrived / per_link_served / per_link_dropped : (n_links,) int64
        Per-link totals (conservation: ``arrived = served + dropped +
        final queue``, per link and in total).
    """

    n_slots: int
    n_links: int
    policy: str
    algorithm: str
    arrived: int
    served: int
    dropped: int
    failed: int
    queue_trajectory: np.ndarray = field(repr=False)
    scheduled_per_slot: np.ndarray = field(repr=False)
    served_per_slot: np.ndarray = field(repr=False)
    delays: np.ndarray = field(repr=False)
    per_link_arrived: np.ndarray = field(repr=False)
    per_link_served: np.ndarray = field(repr=False)
    per_link_dropped: np.ndarray = field(repr=False)

    @property
    def total_backlog(self) -> np.ndarray:
        """(n_slots,) total queued packets after each slot."""
        return self.queue_trajectory.sum(axis=1)

    @property
    def final_backlog(self) -> int:
        """Total queued packets at the end of the horizon."""
        if self.n_slots == 0:
            return 0
        return int(self.queue_trajectory[-1].sum())

    def mean_backlog(self, warmup: int = 0) -> float:
        """Time-averaged total backlog, excluding ``warmup`` slots."""
        if not 0 <= warmup <= self.n_slots:
            raise ValueError(f"warmup must be in [0, {self.n_slots}], got {warmup}")
        counted = self.total_backlog[warmup:]
        return float(counted.mean()) if counted.size else 0.0

    @property
    def mean_delay(self) -> float:
        """Mean slots-in-system of delivered packets (NaN if none)."""
        return float(self.delays.mean()) if self.delays.size else float("nan")

    def delay_percentile(self, q: float) -> float:
        """The ``q``-th percentile of delivered-packet delay (NaN if none)."""
        if not self.delays.size:
            return float("nan")
        return float(np.percentile(self.delays, q))

    @property
    def delivery_ratio(self) -> float:
        """Delivered fraction of all arrivals (1.0 when none arrived)."""
        return self.served / self.arrived if self.arrived else 1.0

    def trajectory_bytes(self) -> bytes:
        """Canonical bytes of the queue trajectory (C-order int64).

        The invariance tests compare exactly these bytes across
        backends and ``n_jobs`` values.
        """
        return np.ascontiguousarray(self.queue_trajectory, dtype=np.int64).tobytes()


class _BackloggedPolicy:
    """Per-slot one-shot scheduling of the backlogged sub-instance.

    With a :class:`~repro.cache.store.ScheduleCache` attached, each
    slot's restricted sub-instance is answered through the cache: a
    heavy-traffic stream keeps re-scheduling the *same* backlogged
    sets, so steady state serves from bit-identical exact hits instead
    of scheduler runs.  Schedules do not depend on the fading channel,
    so the cache is channel-agnostic here by construction.
    """

    def __init__(self, problem: FadingRLS, scheduler, kwargs: dict, cache=None) -> None:
        self._problem = problem
        self._scheduler = scheduler
        self._kwargs = kwargs
        self._cache = cache

    def choose(self, t: int, backlogged: np.ndarray) -> np.ndarray:
        if not backlogged.size:
            return backlogged
        sub = self._problem.restrict(backlogged)
        if self._cache is not None:
            sched = self._cache.schedule(sub, self._scheduler, scheduler_kwargs=self._kwargs)
        else:
            sched = self._scheduler(sub, **self._kwargs)
        return backlogged[sched.active]


class _MultislotPolicy:
    """TDMA-style service from a fixed multi-slot cover frame."""

    def __init__(self, problem: FadingRLS, scheduler, kwargs: dict) -> None:
        from repro.core.multislot import multislot_schedule

        if bool(np.any(problem.effective_budgets() < 0)):
            raise ValueError(
                "the multislot policy needs every link serviceable (noise "
                "alone over budget on some link); filter the instance with "
                "problem.serviceable() first"
            )
        self._frame = multislot_schedule(problem, scheduler, **kwargs)

    @property
    def frame(self):
        return self._frame

    def choose(self, t: int, backlogged: np.ndarray) -> np.ndarray:
        if not backlogged.size or self._frame.n_slots == 0:
            return np.zeros(0, dtype=np.int64)
        active = self._frame.slot_cycle(t).active
        return np.intersect1d(active, backlogged, assume_unique=True)


class _IncrementalPolicy:
    """Warm-start repair over the backlogged set, churned by traffic.

    The engine's link universe is the *currently backlogged* set.  Each
    slot, links whose queues drained are removed and links that became
    backlogged are inserted — one remove/insert
    :class:`~repro.network.delta.LinkDelta` per slot — and the repaired
    schedule is mapped back to global link ids.  When every queue
    drains the engine is discarded and rebuilt on the next busy slot
    (cheaper and simpler than maintaining an empty engine).
    """

    def __init__(self, problem: FadingRLS, scheduler, kwargs: dict) -> None:
        if problem.powers is not None:
            raise ValueError(
                "the incremental policy supports uniform transmit power only"
            )
        self._problem = problem
        self._scheduler = scheduler
        self._kwargs = kwargs
        self._engine = None
        self._ids = np.zeros(0, dtype=np.int64)  # global id per engine index

    def _sub_links(self, ids: np.ndarray) -> LinkSet:
        links = self._problem.links
        return LinkSet(
            senders=links.senders[ids],
            receivers=links.receivers[ids],
            rates=links.rates[ids],
        )

    def choose(self, t: int, backlogged: np.ndarray) -> np.ndarray:
        from repro.core.incremental import IncrementalScheduler

        if not backlogged.size:
            self._engine = None
            self._ids = np.zeros(0, dtype=np.int64)
            return backlogged
        if self._engine is None:
            self._ids = backlogged.copy()
            self._engine = IncrementalScheduler(
                self._sub_links(self._ids),
                scheduler=self._scheduler,
                scheduler_kwargs=self._kwargs,
                alpha=self._problem.alpha,
                gamma_th=self._problem.gamma_th,
                eps=self._problem.eps,
                noise=self._problem.noise,
                power=self._problem.power,
            )
            schedule = self._engine.schedule()
            return np.sort(self._ids[schedule.active])
        current = set(backlogged.tolist())
        removes = np.flatnonzero(
            np.fromiter((g not in current for g in self._ids), dtype=bool, count=self._ids.size)
        )
        known = set(self._ids.tolist())
        newcomers = np.array([g for g in backlogged if g not in known], dtype=np.int64)
        delta = LinkDelta(
            removes=removes if removes.size else None,
            inserts=self._sub_links(newcomers) if newcomers.size else None,
        )
        if not delta.is_empty:
            self._engine.apply(delta)
            keep = np.ones(self._ids.size, dtype=bool)
            keep[removes] = False
            self._ids = np.concatenate([self._ids[keep], newcomers])
        schedule = self._engine.schedule()
        return np.sort(self._ids[schedule.active])


def _make_policy(policy: str, problem: FadingRLS, scheduler, kwargs: dict, cache=None):
    if cache is not None and policy != "backlogged":
        raise ValueError(
            f"cache= is only supported with the 'backlogged' policy, got {policy!r}"
        )
    if policy == "backlogged":
        return _BackloggedPolicy(problem, scheduler, kwargs, cache)
    if policy == "multislot":
        return _MultislotPolicy(problem, scheduler, kwargs)
    if policy == "incremental":
        return _IncrementalPolicy(problem, scheduler, kwargs)
    raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")


def simulate_workload(
    problem: FadingRLS,
    arrivals: ArrivalProcess,
    scheduler: SchedulerLike = "rle",
    *,
    n_slots: int = 200,
    seed: int = 0,
    policy: str = "backlogged",
    max_queue: Optional[int] = None,
    scheduler_kwargs: Optional[dict] = None,
    channel: Optional[str] = None,
    cache=None,
) -> WorkloadResult:
    """Run the slotted queue simulation (see the module docstring).

    Parameters
    ----------
    problem:
        The full instance; geometry and channel parameters are fixed
        over the horizon (traffic, not mobility, drives the dynamics).
    arrivals:
        Per-link packet-arrival process; its trace is drawn once from
        the identity-derived arrival seed.
    scheduler:
        Registry name or one-shot scheduler callable
        ``(FadingRLS, **kwargs) -> Schedule``.
    n_slots:
        Horizon length (>= 0; a zero-slot run returns empty records).
    seed:
        Root seed of the identity-derived randomness tree.
    policy:
        Service policy: ``backlogged`` | ``multislot`` | ``incremental``.
    max_queue:
        Optional per-link queue capacity; arrivals beyond it are
        dropped (and counted).  ``None`` = unbounded.
    scheduler_kwargs:
        Extra keyword arguments for the scheduler (forwarded to the
        cover builder under the ``multislot`` policy).
    channel:
        Channel-law spec for the per-slot fading draw
        (:func:`repro.channel.laws.get_channel_law`); ``None`` is the
        Rayleigh default, bit-identical to the historical behaviour.
    cache:
        Optional :class:`~repro.cache.store.ScheduleCache` answering
        the per-slot scheduler runs (``backlogged`` policy only).
        With ``warm_start=False`` the trajectory is bit-identical to
        the uncached run; warm-started caches may serve different (but
        feasibility-certified) schedules.

    Returns
    -------
    WorkloadResult
        Full queue/delay/drop trajectory; conservation
        ``arrived = served + dropped + queued`` holds exactly.
    """
    if n_slots < 0:
        raise ValueError(f"n_slots must be >= 0, got {n_slots}")
    if max_queue is not None and max_queue < 0:
        raise ValueError(f"max_queue must be >= 0, got {max_queue}")
    fn = get_scheduler(scheduler) if isinstance(scheduler, str) else scheduler
    name = scheduler if isinstance(scheduler, str) else getattr(fn, "__name__", "custom")
    kwargs = dict(scheduler_kwargs or {})
    n = problem.n_links
    chooser = _make_policy(policy, problem, fn, kwargs, cache)

    trace = arrivals.sample(n, n_slots, seed=stable_seed("workload.arrivals", root=seed))

    queues: List[List[int]] = [[] for _ in range(n)]
    backlog = np.zeros(n, dtype=np.int64)
    per_link_arrived = np.zeros(n, dtype=np.int64)
    per_link_served = np.zeros(n, dtype=np.int64)
    per_link_dropped = np.zeros(n, dtype=np.int64)
    queue_trajectory = np.zeros((n_slots, n), dtype=np.int64)
    scheduled_per_slot = np.zeros(n_slots, dtype=np.int64)
    served_per_slot = np.zeros(n_slots, dtype=np.int64)
    delays: List[int] = []
    failed = 0

    with span("workload.simulate", slots=n_slots, links=n, policy=policy):
        for t in range(n_slots):
            # 1. Arrivals (with optional finite-queue drops).
            new = trace[t]
            per_link_arrived += new
            if max_queue is not None:
                room = np.maximum(max_queue - backlog, 0)
                admitted = np.minimum(new, room)
                per_link_dropped += new - admitted
            else:
                admitted = new
            for i in np.flatnonzero(admitted):
                queues[i].extend([t] * int(admitted[i]))
            backlog += admitted

            # 2. Service policy picks a feasible backlogged set.
            backlogged = np.flatnonzero(backlog > 0)
            chosen = chooser.choose(t, backlogged)
            scheduled_per_slot[t] = chosen.size

            # 3. One fading realisation decides per-link success.
            if chosen.size:
                success = simulate_slot(
                    problem,
                    chosen,
                    seed=stable_seed("workload.fading", t, root=seed),
                    channel=channel,
                )
                # simulate_slot reports links in sorted-index order and
                # every policy returns sorted ids, so they align 1:1.
                for link, ok in zip(np.sort(chosen), success):
                    if ok:
                        born = queues[link].pop(0)
                        delays.append(t - born + 1)
                        backlog[link] -= 1
                        per_link_served[link] += 1
                        served_per_slot[t] += 1
                    else:
                        failed += 1

            queue_trajectory[t] = backlog

    arrived = int(per_link_arrived.sum())
    served = int(per_link_served.sum())
    dropped = int(per_link_dropped.sum())
    obs_metrics.inc("workload.slots_simulated", n_slots)
    obs_metrics.inc("workload.packets_arrived", arrived)
    obs_metrics.inc("workload.packets_served", served)
    obs_metrics.inc("workload.packets_dropped", dropped)
    return WorkloadResult(
        n_slots=n_slots,
        n_links=n,
        policy=policy,
        algorithm=str(name),
        arrived=arrived,
        served=served,
        dropped=dropped,
        failed=failed,
        queue_trajectory=queue_trajectory,
        scheduled_per_slot=scheduled_per_slot,
        served_per_slot=served_per_slot,
        delays=np.asarray(delays, dtype=np.int64),
        per_link_arrived=per_link_arrived,
        per_link_served=per_link_served,
        per_link_dropped=per_link_dropped,
    )
