"""fading-rls: Fading-Resistant Link Scheduling in Wireless Networks.

A full reproduction of Qiu & Shen, *"Fading-Resistant Link Scheduling
in Wireless Networks"*, ICPP 2017: the Rayleigh-fading SINR model, the
Fading-R-LS problem with its ILP form and Knapsack-reduction hardness
proof, the LDP and RLE approximation algorithms, the deterministic-SINR
baselines they are evaluated against, and a Monte-Carlo simulator that
regenerates the paper's evaluation figures.

Quickstart::

    from repro import FadingRLS, paper_topology, ldp_schedule, rle_schedule

    links = paper_topology(300, seed=0)
    problem = FadingRLS(links, alpha=3.0, gamma_th=1.0, eps=0.01)
    schedule = rle_schedule(problem)
    assert problem.is_feasible(schedule.active)
    print(schedule.size, problem.expected_throughput(schedule.active))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core import (
    FadingRLS,
    Schedule,
    SchedulerError,
    branch_and_bound_schedule,
    brute_force_schedule,
    dls_schedule,
    get_scheduler,
    ldp_schedule,
    list_schedulers,
    milp_schedule,
    multislot_schedule,
    rle_schedule,
)
from repro.core.baselines import approx_diversity_schedule, approx_logn_schedule
from repro.network import LinkSet, paper_topology
from repro.sim import simulate_schedule

__version__ = "1.0.0"

__all__ = [
    "FadingRLS",
    "Schedule",
    "SchedulerError",
    "LinkSet",
    "paper_topology",
    "ldp_schedule",
    "rle_schedule",
    "dls_schedule",
    "multislot_schedule",
    "approx_logn_schedule",
    "approx_diversity_schedule",
    "brute_force_schedule",
    "branch_and_bound_schedule",
    "milp_schedule",
    "get_scheduler",
    "list_schedulers",
    "simulate_schedule",
    "__version__",
]
