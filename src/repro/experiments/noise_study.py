"""Noise study: scheduling as ambient noise rises.

The paper drops ``N0`` (Eq. 8) on the grounds of negligible effect.
This study quantifies when that stops being true: sweeping ``N0``
upward, per scheduler we track

- serviceable links (noise factor below the budget),
- scheduled links and expected goodput,
- Monte-Carlo failures (which stay at the eps-floor for the resistant
  schedulers because the noise-aware budgets absorb ``nu_j``).

The phase structure: harmless below ``N0 ~ gamma_eps * d_max^-alpha /
gamma_th``, then long links die first (their ``nu = gamma_th N0
d^alpha`` is largest), then the network goes dark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.core.problem import FadingRLS
from repro.network.topology import paper_topology
from repro.sim.montecarlo import simulate_schedule
from repro.utils.rng import stable_seed


@dataclass(frozen=True)
class NoisePoint:
    """One (noise, scheduler) cell (means over repetitions)."""

    noise: float
    algorithm: str
    mean_serviceable: float
    mean_scheduled: float
    mean_goodput: float
    mean_failed: float


def critical_noise(max_length: float, alpha: float, gamma_th: float, eps: float) -> float:
    """The ``N0`` at which the longest link becomes unserviceable:
    ``gamma_eps / (gamma_th * d_max^alpha)``."""
    from repro.core.problem import gamma_epsilon

    return gamma_epsilon(eps) / (gamma_th * max_length**alpha)


def noise_sweep(
    schedulers: Dict[str, Callable],
    *,
    noise_values: Sequence[float] | None = None,
    n_links: int = 300,
    n_repetitions: int = 5,
    n_trials: int = 300,
    alpha: float = 3.0,
    eps: float = 0.01,
    max_length: float = 20.0,
    root_seed: int = 2017,
) -> List[NoisePoint]:
    """Sweep ambient noise; defaults to a grid around the critical N0."""
    if noise_values is None:
        n_crit = critical_noise(max_length, alpha, 1.0, eps)
        noise_values = (0.0, 0.1 * n_crit, 0.5 * n_crit, 0.9 * n_crit, 2.0 * n_crit)
    out: List[NoisePoint] = []
    for noise in noise_values:
        acc: Dict[str, List[tuple]] = {k: [] for k in schedulers}
        for rep in range(n_repetitions):
            links = paper_topology(
                n_links, max_length=max_length, seed=stable_seed("noise", rep, root=root_seed)
            )
            problem = FadingRLS(links=links, alpha=alpha, eps=eps, noise=float(noise))
            serviceable = int(problem.serviceable().sum())
            for name, fn in schedulers.items():
                schedule = fn(problem)
                goodput = problem.expected_throughput(schedule.active)
                result = simulate_schedule(
                    problem,
                    schedule,
                    n_trials=n_trials,
                    seed=stable_seed("noise-sim", rep, name, noise, root=root_seed),
                )
                acc[name].append((serviceable, schedule.size, goodput, result.mean_failed))
        for name, rows in acc.items():
            arr = np.asarray(rows, dtype=float)
            out.append(
                NoisePoint(
                    noise=float(noise),
                    algorithm=name,
                    mean_serviceable=float(arr[:, 0].mean()),
                    mean_scheduled=float(arr[:, 1].mean()),
                    mean_goodput=float(arr[:, 2].mean()),
                    mean_failed=float(arr[:, 3].mean()),
                )
            )
    return out
