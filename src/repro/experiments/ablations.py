"""Ablation studies (DESIGN.md experiments A1-A4).

Beyond the paper's four figure panels:

- **A1** :func:`ldp_class_ablation` — the paper's one-sided length
  classes vs the two-sided classes of [14];
- **A2** :func:`rle_c2_ablation` — throughput sensitivity to RLE's
  interference-budget split ``c2``;
- **A3** :func:`approximation_quality` — LDP/RLE scheduled rate against
  the exact optimum on small instances (feasible for exact solvers);
- **A4** is runtime scaling and lives entirely in
  ``benchmarks/test_scaling.py`` (pytest-benchmark owns the timing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.exact import branch_and_bound_schedule
from repro.core.ldp import ldp_schedule
from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.experiments.config import ExperimentConfig
from repro.network.topology import exponential_length_topology, paper_topology
from repro.utils.rng import stable_seed


@dataclass(frozen=True)
class AblationResult:
    """Per-variant mean metric across repetitions."""

    variant: str
    x_values: Tuple[float, ...]
    means: Tuple[float, ...]
    stds: Tuple[float, ...]


def ldp_class_ablation(
    *,
    n_links: int = 300,
    n_repetitions: int = 10,
    alpha: float = 3.0,
    root_seed: int = 2017,
    diverse_lengths: bool = True,
) -> Dict[str, AblationResult]:
    """A1: LDP one-sided vs two-sided classes, expected throughput.

    ``diverse_lengths=True`` uses the exponential-length workload where
    ``g(L)`` is large and the class policy matters; the paper-uniform
    workload has ``g(L) <= 2`` and the variants nearly tie.
    """
    variants = {"one_sided": False, "two_sided": True}
    out: Dict[str, AblationResult] = {}
    values: Dict[str, List[float]] = {v: [] for v in variants}
    for rep in range(n_repetitions):
        seed = stable_seed("a1", rep, root=root_seed)
        if diverse_lengths:
            links = exponential_length_topology(n_links, seed=seed)
        else:
            links = paper_topology(n_links, seed=seed)
        problem = FadingRLS(links=links, alpha=alpha)
        for name, two_sided in variants.items():
            sched = ldp_schedule(problem, two_sided=two_sided)
            values[name].append(problem.expected_throughput(sched.active))
    for name in variants:
        arr = np.array(values[name])
        out[name] = AblationResult(
            variant=name,
            x_values=(float(n_links),),
            means=(float(arr.mean()),),
            stds=(float(arr.std(ddof=1)) if n_repetitions > 1 else 0.0,),
        )
    return out


def rle_c2_ablation(
    *,
    c2_values: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9),
    n_links: int = 300,
    n_repetitions: int = 10,
    alpha: float = 3.0,
    root_seed: int = 2017,
) -> AblationResult:
    """A2: RLE expected throughput across the ``c2`` budget split."""
    means: List[float] = []
    stds: List[float] = []
    for c2 in c2_values:
        vals = []
        for rep in range(n_repetitions):
            links = paper_topology(n_links, seed=stable_seed("a2", rep, root=root_seed))
            problem = FadingRLS(links=links, alpha=alpha)
            sched = rle_schedule(problem, c2=c2)
            vals.append(problem.expected_throughput(sched.active))
        arr = np.array(vals)
        means.append(float(arr.mean()))
        stds.append(float(arr.std(ddof=1)) if n_repetitions > 1 else 0.0)
    return AblationResult(
        variant="rle_c2",
        x_values=tuple(float(c) for c in c2_values),
        means=tuple(means),
        stds=tuple(stds),
    )


@dataclass(frozen=True)
class ApproximationQuality:
    """Scheduled rate of each algorithm relative to the exact optimum."""

    n_instances: int
    mean_ratio: Dict[str, float]  # algorithm -> mean(opt_rate / alg_rate)
    worst_ratio: Dict[str, float]
    theoretical_bound: Dict[str, float]


def approximation_quality(
    *,
    n_links: int = 12,
    n_instances: int = 20,
    alpha: float = 3.0,
    region_side: float = 200.0,
    root_seed: int = 2017,
) -> ApproximationQuality:
    """A3: empirical approximation ratios on exactly solvable instances.

    Uses branch-and-bound for the optimum; instances are small and
    geographically tight so the optimum is nontrivial.  Reports
    ``opt / alg`` (1.0 = optimal; the paper guarantees ``<= 16 g(L)``
    for LDP and the Thm 4.4 constant for RLE).
    """
    from repro.core.bounds import ldp_approximation_ratio, rle_approximation_ratio
    from repro.network.diversity import length_diversity

    ratios: Dict[str, List[float]] = {"ldp": [], "rle": []}
    bounds: Dict[str, List[float]] = {"ldp": [], "rle": []}
    for rep in range(n_instances):
        links = paper_topology(
            n_links, region_side=region_side, seed=stable_seed("a3", rep, root=root_seed)
        )
        problem = FadingRLS(links=links, alpha=alpha)
        opt = problem.scheduled_rate(branch_and_bound_schedule(problem).active)
        for name, fn in (("ldp", ldp_schedule), ("rle", rle_schedule)):
            rate = problem.scheduled_rate(fn(problem).active)
            ratios[name].append(opt / rate if rate > 0 else np.inf)
        bounds["ldp"].append(ldp_approximation_ratio(length_diversity(links)))
        bounds["rle"].append(rle_approximation_ratio(alpha, problem.eps, problem.gamma_th, 0.5))
    return ApproximationQuality(
        n_instances=n_instances,
        mean_ratio={k: float(np.mean(v)) for k, v in ratios.items()},
        worst_ratio={k: float(np.max(v)) for k, v in ratios.items()},
        theoretical_bound={k: float(np.max(v)) for k, v in bounds.items()},
    )
