"""Ablation studies (DESIGN.md experiments A1-A4).

Beyond the paper's four figure panels:

- **A1** :func:`ldp_class_ablation` — the paper's one-sided length
  classes vs the two-sided classes of [14];
- **A2** :func:`rle_c2_ablation` — throughput sensitivity to RLE's
  interference-budget split ``c2``;
- **A3** :func:`approximation_quality` — LDP/RLE scheduled rate against
  the exact optimum on small instances (feasible for exact solvers);
- **A4** is runtime scaling and lives entirely in
  ``benchmarks/test_scaling.py`` (pytest-benchmark owns the timing);
- **A5** :func:`channel_robustness` — how each scheduler's Monte-Carlo
  metrics move when the simulated channel departs from the Rayleigh
  law its certificates assume (``docs/CHANNELS.md``).

Every driver takes ``n_jobs`` and fans its repetition grid out through
:func:`repro.sim.parallel.fan_out` (1 = serial, bit-identical results
for every value); an optional ``policy``
(:class:`~repro.sim.resilient.RetryPolicy`) upgrades the fan-out to
fault-tolerant execution — see ``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exact import branch_and_bound_schedule
from repro.core.ldp import ldp_schedule
from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.network.topology import exponential_length_topology, paper_topology
from repro.obs.trace import span
from repro.sim.parallel import fan_out
from repro.utils.rng import stable_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.resilient import RetryPolicy


@dataclass(frozen=True)
class AblationResult:
    """Per-variant mean metric across repetitions."""

    variant: str
    x_values: Tuple[float, ...]
    means: Tuple[float, ...]
    stds: Tuple[float, ...]


def _a1_rep(
    rep: int,
    *,
    n_links: int,
    alpha: float,
    root_seed: int,
    diverse_lengths: bool,
    variants: Tuple[Tuple[str, bool], ...],
) -> Dict[str, float]:
    """One A1 repetition: expected throughput per LDP class variant."""
    seed = stable_seed("a1", rep, root=root_seed)
    if diverse_lengths:
        links = exponential_length_topology(n_links, seed=seed)
    else:
        links = paper_topology(n_links, seed=seed)
    problem = FadingRLS(links=links, alpha=alpha)
    out: Dict[str, float] = {}
    for name, two_sided in variants:
        sched = ldp_schedule(problem, two_sided=two_sided)
        out[name] = float(problem.expected_throughput(sched.active))
    return out


def ldp_class_ablation(
    *,
    n_links: int = 300,
    n_repetitions: int = 10,
    alpha: float = 3.0,
    root_seed: int = 2017,
    diverse_lengths: bool = True,
    n_jobs: Optional[int] = 1,
    policy: Optional["RetryPolicy"] = None,
) -> Dict[str, AblationResult]:
    """A1: LDP one-sided vs two-sided classes, expected throughput.

    ``diverse_lengths=True`` uses the exponential-length workload where
    ``g(L)`` is large and the class policy matters; the paper-uniform
    workload has ``g(L) <= 2`` and the variants nearly tie.
    """
    variants = (("one_sided", False), ("two_sided", True))
    worker = partial(
        _a1_rep,
        n_links=n_links,
        alpha=alpha,
        root_seed=root_seed,
        diverse_lengths=diverse_lengths,
        variants=variants,
    )
    with span("experiment.ablation_a1", reps=n_repetitions):
        per_rep = fan_out(
            worker, range(n_repetitions), n_jobs=n_jobs, policy=policy, key_prefix="a1"
        )
    out: Dict[str, AblationResult] = {}
    for name, _ in variants:
        arr = np.array([rows[name] for rows in per_rep])
        out[name] = AblationResult(
            variant=name,
            x_values=(float(n_links),),
            means=(float(arr.mean()),),
            stds=(float(arr.std(ddof=1)) if n_repetitions > 1 else 0.0,),
        )
    return out


def _a2_cell(
    cell: Tuple[float, int],
    *,
    n_links: int,
    alpha: float,
    root_seed: int,
) -> float:
    """One A2 cell: RLE expected throughput at one (c2, repetition)."""
    c2, rep = cell
    links = paper_topology(n_links, seed=stable_seed("a2", rep, root=root_seed))
    problem = FadingRLS(links=links, alpha=alpha)
    sched = rle_schedule(problem, c2=c2)
    return float(problem.expected_throughput(sched.active))


def rle_c2_ablation(
    *,
    c2_values: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9),
    n_links: int = 300,
    n_repetitions: int = 10,
    alpha: float = 3.0,
    root_seed: int = 2017,
    n_jobs: Optional[int] = 1,
    policy: Optional["RetryPolicy"] = None,
) -> AblationResult:
    """A2: RLE expected throughput across the ``c2`` budget split."""
    cells = [(float(c2), rep) for c2 in c2_values for rep in range(n_repetitions)]
    worker = partial(_a2_cell, n_links=n_links, alpha=alpha, root_seed=root_seed)
    with span("experiment.ablation_a2", cells=len(cells)):
        values = fan_out(worker, cells, n_jobs=n_jobs, policy=policy, key_prefix="a2")
    means: List[float] = []
    stds: List[float] = []
    for i in range(len(c2_values)):
        arr = np.array(values[i * n_repetitions : (i + 1) * n_repetitions])
        means.append(float(arr.mean()))
        stds.append(float(arr.std(ddof=1)) if n_repetitions > 1 else 0.0)
    return AblationResult(
        variant="rle_c2",
        x_values=tuple(float(c) for c in c2_values),
        means=tuple(means),
        stds=tuple(stds),
    )


@dataclass(frozen=True)
class ApproximationQuality:
    """Scheduled rate of each algorithm relative to the exact optimum."""

    n_instances: int
    mean_ratio: Dict[str, float]  # algorithm -> mean(opt_rate / alg_rate)
    worst_ratio: Dict[str, float]
    theoretical_bound: Dict[str, float]


def _a3_instance(
    rep: int,
    *,
    n_links: int,
    alpha: float,
    region_side: float,
    root_seed: int,
) -> Dict[str, Tuple[float, float]]:
    """One A3 instance: (opt/alg ratio, theoretical bound) per algorithm."""
    from repro.core.bounds import ldp_approximation_ratio, rle_approximation_ratio
    from repro.network.diversity import length_diversity

    links = paper_topology(
        n_links, region_side=region_side, seed=stable_seed("a3", rep, root=root_seed)
    )
    problem = FadingRLS(links=links, alpha=alpha)
    opt = problem.scheduled_rate(branch_and_bound_schedule(problem).active)
    out: Dict[str, Tuple[float, float]] = {}
    for name, fn in (("ldp", ldp_schedule), ("rle", rle_schedule)):
        rate = problem.scheduled_rate(fn(problem).active)
        ratio = opt / rate if rate > 0 else float(np.inf)
        if name == "ldp":
            bound = ldp_approximation_ratio(length_diversity(links))
        else:
            bound = rle_approximation_ratio(alpha, problem.eps, problem.gamma_th, 0.5)
        out[name] = (float(ratio), float(bound))
    return out


def approximation_quality(
    *,
    n_links: int = 12,
    n_instances: int = 20,
    alpha: float = 3.0,
    region_side: float = 200.0,
    root_seed: int = 2017,
    n_jobs: Optional[int] = 1,
    policy: Optional["RetryPolicy"] = None,
) -> ApproximationQuality:
    """A3: empirical approximation ratios on exactly solvable instances.

    Uses branch-and-bound for the optimum; instances are small and
    geographically tight so the optimum is nontrivial.  Reports
    ``opt / alg`` (1.0 = optimal; the paper guarantees ``<= 16 g(L)``
    for LDP and the Thm 4.4 constant for RLE).  Branch-and-bound
    dominates the runtime, so ``n_jobs`` parallelises per instance.
    """
    worker = partial(
        _a3_instance,
        n_links=n_links,
        alpha=alpha,
        region_side=region_side,
        root_seed=root_seed,
    )
    with span("experiment.ablation_a3", instances=n_instances):
        per_instance = fan_out(
            worker, range(n_instances), n_jobs=n_jobs, policy=policy, key_prefix="a3"
        )
    ratios: Dict[str, List[float]] = {"ldp": [], "rle": []}
    bounds: Dict[str, List[float]] = {"ldp": [], "rle": []}
    for rows in per_instance:
        for name, (ratio, bound) in rows.items():
            ratios[name].append(ratio)
            bounds[name].append(bound)
    return ApproximationQuality(
        n_instances=n_instances,
        mean_ratio={k: float(np.mean(v)) for k, v in ratios.items()},
        worst_ratio={k: float(np.max(v)) for k, v in ratios.items()},
        theoretical_bound={k: float(np.max(v)) for k, v in bounds.items()},
    )


def channel_robustness(
    *,
    channels: Sequence[str] = (
        "rayleigh",
        "nakagami:m=2",
        "nakagami:m=8",
        "shadowing:sigma_db=6",
        "deterministic",
    ),
    n_links: int = 60,
    n_repetitions: int = 5,
    n_trials: int = 200,
    alpha: float = 3.0,
    root_seed: int = 2017,
    n_jobs: Optional[int] = 1,
    policy: Optional["RetryPolicy"] = None,
) -> Dict[str, Dict[str, "RunResult"]]:
    """A5: the paper schedulers replayed under every channel law.

    The schedulers (and their Rayleigh/Cor. 3.1 certificates) are held
    fixed; only the Monte-Carlo channel varies, so differences isolate
    how robust each certificate is to the fading model.  Every channel
    shares the same root seed — paired comparison, like the figure
    sweeps.  Returns ``{canonical channel spec: run_schedulers dict}``.
    """
    from repro.channel.laws import get_channel_law
    from repro.experiments.config import ExperimentConfig, paper_scheduler_set
    from repro.sim.runner import RunResult, run_schedulers  # noqa: F401

    cfg = ExperimentConfig()
    out: Dict[str, Dict[str, RunResult]] = {}
    with span("experiment.ablation_channel", channels=len(channels)):
        for spec in channels:
            law = get_channel_law(spec)
            out[law.spec] = run_schedulers(
                paper_scheduler_set(),
                cfg.workload(n_links),
                n_repetitions=n_repetitions,
                n_trials=n_trials,
                alpha=alpha,
                root_seed=root_seed,
                n_jobs=n_jobs,
                policy=policy,
                channel=law.spec,
            )
    return out
