"""Content-addressed experiment result store.

Paper-scale sweeps take minutes; iterating on analysis should not
re-run them.  :func:`load_or_run` keys a JSON payload by a stable hash
of ``(experiment name, parameters)`` so repeated calls with identical
configuration hit the cache, and any parameter change re-runs.

The store is deliberately dumb: one JSON file per key under a
directory, safe to delete wholesale, no invalidation beyond the key.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Union

PathLike = Union[str, Path]


def config_key(name: str, params: Mapping[str, Any]) -> str:
    """Stable hex key for an experiment configuration.

    Parameters are serialised with sorted keys; anything JSON rejects
    (tuples become lists transparently) raises ``TypeError`` so
    unhashable configs fail loudly instead of colliding.
    """
    canonical = json.dumps({"name": name, "params": params}, sort_keys=True, default=_coerce)
    return hashlib.sha256(canonical.encode()).hexdigest()[:24]


def _coerce(value: Any):
    if isinstance(value, tuple):
        return list(value)
    import numpy as np

    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"unserialisable config value: {value!r}")


class ResultStore:
    """One directory of ``<key>.json`` experiment results."""

    def __init__(self, root: PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Filesystem path backing ``key``."""
        return self.root / f"{key}.json"

    def get(self, key: str) -> Dict[str, Any] | None:
        """Stored payload, or None on miss/corruption (corrupt entries
        are treated as misses so a crashed write self-heals)."""
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            return None

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically store a payload (write temp, rename)."""
        path = self.path_for(key)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        tmp.replace(path)

    def load_or_run(
        self,
        name: str,
        params: Mapping[str, Any],
        runner: Callable[[], Dict[str, Any]],
    ) -> tuple[Dict[str, Any], bool]:
        """Return ``(payload, was_cached)``; runs and stores on a miss.

        The runner must return a JSON-serialisable dict.
        """
        key = config_key(name, params)
        cached = self.get(key)
        if cached is not None:
            return cached, True
        payload = runner()
        self.put(key, payload)
        return payload, False

    def keys(self) -> list[str]:
        """Sorted keys of every stored result."""
        return sorted(p.stem for p in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every stored result; returns the count removed."""
        n = 0
        for p in self.root.glob("*.json"):
            p.unlink()
            n += 1
        return n
