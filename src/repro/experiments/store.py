"""Content-addressed experiment result store.

Paper-scale sweeps take minutes; iterating on analysis should not
re-run them.  :func:`load_or_run` keys a JSON payload by a stable hash
of ``(experiment name, parameters)`` so repeated calls with identical
configuration hit the cache, and any parameter change re-runs.

The store is deliberately dumb: one JSON file per key under a
directory, safe to delete wholesale, no invalidation beyond the key.
Durability is not dumb, though: every write goes through a unique temp
file, ``fsync``, and ``os.replace``, so a crash mid-write can never
leave a torn ``<key>.json`` — readers see the old payload or the new
one, nothing in between — and a payload that *is* damaged (truncated
by an external force, hand-edited) reads as a miss and re-runs instead
of crashing the sweep.

:class:`UnitCheckpoint` builds per-work-unit persistence on top: one
:class:`~repro.sim.metrics.SimulationResult` per key, serialised
losslessly (floats survive the JSON round-trip bit-exactly), which is
what lets an interrupted sweep resume from its completed cells (see
``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

import numpy as np

# The content-hash canonicalisation grew into the shared
# repro.cache.fingerprint module (the schedule cache keys build on it);
# config_key is re-exported here so existing imports — and the key
# bytes of existing result directories — stay unchanged.
from repro.cache.fingerprint import config_key
from repro.sim.metrics import SimulationResult

__all__ = [
    "ResultStore",
    "UnitCheckpoint",
    "config_key",
    "result_from_payload",
    "result_to_payload",
]

PathLike = Union[str, Path]


class ResultStore:
    """One directory of ``<key>.json`` experiment results."""

    def __init__(self, root: PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Filesystem path backing ``key``."""
        return self.root / f"{key}.json"

    def get(self, key: str) -> Dict[str, Any] | None:
        """Stored payload, or None on miss/corruption (truncated or
        otherwise damaged entries are treated as misses so the caller
        re-runs instead of crashing)."""
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically store a payload (unique temp file + fsync + rename).

        Serialisation happens before the store is touched, so an
        unserialisable payload raises without disturbing an existing
        entry; a crash mid-write leaves only a stray temp file (ignored
        by every reader), never a torn ``<key>.json``.
        """
        path = self.path_for(key)
        data = json.dumps(payload, indent=2, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, prefix=f".{key}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def load_or_run(
        self,
        name: str,
        params: Mapping[str, Any],
        runner: Callable[[], Dict[str, Any]],
    ) -> tuple[Dict[str, Any], bool]:
        """Return ``(payload, was_cached)``; runs and stores on a miss.

        The runner must return a JSON-serialisable dict.
        """
        key = config_key(name, params)
        cached = self.get(key)
        if cached is not None:
            return cached, True
        payload = runner()
        self.put(key, payload)
        return payload, False

    def keys(self) -> list[str]:
        """Sorted keys of every stored result."""
        return sorted(p.stem for p in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every stored result; returns the count removed."""
        n = 0
        for p in self.root.glob("*.json"):
            p.unlink()
            n += 1
        return n


#: Version tag of the per-unit checkpoint payload shape.
UNIT_PAYLOAD_SCHEMA = 1

_RESULT_FIELDS = (
    "algorithm",
    "n_scheduled",
    "n_trials",
    "mean_failed",
    "failed_stderr",
    "mean_throughput",
    "throughput_stderr",
    "scheduled_rate",
    "per_link_success",
    "active_indices",
)


def result_to_payload(result: SimulationResult) -> Dict[str, Any]:
    """Lossless JSON payload for one :class:`SimulationResult`.

    Floats are emitted as Python floats — JSON's shortest-round-trip
    repr reproduces the exact IEEE-754 value on load, so a checkpointed
    unit is *bit-identical* to a recomputed one.
    """
    return {
        "schema": UNIT_PAYLOAD_SCHEMA,
        "algorithm": result.algorithm,
        "n_scheduled": int(result.n_scheduled),
        "n_trials": int(result.n_trials),
        "mean_failed": float(result.mean_failed),
        "failed_stderr": float(result.failed_stderr),
        "mean_throughput": float(result.mean_throughput),
        "throughput_stderr": float(result.throughput_stderr),
        "scheduled_rate": float(result.scheduled_rate),
        "per_link_success": [float(x) for x in result.per_link_success],
        "active_indices": [int(x) for x in result.active_indices],
    }


def result_from_payload(payload: Mapping[str, Any]) -> SimulationResult:
    """Inverse of :func:`result_to_payload`; raises ``ValueError`` on junk."""
    if payload.get("schema") != UNIT_PAYLOAD_SCHEMA:
        raise ValueError(f"unknown unit payload schema: {payload.get('schema')!r}")
    missing = [f for f in _RESULT_FIELDS if f not in payload]
    if missing:
        raise ValueError(f"unit payload missing fields: {missing}")
    return SimulationResult(
        algorithm=str(payload["algorithm"]),
        n_scheduled=int(payload["n_scheduled"]),
        n_trials=int(payload["n_trials"]),
        mean_failed=float(payload["mean_failed"]),
        failed_stderr=float(payload["failed_stderr"]),
        mean_throughput=float(payload["mean_throughput"]),
        throughput_stderr=float(payload["throughput_stderr"]),
        scheduled_rate=float(payload["scheduled_rate"]),
        per_link_success=np.asarray(payload["per_link_success"], dtype=float),
        active_indices=np.asarray(payload["active_indices"], dtype=np.int64),
    )


class UnitCheckpoint:
    """Per-work-unit result persistence for resumable sweeps.

    One :class:`SimulationResult` per key (the executor's content
    hash of the unit's full configuration — see
    :func:`repro.sim.parallel.checkpoint_key`), written through on each
    unit's first success.  Damaged or schema-mismatched entries read as
    misses, so a resumed sweep recomputes exactly the units it cannot
    trust.
    """

    def __init__(self, root: PathLike):
        self.store = ResultStore(root)

    @property
    def root(self) -> Path:
        return self.store.root

    def get(self, key: str) -> Optional[SimulationResult]:
        """The checkpointed result for ``key``, or ``None``."""
        payload = self.store.get(key)
        if payload is None:
            return None
        try:
            return result_from_payload(payload)
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, key: str, result: SimulationResult) -> None:
        """Persist one unit's result (atomic; safe to interrupt)."""
        self.store.put(key, result_to_payload(result))

    def keys(self) -> List[str]:
        """Sorted keys of every checkpointed unit."""
        return self.store.keys()

    def __len__(self) -> int:
        return len(self.store.keys())
