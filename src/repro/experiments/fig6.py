"""Figure 6: throughput of the fading-resistant algorithms.

- :func:`throughput_vs_links` — Fig. 6(a): throughput as the number of
  links grows;
- :func:`throughput_vs_alpha` — Fig. 6(b): throughput as alpha grows.

Expected shape (paper): RLE >= LDP throughout; both grow with N and
with alpha (larger alpha shrinks LDP's squares and RLE's elimination
radius, so more links fit a slot).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.base import get_scheduler
from repro.experiments.config import FIG6_SCHEDULERS, ExperimentConfig
from repro.experiments.fig5 import SweepSeries
from repro.sim.runner import RunResult, run_schedulers
from repro.utils.rng import stable_seed


def _fig6_schedulers():
    return {name: get_scheduler(name) for name in FIG6_SCHEDULERS}


def throughput_vs_links(config: ExperimentConfig | None = None) -> SweepSeries:
    """Fig. 6(a): throughput vs number of links (LDP vs RLE)."""
    cfg = config or ExperimentConfig()
    schedulers = _fig6_schedulers()
    series: Dict[str, List[RunResult]] = {name: [] for name in schedulers}
    for n in cfg.n_links_sweep:
        results = run_schedulers(
            schedulers,
            cfg.workload(n),
            n_repetitions=cfg.n_repetitions,
            n_trials=cfg.n_trials,
            alpha=cfg.alpha_default,
            gamma_th=cfg.gamma_th,
            eps=cfg.eps,
            root_seed=stable_seed("fig6a", n, root=cfg.root_seed),
        )
        for name in schedulers:
            series[name].append(results[name])
    return SweepSeries(
        x_label="number of links",
        x_values=tuple(float(n) for n in cfg.n_links_sweep),
        series=series,
    )


def throughput_vs_alpha(config: ExperimentConfig | None = None) -> SweepSeries:
    """Fig. 6(b): throughput vs path loss exponent alpha (LDP vs RLE)."""
    cfg = config or ExperimentConfig()
    schedulers = _fig6_schedulers()
    series: Dict[str, List[RunResult]] = {name: [] for name in schedulers}
    for alpha in cfg.alpha_sweep:
        results = run_schedulers(
            schedulers,
            cfg.workload(cfg.n_links_fixed),
            n_repetitions=cfg.n_repetitions,
            n_trials=cfg.n_trials,
            alpha=alpha,
            gamma_th=cfg.gamma_th,
            eps=cfg.eps,
            root_seed=stable_seed("fig6b", alpha, root=cfg.root_seed),
        )
        for name in schedulers:
            series[name].append(results[name])
    return SweepSeries(
        x_label="path loss exponent alpha",
        x_values=tuple(cfg.alpha_sweep),
        series=series,
    )
