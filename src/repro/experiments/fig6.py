"""Figure 6: throughput of the fading-resistant algorithms.

- :func:`throughput_vs_links` — Fig. 6(a): throughput as the number of
  links grows;
- :func:`throughput_vs_alpha` — Fig. 6(b): throughput as alpha grows.

Expected shape (paper): RLE >= LDP throughout; both grow with N and
with alpha (larger alpha shrinks LDP's squares and RLE's elimination
radius, so more links fit a slot).

Like Fig. 5, the sweeps run through :func:`repro.sim.runner.run_sweep`
and honour ``config.n_jobs`` / ``config.mc_max_bytes`` /
``config.backend``.
"""

from __future__ import annotations

from repro.core.base import get_scheduler
from repro.experiments.config import FIG6_SCHEDULERS, ExperimentConfig
from repro.experiments.fig5 import SweepSeries, sweep_panel
from repro.obs.trace import span
from repro.sim.runner import SweepPoint
from repro.utils.rng import stable_seed


def _fig6_schedulers():
    return {name: get_scheduler(name) for name in FIG6_SCHEDULERS}


def throughput_vs_links(config: ExperimentConfig | None = None) -> SweepSeries:
    """Fig. 6(a): throughput vs number of links (LDP vs RLE)."""
    cfg = config or ExperimentConfig()
    points = [
        SweepPoint(
            x=float(n),
            workload=cfg.workload(n),
            alpha=cfg.alpha_default,
            root_seed=stable_seed("fig6a", n, root=cfg.root_seed),
        )
        for n in cfg.n_links_sweep
    ]
    with span("experiment.fig6a", points=len(points)):
        return sweep_panel(
            _fig6_schedulers(), points, cfg, x_label="number of links"
        )


def throughput_vs_alpha(config: ExperimentConfig | None = None) -> SweepSeries:
    """Fig. 6(b): throughput vs path loss exponent alpha (LDP vs RLE)."""
    cfg = config or ExperimentConfig()
    points = [
        SweepPoint(
            x=float(alpha),
            workload=cfg.workload(cfg.n_links_fixed),
            alpha=alpha,
            root_seed=stable_seed("fig6b", alpha, root=cfg.root_seed),
        )
        for alpha in cfg.alpha_sweep
    ]
    with span("experiment.fig6b", points=len(points)):
        return sweep_panel(
            _fig6_schedulers(), points, cfg, x_label="path loss exponent alpha"
        )
