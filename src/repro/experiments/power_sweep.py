"""Channel-law x power-policy sweep over every registered scheduler.

ROADMAP O4's end-state in one driver: *every scheduler runs against
every channel through the same config surface*.  For each cell of the
``channels x policies`` grid, :func:`power_sweep` runs the full
scheduler registry (LDP/RLE/the approximation baselines/the exact
solvers/the protocol-model baselines/...) through
:func:`repro.sim.runner.run_schedulers` with the cell's channel law and
power policy — same workloads, same root seed in every cell, so
differences across cells are paired (channel/policy effects, not
workload noise).

The default grid keeps instances small (``n_links <= 22``) because the
registry includes the exact solvers (``brute_force`` raises above
:data:`repro.core.exact.BRUTE_FORCE_LIMIT` links); the seeded
schedulers (``dls``, ``random``, ``protocol_mis``) get identity-derived
seeds so the whole sweep is deterministic and bit-identical across
backends and ``n_jobs``.

CLI: ``python -m repro power-sweep`` (see :mod:`repro.cli`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.base import get_scheduler, list_schedulers
from repro.core.exact import BRUTE_FORCE_LIMIT
from repro.core.powercontrol import POWER_POLICIES
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.utils.rng import stable_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.config import ExperimentConfig
    from repro.sim.runner import RunResult

#: Default channel grid: the paper's law, one milder-fading Nakagami
#: point, one Suzuki composite, and the no-fading physical model.
DEFAULT_CHANNELS: Tuple[str, ...] = (
    "rayleigh",
    "nakagami:m=2",
    "shadowing:sigma_db=6",
    "deterministic",
)

#: Schedulers whose default ``seed=None`` draws fresh OS entropy; the
#: sweep pins them with identity-derived seeds to stay deterministic.
SEEDED_SCHEDULERS: Tuple[str, ...] = ("dls", "random", "protocol_mis")


@dataclass(frozen=True)
class PowerSweepCell:
    """One grid cell: all schedulers under one (channel, policy) pair.

    ``channel`` is the canonical law spec; ``results`` maps scheduler
    name to its :class:`~repro.sim.runner.RunResult`.
    """

    channel: str
    power_policy: str
    results: Dict[str, "RunResult"]


def power_sweep(
    config: Optional["ExperimentConfig"] = None,
    *,
    channels: Sequence[str] = DEFAULT_CHANNELS,
    policies: Sequence[str] = POWER_POLICIES,
    schedulers: Optional[Sequence[str]] = None,
    n_links: int = 12,
    n_repetitions: int = 2,
    n_trials: int = 100,
) -> List[PowerSweepCell]:
    """Run the scheduler registry over the channel x power grid.

    Parameters
    ----------
    config:
        Execution/channel-parameter source (alpha, gamma_th, eps, root
        seed, n_jobs, backend, resilience knobs); defaults to
        ``ExperimentConfig()``.  The config's own ``channel`` /
        ``power_policy`` fields are ignored — the grid supplies them.
    channels, policies:
        The grid axes: law specs for
        :func:`repro.channel.laws.get_channel_law` and names from
        :data:`repro.core.powercontrol.POWER_POLICIES`.
    schedulers:
        Scheduler registry names; ``None`` = every registered scheduler.
    n_links:
        Links per workload — capped at
        :data:`~repro.core.exact.BRUTE_FORCE_LIMIT` whenever the grid
        includes the exact solvers.
    n_repetitions, n_trials:
        Workload draws per cell, and Monte-Carlo trials per schedule.

    Returns
    -------
    list of :class:`PowerSweepCell`, channel-major in grid order.
    """
    from repro.channel.laws import get_channel_law
    from repro.experiments.config import ExperimentConfig
    from repro.sim.runner import run_schedulers

    cfg = config or ExperimentConfig()
    names = list(schedulers) if schedulers is not None else list_schedulers()
    if "brute_force" in names and n_links > BRUTE_FORCE_LIMIT:
        raise ValueError(
            f"n_links={n_links} exceeds BRUTE_FORCE_LIMIT={BRUTE_FORCE_LIMIT} "
            "while the grid includes brute_force; shrink the workload or "
            "pass an explicit scheduler list"
        )
    sched_map = {name: get_scheduler(name) for name in names}
    kwargs_map = {
        name: {"seed": stable_seed("powersweep", name, root=cfg.root_seed)}
        for name in names
        if name in SEEDED_SCHEDULERS
    }
    workload = cfg.workload(n_links)
    cells: List[PowerSweepCell] = []
    with span(
        "experiment.power_sweep",
        channels=len(channels),
        policies=len(policies),
        schedulers=len(names),
    ):
        for channel in channels:
            spec = get_channel_law(channel).spec
            for policy_name in policies:
                results = run_schedulers(
                    sched_map,
                    workload,
                    n_repetitions=n_repetitions,
                    n_trials=n_trials,
                    alpha=cfg.alpha_default,
                    gamma_th=cfg.gamma_th,
                    eps=cfg.eps,
                    root_seed=cfg.root_seed,
                    scheduler_kwargs=kwargs_map,
                    n_jobs=cfg.n_jobs,
                    max_bytes=cfg.mc_max_bytes,
                    policy=cfg.retry_policy(),
                    checkpoint=cfg.unit_checkpoint(),
                    backend=cfg.backend,
                    channel=spec,
                    power_policy=policy_name,
                )
                obs_metrics.inc("powersweep.cells")
                cells.append(
                    PowerSweepCell(
                        channel=spec, power_policy=policy_name, results=results
                    )
                )
    return cells


def format_power_sweep(cells: Sequence[PowerSweepCell]) -> str:
    """Plain-text grid report: one line per (channel, policy, scheduler)."""
    lines = [
        f"{'channel':<34} {'policy':<22} {'scheduler':<18} "
        f"{'failed':>8} {'throughput':>11} {'sched':>6}"
    ]
    for cell in cells:
        for name in sorted(cell.results):
            r = cell.results[name]
            lines.append(
                f"{cell.channel:<34} {cell.power_policy:<22} {name:<18} "
                f"{r.mean_failed:>8.3f} {r.mean_throughput:>11.3f} "
                f"{r.mean_scheduled:>6.1f}"
            )
    return "\n".join(lines)
