"""Markdown report generator.

Renders a complete evaluation report — all four paper panels plus the
headline shape checks — as markdown, so a fresh environment can
regenerate an EXPERIMENTS-style record with one call (or
``python -m repro report``).  The shape checks mirror the benchmark
assertions; a report therefore states explicitly whether this run
reproduced the paper's qualitative claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig5 import SweepSeries, failed_vs_alpha, failed_vs_links
from repro.experiments.fig6 import throughput_vs_alpha, throughput_vs_links


def _md_table(headers: List[str], rows: List[List[object]], float_fmt="{:.3f}") -> str:
    def fmt(v):
        return float_fmt.format(v) if isinstance(v, float) else str(v)

    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    lines += ["| " + " | ".join(fmt(v) for v in row) + " |" for row in rows]
    return "\n".join(lines)


def _series_table(sweep: SweepSeries, metric: str) -> str:
    algorithms = sorted(sweep.series)
    rows = []
    for i, x in enumerate(sweep.x_values):
        rows.append([x] + [getattr(sweep.series[a][i], metric) for a in algorithms])
    return _md_table([sweep.x_label] + algorithms, rows)


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative claim and whether this run reproduced it."""

    claim: str
    holds: bool


def _check_shapes(
    fig5a: SweepSeries, fig5b: SweepSeries, fig6a: SweepSeries, fig6b: SweepSeries
) -> List[ShapeCheck]:
    checks: List[ShapeCheck] = []
    ours_max = max(
        max(fig5a.metric("ldp", "mean_failed")), max(fig5a.metric("rle", "mean_failed"))
    )
    checks.append(ShapeCheck("LDP/RLE failures stay at the eps-floor (<= 1/slot)", ours_max <= 1.0))
    div = fig5a.metric("approx_diversity", "mean_failed")
    checks.append(ShapeCheck("baseline failures grow with N", div[-1] > div[0]))
    # Fig 5(b): per-link failure *rate* falls with alpha.
    rate_ok = True
    for alg in ("approx_diversity", "approx_logn"):
        failed = fig5b.metric(alg, "mean_failed")
        scheduled = fig5b.metric(alg, "mean_scheduled")
        rates = [f / s for f, s in zip(failed, scheduled)]
        rate_ok &= rates[-1] < rates[0]
    checks.append(ShapeCheck("baseline per-link failure rate falls with alpha", rate_ok))
    rle6a = fig6a.metric("rle", "mean_throughput")
    ldp6a = fig6a.metric("ldp", "mean_throughput")
    checks.append(
        ShapeCheck("RLE throughput >= LDP at every N", all(r >= l for r, l in zip(rle6a, ldp6a)))
    )
    checks.append(ShapeCheck("throughput grows with N (RLE)", rle6a[-1] >= rle6a[0]))
    grows = all(
        fig6b.metric(alg, "mean_throughput")[-1] > fig6b.metric(alg, "mean_throughput")[0]
        for alg in ("ldp", "rle")
    )
    checks.append(ShapeCheck("throughput grows with alpha (both)", grows))
    return checks


def generate_report(config: ExperimentConfig | None = None) -> str:
    """Run all four panels and render the markdown report."""
    cfg = config or ExperimentConfig()
    fig5a = failed_vs_links(cfg)
    fig5b = failed_vs_alpha(cfg)
    fig6a = throughput_vs_links(cfg)
    fig6b = throughput_vs_alpha(cfg)
    checks = _check_shapes(fig5a, fig5b, fig6a, fig6b)

    parts: List[str] = [
        "# Evaluation report — Fading-R-LS reproduction",
        "",
        f"Configuration: N sweep {cfg.n_links_sweep}, alpha sweep {cfg.alpha_sweep}, "
        f"{cfg.n_repetitions} repetitions x {cfg.n_trials} trials, "
        f"eps={cfg.eps}, gamma_th={cfg.gamma_th}, root seed {cfg.root_seed}.",
        "",
        "## Shape checks",
        "",
        _md_table(
            ["claim", "reproduced"],
            [[c.claim, "yes" if c.holds else "NO"] for c in checks],
        ),
        "",
        "## Fig. 5(a) — failed transmissions vs number of links",
        "",
        _series_table(fig5a, "mean_failed"),
        "",
        "## Fig. 5(b) — failed transmissions vs alpha",
        "",
        _series_table(fig5b, "mean_failed"),
        "",
        "## Fig. 6(a) — throughput vs number of links",
        "",
        _series_table(fig6a, "mean_throughput"),
        "",
        "## Fig. 6(b) — throughput vs alpha",
        "",
        _series_table(fig6b, "mean_throughput"),
        "",
    ]
    return "\n".join(parts)
