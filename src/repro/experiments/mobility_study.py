"""Mobility study: schedule quality and stability under movement.

The paper motivates fading with mobility; this study quantifies what
mobility does to the *schedules*: as nodes move faster, how much of a
slot's schedule survives to the next slot (churn), and does per-slot
throughput suffer?  Per speed level we run a random-waypoint trace,
re-schedule every step, and aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.core.problem import FadingRLS
from repro.network.mobility import random_waypoint_trace, schedule_churn
from repro.utils.rng import stable_seed


@dataclass(frozen=True)
class MobilityPoint:
    """One (speed, scheduler) cell (means over trace steps and reps)."""

    speed: float
    algorithm: str
    mean_throughput: float
    mean_churn: float
    max_churn: float
    all_feasible: bool


def mobility_sweep(
    schedulers: Dict[str, Callable],
    *,
    speeds: Sequence[float] = (1.0, 5.0, 20.0, 50.0),
    n_links: int = 150,
    n_steps: int = 10,
    n_repetitions: int = 3,
    alpha: float = 3.0,
    root_seed: int = 2017,
) -> List[MobilityPoint]:
    """Sweep mobility speed; returns one point per (speed, scheduler).

    Speed is the upper end of the per-step movement range (lower end is
    half of it), in the same units as the 500x500 region per step.
    """
    out: List[MobilityPoint] = []
    for speed in speeds:
        acc: Dict[str, List[tuple]] = {k: [] for k in schedulers}
        for rep in range(n_repetitions):
            trace = random_waypoint_trace(
                n_links,
                n_steps,
                speed_range=(speed / 2.0, float(speed)),
                seed=stable_seed("mob", rep, speed, root=root_seed),
            )
            for name, fn in schedulers.items():
                schedules = []
                throughputs = []
                feasible = True
                for links in trace:
                    problem = FadingRLS(links=links, alpha=alpha)
                    s = fn(problem)
                    feasible &= problem.is_feasible(s.active)
                    schedules.append(s)
                    throughputs.append(problem.expected_throughput(s.active))
                churn = schedule_churn(schedules)
                acc[name].append(
                    (np.mean(throughputs), np.mean(churn), np.max(churn), feasible)
                )
        for name, rows in acc.items():
            arr = np.asarray([(r[0], r[1], r[2]) for r in rows], dtype=float)
            out.append(
                MobilityPoint(
                    speed=float(speed),
                    algorithm=name,
                    mean_throughput=float(arr[:, 0].mean()),
                    mean_churn=float(arr[:, 1].mean()),
                    max_churn=float(arr[:, 2].max()),
                    all_feasible=all(r[3] for r in rows),
                )
            )
    return out
