"""Mobility study: schedule quality and stability under movement.

The paper motivates fading with mobility; this study quantifies what
mobility does to the *schedules*: as nodes move faster, how much of a
slot's schedule survives to the next slot (churn), and does per-slot
throughput suffer?  Per speed level we run a random-waypoint trace,
re-schedule every step, and aggregate.

Two execution modes share one measurement path
(:func:`repro.sim.runner.run_trace`):

- **from-scratch** (default) — each step builds a fresh
  :class:`~repro.core.problem.FadingRLS` (full O(N^2) interference
  matrix) and reruns the scheduler, exactly as a static pipeline would;
- **incremental** — the trace is generated as a
  :class:`~repro.network.mobility.DeltaTrace` and driven through
  :class:`~repro.core.incremental.IncrementalScheduler`: O(kN) matrix
  maintenance plus warm-start schedule repair, the engine this module's
  O(N^2)-per-step loop motivated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Union

import numpy as np

from repro.network.mobility import (
    random_waypoint_delta_trace,
    random_waypoint_trace,
    schedule_churn,
)
from repro.sim.runner import run_trace
from repro.utils.rng import stable_seed


@dataclass(frozen=True)
class MobilityPoint:
    """One (speed, scheduler) cell (means over trace steps and reps)."""

    speed: float
    algorithm: str
    mean_throughput: float
    mean_churn: float
    max_churn: float
    all_feasible: bool
    incremental: bool = False
    fallback_rate: float = 0.0


def mobility_sweep(
    schedulers: Dict[str, Union[str, Callable]],
    *,
    speeds: Sequence[float] = (1.0, 5.0, 20.0, 50.0),
    n_links: int = 150,
    n_steps: int = 10,
    n_repetitions: int = 3,
    alpha: float = 3.0,
    root_seed: int = 2017,
    incremental: bool = False,
    move_threshold: float = 0.0,
    quality_bound: float = 0.8,
) -> List[MobilityPoint]:
    """Sweep mobility speed; returns one point per (speed, scheduler).

    Speed is the upper end of the per-step movement range (lower end is
    half of it), in the same units as the 500x500 region per step.

    With ``incremental=True`` the trace is emitted as per-step deltas
    and scheduled by the incremental engine; ``move_threshold=0``
    (default) keeps the emitted geometry identical to the from-scratch
    trace, a positive threshold sparsifies the deltas (see
    :func:`~repro.network.mobility.random_waypoint_delta_trace`).
    ``quality_bound`` is the engine's from-scratch fallback trigger.
    """
    out: List[MobilityPoint] = []
    for speed in speeds:
        acc: Dict[str, List[tuple]] = {k: [] for k in schedulers}
        for rep in range(n_repetitions):
            seed = stable_seed("mob", rep, speed, root=root_seed)
            trace_kwargs = dict(
                speed_range=(speed / 2.0, float(speed)), seed=seed
            )
            if incremental:
                trace = random_waypoint_delta_trace(
                    n_links, n_steps, move_threshold=move_threshold, **trace_kwargs
                )
            else:
                trace = random_waypoint_trace(n_links, n_steps, **trace_kwargs)
            for name, fn in schedulers.items():
                steps = run_trace(
                    fn,
                    trace,
                    incremental=incremental,
                    alpha=alpha,
                    quality_bound=quality_bound,
                )
                churn = schedule_churn([s.schedule for s in steps])
                fallbacks = sum(
                    1
                    for s in steps
                    if s.schedule.diagnostics.get("reason") == "quality"
                )
                acc[name].append(
                    (
                        np.mean([s.expected_throughput for s in steps]),
                        np.mean(churn),
                        np.max(churn),
                        all(s.feasible for s in steps),
                        fallbacks / len(steps),
                    )
                )
        for name, rows in acc.items():
            arr = np.asarray([(r[0], r[1], r[2], r[4]) for r in rows], dtype=float)
            out.append(
                MobilityPoint(
                    speed=float(speed),
                    algorithm=name,
                    mean_throughput=float(arr[:, 0].mean()),
                    mean_churn=float(arr[:, 1].mean()),
                    max_churn=float(arr[:, 2].max()),
                    all_feasible=all(r[3] for r in rows),
                    incremental=incremental,
                    fallback_rate=float(arr[:, 3].mean()),
                )
            )
    return out
