"""Reliability/throughput trade-off across the error allowance eps.

The paper fixes ``eps = 0.01``.  But eps is the knob that prices
fading resistance: a larger allowance inflates the interference budget
``gamma_eps = ln(1/(1-eps))`` (almost linearly), letting the
fading-resistant schedulers pack more links per slot at the cost of a
higher per-link failure probability.  This driver sweeps eps and
reports, per scheduler:

- scheduled links and raw scheduled rate,
- *expected goodput* ``sum lambda_j Pr(success_j)`` — the quantity a
  deployment actually cares about,
- Monte-Carlo failures.

The interesting output is the goodput-maximising eps, which is far
above the paper's conservative 0.01 on its own workload (see
``benchmarks/test_eps_tradeoff.py``).

Execution notes: the sweep is repetition-major — one work unit
generates a workload once and walks *all* eps values on it via
:meth:`FadingRLS.with_params`, which carries the cached O(N^2)
interference matrix across the eps-only changes.  Units fan out over
processes with ``n_jobs`` (results are bit-identical to the serial
order for every value).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.problem import FadingRLS
from repro.experiments.config import TopologyWorkload
from repro.network.links import LinkSet
from repro.obs.trace import span
from repro.sim.montecarlo import simulate_schedule
from repro.sim.parallel import fan_out
from repro.utils.rng import stable_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.resilient import RetryPolicy


@dataclass(frozen=True)
class EpsPoint:
    """One (eps, scheduler) cell of the sweep (means over repetitions)."""

    eps: float
    algorithm: str
    mean_scheduled: float
    mean_expected_goodput: float
    mean_failed: float


def _tradeoff_rep(
    rep: int,
    *,
    schedulers: Dict[str, Callable],
    eps_values: Sequence[float],
    alpha: float,
    n_trials: int,
    root_seed: int,
    workload: Callable[[int], LinkSet],
    max_bytes: Optional[int],
) -> Dict[Tuple[float, str], Tuple[float, float, float]]:
    """One repetition: every (eps, scheduler) cell on a shared workload.

    The workload (and hence the interference matrix) is independent of
    eps, so the base problem is built once and eps-only copies share its
    cached ``F`` through :meth:`FadingRLS.with_params`.
    """
    links = workload(stable_seed("eps", rep, root=root_seed))
    base = FadingRLS(links=links, alpha=alpha, eps=float(eps_values[0]))
    out: Dict[Tuple[float, str], Tuple[float, float, float]] = {}
    for eps in eps_values:
        problem = base.with_params(eps=float(eps))
        for name, fn in schedulers.items():
            schedule = fn(problem)
            goodput = problem.expected_throughput(schedule.active)
            result = simulate_schedule(
                problem,
                schedule,
                n_trials=n_trials,
                seed=stable_seed("eps-sim", rep, name, eps, root=root_seed),
                max_bytes=max_bytes,
            )
            out[(float(eps), name)] = (
                float(schedule.size),
                float(goodput),
                float(result.mean_failed),
            )
    return out


def eps_tradeoff(
    schedulers: Dict[str, Callable],
    *,
    eps_values: Sequence[float] = (0.001, 0.01, 0.05, 0.1, 0.2, 0.4),
    n_links: int = 300,
    n_repetitions: int = 5,
    n_trials: int = 300,
    alpha: float = 3.0,
    root_seed: int = 2017,
    workload: Callable[[int], LinkSet] | None = None,
    n_jobs: Optional[int] = 1,
    max_bytes: Optional[int] = None,
    policy: Optional["RetryPolicy"] = None,
) -> List[EpsPoint]:
    """Run the eps sweep; returns one :class:`EpsPoint` per cell.

    ``n_jobs`` fans repetitions out over worker processes (the workload
    and schedulers must then be picklable); ``max_bytes`` bounds each
    Monte-Carlo replay's memory; ``policy`` upgrades the fan-out to the
    fault-tolerant executor (``docs/ROBUSTNESS.md``).
    """
    if workload is None:
        workload = TopologyWorkload(n_links=n_links)
    worker = partial(
        _tradeoff_rep,
        schedulers=dict(schedulers),
        eps_values=tuple(float(e) for e in eps_values),
        alpha=alpha,
        n_trials=n_trials,
        root_seed=root_seed,
        workload=workload,
        max_bytes=max_bytes,
    )
    with span("experiment.eps_tradeoff", reps=n_repetitions, eps_values=len(eps_values)):
        per_rep = fan_out(
            worker, range(n_repetitions), n_jobs=n_jobs, policy=policy, key_prefix="eps"
        )
    out: List[EpsPoint] = []
    for eps in eps_values:
        for name in schedulers:
            rows = np.asarray(
                [rep_rows[(float(eps), name)] for rep_rows in per_rep], dtype=float
            )
            out.append(
                EpsPoint(
                    eps=float(eps),
                    algorithm=name,
                    mean_scheduled=float(rows[:, 0].mean()),
                    mean_expected_goodput=float(rows[:, 1].mean()),
                    mean_failed=float(rows[:, 2].mean()),
                )
            )
    return out


def best_eps(points: List[EpsPoint], algorithm: str) -> EpsPoint:
    """The goodput-maximising sweep point for one scheduler."""
    mine = [p for p in points if p.algorithm == algorithm]
    if not mine:
        raise KeyError(f"no sweep points for {algorithm!r}")
    return max(mine, key=lambda p: p.mean_expected_goodput)
