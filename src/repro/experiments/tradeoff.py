"""Reliability/throughput trade-off across the error allowance eps.

The paper fixes ``eps = 0.01``.  But eps is the knob that prices
fading resistance: a larger allowance inflates the interference budget
``gamma_eps = ln(1/(1-eps))`` (almost linearly), letting the
fading-resistant schedulers pack more links per slot at the cost of a
higher per-link failure probability.  This driver sweeps eps and
reports, per scheduler:

- scheduled links and raw scheduled rate,
- *expected goodput* ``sum lambda_j Pr(success_j)`` — the quantity a
  deployment actually cares about,
- Monte-Carlo failures.

The interesting output is the goodput-maximising eps, which is far
above the paper's conservative 0.01 on its own workload (see
``benchmarks/test_eps_tradeoff.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.problem import FadingRLS
from repro.network.links import LinkSet
from repro.network.topology import paper_topology
from repro.sim.montecarlo import simulate_schedule
from repro.utils.rng import stable_seed


@dataclass(frozen=True)
class EpsPoint:
    """One (eps, scheduler) cell of the sweep (means over repetitions)."""

    eps: float
    algorithm: str
    mean_scheduled: float
    mean_expected_goodput: float
    mean_failed: float


def eps_tradeoff(
    schedulers: Dict[str, Callable],
    *,
    eps_values: Sequence[float] = (0.001, 0.01, 0.05, 0.1, 0.2, 0.4),
    n_links: int = 300,
    n_repetitions: int = 5,
    n_trials: int = 300,
    alpha: float = 3.0,
    root_seed: int = 2017,
    workload: Callable[[int], LinkSet] | None = None,
) -> List[EpsPoint]:
    """Run the eps sweep; returns one :class:`EpsPoint` per cell."""
    if workload is None:
        workload = lambda seed: paper_topology(n_links, seed=seed)  # noqa: E731
    out: List[EpsPoint] = []
    for eps in eps_values:
        acc: Dict[str, List[Tuple[float, float, float]]] = {k: [] for k in schedulers}
        for rep in range(n_repetitions):
            links = workload(stable_seed("eps", rep, root=root_seed))
            problem = FadingRLS(links=links, alpha=alpha, eps=eps)
            for name, fn in schedulers.items():
                schedule = fn(problem)
                goodput = problem.expected_throughput(schedule.active)
                result = simulate_schedule(
                    problem,
                    schedule,
                    n_trials=n_trials,
                    seed=stable_seed("eps-sim", rep, name, eps, root=root_seed),
                )
                acc[name].append((schedule.size, goodput, result.mean_failed))
        for name, rows in acc.items():
            arr = np.asarray(rows, dtype=float)
            out.append(
                EpsPoint(
                    eps=float(eps),
                    algorithm=name,
                    mean_scheduled=float(arr[:, 0].mean()),
                    mean_expected_goodput=float(arr[:, 1].mean()),
                    mean_failed=float(arr[:, 2].mean()),
                )
            )
    return out


def best_eps(points: List[EpsPoint], algorithm: str) -> EpsPoint:
    """The goodput-maximising sweep point for one scheduler."""
    mine = [p for p in points if p.algorithm == algorithm]
    if not mine:
        raise KeyError(f"no sweep points for {algorithm!r}")
    return max(mine, key=lambda p: p.mean_expected_goodput)
