"""Plain-text reporting of experiment series.

The benchmark harness prints the same rows/series the paper's figures
plot; these formatters keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.experiments.fig5 import SweepSeries


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render an aligned plain-text table."""
    def fmt(v: object) -> str:
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def format_series(
    sweep: SweepSeries,
    metric: str,
    *,
    title: str = "",
    float_fmt: str = "{:.3f}",
) -> str:
    """Render one figure panel as a table: x column + one column per
    algorithm, reporting ``metric`` (e.g. ``mean_failed``)."""
    algorithms = sorted(sweep.series)
    headers = [sweep.x_label] + algorithms
    rows = []
    for i, x in enumerate(sweep.x_values):
        row: list[object] = [x]
        for alg in algorithms:
            row.append(getattr(sweep.series[alg][i], metric))
        rows.append(row)
    body = format_table(headers, rows, float_fmt=float_fmt)
    return f"{title}\n{body}" if title else body


def format_run_summary(results: Mapping[str, object]) -> str:
    """One-line-per-algorithm summary of a ``run_schedulers`` result."""
    headers = ["algorithm", "scheduled", "failed", "throughput"]
    rows = []
    for name in sorted(results):
        r = results[name]
        rows.append(
            [name, r.mean_scheduled, r.mean_failed, r.mean_throughput]  # type: ignore[attr-defined]
        )
    return format_table(headers, rows)
