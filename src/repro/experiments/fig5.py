"""Figure 5: number of failed transmissions.

- :func:`failed_vs_links` — Fig. 5(a): failures as the number of links
  grows (alpha fixed at the default);
- :func:`failed_vs_alpha` — Fig. 5(b): failures as the path-loss
  exponent grows (link count fixed).

Expected shape (paper): LDP and RLE show ~zero failures; ApproxLogN and
ApproxDiversity fail increasingly with N and decreasingly with alpha.

Both sweeps execute through :func:`repro.sim.runner.run_sweep`, so the
whole ``point x repetition x scheduler`` grid fans out over
``config.n_jobs`` worker processes (1 = serial; results are
bit-identical for every value) under the ``config.mc_max_bytes`` replay
memory budget, through the ``config.backend`` compute backend
(``sharedmem`` shares each repetition's problem zero-copy across
workers — see ``docs/PERFORMANCE.md``).  The config's resilience knobs (``unit_timeout``,
``max_retries``, ``resume_dir``) flow through as well, so a sweep can
survive worker crashes and resume after an interruption — see
``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.config import ExperimentConfig, paper_scheduler_set
from repro.obs.trace import span
from repro.sim.runner import RunResult, SweepPoint, run_sweep
from repro.utils.rng import stable_seed


@dataclass(frozen=True)
class SweepSeries:
    """One figure panel: x values and per-algorithm y series."""

    x_label: str
    x_values: Tuple[float, ...]
    series: Dict[str, List[RunResult]]

    def metric(self, algorithm: str, field: str) -> List[float]:
        """Extract one metric across the sweep, e.g. ``metric('ldp',
        'mean_failed')``."""
        return [getattr(r, field) for r in self.series[algorithm]]


def sweep_panel(
    schedulers: Dict[str, object],
    points: Sequence[SweepPoint],
    cfg: ExperimentConfig,
    *,
    x_label: str,
) -> SweepSeries:
    """Run a sweep and package the results as a :class:`SweepSeries`."""
    per_point = run_sweep(
        schedulers,
        points,
        n_repetitions=cfg.n_repetitions,
        n_trials=cfg.n_trials,
        gamma_th=cfg.gamma_th,
        eps=cfg.eps,
        n_jobs=cfg.n_jobs,
        max_bytes=cfg.mc_max_bytes,
        policy=cfg.retry_policy(),
        checkpoint=cfg.unit_checkpoint(),
        backend=cfg.backend,
        channel=cfg.channel,
        power_policy=cfg.power_policy,
    )
    series: Dict[str, List[RunResult]] = {name: [] for name in schedulers}
    for results in per_point:
        for name in schedulers:
            series[name].append(results[name])
    return SweepSeries(
        x_label=x_label,
        x_values=tuple(p.x for p in points),
        series=series,
    )


def failed_vs_links(config: ExperimentConfig | None = None) -> SweepSeries:
    """Fig. 5(a): failed transmissions vs number of links."""
    cfg = config or ExperimentConfig()
    points = [
        SweepPoint(
            x=float(n),
            workload=cfg.workload(n),
            alpha=cfg.alpha_default,
            root_seed=stable_seed("fig5a", n, root=cfg.root_seed),
        )
        for n in cfg.n_links_sweep
    ]
    with span("experiment.fig5a", points=len(points)):
        return sweep_panel(
            paper_scheduler_set(), points, cfg, x_label="number of links"
        )


def failed_vs_alpha(config: ExperimentConfig | None = None) -> SweepSeries:
    """Fig. 5(b): failed transmissions vs path loss exponent alpha."""
    cfg = config or ExperimentConfig()
    points = [
        SweepPoint(
            x=float(alpha),
            workload=cfg.workload(cfg.n_links_fixed),
            alpha=alpha,
            root_seed=stable_seed("fig5b", alpha, root=cfg.root_seed),
        )
        for alpha in cfg.alpha_sweep
    ]
    with span("experiment.fig5b", points=len(points)):
        return sweep_panel(
            paper_scheduler_set(), points, cfg, x_label="path loss exponent alpha"
        )
