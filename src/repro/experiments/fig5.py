"""Figure 5: number of failed transmissions.

- :func:`failed_vs_links` — Fig. 5(a): failures as the number of links
  grows (alpha fixed at the default);
- :func:`failed_vs_alpha` — Fig. 5(b): failures as the path-loss
  exponent grows (link count fixed).

Expected shape (paper): LDP and RLE show ~zero failures; ApproxLogN and
ApproxDiversity fail increasingly with N and decreasingly with alpha.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.config import ExperimentConfig, paper_scheduler_set
from repro.sim.runner import RunResult, run_schedulers
from repro.utils.rng import stable_seed


@dataclass(frozen=True)
class SweepSeries:
    """One figure panel: x values and per-algorithm y series."""

    x_label: str
    x_values: Tuple[float, ...]
    series: Dict[str, List[RunResult]]

    def metric(self, algorithm: str, field: str) -> List[float]:
        """Extract one metric across the sweep, e.g. ``metric('ldp',
        'mean_failed')``."""
        return [getattr(r, field) for r in self.series[algorithm]]


def failed_vs_links(config: ExperimentConfig | None = None) -> SweepSeries:
    """Fig. 5(a): failed transmissions vs number of links."""
    cfg = config or ExperimentConfig()
    schedulers = paper_scheduler_set()
    series: Dict[str, List[RunResult]] = {name: [] for name in schedulers}
    for n in cfg.n_links_sweep:
        results = run_schedulers(
            schedulers,
            cfg.workload(n),
            n_repetitions=cfg.n_repetitions,
            n_trials=cfg.n_trials,
            alpha=cfg.alpha_default,
            gamma_th=cfg.gamma_th,
            eps=cfg.eps,
            root_seed=stable_seed("fig5a", n, root=cfg.root_seed),
        )
        for name in schedulers:
            series[name].append(results[name])
    return SweepSeries(
        x_label="number of links",
        x_values=tuple(float(n) for n in cfg.n_links_sweep),
        series=series,
    )


def failed_vs_alpha(config: ExperimentConfig | None = None) -> SweepSeries:
    """Fig. 5(b): failed transmissions vs path loss exponent alpha."""
    cfg = config or ExperimentConfig()
    schedulers = paper_scheduler_set()
    series: Dict[str, List[RunResult]] = {name: [] for name in schedulers}
    for alpha in cfg.alpha_sweep:
        results = run_schedulers(
            schedulers,
            cfg.workload(cfg.n_links_fixed),
            n_repetitions=cfg.n_repetitions,
            n_trials=cfg.n_trials,
            alpha=alpha,
            gamma_th=cfg.gamma_th,
            eps=cfg.eps,
            root_seed=stable_seed("fig5b", alpha, root=cfg.root_seed),
        )
        for name in schedulers:
            series[name].append(results[name])
    return SweepSeries(
        x_label="path loss exponent alpha",
        x_values=tuple(cfg.alpha_sweep),
        series=series,
    )
