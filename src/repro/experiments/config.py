"""Section-V experiment configuration.

The paper's setup: senders uniform in a 500x500 square, link lengths
``U[5, 20]`` in random directions, acceptable error rate 0.01, decoding
threshold 1, unit data rates.  The paper does not print its exact sweep
grids; the defaults here (N in 100..500, alpha in 2.5..4.5 around the
default 3.0) cover the ranges its Figs. 5-6 discuss.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from repro.core.base import get_scheduler
from repro.core.schedule import Schedule
from repro.network.links import LinkSet
from repro.network.topology import paper_topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.store import UnitCheckpoint
    from repro.sim.resilient import RetryPolicy


@dataclass(frozen=True)
class TopologyWorkload:
    """Picklable per-repetition workload factory.

    The figure drivers fan work units out over processes
    (:mod:`repro.sim.parallel`), so the workload callable must survive
    pickling — a frozen dataclass of plain floats does, a closure over
    an :class:`ExperimentConfig` does not.  Calling it draws one
    paper-style topology: ``workload(seed) -> LinkSet``.
    """

    n_links: int
    region_side: float = 500.0
    min_length: float = 5.0
    max_length: float = 20.0
    rate: float = 1.0

    def __call__(self, seed: int) -> LinkSet:
        return paper_topology(
            self.n_links,
            region_side=self.region_side,
            min_length=self.min_length,
            max_length=self.max_length,
            rate=self.rate,
            seed=seed,
        )


def paper_scheduler_set() -> Dict[str, Callable[..., Schedule]]:
    """The four algorithms of Figs. 5: LDP, RLE, ApproxLogN, ApproxDiversity."""
    return {
        "ldp": get_scheduler("ldp"),
        "rle": get_scheduler("rle"),
        "approx_logn": get_scheduler("approx_logn"),
        "approx_diversity": get_scheduler("approx_diversity"),
    }


PAPER_SCHEDULERS: Tuple[str, ...] = ("ldp", "rle", "approx_logn", "approx_diversity")
FIG6_SCHEDULERS: Tuple[str, ...] = ("ldp", "rle")


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by the figure drivers.

    ``n_links_sweep`` feeds Figs. 5(a)/6(a); ``alpha_sweep`` feeds
    Figs. 5(b)/6(b) (with ``n_links_fixed`` links).  Lower the
    repetition/trial counts for quick runs; the benchmark defaults are
    in each bench file.

    Execution knobs: ``n_jobs`` fans the ``point x rep x scheduler``
    grid out over worker processes (1 = serial, 0 = all CPUs; results
    are bit-identical either way), ``mc_max_bytes`` bounds each
    Monte-Carlo replay's peak memory (``None`` = the sampler's default
    128 MiB chunk budget), and ``backend`` selects the compute backend
    (``numpy`` | ``sharedmem`` | ``numba``, see
    :mod:`repro.backend` and ``docs/PERFORMANCE.md``; every backend is
    bit-identical, unavailable ones fall back to ``numpy`` with a
    warning).

    Resilience knobs (``docs/ROBUSTNESS.md``): ``unit_timeout`` and
    ``max_retries`` configure the fault-tolerant executor (both unset =
    the legacy non-resilient path), and ``resume_dir`` checkpoints each
    completed work unit so an interrupted sweep resumes from where it
    stopped.

    Channel knobs (``docs/CHANNELS.md``): ``channel`` selects the
    fading law every Monte-Carlo replay samples (``rayleigh`` |
    ``nakagami:m=...`` | ``shadowing:sigma_db=...`` | ``deterministic``,
    see :mod:`repro.channel.laws`) and ``power_policy`` the named
    transmit-power policy wrapped around each scheduler run
    (:data:`repro.core.powercontrol.POWER_POLICIES`); set both via
    :meth:`with_channel`.

    Dynamic-network knobs: ``incremental`` routes mobility traces
    through :class:`~repro.core.incremental.IncrementalScheduler`
    instead of per-step from-scratch runs; ``move_threshold``
    sparsifies the emitted deltas (0 = exact geometry) and
    ``quality_bound`` is the engine's from-scratch fallback trigger.
    """

    region_side: float = 500.0
    min_length: float = 5.0
    max_length: float = 20.0
    gamma_th: float = 1.0
    eps: float = 0.01
    rate: float = 1.0
    alpha_default: float = 3.0
    n_links_fixed: int = 300
    n_links_sweep: Tuple[int, ...] = (100, 200, 300, 400, 500)
    alpha_sweep: Tuple[float, ...] = (2.5, 3.0, 3.5, 4.0, 4.5)
    n_repetitions: int = 10
    n_trials: int = 500
    root_seed: int = 2017
    n_jobs: int = 1
    mc_max_bytes: Optional[int] = None
    backend: str = "numpy"
    unit_timeout: Optional[float] = None
    max_retries: Optional[int] = None
    resume_dir: Optional[str] = None
    incremental: bool = False
    move_threshold: float = 0.0
    quality_bound: float = 0.8
    workload_arrival: str = "poisson"
    workload_rate: float = 0.05
    workload_slots: int = 300
    workload_policy: str = "backlogged"
    #: Channel-law spec for Monte-Carlo replays ("rayleigh" is the
    #: paper's channel); set via :meth:`with_channel`, which
    #: canonicalises and validates the spec.
    channel: str = "rayleigh"
    #: Named power policy from
    #: :data:`repro.core.powercontrol.POWER_POLICIES` ("uniform" is the
    #: paper's setting).
    power_policy: str = "uniform"
    #: Schedule-cache knob (``docs/CACHING.md``): ``None`` = off,
    #: ``"memory"`` = in-process only, anything else = a persistence
    #: directory.  Set via :meth:`with_cache`.
    cache: Optional[str] = None
    cache_capacity: int = 256
    cache_policy: str = "repetition_aware"
    #: Enable the canonical/warm cache tiers; ``False`` keeps the cache
    #: fully transparent (bit-identical exact hits only).
    cache_warm_start: bool = True

    def workload(self, n_links: int) -> TopologyWorkload:
        """Per-repetition workload factory for ``n_links`` links.

        Returns a picklable :class:`TopologyWorkload` so the same
        factory serves the serial and process-parallel paths.
        """
        return TopologyWorkload(
            n_links=n_links,
            region_side=self.region_side,
            min_length=self.min_length,
            max_length=self.max_length,
            rate=self.rate,
        )

    def small(self) -> "ExperimentConfig":
        """A fast variant for tests and smoke runs."""
        return replace(
            self,
            n_links_fixed=60,
            n_links_sweep=(30, 60),
            alpha_sweep=(2.5, 3.5),
            n_repetitions=2,
            n_trials=100,
        )

    def with_execution(
        self,
        *,
        n_jobs: Optional[int] = None,
        mc_max_bytes: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> "ExperimentConfig":
        """Copy with execution knobs replaced (unspecified ones kept)."""
        out = self
        if n_jobs is not None:
            out = replace(out, n_jobs=n_jobs)
        if mc_max_bytes is not None:
            out = replace(out, mc_max_bytes=mc_max_bytes)
        if backend is not None:
            from repro.backend.base import BACKEND_NAMES

            if backend not in BACKEND_NAMES:
                raise ValueError(
                    f"unknown backend {backend!r}; expected one of {BACKEND_NAMES}"
                )
            out = replace(out, backend=backend)
        return out

    def with_dynamics(
        self,
        *,
        incremental: Optional[bool] = None,
        move_threshold: Optional[float] = None,
        quality_bound: Optional[float] = None,
    ) -> "ExperimentConfig":
        """Copy with dynamic-network knobs replaced (unspecified kept)."""
        out = self
        if incremental is not None:
            out = replace(out, incremental=incremental)
        if move_threshold is not None:
            if move_threshold < 0:
                raise ValueError("move_threshold must be >= 0")
            out = replace(out, move_threshold=move_threshold)
        if quality_bound is not None:
            if not 0.0 <= quality_bound <= 1.0:
                raise ValueError("quality_bound must be in [0, 1]")
            out = replace(out, quality_bound=quality_bound)
        return out

    def with_workload(
        self,
        *,
        arrival: Optional[str] = None,
        rate: Optional[float] = None,
        slots: Optional[int] = None,
        policy: Optional[str] = None,
    ) -> "ExperimentConfig":
        """Copy with traffic-workload knobs replaced (unspecified kept).

        ``arrival`` names an :data:`repro.workload.generators.ARRIVAL_FAMILIES`
        entry, ``rate`` is the mean offered load in packets/link/slot
        (the family's shape is preserved; its rates are scaled to this
        mean), ``slots`` the horizon and ``policy`` the service policy
        of :func:`repro.workload.queues.simulate_workload`.
        """
        out = self
        if arrival is not None:
            from repro.workload.generators import ARRIVAL_FAMILIES

            if arrival not in ARRIVAL_FAMILIES:
                raise ValueError(
                    f"unknown arrival family {arrival!r}; choose from "
                    f"{sorted(ARRIVAL_FAMILIES)}"
                )
            out = replace(out, workload_arrival=arrival)
        if rate is not None:
            if not rate > 0:
                raise ValueError(f"workload rate must be > 0, got {rate}")
            out = replace(out, workload_rate=rate)
        if slots is not None:
            if slots < 0:
                raise ValueError(f"workload slots must be >= 0, got {slots}")
            out = replace(out, workload_slots=slots)
        if policy is not None:
            from repro.workload.queues import POLICIES

            if policy not in POLICIES:
                raise ValueError(
                    f"unknown workload policy {policy!r}; choose from {POLICIES}"
                )
            out = replace(out, workload_policy=policy)
        return out

    def with_channel(
        self,
        *,
        channel: Optional[str] = None,
        power_policy: Optional[str] = None,
    ) -> "ExperimentConfig":
        """Copy with channel/power knobs replaced (unspecified kept).

        ``channel`` is a law spec understood by
        :func:`repro.channel.laws.get_channel_law` (e.g.
        ``"nakagami:m=2"``, ``"shadowing:sigma_db=6"``); it is parsed
        here, so typos fail at configuration time, and stored in
        canonical form.  ``power_policy`` must name a
        :data:`repro.core.powercontrol.POWER_POLICIES` entry.

        >>> cfg = ExperimentConfig().with_channel(channel="shadowing:sigma_db=6")
        >>> cfg.channel
        'shadowing:sigma_db=6,static=false'
        """
        out = self
        if channel is not None:
            from repro.channel.laws import get_channel_law

            out = replace(out, channel=get_channel_law(channel).spec)
        if power_policy is not None:
            from repro.core.powercontrol import POWER_POLICIES

            if power_policy not in POWER_POLICIES:
                raise ValueError(
                    f"unknown power policy {power_policy!r}; choose from "
                    f"{POWER_POLICIES}"
                )
            out = replace(out, power_policy=power_policy)
        return out

    def with_cache(
        self,
        *,
        cache: Optional[str] = None,
        capacity: Optional[int] = None,
        policy: Optional[str] = None,
        warm_start: Optional[bool] = None,
    ) -> "ExperimentConfig":
        """Copy with schedule-cache knobs replaced (unspecified kept).

        ``cache`` is ``"memory"`` for a process-local cache or a
        directory path for a persisted one; ``policy`` must name a
        :data:`repro.cache.policy.CACHE_POLICIES` entry.

        >>> cfg = ExperimentConfig().with_cache(cache="memory", capacity=64)
        >>> (cfg.cache, cfg.cache_capacity)
        ('memory', 64)
        """
        out = self
        if cache is not None:
            out = replace(out, cache=str(cache))
        if capacity is not None:
            if capacity < 1:
                raise ValueError(f"cache capacity must be >= 1, got {capacity}")
            out = replace(out, cache_capacity=capacity)
        if policy is not None:
            from repro.cache.policy import CACHE_POLICIES

            if policy not in CACHE_POLICIES:
                raise ValueError(
                    f"unknown cache policy {policy!r}; choose from {CACHE_POLICIES}"
                )
            out = replace(out, cache_policy=policy)
        if warm_start is not None:
            out = replace(out, cache_warm_start=warm_start)
        return out

    def schedule_cache(self):
        """The configured :class:`~repro.cache.store.ScheduleCache`, or ``None``."""
        if self.cache is None:
            return None
        from repro.cache.store import ScheduleCache

        return ScheduleCache(
            capacity=self.cache_capacity,
            policy=self.cache_policy,
            warm_start=self.cache_warm_start,
            quality_bound=self.quality_bound,
            directory=None if self.cache == "memory" else self.cache,
        )

    def arrival_process(self):
        """The configured arrival generator, scaled to ``workload_rate``.

        Builds the family's default-shaped generator and rescales its
        rates so the long-run mean equals ``workload_rate`` — the
        declarative "family + mean load" surface the CLI and scenario
        configs share.
        """
        from repro.workload.generators import ARRIVAL_FAMILIES

        base = ARRIVAL_FAMILIES[self.workload_arrival]()
        mean = base.mean_rate()
        if not mean > 0:
            raise ValueError(
                f"arrival family {self.workload_arrival!r} has zero base rate"
            )
        return base.scaled(self.workload_rate / mean)

    def with_resilience(
        self,
        *,
        unit_timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        resume_dir: Optional[str] = None,
    ) -> "ExperimentConfig":
        """Copy with resilience knobs replaced (unspecified ones kept)."""
        out = self
        if unit_timeout is not None:
            out = replace(out, unit_timeout=unit_timeout)
        if max_retries is not None:
            out = replace(out, max_retries=max_retries)
        if resume_dir is not None:
            out = replace(out, resume_dir=str(resume_dir))
        return out

    def retry_policy(self) -> Optional["RetryPolicy"]:
        """The configured :class:`~repro.sim.resilient.RetryPolicy`.

        ``None`` when neither resilience knob is set — the drivers then
        take the legacy non-resilient execution path unchanged.
        """
        if self.unit_timeout is None and self.max_retries is None:
            return None
        from repro.sim.resilient import RetryPolicy

        kwargs = {}
        if self.unit_timeout is not None:
            kwargs["unit_timeout"] = self.unit_timeout
        if self.max_retries is not None:
            kwargs["max_retries"] = self.max_retries
        return RetryPolicy(**kwargs)

    def unit_checkpoint(self) -> Optional["UnitCheckpoint"]:
        """The configured per-unit checkpoint store, or ``None``."""
        if self.resume_dir is None:
            return None
        from repro.experiments.store import UnitCheckpoint

        return UnitCheckpoint(self.resume_dir)
