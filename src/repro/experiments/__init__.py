"""Experiment drivers that regenerate the paper's evaluation.

- :mod:`repro.experiments.config` — the Section-V parameter defaults,
- :mod:`repro.experiments.fig5` — failed transmissions vs #links (5a)
  and vs alpha (5b),
- :mod:`repro.experiments.fig6` — throughput vs #links (6a) and vs
  alpha (6b),
- :mod:`repro.experiments.ablations` — the extra studies indexed in
  DESIGN.md (LDP class variants, RLE ``c2`` sensitivity, approximation
  quality vs the exact optimum),
- :mod:`repro.experiments.reporting` — plain-text series/table output.
"""

from repro.experiments.config import PAPER_SCHEDULERS, ExperimentConfig
from repro.experiments.fig5 import failed_vs_alpha, failed_vs_links
from repro.experiments.fig6 import throughput_vs_alpha, throughput_vs_links
from repro.experiments.reporting import format_series, format_table

__all__ = [
    "ExperimentConfig",
    "PAPER_SCHEDULERS",
    "failed_vs_links",
    "failed_vs_alpha",
    "throughput_vs_links",
    "throughput_vs_alpha",
    "format_series",
    "format_table",
]
