"""Recursive Link Elimination algorithm (RLE, Algorithm 2).

RLE targets the uniform-rate special case of Fading-R-LS.  It repeats:

1. pick the unscheduled link with the shortest length, say ``(s_i, r_i)``
   (shortest links have the strongest desired signal, so they are the
   most likely to survive interference);
2. delete every remaining link whose *sender* lies within radius
   ``c1 * d_ii`` of the picked receiver ``r_i`` (Algorithm 2 line 4 —
   the paper's line has a typo ``d_{s_i,r_i} < c1 d_{s_i,r_i}``; the
   proof of Lemma 4.1 makes clear the test is on ``d(s_j, r_i)``);
3. delete every remaining link whose own *receiver* has accumulated
   interference factor from the picked set above ``c2 * gamma_eps``
   (line 5; the picked link itself is protected by construction).

``c1`` comes from Eq. (59) so the geometric ring argument of Thm 4.3
caps the interference from links picked *later* at
``(1 - c2) * gamma_eps``, while step 3 caps the interference from links
picked *earlier* at ``c2 * gamma_eps`` — together the output schedule is
feasible.  Thm 4.4 bounds the approximation ratio by the constant
``3^alpha * 5 eps / (c2 (1-eps) gamma_th) + 1``.

Implementation notes
--------------------
The loop is O(picked * N) with fully vectorised inner steps: each pick
adds one row of the precomputed interference-factor matrix to a running
per-receiver accumulator, then masks out eliminated links.  Link order
is a single argsort by length done once.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import SchedulerError, register_scheduler
from repro.core.bounds import rle_c1
from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule


@register_scheduler("rle")
def rle_schedule(
    problem: FadingRLS,
    *,
    c2: float = 0.5,
    strict_uniform: bool = True,
    trace: bool = False,
) -> Schedule:
    """Run RLE (Algorithm 2).

    Parameters
    ----------
    problem:
        The instance; requires ``alpha > 2`` for Eq. (59)'s constant.
    c2:
        Interference-budget split in ``(0, 1)``: fraction of
        ``gamma_eps`` reserved for earlier-picked links.  Smaller ``c2``
        eliminates less by interference but forces a larger elimination
        radius ``c1``; ablation A2 sweeps it.
    strict_uniform:
        RLE's guarantee only covers uniform rates.  With the default
        ``True``, a non-uniform instance raises
        :class:`~repro.core.base.SchedulerError`; pass ``False`` to run
        it anyway (the schedule is still *feasible*, only the ratio
        proof is void).
    trace:
        Record *why* each eliminated link was removed: diagnostics gain
        an ``elimination`` dict mapping link index to
        ``("radius" | "interference", index of the pick that caused
        it)``.  Costs one dict insert per elimination.

    Returns
    -------
    Schedule
        Diagnostics record ``c1``, ``c2``, and how many links each
        elimination rule removed.
    """
    if not 0.0 < c2 < 1.0:
        raise ValueError(f"c2 must be in (0, 1), got {c2}")
    links = problem.links
    n = len(links)
    if n == 0:
        return Schedule.empty("rle")
    if strict_uniform and not links.has_uniform_rates:
        raise SchedulerError(
            "RLE's guarantee requires uniform rates; "
            "pass strict_uniform=False to run it regardless"
        )
    if not problem.has_uniform_power:
        raise SchedulerError(
            "RLE's geometric feasibility proof assumes uniform transmit "
            "power; use greedy/dls/exact schedulers for power-controlled "
            "instances"
        )

    # Per-receiver budgets: gamma_eps everywhere in the paper's N0 = 0
    # setting; with noise each receiver keeps gamma_eps - nu_j and the
    # geometric constant is sized by the *tightest* serviceable budget so
    # Thm 4.3's two-budget argument still closes (f_P+ <= (1-c2) b_min
    # <= (1-c2) b_j for every scheduled j).
    budgets = problem.effective_budgets()
    serviceable = budgets > 0.0
    if not serviceable.any():
        return Schedule(
            active=np.zeros(0, dtype=np.int64),
            algorithm="rle",
            diagnostics={"unserviceable": int(n)},
        )
    b_min = float(budgets[serviceable].min())
    c1 = rle_c1(problem.alpha, problem.gamma_th, b_min, c2)
    lengths = links.lengths
    dist = problem.distances()  # dist[j, i] = d(s_j, r_i)
    f = problem.interference_matrix()

    order = np.argsort(lengths, kind="stable")
    remaining = serviceable.copy()
    accumulated = np.zeros(n, dtype=float)  # f_{P, r_j} for every receiver j
    picked: list[int] = []
    removed_by_radius = 0
    removed_by_interference = 0
    elimination: dict[int, tuple[str, int]] = {}

    for i in order:
        if not remaining[i]:
            continue
        picked.append(int(i))
        remaining[i] = False

        # Line 4: drop links whose sender is within c1 * d_ii of r_i.
        radius_kill = remaining & (dist[:, i] < c1 * lengths[i])
        removed_by_radius += int(radius_kill.sum())
        remaining[radius_kill] = False
        if trace:
            for j in np.flatnonzero(radius_kill):
                elimination[int(j)] = ("radius", int(i))

        # Line 5: drop links whose receiver exceeds the c2 budget under
        # the picked set (the new pick contributes row f[i, :]).
        accumulated += f[i, :]
        interference_kill = remaining & (accumulated > c2 * budgets)
        removed_by_interference += int(interference_kill.sum())
        remaining[interference_kill] = False
        if trace:
            for j in np.flatnonzero(interference_kill):
                elimination[int(j)] = ("interference", int(i))

    return Schedule(
        active=np.array(sorted(picked), dtype=np.int64),
        algorithm="rle",
        diagnostics={
            "c1": c1,
            "c2": c2,
            "removed_by_radius": removed_by_radius,
            "removed_by_interference": removed_by_interference,
            "unserviceable": int(n - int(serviceable.sum())),
            "uniform_rates": bool(links.has_uniform_rates),
            **({"elimination": elimination, "pick_order": picked} if trace else {}),
        },
    )
