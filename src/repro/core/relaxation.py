"""LP relaxation of the Fading-R-LS ILP (Eq. 20-22).

Exact solvers stop scaling around N ~ 40; the LP relaxation (drop the
integrality constraint) still gives a *sound upper bound* on the
optimum at any size, so approximation quality can be measured on the
paper's 300-500-link workloads:

    ``rate(alg) <= OPT <= LP bound``.

Big-M relaxations are notoriously loose, so the bound is most useful on
dense instances (where the budget constraints bite); the ablation bench
reports both the bound and the trivial ``sum of rates`` cap for
context.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import LinearConstraint, milp

from repro.core.ilp import build_ilp
from repro.core.problem import FadingRLS


@dataclass(frozen=True)
class RelaxationBound:
    """LP upper bound and the fractional solution behind it."""

    upper_bound: float
    fractional: np.ndarray
    trivial_bound: float  # sum of all rates

    @property
    def tightness(self) -> float:
        """LP bound as a fraction of the trivial bound (lower = tighter)."""
        if self.trivial_bound == 0:
            return 1.0
        return self.upper_bound / self.trivial_bound


def lp_upper_bound(problem: FadingRLS) -> RelaxationBound:
    """Solve the LP relaxation of Eq. 20-22 (HiGHS, integrality = 0).

    Returns the optimal objective (an upper bound on the ILP optimum)
    and the fractional ``x``.  Infeasibility cannot occur (``x = 0``
    satisfies every constraint).
    """
    n = problem.n_links
    if n == 0:
        return RelaxationBound(upper_bound=0.0, fractional=np.zeros(0), trivial_bound=0.0)
    data = build_ilp(problem)
    res = milp(
        c=-data.objective,
        constraints=LinearConstraint(data.constraint_matrix, ub=data.upper_bounds),
        integrality=np.zeros(n),
        bounds=(0, 1),
    )
    if not res.success:
        raise RuntimeError(f"LP relaxation failed: {res.message}")
    return RelaxationBound(
        upper_bound=float(data.objective @ res.x),
        fractional=res.x.copy(),
        trivial_bound=float(problem.links.rates.sum()),
    )


def randomized_rounding(
    problem: FadingRLS,
    bound: RelaxationBound,
    *,
    n_samples: int = 50,
    seed=None,
) -> np.ndarray:
    """Feasible schedule from the fractional LP solution.

    Samples link subsets with inclusion probabilities ``x_i``, repairs
    each sample to feasibility by dropping the worst-loaded receivers,
    and keeps the best repaired sample.  A pragmatic rounding (no
    guarantee claimed) that often lands close to the greedy heuristics;
    returns the active index array.
    """
    from repro.utils.rng import as_rng

    rng = as_rng(seed)
    n = problem.n_links
    f = problem.interference_matrix()
    budgets = problem.effective_budgets()
    rates = problem.links.rates
    best_idx = np.zeros(0, dtype=np.int64)
    best_rate = 0.0
    for _ in range(max(1, n_samples)):
        member = rng.uniform(size=n) < bound.fractional
        # Repair: while some member receiver is overloaded, drop the
        # member with the worst (load - budget) excess.
        while True:
            acc = member.astype(float) @ f
            excess = acc - budgets
            bad = member & (excess > 1e-12)
            if not bad.any():
                break
            worst = np.flatnonzero(bad)[np.argmax(excess[bad])]
            member[worst] = False
        rate = float(rates[member].sum())
        if rate > best_rate:
            best_rate = rate
            best_idx = np.flatnonzero(member)
    return best_idx
