"""The Theorem 3.2 reduction: Knapsack -> Fading-R-LS.

The hardness proof maps a knapsack instance (items with values ``p_i``,
weights ``w_i``, capacity ``W``) to a scheduling instance:

- item sender ``s_i`` is placed at distance
  ``rho_i = ((e^(gamma_eps * w_i / W) - 1) / gamma_th)^(-1/alpha)``
  from the origin, so its interference factor at the origin is
  *exactly* ``gamma_eps * w_i / W`` — the weights become interference;
- a **gate link** of length 1 transmits into the origin
  (``s_gate = (0, 1)``, ``r_gate = (0, 0)``) with rate
  ``2 * sum(p)``, so any near-optimal schedule must include it, and the
  gate's feasibility is precisely the budget ``sum w_i <= W``;
- item receivers sit a distance ``delta`` from their senders (Eq. 25),
  small enough that item links are informed under *any* active set —
  their rates ``p_i`` are then collected freely.

Then: a schedule of total rate ``>= 2 sum(p) + C`` exists iff the
knapsack has a packing of value ``>= C``.

Deviations from the paper's construction (both documented in DESIGN.md):

1. Senders are spread over distinct *angles* on their origin-centred
   circles instead of all sitting on the x-axis.  Distance to the
   origin — the only quantity the gate math uses — is untouched, but
   duplicate weights no longer produce coincident senders (where the
   paper's ``d_min`` would be zero and Eq. 25 undefined).
2. After applying Eq. 25, ``delta`` is *certified*: we verify
   numerically that every item receiver tolerates all other senders
   simultaneously and halve ``delta`` until it does.  The paper asserts
   this (Eq. 31) but its constant silently ignores the gate sender's
   interference onto item receivers.

Together these make the reduction machine-checkable:
``solve_knapsack_via_scheduling`` recovers the exact DP optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.problem import FadingRLS, gamma_epsilon
from repro.network.links import LinkSet


@dataclass(frozen=True)
class KnapsackInstance:
    """A 0/1 knapsack instance with positive values and weights."""

    values: np.ndarray
    weights: np.ndarray
    capacity: float

    def __post_init__(self) -> None:
        v = np.asarray(self.values, dtype=float).reshape(-1)
        w = np.asarray(self.weights, dtype=float).reshape(-1)
        if v.shape != w.shape:
            raise ValueError("values and weights must have equal length")
        if np.any(v <= 0) or np.any(w <= 0):
            raise ValueError("values and weights must be positive")
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        v.setflags(write=False)
        w.setflags(write=False)
        object.__setattr__(self, "values", v)
        object.__setattr__(self, "weights", w)

    @property
    def n_items(self) -> int:
        return int(self.values.shape[0])


def solve_knapsack_dp(instance: KnapsackInstance, *, scale: int = 1000) -> tuple[float, List[int]]:
    """Exact 0/1 knapsack by dynamic programming over scaled weights.

    Float weights are scaled to integers by ``scale`` and floored —
    exact when ``weights * scale`` are integral (the tests use integer
    data), conservative otherwise.

    Returns ``(optimal value, chosen item indices)``.
    """
    w_int = np.floor(instance.weights * scale + 0.5).astype(np.int64)
    cap = int(np.floor(instance.capacity * scale + 1e-9))
    n = instance.n_items
    # dp[c] = best value with capacity c; parent pointers for recovery.
    dp = np.zeros(cap + 1, dtype=float)
    take = np.zeros((n, cap + 1), dtype=bool)
    for i in range(n):
        wi = w_int[i]
        vi = instance.values[i]
        if wi > cap:
            continue
        cand = dp[: cap + 1 - wi] + vi
        improved = cand > dp[wi:]
        take[i, wi:] = improved
        dp[wi:] = np.where(improved, cand, dp[wi:])
    # Recover the chosen set.
    chosen: List[int] = []
    c = cap
    for i in range(n - 1, -1, -1):
        if take[i, c]:
            chosen.append(i)
            c -= int(w_int[i])
    chosen.reverse()
    return float(dp[cap]), chosen


def solve_knapsack_brute(instance: KnapsackInstance) -> tuple[float, List[int]]:
    """Exact knapsack by enumeration (reference for DP tests; n <= 20)."""
    n = instance.n_items
    if n > 20:
        raise ValueError("brute-force knapsack limited to 20 items")
    best_v, best_set = 0.0, []
    for bits in range(1 << n):
        idx = [i for i in range(n) if bits >> i & 1]
        w = float(instance.weights[idx].sum()) if idx else 0.0
        if w <= instance.capacity + 1e-12:
            v = float(instance.values[idx].sum()) if idx else 0.0
            if v > best_v:
                best_v, best_set = v, idx
    return best_v, best_set


@dataclass(frozen=True)
class ReducedInstance:
    """Output of the Thm 3.2 mapping.

    Attributes
    ----------
    problem:
        The constructed Fading-R-LS instance; links ``0..n-1`` are the
        items (in input order), link ``n`` is the gate.
    gate_index:
        Index of the gate link (``n``).
    threshold:
        The decision threshold ``Lambda = 2 sum(p) + C`` for a target
        knapsack value ``C`` is ``gate_rate + C``; ``threshold`` stores
        ``gate_rate = 2 sum(p)``.
    """

    problem: FadingRLS
    gate_index: int
    threshold: float


def reduce_knapsack(
    instance: KnapsackInstance,
    *,
    alpha: float = 3.0,
    gamma_th: float = 1.0,
    eps: float = 0.01,
    max_delta_halvings: int = 60,
) -> ReducedInstance:
    """Map a knapsack instance to Fading-R-LS per Theorem 3.2."""
    n = instance.n_items
    g_eps = gamma_epsilon(eps)
    w = instance.weights
    p = instance.values
    cap = instance.capacity

    # Eq. 23 radii: interference factor at the origin == g_eps * w_i / W.
    rho = ((np.exp(g_eps * w / cap) - 1.0) / gamma_th) ** (-1.0 / alpha)
    # Spread senders over distinct angles (deviation 1 in the module
    # docstring); the gate sender sits at angle pi/2, so stay clear of it.
    angles = np.linspace(-np.pi / 4.0, np.pi / 4.0, n) if n > 1 else np.zeros(1)
    senders = np.column_stack([rho * np.cos(angles), rho * np.sin(angles)])
    gate_sender = np.array([0.0, 1.0])
    gate_receiver = np.array([0.0, 0.0])

    all_senders = np.vstack([senders, gate_sender[None, :]])
    diff = all_senders[:, None, :] - all_senders[None, :, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    iu = np.triu_indices(n + 1, k=1)
    d_min = float(dist[iu].min()) if n >= 1 else 1.0

    # Eq. 25 delta, then certify (deviation 2).
    delta = d_min / (((np.exp(g_eps / (n + 1)) - 1.0) / gamma_th) ** (-1.0 / alpha) + 1.0)

    gate_rate = 2.0 * float(p.sum())
    rates = np.concatenate([p, [gate_rate]])

    for _ in range(max_delta_halvings):
        out_dirs = senders / rho[:, None]  # radially outward unit vectors
        receivers = senders + delta * out_dirs
        links = LinkSet(
            senders=np.vstack([senders, gate_sender[None, :]]),
            receivers=np.vstack([receivers, gate_receiver[None, :]]),
            rates=rates,
        )
        problem = FadingRLS(links=links, alpha=alpha, gamma_th=gamma_th, eps=eps)
        if _item_links_robust(problem, n):
            return ReducedInstance(problem=problem, gate_index=n, threshold=gate_rate)
        delta *= 0.5
    raise RuntimeError(
        "could not certify the reduction's delta after "
        f"{max_delta_halvings} halvings (pathological instance?)"
    )


def _item_links_robust(problem: FadingRLS, n_items: int) -> bool:
    """Every item receiver must tolerate *all* other senders at once."""
    interference = problem.interference_on(np.arange(problem.n_links))
    return bool(np.all(interference[:n_items] <= problem.gamma_eps * (1.0 - 1e-9)))


def gate_budget_exact(instance: KnapsackInstance, reduced: ReducedInstance) -> np.ndarray:
    """Interference factor of each item sender on the gate receiver.

    Equals ``gamma_eps * w_i / W`` by construction; exposed for tests.
    """
    f = reduced.problem.interference_matrix()
    return f[: instance.n_items, reduced.gate_index]


def solve_knapsack_via_scheduling(
    instance: KnapsackInstance,
    scheduler,
    **scheduler_kwargs,
) -> tuple[float, List[int]]:
    """Solve knapsack by scheduling its reduced Fading-R-LS instance.

    ``scheduler`` is any registered scheduler callable (use an *exact*
    one — e.g. :func:`repro.core.exact.branch_and_bound_schedule` — to
    recover the true optimum; approximation algorithms give heuristic
    packings).  Returns ``(value, chosen item indices)``; the gate link
    is stripped from the answer.
    """
    reduced = reduce_knapsack(instance)
    schedule = scheduler(reduced.problem, **scheduler_kwargs)
    chosen = [int(i) for i in schedule.active if i != reduced.gate_index]
    value = float(instance.values[chosen].sum()) if chosen else 0.0
    return value, chosen
