"""Demand-aware TDMA frame construction.

The multi-slot extension covers every link once; real schedules carry
*demands* — link ``i`` needs ``w_i`` slots per frame (periodic sensor
traffic with heterogeneous sampling rates is the paper's own motivating
scenario for uniform rates, generalised).  This module builds frames:

- :func:`build_demand_frame` — repeatedly run a one-shot scheduler on
  the links with remaining demand, charging each scheduled link one
  slot, until all demands are met;
- :func:`frame_length_lower_bound` — a sound bound combining the
  largest single demand with the mutual-conflict clique structure (all
  clique members' demands must be serialised);
- :class:`Frame` — the result, with per-link service verification.

Every slot of a frame is feasible iff the underlying scheduler's
outputs are (LDP/RLE certified; the frame inherits the guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule


@dataclass(frozen=True)
class Frame:
    """A TDMA frame: ordered slots serving per-link demands.

    ``service[i]`` counts the slots in which link ``i`` transmits.
    """

    slots: List[Schedule]
    demands: np.ndarray
    algorithm: str

    @property
    def length(self) -> int:
        """Number of slots in the frame."""
        return len(self.slots)

    def service_counts(self, n_links: int) -> np.ndarray:
        """Slots granted per link; shape ``(n_links,)``."""
        counts = np.zeros(n_links, dtype=np.int64)
        for slot in self.slots:
            counts[slot.active] += 1
        return counts

    def verify(self, problem: FadingRLS) -> bool:
        """All demands exactly met and every slot feasible."""
        counts = self.service_counts(problem.n_links)
        if not np.array_equal(counts, self.demands):
            return False
        return all(problem.is_feasible(slot.active) for slot in self.slots)


def build_demand_frame(
    problem: FadingRLS,
    demands: np.ndarray,
    scheduler: Callable[..., Schedule],
    *,
    max_slots: int | None = None,
    **scheduler_kwargs,
) -> Frame:
    """Build a frame meeting integer per-link demands.

    Each iteration schedules one slot among the links with remaining
    demand (via ``problem.restrict``) and decrements the scheduled
    links' demands.  Total demand strictly decreases (the scheduler
    must return a non-empty set on non-empty instances), so the frame
    length is at most ``sum(demands)``.
    """
    w = np.asarray(demands, dtype=np.int64).reshape(-1)
    if w.shape[0] != problem.n_links:
        raise ValueError(f"demands has length {w.shape[0]}, expected {problem.n_links}")
    if np.any(w < 0):
        raise ValueError("demands must be >= 0")
    cap = int(w.sum()) if max_slots is None else int(max_slots)
    remaining = w.copy()
    slots: List[Schedule] = []
    name = getattr(scheduler, "__name__", "scheduler")
    while remaining.any():
        if len(slots) >= cap:
            raise RuntimeError(
                f"frame exceeded {cap} slots with demand {int(remaining.sum())} left"
            )
        pending = np.flatnonzero(remaining > 0)
        sub = problem.restrict(pending)
        sched = scheduler(sub, **scheduler_kwargs)
        if sched.size == 0:
            raise RuntimeError(
                f"{name} returned an empty schedule with demand outstanding"
            )
        chosen = pending[sched.active]
        remaining[chosen] -= 1
        slots.append(Schedule(active=chosen, algorithm=sched.algorithm))
    return Frame(slots=slots, demands=w, algorithm=name)


def frame_length_lower_bound(problem: FadingRLS, demands: np.ndarray) -> int:
    """Sound lower bound on any feasible frame's length.

    Two bounds, take the max:

    - the largest single demand (a link transmits once per slot);
    - the total demand of any mutual-conflict clique (members can never
      share a slot), using the same greedy clique as
      :func:`repro.core.multislot.multislot_lower_bound`.
    """
    w = np.asarray(demands, dtype=np.int64).reshape(-1)
    if w.shape[0] != problem.n_links:
        raise ValueError("demands length mismatch")
    if problem.n_links == 0 or not w.any():
        return 0
    best = int(w.max())
    f = problem.interference_matrix()
    g = problem.effective_budgets()
    conflict = (f > g[None, :]) & (f.T > g[:, None])
    deg = conflict.sum(axis=0)
    seed_vertex = int(np.argmax(deg))
    clique = [seed_vertex]
    for v in np.flatnonzero(conflict[seed_vertex]):
        if all(conflict[v, u] for u in clique):
            clique.append(int(v))
    return max(best, int(w[clique].sum()))
