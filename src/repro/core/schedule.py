"""Schedule result type.

Every scheduler returns a :class:`Schedule`: the chosen active sender
indices plus provenance (algorithm name and diagnostics such as the LDP
class/colour that won, or RLE's elimination counts).  Keeping results in
one type lets the simulator, benchmarks and tests treat all schedulers
uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

import numpy as np


@dataclass(frozen=True)
class Schedule:
    """A one-slot schedule: which links transmit simultaneously.

    Attributes
    ----------
    active : (K,) int array
        Sorted indices of the scheduled links within the problem's
        ``LinkSet``.
    algorithm:
        Name of the producing scheduler (e.g. ``"ldp"``).
    diagnostics:
        Free-form per-algorithm metadata; never consumed by the library
        itself, only surfaced in reports.
    """

    active: np.ndarray
    algorithm: str = "unknown"
    diagnostics: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        a = np.unique(np.asarray(self.active, dtype=np.int64).reshape(-1))
        if a.size and a.min() < 0:
            raise ValueError("active indices must be non-negative")
        a.setflags(write=False)
        object.__setattr__(self, "active", a)

    @property
    def size(self) -> int:
        """Number of scheduled links."""
        return int(self.active.size)

    def __len__(self) -> int:
        return self.size

    def __contains__(self, index: int) -> bool:
        return bool(np.isin(index, self.active))

    def mask(self, n_links: int) -> np.ndarray:
        """Boolean mask of length ``n_links`` with scheduled links True."""
        if self.active.size and self.active.max() >= n_links:
            raise ValueError(
                f"schedule references link {int(self.active.max())} "
                f"but the problem has only {n_links} links"
            )
        m = np.zeros(n_links, dtype=bool)
        m[self.active] = True
        return m

    def with_diagnostics(self, **extra: Any) -> "Schedule":
        """Copy with extra diagnostic entries merged in."""
        d = dict(self.diagnostics)
        d.update(extra)
        return Schedule(active=self.active.copy(), algorithm=self.algorithm, diagnostics=d)

    @classmethod
    def empty(cls, algorithm: str = "unknown") -> "Schedule":
        """The empty schedule."""
        return cls(active=np.zeros(0, dtype=np.int64), algorithm=algorithm)
