"""Core: the Fading-R-LS problem and its scheduling algorithms.

Public surface:

- :class:`repro.core.problem.FadingRLS` — a problem instance (links +
  channel parameters) with interference-factor and feasibility methods,
- :class:`repro.core.schedule.Schedule` — the result type returned by
  every scheduler,
- :func:`repro.core.ldp.ldp_schedule` — Link Diversity Partition
  (Algorithm 1, ``O(g(L))``-approximation),
- :func:`repro.core.rle.rle_schedule` — Recursive Link Elimination
  (Algorithm 2, constant approximation for uniform rates),
- :mod:`repro.core.baselines` — ApproxLogN / ApproxDiversity and naive
  baselines,
- :mod:`repro.core.exact` — brute-force, branch-and-bound, and
  MILP-based optimal solvers,
- :mod:`repro.core.reduction` — the Theorem 3.2 Knapsack reduction,
- :mod:`repro.core.bounds` — the paper's geometric constants and
  approximation-ratio formulas,
- :mod:`repro.core.multislot`, :mod:`repro.core.dls` — the future-work
  extensions (multi-slot covering; decentralised scheduling).
"""

from repro.core.base import SchedulerError, get_scheduler, list_schedulers, register_scheduler
from repro.core.certify import certify
from repro.core.dls import dls_schedule
from repro.core.exact import branch_and_bound_schedule, brute_force_schedule, milp_schedule
from repro.core.frames import build_demand_frame, frame_length_lower_bound
from repro.core.incremental import IncrementalScheduler
from repro.core.ldp import ldp_schedule
from repro.core.localsearch import improve_schedule, local_search_schedule
from repro.core.multislot import exact_min_slots, first_fit_multislot, multislot_schedule
from repro.core.problem import FadingRLS
from repro.core.relaxation import lp_upper_bound
from repro.core.rle import rle_schedule
from repro.core.schedule import Schedule

__all__ = [
    "FadingRLS",
    "Schedule",
    "IncrementalScheduler",
    "ldp_schedule",
    "rle_schedule",
    "dls_schedule",
    "multislot_schedule",
    "first_fit_multislot",
    "exact_min_slots",
    "certify",
    "improve_schedule",
    "local_search_schedule",
    "lp_upper_bound",
    "build_demand_frame",
    "frame_length_lower_bound",
    "brute_force_schedule",
    "branch_and_bound_schedule",
    "milp_schedule",
    "register_scheduler",
    "get_scheduler",
    "list_schedulers",
    "SchedulerError",
]
