"""The paper's geometric constants and approximation-ratio formulas.

Centralising the closed-form constants keeps the algorithm modules free
of magic numbers and lets tests check each constant against the
inequality it is supposed to guarantee:

- ``ldp_beta`` — Eq. (37), the LDP square-size factor;
- ``ldp_square_size`` — ``beta_k = 2^(h_k+1) * beta * delta``;
- ``ldp_square_capacity`` — Eq. (49), the per-square capacity ``u`` of
  any optimal schedule used in Thm 4.2;
- ``rle_c1`` — Eq. (59), RLE's elimination radius factor;
- ``ldp_approximation_ratio`` / ``rle_approximation_ratio`` — Thm 4.2
  (``16 g(L)``) and Thm 4.4;
- ``ldp_ring_interference_bound`` / ``rle_ring_interference_bound`` —
  the ring sums from the feasibility proofs (Thm 4.1 / 4.3), evaluated
  numerically so tests can confirm the constants really push the sums
  under ``gamma_eps``.

All formulas require ``alpha > 2`` (so ``zeta(alpha - 1)`` converges),
matching the paper's standing assumption.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive, check_probability
from repro.utils.zeta import riemann_zeta


def _check_alpha(alpha: float) -> float:
    alpha = float(alpha)
    if not alpha > 2.0:
        raise ValueError(
            f"the paper's constants require alpha > 2 (zeta convergence), got {alpha}"
        )
    return alpha


def ldp_beta(alpha: float, gamma_th: float, gamma_eps: float) -> float:
    """LDP square-size factor ``beta`` (Eq. 37).

    ``beta = (8 * zeta(alpha - 1) * gamma_th / gamma_eps)^(1/alpha)``.
    """
    _check_alpha(alpha)
    check_positive(gamma_th, "gamma_th")
    check_positive(gamma_eps, "gamma_eps")
    return float((8.0 * riemann_zeta(alpha - 1.0) * gamma_th / gamma_eps) ** (1.0 / alpha))


def ldp_square_size(h: int, delta: float, beta: float) -> float:
    """Side of LDP's grid squares for length class ``h``:
    ``beta_k = 2^(h+1) * beta * delta``."""
    if h < 0:
        raise ValueError("class magnitude h must be >= 0")
    check_positive(delta, "delta")
    check_positive(beta, "beta")
    return float(2.0 ** (h + 1) * beta * delta)


def ldp_square_capacity(alpha: float, gamma_th: float, gamma_eps: float) -> int:
    """Eq. (49): max receivers any *feasible* schedule fits in one LDP square.

    ``u = ceil(gamma_eps / ln(1 + 1 / (2^alpha * beta^alpha * gamma_th)))``.
    This is the pigeonhole constant behind the ``O(g(L))`` ratio proof.
    """
    _check_alpha(alpha)
    beta = ldp_beta(alpha, gamma_th, gamma_eps)
    denom = float(np.log1p(1.0 / (2.0**alpha * beta**alpha * gamma_th)))
    return int(np.ceil(gamma_eps / denom))


def ldp_approximation_ratio(g_l: int) -> float:
    """Thm 4.2: LDP is within factor ``16 * g(L)`` of the optimum."""
    if g_l < 1:
        raise ValueError("g(L) must be >= 1 for a non-empty link set")
    return 16.0 * g_l


def rle_c1(alpha: float, gamma_th: float, gamma_eps: float, c2: float) -> float:
    """RLE's elimination radius factor ``c1`` (Eq. 59).

    ``c1 = sqrt(2) * (12 * zeta(alpha-1) * gamma_th
           / (gamma_eps * (1 - c2)))^(1/alpha) + 1``.
    """
    _check_alpha(alpha)
    check_positive(gamma_th, "gamma_th")
    check_positive(gamma_eps, "gamma_eps")
    check_probability(c2, "c2")
    inner = 12.0 * riemann_zeta(alpha - 1.0) * gamma_th / (gamma_eps * (1.0 - c2))
    return float(np.sqrt(2.0) * inner ** (1.0 / alpha) + 1.0)


def rle_approximation_ratio(alpha: float, eps: float, gamma_th: float, c2: float) -> float:
    """Thm 4.4: RLE is within ``3^alpha * 5 * eps / (c2 (1-eps) gamma_th) + 1``
    of the optimum (uniform rates)."""
    _check_alpha(alpha)
    check_probability(eps, "eps")
    check_positive(gamma_th, "gamma_th")
    check_probability(c2, "c2")
    return float(3.0**alpha * 5.0 * eps / (c2 * (1.0 - eps) * gamma_th) + 1.0)


def ldp_ring_interference_bound(
    alpha: float,
    gamma_th: float,
    beta: float,
    *,
    n_rings: int = 10_000,
    worst_case_geometry: bool = False,
) -> float:
    """Numeric ring sum from Thm 4.1's feasibility proof.

    With the paper's accounting (same-colour squares at ring ``q`` hold
    at most ``8q`` interferers at normalised distance ``2 q beta - 1``):

        ``sum_q 8 q gamma_th / (2 q beta - 1)^alpha``

    With ``worst_case_geometry=True`` the distance is the rigorous
    corner-to-corner minimum ``(2q - 1) beta - 1`` instead — the paper's
    proof silently uses centre spacing; the rigorous variant is what
    :func:`ldp_rigorous_beta` sizes squares against.
    """
    _check_alpha(alpha)
    q = np.arange(1, n_rings + 1, dtype=float)
    if worst_case_geometry:
        dist = (2.0 * q - 1.0) * beta - 1.0
    else:
        dist = 2.0 * q * beta - 1.0
    if np.any(dist <= 0):
        raise ValueError("beta too small: nonpositive separation in ring sum")
    return float(np.sum(8.0 * q * gamma_th / dist**alpha))


def ldp_rigorous_beta(
    alpha: float,
    gamma_th: float,
    gamma_eps: float,
    *,
    tol: float = 1e-10,
) -> float:
    """Smallest ``beta`` whose *worst-case-geometry* ring sum fits ``gamma_eps``.

    The paper's Eq. (37) bounds interferer distance by same-colour
    square *spacing* ``2 q beta_k``; the true minimum between points of
    those squares is ``(2q - 1) beta_k``.  This solver (bisection on the
    monotone ring sum) returns a square-size factor that restores a
    rigorous feasibility certificate for any ``alpha > 2``; LDP exposes
    it via ``rigorous=True``.
    """
    _check_alpha(alpha)
    check_positive(gamma_th, "gamma_th")
    check_positive(gamma_eps, "gamma_eps")

    def total(beta: float) -> float:
        return ldp_ring_interference_bound(
            alpha, gamma_th, beta, worst_case_geometry=True
        )

    lo = 1.0 + 1e-6  # just above where the q=1 separation hits zero
    hi = max(4.0, ldp_beta(alpha, gamma_th, gamma_eps))
    while total(hi) > gamma_eps:
        hi *= 2.0
        if hi > 1e12:
            raise RuntimeError("failed to bracket rigorous beta")
    while hi - lo > tol * hi:
        mid = 0.5 * (lo + hi)
        if total(mid) > gamma_eps:
            lo = mid
        else:
            hi = mid
    return float(hi)


def rle_ring_interference_bound(
    alpha: float,
    gamma_th: float,
    c1: float,
    *,
    n_rings: int = 10_000,
) -> float:
    """Numeric ring sum from Thm 4.3 (normalised by ``d_ii^alpha``).

    ``sum_q 4 (2q + 1) gamma_th / (q * chi)^alpha`` with
    ``chi = (c1 - 1) / sqrt(2)``; the proof upper-bounds it by
    ``12 chi^-alpha zeta(alpha - 1) gamma_th`` which ``c1`` (Eq. 59)
    makes equal ``(1 - c2) gamma_eps``.
    """
    _check_alpha(alpha)
    if c1 <= 1.0:
        raise ValueError("c1 must be > 1")
    chi = (c1 - 1.0) / np.sqrt(2.0)
    q = np.arange(1, n_rings + 1, dtype=float)
    return float(np.sum(4.0 * (2.0 * q + 1.0) * gamma_th / (q * chi) ** alpha))


def interferer_count_bound(alpha: float, eps: float, gamma_th: float, k: float) -> float:
    """Lemma 4.2: in any feasible schedule, at most
    ``(e^gamma_eps - 1)/gamma_th * (1 + k)^alpha`` senders lie within
    ``k * d_ii`` of an active sender ``s_i``.

    (Note ``e^gamma_eps - 1 = eps / (1 - eps)``.)
    """
    check_probability(eps, "eps")
    check_positive(gamma_th, "gamma_th")
    if k < 0:
        raise ValueError("k must be >= 0")
    return float(eps / ((1.0 - eps) * gamma_th) * (1.0 + k) ** alpha)
