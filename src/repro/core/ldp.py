"""Link Diversity Partition algorithm (LDP, Algorithm 1).

LDP builds ``g(L)`` length classes — one per magnitude ``h_k`` in the
diversity set, each containing every link shorter than
``2^(h_k+1) * delta`` (upper bound only; the paper's improvement over
[14]) — and for each class tiles the plane with squares of side
``beta_k = 2^(h_k+1) * beta * delta`` (Eq. 37), 4-colours the tiling,
and, per colour, picks the highest-rate receiver in every square.  The
best of the resulting ``4 g(L)`` candidate schedules is returned.

Guarantees (for ``alpha > 2``): every candidate is feasible (Thm 4.1)
and the winner is a ``16 g(L)``-approximation (Thm 4.2).

Implementation notes
--------------------
- The per-square argmax is vectorised: links of one colour are sorted
  by (cell, -rate) and the first row of each cell group wins.
- ``rigorous=True`` swaps Eq. (37)'s ``beta`` for
  :func:`repro.core.bounds.ldp_rigorous_beta`, which certifies
  feasibility against the true corner-to-corner square separation
  rather than the centre spacing the paper's proof uses (see
  DESIGN.md); the paper's constant is the default.
- ``two_sided=True`` reproduces the [14]-style classes (both length
  bounds) for ablation A1.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.base import register_scheduler
from repro.core.bounds import ldp_beta, ldp_rigorous_beta, ldp_square_size
from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.geometry.grid import GridPartition
from repro.network.diversity import length_classes, length_diversity_set
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span

N_COLORS = 4


def _pick_per_square(
    cells: np.ndarray, rates: np.ndarray, link_idx: np.ndarray
) -> np.ndarray:
    """Pick the max-rate link per grid cell; returns global link indices.

    ``cells`` is ``(K, 2)`` integer cell coordinates of the ``K``
    candidate links (one colour of one class), ``rates`` their rates,
    ``link_idx`` their global indices.  Ties break toward the lower
    global index for determinism.
    """
    if link_idx.size == 0:
        return link_idx
    # Lexicographic sort by (cell_a, cell_b, -rate, link_idx): the first
    # row of each (cell_a, cell_b) group is the per-square winner.
    order = np.lexsort((link_idx, -rates, cells[:, 1], cells[:, 0]))
    sa = cells[order]
    first = np.ones(order.size, dtype=bool)
    first[1:] = np.any(sa[1:] != sa[:-1], axis=1)
    return link_idx[order[first]]


def ldp_candidates(
    problem: FadingRLS,
    *,
    two_sided: bool = False,
    rigorous: bool = False,
    beta_scale: float = 1.0,
) -> List[Tuple[int, int, np.ndarray]]:
    """Enumerate all ``4 g(L)`` candidate schedules.

    Returns a list of ``(class_magnitude, color, active_indices)``
    triples — exposed separately from :func:`ldp_schedule` so tests can
    assert feasibility of *every* candidate (Thm 4.1), not just the
    winner.
    """
    links = problem.links
    if len(links) == 0:
        return []
    if beta_scale <= 0:
        raise ValueError("beta_scale must be > 0")
    if not problem.has_uniform_power:
        from repro.core.base import SchedulerError

        raise SchedulerError(
            "LDP's square sizing (Thm 4.1) assumes uniform transmit power; "
            "use greedy/dls/exact schedulers for power-controlled instances"
        )
    # Noise extension: unserviceable links can never be informed and are
    # excluded; the square size is certified against the tightest
    # remaining budget (== gamma_eps in the paper's N0 = 0 setting).
    budgets = problem.effective_budgets()
    serviceable = np.flatnonzero(budgets > 0.0)
    if serviceable.size == 0:
        return []
    b_min = float(budgets[serviceable].min())
    if rigorous:
        beta = ldp_rigorous_beta(problem.alpha, problem.gamma_th, b_min)
    else:
        beta = ldp_beta(problem.alpha, problem.gamma_th, b_min)
    beta *= beta_scale
    delta = float(links.lengths.min())
    magnitudes = length_diversity_set(links)
    classes = length_classes(links, two_sided=two_sided)
    ok = np.zeros(len(links), dtype=bool)
    ok[serviceable] = True

    out: List[Tuple[int, int, np.ndarray]] = []
    for h, idx in zip(magnitudes, classes):
        idx = idx[ok[idx]]
        cell_size = ldp_square_size(h, delta, beta)
        grid = GridPartition(cell_size)
        cells = grid.cell_of(links.receivers[idx])
        colors = grid.color_of(links.receivers[idx])
        rates = links.rates[idx]
        for color in range(N_COLORS):
            sel = colors == color
            chosen = _pick_per_square(cells[sel], rates[sel], idx[sel])
            out.append((h, color, np.sort(chosen)))
    return out


@register_scheduler("ldp")
def ldp_schedule(
    problem: FadingRLS,
    *,
    two_sided: bool = False,
    rigorous: bool = False,
    beta_scale: float = 1.0,
) -> Schedule:
    """Run LDP (Algorithm 1) and return the best candidate schedule.

    Parameters
    ----------
    problem:
        The Fading-R-LS instance; requires ``alpha > 2``.
    two_sided:
        Use two-sided length classes (the [14] variant) instead of the
        paper's upper-bounded-only classes.  Ablation A1.
    rigorous:
        Size squares with the rigorous worst-case-geometry constant
        instead of Eq. (37); see module docstring.
    beta_scale:
        Extra multiplier on the square-size factor (>1 = more
        conservative). ``1.0`` reproduces the paper.

    Returns
    -------
    Schedule
        The max-rate candidate; diagnostics record the winning class
        magnitude ``h``, colour, the square-size factor used, and the
        number of candidates examined.
    """
    with span("ldp.partition", n=problem.n_links):
        candidates = ldp_candidates(
            problem, two_sided=two_sided, rigorous=rigorous, beta_scale=beta_scale
        )
    obs_metrics.inc("ldp.candidates", len(candidates))
    if not candidates:
        return Schedule.empty("ldp")
    best: Optional[Tuple[int, int, np.ndarray]] = None
    best_rate = -np.inf
    with span("ldp.select", candidates=len(candidates)):
        for h, color, active in candidates:
            rate = problem.scheduled_rate(active)
            if rate > best_rate:
                best_rate = rate
                best = (h, color, active)
    assert best is not None
    h, color, active = best
    return Schedule(
        active=active,
        algorithm="ldp",
        diagnostics={
            "class_magnitude": h,
            "color": color,
            "n_candidates": len(candidates),
            "two_sided": two_sided,
            "rigorous": rigorous,
            "beta_scale": beta_scale,
            "total_rate": best_rate,
        },
    )
