"""Local-search improvement of feasible schedules.

Any feasible schedule can be polished: try to *add* unscheduled links,
and try to *swap out* one scheduled link for two or more unscheduled
ones (rate-weighted).  Both moves preserve feasibility by construction,
so the result dominates the input — useful as a post-pass on LDP/RLE
(whose conservative constants leave budget on the table) and as a
strong heuristic reference in the approximation-quality ablations.

Moves:

- **add**: insert any link whose own budget and the members' budgets
  survive (the greedy closure);
- **1-out / k-in swap**: remove one member, then greedily add from the
  non-members (including the removed link's own slot budget freed at
  other receivers); keep the swap iff total rate strictly improves.

The search runs moves to a fixed point (no improving move), which
terminates because total scheduled rate strictly increases and is
bounded by the instance total.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import register_scheduler
from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.utils.rng import SeedLike, as_rng


def _greedy_close(
    problem: FadingRLS,
    member: np.ndarray,
    accumulated: np.ndarray,
    order: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Add links in ``order`` while feasibility survives (in place)."""
    f = problem.interference_matrix()
    budgets = problem.effective_budgets()
    for i in order:
        i = int(i)
        if member[i] or accumulated[i] > budgets[i]:
            continue
        new_acc = accumulated + f[i, :]
        if np.any(new_acc[member] > budgets[member]):
            continue
        member[i] = True
        accumulated = new_acc
    return member, accumulated


def improve_schedule(
    problem: FadingRLS,
    schedule: Schedule | np.ndarray,
    *,
    max_rounds: int = 50,
    seed: SeedLike = None,
) -> Schedule:
    """Run add/swap local search from a feasible starting schedule.

    Raises ``ValueError`` if the start is infeasible (local search
    preserves feasibility; it cannot repair).  The output's total rate
    is >= the input's, and no single add or 1-out swap improves it
    further.
    """
    active = schedule.active if isinstance(schedule, Schedule) else np.asarray(schedule)
    if not problem.is_feasible(active):
        raise ValueError("local search requires a feasible starting schedule")
    n = problem.n_links
    f = problem.interference_matrix()
    rates = problem.links.rates
    rng = as_rng(seed)

    member = problem.active_mask(active)
    accumulated = member.astype(float) @ f

    # Candidate order: by descending rate with random tie-breaking so
    # repeated calls explore different plateaus.
    base_order = np.lexsort((rng.permutation(n), -rates))

    member, accumulated = _greedy_close(problem, member, accumulated, base_order)
    rounds = 0
    swaps = 0
    for rounds in range(1, max_rounds + 1):
        improved = False
        current_rate = float(rates[member].sum())
        for out in np.flatnonzero(member):
            trial_member = member.copy()
            trial_member[out] = False
            trial_acc = accumulated - f[out, :]
            trial_member, trial_acc = _greedy_close(
                problem, trial_member, trial_acc, base_order
            )
            trial_rate = float(rates[trial_member].sum())
            if trial_rate > current_rate + 1e-12:
                member, accumulated = trial_member, trial_acc
                current_rate = trial_rate
                improved = True
                swaps += 1
        if not improved:
            break

    result = Schedule(
        active=np.flatnonzero(member),
        algorithm="local_search",
        diagnostics={
            "rounds": rounds,
            "swaps": swaps,
            "start_algorithm": schedule.algorithm if isinstance(schedule, Schedule) else "raw",
        },
    )
    return result


@register_scheduler("local_search")
def local_search_schedule(
    problem: FadingRLS,
    *,
    start: Optional[str] = "greedy",
    seed: SeedLike = None,
    **start_kwargs,
) -> Schedule:
    """Scheduler facade: start from a registered scheduler's output and
    locally improve it.  ``start=None`` starts from the empty schedule
    (pure local search)."""
    from repro.core.base import get_scheduler

    if start is None:
        initial = Schedule.empty("empty")
    else:
        fn = get_scheduler(start)
        if start in ("dls", "random", "protocol_mis"):
            start_kwargs.setdefault("seed", seed)
        initial = fn(problem, **start_kwargs)
    return improve_schedule(problem, initial, seed=seed)
