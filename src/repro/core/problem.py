"""The Fading-R-LS problem instance.

A :class:`FadingRLS` bundles a :class:`~repro.network.links.LinkSet`
with the channel parameters ``(alpha, gamma_th, eps)`` and exposes the
paper's analytical machinery:

- the **interference-factor matrix** ``F`` with
  ``F[i, j] = ln(1 + gamma_th * (P_i d_ij^-alpha) / (P_j d_jj^-alpha))``
  (Eq. 17, generalised to per-link transmit powers; with uniform powers
  this is exactly the paper's
  ``ln(1 + gamma_th (d_jj / d_ij)^alpha)``) — computed once and cached,
  all O(N^2) work vectorised;
- the **feasibility predicate** of Corollary 3.1, generalised to
  ambient noise: an active set ``P`` is feasible iff every ``j in P``
  has ``sum_{i in P\\j} F[i, j] + nu_j <= gamma_eps`` where
  ``nu_j = gamma_th * N0 * d_jj^alpha / P_j`` is the **noise factor**
  (the paper sets ``N0 = 0``, Eq. 8, making ``nu = 0``);
- closed-form per-link success probabilities (Theorem 3.1 with the
  standard noise extension
  ``Pr = e^-nu_j * prod 1/(1 + ...)``) and expected throughput.

Noise extension
---------------
The paper drops ``N0`` citing negligible effect.  We keep it optional:
for Rayleigh signal power ``Z ~ Exp(P_j d_jj^-alpha)``,

    ``Pr(Z >= gamma (N0 + I)) = e^(-gamma N0 / mu) * L_I(gamma / mu)``

so the log-domain constraint just gains the additive constant ``nu_j``
per receiver.  Links with ``nu_j > gamma_eps`` can never be informed —
they are *unserviceable* — and the scheduler layer must skip them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.backend import base as backend_base
from repro.backend import kernels as backend_kernels
from repro.network.links import LinkSet
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.utils.validation import check_positive, check_probability


def gamma_epsilon(eps: float) -> float:
    """``gamma_eps = ln(1 / (1 - eps))`` (Corollary 3.1's budget)."""
    check_probability(eps, "eps")
    return float(-np.log1p(-eps))


def interference_factors(
    distances: np.ndarray,
    alpha: float,
    gamma_th: float,
    powers: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Interference-factor matrix from a sender->receiver distance matrix.

    ``F[i, j] = ln(1 + gamma_th * (P_i d_ij^-alpha)/(P_j d_jj^-alpha))``
    for ``i != j``, ``F[i, i] = 0`` (Eq. 17).  ``powers`` defaults to
    uniform (the paper's setting), in which case the power ratio drops
    out.  Uses ``log1p`` so tiny factors from far-away interferers keep
    full precision — they are exactly the terms the proofs' ring sums
    accumulate.

    This is the fixed numpy *reference* (it delegates to
    :func:`repro.backend.kernels.fmatrix`); instance-level builds
    (:meth:`FadingRLS.interference_matrix`) dispatch through the active
    compute backend instead, which the ``backend-vs-numpy`` differential
    check pins bit-identical to this function.
    """
    return backend_kernels.fmatrix(distances, alpha, gamma_th, powers)


@dataclass(frozen=True)
class FadingRLS:
    """An instance of the Fading-Resistant Link Scheduling problem.

    Parameters
    ----------
    links:
        The candidate links ``L``.
    alpha:
        Path loss exponent (paper assumes ``alpha > 2``; enforced only
        where the LDP/RLE constants need zeta convergence).
    gamma_th:
        Decoding threshold (paper's experiments use 1.0).
    eps:
        Acceptable transmission error probability in ``(0, 1)``
        (paper's experiments use 0.01).
    noise:
        Ambient noise power ``N0 >= 0`` (paper: 0; see the module
        docstring for the closed-form extension).
    power:
        Uniform transmit power ``P`` (only matters relative to noise).
    powers:
        Optional per-link transmit powers overriding ``power``; enables
        the power-control extension (:mod:`repro.core.powercontrol`).
    """

    links: LinkSet
    alpha: float = 3.0
    gamma_th: float = 1.0
    eps: float = 0.01
    noise: float = 0.0
    power: float = 1.0
    powers: Optional[np.ndarray] = None
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        check_positive(self.alpha, "alpha")
        check_positive(self.gamma_th, "gamma_th")
        check_probability(self.eps, "eps")
        check_positive(self.noise, "noise", strict=False)
        check_positive(self.power, "power")
        if not isinstance(self.links, LinkSet):
            raise TypeError(f"links must be a LinkSet, got {type(self.links).__name__}")
        if self.powers is not None:
            p = np.asarray(self.powers, dtype=float).reshape(-1)
            if p.shape[0] != len(self.links):
                raise ValueError(
                    f"powers has length {p.shape[0]}, expected {len(self.links)}"
                )
            if np.any(p <= 0) or not np.all(np.isfinite(p)):
                raise ValueError("powers must be positive and finite")
            p.setflags(write=False)
            object.__setattr__(self, "powers", p)

    # -- derived quantities -------------------------------------------

    @property
    def n_links(self) -> int:
        return len(self.links)

    @property
    def gamma_eps(self) -> float:
        """The interference budget ``ln(1 / (1 - eps))``."""
        return gamma_epsilon(self.eps)

    @property
    def has_uniform_power(self) -> bool:
        return self.powers is None or bool(np.all(self.powers == self.powers[0]))

    def tx_powers(self) -> np.ndarray:
        """Per-link transmit powers; shape ``(N,)``."""
        if self.powers is not None:
            return self.powers
        if "tx_powers" not in self._cache:
            self._cache["tx_powers"] = np.full(self.n_links, float(self.power))
        return self._cache["tx_powers"]

    def distances(self) -> np.ndarray:
        """Cached sender->receiver distance matrix ``d(s_i, r_j)``."""
        if "distances" not in self._cache:
            self._cache["distances"] = self.links.sender_receiver_distances()
        return self._cache["distances"]

    def interference_matrix(self) -> np.ndarray:
        """Cached interference-factor matrix ``F`` (Eq. 17)."""
        if "F" not in self._cache:
            backend = backend_base.get_active()
            with span("fmatrix.build", n=self.n_links, backend=backend.name):
                self._cache["F"] = backend.fmatrix(
                    self.distances(), self.alpha, self.gamma_th, self.powers
                )
            obs_metrics.inc("fmatrix.builds")
            obs_metrics.inc("fmatrix.cells_computed", self.n_links * self.n_links)
        else:
            obs_metrics.inc("fmatrix.cache_hits")
        return self._cache["F"]

    def noise_factors(self) -> np.ndarray:
        """Per-receiver noise factor ``nu_j = gamma_th N0 d_jj^alpha / P_j``.

        All zero in the paper's ``N0 = 0`` setting.
        """
        if "noise_factors" not in self._cache:
            if self.noise == 0.0:
                nu = np.zeros(self.n_links, dtype=float)
            else:
                lengths = self.links.lengths
                nu = self.gamma_th * self.noise * lengths**self.alpha / self.tx_powers()
            self._cache["noise_factors"] = nu
        return self._cache["noise_factors"]

    def effective_budgets(self) -> np.ndarray:
        """Per-receiver interference budget ``gamma_eps - nu_j``.

        Negative entries mark *unserviceable* links (noise alone already
        exceeds the error allowance).
        """
        return self.gamma_eps - self.noise_factors()

    def serviceable(self) -> np.ndarray:
        """Boolean per link: can it be informed with no interferers at all?"""
        return self.effective_budgets() >= 0.0

    # -- feasibility (Corollary 3.1) ----------------------------------

    def active_mask(self, active: Sequence[int] | np.ndarray) -> np.ndarray:
        """Normalise an index array / bool mask to a bool mask."""
        a = np.asarray(active)
        if a.dtype == bool:
            if a.shape != (self.n_links,):
                raise ValueError(
                    f"boolean mask must have shape ({self.n_links},), got {a.shape}"
                )
            return a.copy()
        mask = np.zeros(self.n_links, dtype=bool)
        idx = a.astype(np.int64).reshape(-1)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_links):
            raise IndexError(f"active indices out of range for {self.n_links} links")
        mask[idx] = True
        return mask

    def interference_on(self, active: Sequence[int] | np.ndarray) -> np.ndarray:
        """Summed interference factors at every receiver from set ``P``.

        Returns an ``(N,)`` array: entry ``j`` is
        ``sum_{i in P, i != j} F[i, j]`` — receiver ``j``'s accumulated
        interference factor whether or not ``j`` itself is active
        (RLE's elimination step needs it for inactive receivers too).
        Noise is *not* included; see :meth:`noise_factors`.
        """
        mask = self.active_mask(active)
        f = self.interference_matrix()
        # F has a zero diagonal, so an active j never counts itself.
        return mask.astype(float) @ f

    def informed(self, active: Sequence[int] | np.ndarray, *, tol: float = 1e-12) -> np.ndarray:
        """Boolean per-link: is each *active* link informed under ``P``?

        Inactive links report ``False``.  ``tol`` absorbs floating-point
        round-off at the budget boundary.
        """
        mask = self.active_mask(active)
        slack = self.interference_on(mask) <= self.effective_budgets() + tol
        return mask & slack

    def is_feasible(self, active: Sequence[int] | np.ndarray, *, tol: float = 1e-12) -> bool:
        """Corollary 3.1 check: every active receiver is informed.

        Dispatches through the active compute backend's feasibility
        kernel, which gathers only the ``(K, K)`` active sub-matrix —
        O(K^2) instead of the O(N^2) masked reduction behind
        :meth:`informed` — and returns the identical verdict (the
        ``backend-vs-numpy`` differential check and the kernel tests
        pin agreement, including on the unserviceable-link edge where
        noise alone exceeds a receiver's budget).
        """
        mask = self.active_mask(active)
        idx = np.flatnonzero(mask)
        if idx.size == 0:
            return True
        return bool(
            backend_base.get_active().feasible_verdict(
                self.interference_matrix(), idx, self.effective_budgets(), tol
            )
        )

    # -- objective ----------------------------------------------------

    def scheduled_rate(self, active: Sequence[int] | np.ndarray) -> float:
        """Total data rate of the active set (the ILP objective)."""
        mask = self.active_mask(active)
        return float(self.links.rates[mask].sum())

    def success_probabilities(self, active: Sequence[int] | np.ndarray) -> np.ndarray:
        """Theorem 3.1 closed-form success probability per active link.

        Returns an ``(N,)`` array with zeros at inactive links, so it
        aligns with the link indexing (convenient for expected
        throughput: ``rates @ success_probabilities``).  With noise the
        extra ``e^-nu_j`` factor applies.
        """
        mask = self.active_mask(active)
        out = np.zeros(self.n_links, dtype=float)
        exponent = self.interference_on(mask) + self.noise_factors()
        out[mask] = np.exp(-exponent[mask])
        return out

    def expected_throughput(self, active: Sequence[int] | np.ndarray) -> float:
        """Expected successfully-received rate under Rayleigh fading.

        ``sum_j lambda_j * Pr(X_j >= gamma_th)`` over the active set —
        the fading-aware version of the paper's throughput metric.
        """
        return float(self.links.rates @ self.success_probabilities(active))

    # -- restriction --------------------------------------------------

    def restrict(self, indices: Sequence[int] | np.ndarray) -> "FadingRLS":
        """Sub-instance on a subset of links (fresh caches)."""
        idx = np.asarray(indices, dtype=np.int64).reshape(-1)
        return FadingRLS(
            links=self.links.subset(idx),
            alpha=self.alpha,
            gamma_th=self.gamma_th,
            eps=self.eps,
            noise=self.noise,
            power=self.power,
            powers=None if self.powers is None else self.powers[idx].copy(),
        )

    def with_params(
        self,
        *,
        alpha: Optional[float] = None,
        gamma_th: Optional[float] = None,
        eps: Optional[float] = None,
        noise: Optional[float] = None,
        power: Optional[float] = None,
    ) -> "FadingRLS":
        """Copy of this instance with some channel parameters replaced.

        Cached derived quantities are carried forward whenever the
        parameters that define them are untouched, so e.g. an eps-only
        sweep (``with_params(eps=...)`` per point) reuses the O(N^2)
        interference matrix ``F`` instead of recomputing it: distances
        depend only on the shared links; ``F`` on ``(alpha, gamma_th)``
        (and ``powers``, which this method never changes); the uniform
        ``tx_powers`` vector on ``power``; the noise factors on
        ``(alpha, gamma_th, noise, power)``.  The arrays are shared, not
        copied — they are treated as immutable throughout.
        """
        new = FadingRLS(
            links=self.links,
            alpha=self.alpha if alpha is None else alpha,
            gamma_th=self.gamma_th if gamma_th is None else gamma_th,
            eps=self.eps if eps is None else eps,
            noise=self.noise if noise is None else noise,
            power=self.power if power is None else power,
            powers=self.powers,
        )
        cache = self._cache
        if "distances" in cache:
            new._cache["distances"] = cache["distances"]
        same_f = new.alpha == self.alpha and new.gamma_th == self.gamma_th
        if same_f and "F" in cache:
            new._cache["F"] = cache["F"]
        if new.power == self.power and "tx_powers" in cache:
            new._cache["tx_powers"] = cache["tx_powers"]
        if (
            same_f
            and new.noise == self.noise
            and new.power == self.power
            and "noise_factors" in cache
        ):
            new._cache["noise_factors"] = cache["noise_factors"]
        return new

    def with_powers(self, powers: np.ndarray) -> "FadingRLS":
        """Copy of this instance with per-link transmit powers."""
        return FadingRLS(
            links=self.links,
            alpha=self.alpha,
            gamma_th=self.gamma_th,
            eps=self.eps,
            noise=self.noise,
            power=self.power,
            powers=np.asarray(powers, dtype=float).copy(),
        )
