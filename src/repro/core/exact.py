"""Exact (optimal) solvers for Fading-R-LS.

Fading-R-LS is NP-hard (Thm 3.2), so these are exponential-time tools
for *small* instances, used to measure how close LDP/RLE land to the
optimum (ablation A3):

- :func:`brute_force_schedule` — enumerate all ``2^N`` subsets
  (``N <= 22`` guarded);
- :func:`branch_and_bound_schedule` — depth-first search exploiting
  that feasibility is *hereditary* (interference only grows with the
  active set, so an infeasible partial set can be pruned) with a
  remaining-rate upper bound;
- :func:`milp_schedule` — the Eq. 20-22 program handed to
  ``scipy.optimize.milp`` (HiGHS).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import LinearConstraint, milp

from repro.core.base import register_scheduler
from repro.core.ilp import build_ilp
from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule

BRUTE_FORCE_LIMIT = 22


@register_scheduler("brute_force")
def brute_force_schedule(problem: FadingRLS, *, limit: int = BRUTE_FORCE_LIMIT) -> Schedule:
    """Optimal schedule by exhaustive subset enumeration.

    Guarded at ``limit`` links (default 22, ~4M subsets); raises above.
    Iterates subsets in Gray-code-free plain order but keeps incremental
    cost low by testing feasibility on the subset's own sub-matrix.
    """
    n = problem.n_links
    if n > limit:
        raise ValueError(
            f"brute force on {n} links would enumerate 2^{n} subsets; "
            f"limit is {limit} (raise `limit` explicitly if you mean it)"
        )
    if n == 0:
        return Schedule.empty("brute_force")
    f = problem.interference_matrix()
    rates = problem.links.rates
    budgets = problem.effective_budgets()
    best_idx = np.zeros(0, dtype=np.int64)
    best_rate = 0.0
    n_feasible = 0
    for bits in range(1, 1 << n):
        idx = np.array([i for i in range(n) if bits >> i & 1], dtype=np.int64)
        sub = f[np.ix_(idx, idx)]
        if np.all(sub.sum(axis=0) <= budgets[idx] + 1e-12):
            n_feasible += 1
            rate = float(rates[idx].sum())
            if rate > best_rate:
                best_rate = rate
                best_idx = idx
    return Schedule(
        active=best_idx,
        algorithm="brute_force",
        diagnostics={"n_subsets": (1 << n) - 1, "n_feasible": n_feasible, "optimum": best_rate},
    )


@register_scheduler("branch_and_bound")
def branch_and_bound_schedule(problem: FadingRLS) -> Schedule:
    """Optimal schedule by branch-and-bound.

    Links are branched in descending-rate order.  Invariants:

    - a node carries the accumulated interference of its chosen set on
      *every* receiver, so the include-branch feasibility check is two
      vectorised comparisons;
    - feasibility is hereditary, so infeasible include-branches are
      pruned outright;
    - the fractional bound is simply ``chosen + remaining`` total rate
      (rates are all positive), fathoming nodes that cannot beat the
      incumbent.
    """
    n = problem.n_links
    if n == 0:
        return Schedule.empty("branch_and_bound")
    f = problem.interference_matrix()
    rates = problem.links.rates
    budgets = problem.effective_budgets() + 1e-12

    order = np.argsort(-rates, kind="stable")
    f_ord = f[np.ix_(order, order)]
    r_ord = rates[order]
    b_ord = budgets[order]
    # suffix_rates[k] = total rate of links order[k:].
    suffix_rates = np.concatenate([np.cumsum(r_ord[::-1])[::-1], [0.0]])

    best_rate = 0.0
    best_set: list[int] = []
    nodes_visited = 0

    # Iterative DFS: stack entries are (depth, chosen-list, accumulated
    # interference vector, chosen_rate).  Accumulation is in the
    # reordered index space.
    stack = [(0, [], np.zeros(n), 0.0)]
    while stack:
        depth, chosen, acc, chosen_rate = stack.pop()
        nodes_visited += 1
        if chosen_rate > best_rate:
            best_rate = chosen_rate
            best_set = chosen
        if depth == n:
            continue
        if chosen_rate + suffix_rates[depth] <= best_rate:
            continue  # fathomed: cannot beat incumbent
        i = depth
        # Exclude branch (pushed first so include is explored first:
        # good incumbents early tighten the bound).
        stack.append((depth + 1, chosen, acc, chosen_rate))
        # Include branch, if it stays feasible.
        if acc[i] <= b_ord[i]:
            new_acc = acc + f_ord[i, :]
            members = chosen + [i]
            if np.all(new_acc[members] <= b_ord[members]):
                stack.append((depth + 1, members, new_acc, chosen_rate + float(r_ord[i])))

    active = np.sort(order[np.array(best_set, dtype=np.int64)]) if best_set else np.zeros(0, dtype=np.int64)
    return Schedule(
        active=active,
        algorithm="branch_and_bound",
        diagnostics={"nodes_visited": nodes_visited, "optimum": best_rate},
    )


@register_scheduler("milp")
def milp_schedule(problem: FadingRLS, *, time_limit: float | None = None) -> Schedule:
    """Optimal schedule via ``scipy.optimize.milp`` on the Eq. 20-22 program.

    Raises :class:`RuntimeError` when HiGHS reports anything but
    success (``x = 0`` is always feasible, so failures mean limits, not
    genuine infeasibility).
    """
    n = problem.n_links
    if n == 0:
        return Schedule.empty("milp")
    data = build_ilp(problem)
    constraints = LinearConstraint(
        data.constraint_matrix, ub=data.upper_bounds
    )
    options = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    res = milp(
        c=-data.objective,  # milp minimises
        constraints=constraints,
        integrality=np.ones(n),
        bounds=(0, 1),
        options=options,
    )
    if not res.success:
        raise RuntimeError(f"MILP solver failed: {res.message}")
    x = np.round(res.x).astype(np.int64)
    active = np.flatnonzero(x == 1)
    return Schedule(
        active=active,
        algorithm="milp",
        diagnostics={"optimum": float(data.objective @ x), "mip_gap": float(res.mip_gap or 0.0)},
    )
