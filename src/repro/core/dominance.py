"""Blue-dominant centers (Definition 4.2 / Lemma 4.3).

The approximation proof of RLE (Lemma 4.4) leans on the
*blue-dominant centers lemma* from [15]: given disjoint planar point
sets ``N_b`` (blue) and ``N_r`` (red) with ``|N_b| > 5 z |N_r|``, some
blue point ``s_b`` is **z-blue-dominant** — every circle centred at
``s_b`` contains more than ``z`` times as many blue as red points.

This module makes the machinery executable:

- :func:`is_z_blue_dominant` — check Definition 4.2 for one point
  (only the circle radii at which a *red* point enters matter — between
  consecutive red distances the blue count only grows, so the check is
  O(|N_b| log + |N_r|^2)-ish rather than over all real radii);
- :func:`find_blue_dominant` — search for a dominant point;
- :func:`dominance_threshold_holds` — the lemma's precondition.

Tests use these to verify the lemma numerically on random instances —
the same role the Appendix plays for Theorem 4.4.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.points import as_points


def is_z_blue_dominant(
    blue: np.ndarray,
    red: np.ndarray,
    center_index: int,
    z: int,
) -> bool:
    """Definition 4.2: is ``blue[center_index]`` z-blue-dominant?

    Requires ``|B_d & blue| > z * |B_d & red|`` for *every* radius
    ``d > 0``.  The counts only change at point distances, and between
    red arrivals the blue count is non-decreasing, so it suffices to
    check, for each red count level ``k`` (just as the k-th red point
    arrives and beyond), that the blue count strictly exceeds ``z k``
    at every radius from the k-th red distance up to (just before) the
    (k+1)-th.  The critical radii are therefore exactly the red
    distances (checked inclusively) — and radius just below the first
    red distance, where blue must already be > 0 (the centre itself
    counts, so that always holds).
    """
    if z < 1:
        raise ValueError("z must be >= 1")
    b = as_points(blue, "blue")
    r = as_points(red, "red")
    center = b[center_index]
    db = np.sort(np.sqrt(((b - center) ** 2).sum(axis=1)))
    dr = np.sort(np.sqrt(((r - center) ** 2).sum(axis=1)))
    # At any radius d: blue count = #(db <= d), red count = #(dr <= d).
    # The constraint bites hardest at each red distance (red count just
    # rose, blue count minimal for that level).
    for k, d in enumerate(dr, start=1):
        blue_count = int(np.searchsorted(db, d, side="right"))
        if blue_count <= z * k:
            return False
    return True


def find_blue_dominant(
    blue: np.ndarray,
    red: np.ndarray,
    z: int,
) -> Optional[int]:
    """Index of some z-blue-dominant blue point, or None.

    Lemma 4.3 guarantees existence when ``|blue| > 5 z |red|``; the
    search itself is unconditional (it may also succeed below the
    threshold — the lemma is sufficient, not necessary).
    """
    b = as_points(blue, "blue")
    for i in range(b.shape[0]):
        if is_z_blue_dominant(b, red, i, z):
            return i
    return None


def dominance_threshold_holds(blue: np.ndarray, red: np.ndarray, z: int) -> bool:
    """The lemma's precondition ``|blue| > 5 z |red|``."""
    b = as_points(blue, "blue")
    r = as_points(red, "red")
    return b.shape[0] > 5 * z * r.shape[0]
