"""Scheduler protocol and registry.

A *scheduler* is any callable ``(problem: FadingRLS, **kwargs) ->
Schedule``.  The registry gives experiments and benchmarks a uniform way
to sweep over algorithms by name; each algorithm module registers itself
at import time.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule

SchedulerFn = Callable[..., Schedule]


class SchedulerError(RuntimeError):
    """Raised when a scheduler cannot run on the given instance
    (e.g. RLE on non-uniform rates with ``strict=True``)."""


_REGISTRY: Dict[str, SchedulerFn] = {}


def register_scheduler(name: str, fn: SchedulerFn | None = None):
    """Register a scheduler under ``name``.

    Usable as a decorator (``@register_scheduler("ldp")``) or directly
    (``register_scheduler("ldp", ldp_schedule)``).  Re-registration of
    the same name raises — silent replacement has bitten every plugin
    registry ever written.
    """

    def _register(f: SchedulerFn) -> SchedulerFn:
        if name in _REGISTRY and _REGISTRY[name] is not f:
            raise ValueError(f"scheduler {name!r} is already registered")
        _REGISTRY[name] = f
        return f

    if fn is None:
        return _register
    return _register(fn)


def get_scheduler(name: str) -> SchedulerFn:
    """Look up a scheduler by registry name."""
    _ensure_builtin_schedulers()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def list_schedulers() -> List[str]:
    """Sorted names of all registered schedulers."""
    _ensure_builtin_schedulers()
    return sorted(_REGISTRY)


def run_scheduler(name: str, problem: FadingRLS, **kwargs) -> Schedule:
    """Convenience: look up and invoke in one call."""
    return get_scheduler(name)(problem, **kwargs)


def _ensure_builtin_schedulers() -> None:
    """Import the algorithm modules so their registrations run.

    Local import breaks the circular dependency (algorithm modules
    import :func:`register_scheduler` from here).
    """
    import repro.core.baselines  # noqa: F401
    import repro.core.dls  # noqa: F401
    import repro.core.exact  # noqa: F401
    import repro.core.ldp  # noqa: F401
    import repro.core.localsearch  # noqa: F401
    import repro.core.rle  # noqa: F401
