"""Power control extensions.

The paper's related work (Section VI-B, refs [24]-[26]) studies *joint*
link scheduling and power control; the paper itself fixes uniform
transmit power.  This module adds the natural power-control layer on
top of the generalised model (per-link ``powers`` on
:class:`~repro.core.problem.FadingRLS`):

- :func:`distance_proportional_powers` — the classic
  ``P_j = c * d_jj^alpha`` policy that equalises mean received signal
  power across links;
- :func:`min_uniform_power` — smallest uniform power keeping every
  link serviceable under ambient noise;
- :func:`min_power_assignment` — a Foschini-Miljanic-style standard
  interference-function iteration in the Rayleigh log-domain: given a
  target active set, find (near-)minimal per-link powers under which
  the set stays fading-feasible, or report infeasibility;
- :func:`joint_power_schedule` — apply a power policy, then re-run any
  scheduler; the usual way power control buys throughput.

All of these respect the closed-form feasibility of Cor. 3.1 (with
noise factors), so results remain machine-checkable via
``problem.is_feasible``.

The experiment pipeline selects among them by **name**: the
:data:`POWER_POLICIES` registry (``uniform``,
``distance_proportional``, ``min_uniform``, ``foschini_miljanic``)
backs the ``power_policy`` field of
:class:`~repro.experiments.config.ExperimentConfig` and the
``--power-policy`` CLI flag; :func:`apply_power_policy` and
:func:`run_scheduler_with_power` are the two entry points the
executors call.  The first three policies re-power the instance
*before* scheduling; ``foschini_miljanic`` schedules first and then
re-powers the admitted set via :func:`min_power_assignment` (keeping
the original powers when the iteration reports infeasibility), so it
composes with any scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.network.links import LinkSet
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span


def distance_proportional_powers(
    links: LinkSet, alpha: float, *, target_received: float = 1.0
) -> np.ndarray:
    """Powers ``P_j = target_received * d_jj^alpha``.

    Equalises every link's mean received *signal* power at
    ``target_received``, so long links stop being disadvantaged — the
    standard compensation policy.  Note it also makes long links
    louder interferers; whether it helps is workload-dependent (see the
    power-control example).
    """
    if target_received <= 0:
        raise ValueError("target_received must be > 0")
    if alpha <= 0:
        raise ValueError("alpha must be > 0")
    return target_received * links.lengths**alpha


def min_uniform_power(problem: FadingRLS, *, headroom: float = 0.5) -> float:
    """Smallest uniform power making every link serviceable under noise.

    Serviceability needs ``nu_j = gamma_th N0 d_jj^alpha / P < gamma_eps``;
    ``headroom`` in ``(0, 1)`` reserves ``(1 - headroom) * gamma_eps`` of
    each budget for interference (headroom = the fraction of the budget
    the noise may consume).

    Returns 0.0 when the problem has no noise (any power works).
    """
    if not 0.0 < headroom < 1.0:
        raise ValueError(f"headroom must be in (0, 1), got {headroom}")
    if problem.noise == 0.0:
        return 0.0
    if problem.n_links == 0:
        return 0.0
    worst = float(problem.links.lengths.max())
    return float(
        problem.gamma_th * problem.noise * worst**problem.alpha
        / (problem.gamma_eps * headroom)
    )


@dataclass(frozen=True)
class PowerAssignment:
    """Result of :func:`min_power_assignment`.

    ``feasible`` reports whether the iteration converged to a power
    vector under which the target set passes Cor. 3.1; ``powers`` holds
    the per-link powers (original powers where the link is inactive).
    """

    feasible: bool
    powers: np.ndarray
    iterations: int
    total_power: float


def _min_power_for_link(
    j_local: int,
    powers: np.ndarray,
    own: np.ndarray,
    sub_d: np.ndarray,
    problem: FadingRLS,
    p_max: float,
) -> float:
    """Bisection: smallest ``P_j`` satisfying receiver ``j``'s constraint
    with the other active powers fixed.

    The constraint ``sum_i log1p(gamma P_i d_ij^-a / (P_j d_jj^-a)) + nu_j
    <= gamma_eps`` is strictly decreasing in ``P_j``, so bisection on
    ``[p_lo, p_max]`` is exact.  Returns ``inf`` when even ``p_max``
    fails.
    """
    gamma = problem.gamma_th
    alpha = problem.alpha
    g_eps = problem.gamma_eps
    k = powers.shape[0]
    others = np.arange(k) != j_local
    d_own = own[j_local]

    def load(pj: float) -> float:
        mean_sig = pj * d_own**-alpha
        interf = gamma * (powers[others] * sub_d[others, j_local] ** -alpha) / mean_sig
        nu = gamma * problem.noise / mean_sig
        return float(np.log1p(interf).sum() + nu)

    if load(p_max) > g_eps:
        return np.inf
    lo, hi = 0.0, p_max
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if mid <= 0.0 or load(mid) > g_eps:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-12 * max(hi, 1.0):
            break
    return hi


def min_power_assignment(
    problem: FadingRLS,
    active,
    *,
    p_max: float = 1e6,
    max_iterations: int = 200,
    tol: float = 1e-9,
) -> PowerAssignment:
    """Near-minimal per-link powers keeping ``active`` fading-feasible.

    Asynchronous best-response iteration: repeatedly set each active
    link's power to the *minimum* satisfying its own Cor. 3.1 constraint
    given the others.  The update is a standard interference function
    (monotone and scalable in the power vector), so when a feasible
    power vector ``<= p_max`` exists the iteration converges to the
    componentwise-minimal one; otherwise some link's requirement
    escapes ``p_max`` and we report infeasibility.

    Links outside ``active`` keep their current powers (they do not
    transmit, so their values are irrelevant to the constraint).
    """
    mask = problem.active_mask(active)
    idx = np.flatnonzero(mask)
    base = problem.tx_powers().astype(float).copy()
    if idx.size == 0:
        return PowerAssignment(feasible=True, powers=base, iterations=0, total_power=0.0)
    d = problem.distances()
    sub_d = d[np.ix_(idx, idx)]
    own = np.diag(sub_d).copy()

    powers = np.full(idx.size, 1e-6)
    with span("powercontrol.iterate", k=int(idx.size)):
        for it in range(1, max_iterations + 1):
            prev = powers.copy()
            for j_local in range(idx.size):
                req = _min_power_for_link(j_local, powers, own, sub_d, problem, p_max)
                if not np.isfinite(req):
                    obs_metrics.inc("powercontrol.iterations", it)
                    return PowerAssignment(
                        feasible=False,
                        powers=base,
                        iterations=it,
                        total_power=float("inf"),
                    )
                powers[j_local] = req
            if np.max(np.abs(powers - prev)) <= tol * max(1.0, np.max(powers)):
                break
    obs_metrics.inc("powercontrol.iterations", it)

    out = base
    out[idx] = np.maximum(powers, 1e-300)
    candidate = problem.with_powers(out)
    feasible = candidate.is_feasible(idx, tol=1e-6)
    return PowerAssignment(
        feasible=bool(feasible),
        powers=out,
        iterations=it,
        total_power=float(powers.sum()),
    )


def joint_power_schedule(
    problem: FadingRLS,
    scheduler: Callable[..., Schedule],
    power_policy: Callable[[FadingRLS], np.ndarray],
    **scheduler_kwargs,
) -> tuple[Schedule, FadingRLS]:
    """Apply a power policy, then schedule under the new powers.

    Returns ``(schedule, powered_problem)`` so callers can verify and
    simulate against the instance the scheduler actually saw.
    """
    powers = np.asarray(power_policy(problem), dtype=float)
    powered = problem.with_powers(powers)
    return scheduler(powered, **scheduler_kwargs), powered


#: Named power policies selectable via config/CLI.  ``uniform`` is the
#: paper's setting (keep the instance's powers untouched);
#: ``distance_proportional`` and ``min_uniform`` re-power the instance
#: before scheduling; ``foschini_miljanic`` re-powers the *scheduled*
#: set afterwards (see :func:`run_scheduler_with_power`).
POWER_POLICIES: Tuple[str, ...] = (
    "uniform",
    "distance_proportional",
    "min_uniform",
    "foschini_miljanic",
)


def _check_policy(policy: str) -> str:
    if policy not in POWER_POLICIES:
        raise ValueError(
            f"unknown power policy {policy!r}; registered policies: "
            f"{', '.join(POWER_POLICIES)}"
        )
    return policy


def apply_power_policy(
    problem: FadingRLS,
    policy: str,
    *,
    active: Optional[np.ndarray] = None,
) -> FadingRLS:
    """Re-power ``problem`` according to a named policy.

    ``uniform`` returns the problem unchanged.  ``foschini_miljanic``
    needs a target set: with ``active`` it runs
    :func:`min_power_assignment` over that set and applies the powers
    only when the iteration certifies feasibility (else the original
    problem is returned — the conservative fallback); without ``active``
    it is a no-op, because the policy is defined relative to a schedule
    (:func:`run_scheduler_with_power` supplies one).
    """
    _check_policy(policy)
    if policy == "uniform":
        return problem
    if policy == "distance_proportional":
        return problem.with_powers(
            distance_proportional_powers(problem.links, problem.alpha)
        )
    if policy == "min_uniform":
        p = min_uniform_power(problem)
        if p <= 0.0:
            return problem
        return problem.with_powers(np.full(problem.n_links, p))
    # foschini_miljanic
    if active is None:
        return problem
    assignment = min_power_assignment(problem, active)
    if not assignment.feasible:
        return problem
    return problem.with_powers(assignment.powers)


def run_scheduler_with_power(
    problem: FadingRLS,
    scheduler: Callable[..., Schedule],
    policy: str,
    scheduler_kwargs: Optional[Dict] = None,
) -> Tuple[Schedule, FadingRLS]:
    """Run ``scheduler`` under a named power policy.

    Pre-scheduling policies (``uniform``, ``distance_proportional``,
    ``min_uniform``) re-power the instance first so the scheduler's own
    feasibility test sees the final powers.  ``foschini_miljanic``
    schedules on the base instance, then re-powers the admitted set
    (powers applied only if the iteration certifies feasibility).
    Returns ``(schedule, powered_problem)`` — simulate against the
    returned problem, which is what the admitted links actually
    transmit with.

    **Uniform-power schedulers.**  The paper's algorithms (``ldp``,
    ``rle``, ``approx_logn``, ``approx_diversity``) raise
    :class:`~repro.core.base.SchedulerError` on per-link powers — their
    theorems assume uniform power.  For those, a per-link policy falls
    back to certifying the schedule on the *original* instance and
    re-powering only the Monte-Carlo replay: the certificate keeps its
    published (Rayleigh + uniform-power) assumptions, and the replay
    measures how the schedule fares under the policy — the same
    conservative contract the channel laws follow (``docs/CHANNELS.md``).
    """
    _check_policy(policy)
    kwargs = scheduler_kwargs or {}
    if policy == "foschini_miljanic":
        schedule = scheduler(problem, **kwargs)
        powered = apply_power_policy(problem, policy, active=schedule.active)
        return schedule, powered
    powered = apply_power_policy(problem, policy)
    if powered is problem:
        return scheduler(problem, **kwargs), problem
    from repro.core.base import SchedulerError

    try:
        return scheduler(powered, **kwargs), powered
    except SchedulerError:
        return scheduler(problem, **kwargs), powered
