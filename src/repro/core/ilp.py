"""ILP formulation of Fading-R-LS (Eq. 20-22).

The paper's integer program:

    max   sum_i lambda_i x_i
    s.t.  sum_i f_ij x_i <= gamma_eps + M (1 - x_j)   for every j
          x in {0, 1}^N

with ``M`` a big constant.  Rearranged for a standard-form solver:

    sum_i f_ij x_i + M x_j <= gamma_eps + M

so the constraint matrix is ``A = F^T + M I`` (row ``j`` holds the
factors *onto* receiver ``j`` plus ``M`` at ``j`` itself) with upper
bounds ``gamma_eps + M``.  :func:`big_m` returns the smallest safe
``M``: the largest possible interference any receiver can see, so a
deactivated ``x_j`` never constrains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import FadingRLS
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span


def big_m(problem: FadingRLS) -> float:
    """Smallest safe big-M.

    With ``x_j = 0`` the constraint reads
    ``sum_i f_ij x_i <= b_j + M`` (where ``b_j`` is receiver ``j``'s
    effective budget, ``gamma_eps`` when noiseless), so
    ``M >= max_j (sum_i F[i, j]) - min_j b_j`` deactivates every row.
    """
    f = problem.interference_matrix()
    if f.size == 0:
        return 1.0
    worst_load = float(f.sum(axis=0).max())
    worst_budget = float(problem.effective_budgets().min())
    return worst_load + max(0.0, -worst_budget)


@dataclass(frozen=True)
class ILPData:
    """Matrices of the Eq. 20-22 program in ``A x <= b`` form.

    Attributes
    ----------
    objective : (N,) array
        Rates ``lambda`` (to *maximise*).
    constraint_matrix : (N, N) array
        ``A = F^T + M I``.
    upper_bounds : (N,) array
        ``gamma_eps + M`` per row.
    m : float
        The big-M used.
    """

    objective: np.ndarray
    constraint_matrix: np.ndarray
    upper_bounds: np.ndarray
    m: float

    @property
    def n_vars(self) -> int:
        return int(self.objective.shape[0])


def build_ilp(problem: FadingRLS, *, m: float | None = None) -> ILPData:
    """Construct the Eq. 20-22 matrices for ``problem``.

    Parameters
    ----------
    m:
        Override the big-M (must be at least :func:`big_m`'s value for
        correctness; smaller values silently cut feasible schedules,
        which is why the default computes the safe bound).
    """
    n = problem.n_links
    with span("ilp.build", n=n):
        f = problem.interference_matrix()
        m_val = big_m(problem) if m is None else float(m)
        if m is not None and n > 0 and m_val < big_m(problem):
            raise ValueError(
                f"big-M {m_val} is smaller than the safe bound {big_m(problem)}; "
                "this would cut feasible schedules"
            )
        a = f.T + m_val * np.eye(n)
        b = problem.effective_budgets() + m_val
    obs_metrics.inc("ilp.builds")
    return ILPData(
        objective=problem.links.rates.copy(),
        constraint_matrix=a,
        upper_bounds=b,
        m=m_val,
    )


def check_ilp_solution(problem: FadingRLS, x: np.ndarray, *, tol: float = 1e-9) -> bool:
    """Verify a binary vector against the ILP constraints directly.

    Independent of :meth:`FadingRLS.is_feasible` — tests use both and
    assert they agree, which pins the Eq. 20-22 encoding to Cor. 3.1.
    """
    xv = np.asarray(x, dtype=float).reshape(-1)
    if xv.shape[0] != problem.n_links:
        raise ValueError("x has wrong length")
    if not np.all((np.abs(xv) < tol) | (np.abs(xv - 1.0) < tol)):
        raise ValueError("x must be binary")
    data = build_ilp(problem)
    lhs = data.constraint_matrix @ xv
    return bool(np.all(lhs <= data.upper_bounds + tol))
