"""Feasibility certificates.

``problem.is_feasible`` answers *whether* a schedule works; this module
explains *why* (or why not) in a machine-checkable form.  A
:class:`FeasibilityCertificate` carries every receiver's budget
decomposition — interference by source, noise factor, slack — and an
independent re-computation path (straight from distances, not the
cached matrix), so tests and downstream users can audit any scheduler's
output without trusting the library's own cache.

Also included are the proof-shaped audits:

- :func:`audit_ldp_structure` — re-checks Thm 4.1's preconditions on an
  LDP output (single receiver per same-colour square, class length
  bound);
- :func:`audit_rle_structure` — re-checks the RLE invariants (Lemma
  4.1 separation, elimination radius, budget split).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule

#: Reason codes for budget violations (stable strings, mirrored in
#: docs/VERIFICATION.md).  ``noise-unserviceable`` means the receiver's
#: noise factor alone exceeds ``gamma_eps`` — no interferer removal can
#: save it; ``interference-budget-exceeded`` means the accumulated
#: factors from the other active senders overran a non-negative budget.
CODE_NOISE_UNSERVICEABLE = "noise-unserviceable"
CODE_BUDGET_EXCEEDED = "interference-budget-exceeded"


@dataclass(frozen=True)
class AuditCheck:
    """One named invariant's verdict inside a structural audit.

    Truthiness equals ``passed``, so existing boolean-style consumers
    (``all(audit.values())``) keep working while the ``code`` and
    ``detail`` say *which* relation failed and why.
    """

    code: str
    passed: bool
    detail: str = ""

    def __bool__(self) -> bool:
        return self.passed

    def __repr__(self) -> str:  # keep assertion output readable
        state = "ok" if self.passed else f"FAILED ({self.detail})"
        return f"AuditCheck({self.code}: {state})"


@dataclass(frozen=True)
class ReceiverBudget:
    """One active receiver's budget decomposition."""

    link: int
    budget: float                    # gamma_eps - noise factor
    total_interference: float        # sum of factors from other active senders
    slack: float                     # budget - total_interference
    top_interferers: List[tuple]     # [(sender index, factor), ...] descending

    @property
    def informed(self) -> bool:
        return self.slack >= -1e-12

    @property
    def failure_code(self) -> str | None:
        """Why this receiver is uninformed (``None`` when it is fine)."""
        if self.informed:
            return None
        if self.budget < 0.0:
            return CODE_NOISE_UNSERVICEABLE
        return CODE_BUDGET_EXCEEDED


@dataclass(frozen=True)
class FeasibilityCertificate:
    """Full decomposition of a schedule's feasibility."""

    feasible: bool
    receivers: List[ReceiverBudget]
    worst: ReceiverBudget | None = field(default=None)

    def violations(self) -> List[ReceiverBudget]:
        """The receivers whose budgets are exceeded (empty iff feasible)."""
        return [r for r in self.receivers if not r.informed]

    def reason_codes(self) -> Dict[str, List[int]]:
        """Violation reason codes mapped to the offending link indices.

        Empty iff feasible; otherwise e.g.
        ``{"interference-budget-exceeded": [3, 17]}`` — which budget
        term failed, not just that *something* did.
        """
        codes: Dict[str, List[int]] = {}
        for r in self.violations():
            codes.setdefault(r.failure_code, []).append(r.link)
        return codes


def certify(
    problem: FadingRLS,
    schedule: Schedule | np.ndarray,
    *,
    top_k: int = 3,
) -> FeasibilityCertificate:
    """Build a feasibility certificate for a schedule.

    Recomputes every interference factor directly from coordinates
    (no reliance on the problem's cached matrix), making this an
    independent audit path.
    """
    active = schedule.active if isinstance(schedule, Schedule) else np.asarray(schedule)
    mask = problem.active_mask(active)
    idx = np.flatnonzero(mask)
    links = problem.links
    alpha, gamma_th = problem.alpha, problem.gamma_th
    receivers: List[ReceiverBudget] = []
    budgets = problem.effective_budgets()

    for j in idx:
        r_j = links.receivers[j]
        d_jj = float(links.lengths[j])
        p_j = float(problem.tx_powers()[j])
        entries = []
        for i in idx:
            if i == j:
                continue
            d_ij = float(np.hypot(*(links.senders[i] - r_j)))
            p_i = float(problem.tx_powers()[i])
            factor = float(
                np.log1p(gamma_th * (p_i * d_ij**-alpha) / (p_j * d_jj**-alpha))
            )
            entries.append((int(i), factor))
        entries.sort(key=lambda kv: -kv[1])
        total = float(sum(f for _, f in entries))
        receivers.append(
            ReceiverBudget(
                link=int(j),
                budget=float(budgets[j]),
                total_interference=total,
                slack=float(budgets[j]) - total,
                top_interferers=entries[:top_k],
            )
        )

    worst = min(receivers, key=lambda r: r.slack) if receivers else None
    return FeasibilityCertificate(
        feasible=all(r.informed for r in receivers),
        receivers=receivers,
        worst=worst,
    )


def audit_ldp_structure(problem: FadingRLS, schedule: Schedule) -> Dict[str, AuditCheck]:
    """Re-check Thm 4.1's structural preconditions on an LDP schedule.

    Uses the schedule's diagnostics (class magnitude, colour, sizing
    flags) to rebuild the grid and verify:

    - every scheduled receiver lies in a cell of the winning colour,
    - no two scheduled receivers share a cell,
    - every scheduled link respects the class length bound.

    Each entry is an :class:`AuditCheck` carrying a stable reason code
    and a detail naming the offending links, so a failed audit says
    *which* Thm 4.1 precondition broke; truthiness still matches the
    historical bare-boolean behaviour.
    """
    from repro.core.bounds import ldp_beta, ldp_rigorous_beta, ldp_square_size
    from repro.geometry.grid import GridPartition
    from repro.network.diversity import class_length_bound

    d = schedule.diagnostics
    if "class_magnitude" not in d or "color" not in d:
        raise ValueError("schedule lacks LDP diagnostics (is it an LDP output?)")
    links = problem.links
    budgets = problem.effective_budgets()
    b_min = float(budgets[budgets > 0].min())
    if d.get("rigorous"):
        beta = ldp_rigorous_beta(problem.alpha, problem.gamma_th, b_min)
    else:
        beta = ldp_beta(problem.alpha, problem.gamma_th, b_min)
    beta *= d.get("beta_scale", 1.0)
    delta = float(links.lengths.min())
    grid = GridPartition(ldp_square_size(d["class_magnitude"], delta, beta))
    cells = grid.cell_of(links.receivers[schedule.active])
    colors = grid.color_of(links.receivers[schedule.active])
    bound = class_length_bound(links, d["class_magnitude"])
    off_color = [int(schedule.active[k]) for k in np.flatnonzero(colors != d["color"])]
    seen: Dict[tuple, int] = {}
    shared: List[int] = []
    for k, c in enumerate(map(tuple, cells)):
        if c in seen:
            shared.extend({int(schedule.active[seen[c]]), int(schedule.active[k])})
        else:
            seen[c] = k
    too_long = [
        int(schedule.active[k])
        for k in np.flatnonzero(links.lengths[schedule.active] >= bound + 1e-9)
    ]
    return {
        "single_color": AuditCheck(
            code="ldp-color-mismatch",
            passed=not off_color,
            detail=f"links {sorted(off_color)} lie outside colour {d['color']}"
            if off_color
            else "",
        ),
        "distinct_cells": AuditCheck(
            code="ldp-duplicate-cell",
            passed=not shared,
            detail=f"links {sorted(set(shared))} share a grid cell" if shared else "",
        ),
        "length_bound": AuditCheck(
            code="ldp-length-bound-exceeded",
            passed=not too_long,
            detail=f"links {too_long} exceed the class bound {bound:.6g}"
            if too_long
            else "",
        ),
    }


def audit_rle_structure(problem: FadingRLS, schedule: Schedule) -> Dict[str, AuditCheck]:
    """Re-check the RLE invariants on an RLE schedule.

    - *radius rule*: for any two scheduled links, the longer one's
      sender sits outside ``c1 x`` the shorter one's length around the
      shorter one's receiver;
    - *separation* (Lemma 4.1): scheduled senders are pairwise at least
      ``(c1 - 1) x`` the shorter involved link's length apart;
    - *budget*: every scheduled receiver's total interference fits its
      effective budget.

    Entries are :class:`AuditCheck` records naming the violating link
    pairs (or budget-overrun receivers) via stable reason codes;
    truthiness still matches the historical bare-boolean behaviour.
    """
    d = schedule.diagnostics
    if "c1" not in d:
        raise ValueError("schedule lacks RLE diagnostics (is it an RLE output?)")
    c1 = float(d["c1"])
    idx = schedule.active
    links = problem.links
    dist = problem.distances()
    lengths = links.lengths
    radius_pairs: List[tuple] = []
    for a in idx:
        for b in idx:
            if a == b:
                continue
            if lengths[a] <= lengths[b]:
                if dist[b, a] < c1 * lengths[a] - 1e-9:
                    radius_pairs.append((int(a), int(b)))
    senders = links.senders[idx]
    diff = senders[:, None, :] - senders[None, :, :]
    sep = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    separation_pairs: List[tuple] = []
    for ai in range(idx.size):
        for bi in range(ai + 1, idx.size):
            shorter = min(lengths[idx[ai]], lengths[idx[bi]])
            if sep[ai, bi] < (c1 - 1) * shorter - 1e-9:
                separation_pairs.append((int(idx[ai]), int(idx[bi])))
    overrun = idx[
        problem.interference_on(idx)[idx]
        > problem.effective_budgets()[idx] + 1e-12
    ]
    return {
        "radius": AuditCheck(
            code="rle-radius-violation",
            passed=not radius_pairs,
            detail=f"sender inside elimination radius for pairs {radius_pairs[:5]}"
            if radius_pairs
            else "",
        ),
        "separation": AuditCheck(
            code="rle-separation-violation",
            passed=not separation_pairs,
            detail=f"Lemma 4.1 separation broken for pairs {separation_pairs[:5]}"
            if separation_pairs
            else "",
        ),
        "budget": AuditCheck(
            code="rle-budget-violation",
            passed=overrun.size == 0,
            detail=f"receivers {[int(i) for i in overrun]} exceed their budgets"
            if overrun.size
            else "",
        ),
    }
