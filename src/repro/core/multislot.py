"""Multi-slot scheduling (the paper's stated future work).

Section VII: "we will further consider how to schedule all the links
with the minimum number of time slots, not just to maximize the
throughput in one time slot."  The natural cover heuristic: repeatedly
run a one-shot scheduler on the still-unscheduled links and assign each
returned set to the next slot, until every link has a slot.  With any
one-shot scheduler that always schedules at least one link (LDP and RLE
both do — a lone shortest link is always feasible), termination is
guaranteed in at most ``N`` slots.

This module is an *extension* beyond the paper's evaluation; it powers
the ``sensor_report`` example and the multislot benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule


@dataclass(frozen=True)
class MultiSlotSchedule:
    """An assignment of every link to one time slot.

    Attributes
    ----------
    slots:
        One :class:`Schedule` per slot, each indexing into the
        *original* problem's links.
    algorithm:
        Name of the underlying one-shot scheduler.
    """

    slots: List[Schedule]
    algorithm: str

    @property
    def n_slots(self) -> int:
        return len(self.slots)

    def slot_of(self, n_links: int) -> np.ndarray:
        """Per-link slot index; shape ``(n_links,)``.

        Raises if some link is missing or assigned twice (the covering
        invariant multi-slot scheduling must maintain).
        """
        assignment = np.full(n_links, -1, dtype=np.int64)
        for t, sched in enumerate(self.slots):
            if np.any(assignment[sched.active] != -1):
                raise ValueError("a link is assigned to two slots")
            assignment[sched.active] = t
        if np.any(assignment == -1):
            raise ValueError("some links are unassigned")
        return assignment

    def slot_cycle(self, t: int) -> Schedule:
        """The frame slot serving time slot ``t`` under cyclic (TDMA) reuse.

        A cover frame of ``n`` slots repeats forever: time slot ``t``
        is served by frame slot ``t mod n``.  The workload simulator's
        ``multislot`` service policy uses this to turn a one-shot cover
        into a stationary service schedule.  Raises on an empty frame
        (no slots to cycle through).
        """
        if not self.slots:
            raise ValueError("cannot cycle an empty multi-slot schedule")
        return self.slots[t % self.n_slots]


def multislot_schedule(
    problem: FadingRLS,
    scheduler: Callable[..., Schedule],
    *,
    max_slots: int | None = None,
    **scheduler_kwargs,
) -> MultiSlotSchedule:
    """Cover all links in slots by repeated one-shot scheduling.

    Parameters
    ----------
    problem:
        The full instance.
    scheduler:
        Any one-shot scheduler ``(FadingRLS, **kwargs) -> Schedule``.
        Must schedule at least one link on every non-empty instance.
    max_slots:
        Safety cap (default ``n_links``); exceeded only if the
        scheduler violates the progress requirement.

    Returns
    -------
    MultiSlotSchedule
        Slots are disjoint and jointly cover every link; each slot is
        feasible iff the underlying scheduler's outputs are.
    """
    n = problem.n_links
    cap = n if max_slots is None else int(max_slots)
    remaining = np.arange(n, dtype=np.int64)
    slots: List[Schedule] = []
    name = getattr(scheduler, "__name__", "scheduler")
    while remaining.size > 0:
        if len(slots) >= cap:
            raise RuntimeError(
                f"exceeded {cap} slots with {remaining.size} links left — "
                "the one-shot scheduler made no progress"
            )
        sub = problem.restrict(remaining)
        sched = scheduler(sub, **scheduler_kwargs)
        if sched.size == 0:
            raise RuntimeError(
                f"{name} returned an empty schedule on {remaining.size} links; "
                "multi-slot covering cannot make progress"
            )
        global_active = remaining[sched.active]
        slots.append(
            Schedule(active=global_active, algorithm=sched.algorithm, diagnostics=sched.diagnostics)
        )
        keep = np.ones(remaining.size, dtype=bool)
        keep[sched.active] = False
        remaining = remaining[keep]
    return MultiSlotSchedule(slots=slots, algorithm=name)


def first_fit_multislot(
    problem: FadingRLS,
    *,
    order: str = "length",
    seed=None,
) -> MultiSlotSchedule:
    """First-fit slot packing (the bin-packing view of slot minimisation).

    Links are processed in ``order`` ("length" ascending, "rate"
    descending, or "random") and each is placed into the first slot
    whose feasibility survives the addition (checked incrementally via
    the interference accumulator), opening a new slot when none fits.
    Far denser than covering with the conservative LDP/RLE one-shot
    schedulers, at the price of no approximation guarantee.

    Unserviceable links (noise alone over budget) cannot be placed in
    *any* slot and raise ``ValueError`` — drop them first via
    ``problem.serviceable()``.
    """
    import numpy as np

    n = problem.n_links
    if n == 0:
        return MultiSlotSchedule(slots=[], algorithm="first_fit")
    budgets = problem.effective_budgets()
    if np.any(budgets < 0):
        raise ValueError(
            "instance has unserviceable links; filter with problem.serviceable() first"
        )
    f = problem.interference_matrix()
    if order == "length":
        sequence = np.argsort(problem.links.lengths, kind="stable")
    elif order == "rate":
        sequence = np.argsort(-problem.links.rates, kind="stable")
    elif order == "random":
        from repro.utils.rng import as_rng

        sequence = as_rng(seed).permutation(n)
    else:
        raise ValueError(f"unknown order {order!r}; use 'length', 'rate' or 'random'")

    slot_members: List[list[int]] = []
    slot_acc: List[np.ndarray] = []  # accumulated interference per slot
    for i in sequence:
        i = int(i)
        placed = False
        for members, acc in zip(slot_members, slot_acc):
            if acc[i] > budgets[i]:
                continue
            new_acc = acc + f[i, :]
            if np.any(new_acc[members] > budgets[members]):
                continue
            members.append(i)
            acc += f[i, :]
            placed = True
            break
        if not placed:
            slot_members.append([i])
            slot_acc.append(f[i, :].copy())
    slots = [
        Schedule(active=np.array(sorted(m), dtype=np.int64), algorithm="first_fit")
        for m in slot_members
    ]
    return MultiSlotSchedule(slots=slots, algorithm="first_fit")


def exact_min_slots(problem: FadingRLS, *, limit: int = 12) -> MultiSlotSchedule:
    """Exact minimum-slot schedule by depth-first search (small N only).

    Assigns links one at a time (longest first — the hardest to place —
    for stronger pruning) to existing slots or a new slot, pruning
    branches that already use at least as many slots as the incumbent.
    Exponential; guarded at ``limit`` links.
    """
    import numpy as np

    n = problem.n_links
    if n > limit:
        raise ValueError(
            f"exact slot minimisation on {n} links is exponential; limit is {limit}"
        )
    if n == 0:
        return MultiSlotSchedule(slots=[], algorithm="exact_min_slots")
    budgets = problem.effective_budgets()
    if np.any(budgets < 0):
        raise ValueError("instance has unserviceable links")
    f = problem.interference_matrix()
    order = np.argsort(-problem.links.lengths, kind="stable")

    best: List[List[int]] = [[int(i)] for i in range(n)]  # n singleton slots

    def feasible_with(members: List[int], i: int) -> bool:
        group = members + [i]
        sub = f[np.ix_(group, group)]
        return bool(np.all(sub.sum(axis=0) <= budgets[group] + 1e-12))

    def dfs(pos: int, slots: List[List[int]]) -> None:
        nonlocal best
        if len(slots) >= len(best):
            return  # cannot beat incumbent
        if pos == n:
            best = [list(s) for s in slots]
            return
        i = int(order[pos])
        seen_new_slot = False
        for s in slots:
            if feasible_with(s, i):
                s.append(i)
                dfs(pos + 1, slots)
                s.pop()
        if not seen_new_slot:
            slots.append([i])
            dfs(pos + 1, slots)
            slots.pop()

    dfs(0, [])
    slots = [
        Schedule(active=np.array(sorted(m), dtype=np.int64), algorithm="exact_min_slots")
        for m in best
    ]
    return MultiSlotSchedule(slots=slots, algorithm="exact_min_slots")


def multislot_lower_bound(problem: FadingRLS) -> int:
    """A sound lower bound on the optimal number of slots.

    Two links *mutually conflict* when each alone overloads the other's
    budget (``F[i,j] > gamma_eps`` and ``F[j,i] > gamma_eps``); such a
    pair can never share a slot, so any clique in the mutual-conflict
    graph needs one slot per member.  Maximum clique is NP-hard, so we
    grow a clique greedily from the highest-degree vertex — still a
    valid (just not maximal) lower bound.
    """
    n = problem.n_links
    if n == 0:
        return 0
    f = problem.interference_matrix()
    g = problem.gamma_eps
    # Mutual-conflict graph: i -- j when each alone overloads the other.
    conflict = (f > g) & (f.T > g)
    # Greedy clique growth around the highest-degree vertex gives a
    # *sound* lower bound: all members pairwise conflict, so they need
    # distinct slots.
    deg = conflict.sum(axis=0)
    seed_vertex = int(np.argmax(deg))
    clique = [seed_vertex]
    candidates = np.flatnonzero(conflict[seed_vertex])
    for v in candidates:
        if all(conflict[v, u] for u in clique):
            clique.append(int(v))
    return max(1, len(clique))
