"""DLS: decentralised link scheduling (reconstruction).

The paper's Sections V and VII refer to a decentralised algorithm "DLS"
whose description did not survive into the published text (the
evaluation compares only LDP/RLE against the baselines).  This module
provides a faithful-in-spirit decentralised scheduler so the named
series has a runnable counterpart — clearly labelled as **our
reconstruction** (see DESIGN.md).

Protocol (synchronous rounds, local information only):

1. every link starts *active* with probability ``p0``;
2. each round, every active receiver measures its accumulated
   interference factor (a purely local SINR measurement in a real
   deployment); links over budget back off — deactivate — with
   probability ``backoff``, independently;
3. once no active receiver is over budget, inactive links *join* in a
   random order if their own measurement shows slack **and** their
   marginal interference leaves every current member's observed margin
   intact (locally checkable: a joining sender only needs its channel
   gains to active receivers);
4. the result is feasible by construction of steps 2-3.

The randomised backoff mirrors classic decentralised contention
resolution; with ``backoff < 1`` ties break symmetrically, so dense
clusters thin gradually rather than collapsing.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import register_scheduler
from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.utils.rng import SeedLike, as_rng


@register_scheduler("dls")
def dls_schedule(
    problem: FadingRLS,
    *,
    p0: float = 0.5,
    backoff: float = 0.5,
    max_rounds: int = 10_000,
    join: bool = True,
    seed: SeedLike = None,
) -> Schedule:
    """Run the decentralised scheduler.

    Parameters
    ----------
    p0:
        Initial activation probability in ``(0, 1]``.
    backoff:
        Probability an over-budget link deactivates each round, in
        ``(0, 1]``.  Lower = gentler thinning, more rounds.
    max_rounds:
        Safety cap on contention rounds; the expected round count is
        ``O(log N / backoff)`` because every round each violator leaves
        with constant probability.
    join:
        Run the slack-filling join phase (step 3).  Disable to study
        the pure backoff dynamics.
    seed:
        RNG seed (the whole point of a decentralised algorithm is that
        it is randomised).

    Returns
    -------
    Schedule
        Always feasible; diagnostics record the rounds used and how
        many links joined late.
    """
    if not 0.0 < p0 <= 1.0:
        raise ValueError(f"p0 must be in (0, 1], got {p0}")
    if not 0.0 < backoff <= 1.0:
        raise ValueError(f"backoff must be in (0, 1], got {backoff}")
    n = problem.n_links
    if n == 0:
        return Schedule.empty("dls")
    rng = as_rng(seed)
    f = problem.interference_matrix()
    budgets = problem.effective_budgets()

    active = (rng.uniform(size=n) < p0) & (budgets > 0.0)
    rounds = 0
    with span("dls.contention", n=n):
        while rounds < max_rounds:
            rounds += 1
            interference = active.astype(float) @ f
            violators = active & (interference > budgets)
            if not violators.any():
                break
            leave = violators & (rng.uniform(size=n) < backoff)
            # Guarantee progress: if the coin flips spared everyone, evict
            # the worst violator (in a real protocol, a deterministic
            # tie-break on e.g. node id plays this role).
            if not leave.any():
                worst = np.flatnonzero(violators)[np.argmax(interference[violators])]
                leave = np.zeros(n, dtype=bool)
                leave[worst] = True
            active &= ~leave
        else:
            raise RuntimeError(f"DLS failed to converge in {max_rounds} rounds")
    obs_metrics.observe("dls.rounds", rounds)

    joined = 0
    if join:
        with span("dls.join"):
            accumulated = active.astype(float) @ f
            order = rng.permutation(np.flatnonzero(~active & (budgets > 0.0)))
            for i in order:
                i = int(i)
                if accumulated[i] > budgets[i]:
                    continue
                new_acc = accumulated + f[i, :]
                members = np.flatnonzero(active)
                if np.any(new_acc[members] > budgets[members]):
                    continue
                active[i] = True
                accumulated = new_acc
                joined += 1
        obs_metrics.inc("dls.joined_late", joined)

    return Schedule(
        active=np.flatnonzero(active),
        algorithm="dls",
        diagnostics={"rounds": rounds, "joined_late": joined, "p0": p0, "backoff": backoff},
    )
