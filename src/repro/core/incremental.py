"""Incremental scheduling engine for dynamic networks.

The static pipeline treats every time step of a dynamic network as a
brand-new instance: rebuild the O(N^2) interference-factor matrix,
rerun the scheduler from scratch.  Mobility churns only ``k << N``
links per step, so almost all of that work recomputes unchanged
numbers.  :class:`IncrementalScheduler` carries the expensive state
across steps instead:

- **F-matrix maintenance** — a :class:`~repro.network.delta.LinkDelta`
  (moves / removals / insertions) updates the cached distance and
  interference-factor matrices in O(kN): only the rows and columns of
  touched links are recomputed, with *elementwise-identical* arithmetic
  to :func:`repro.core.problem.interference_factors`, so the maintained
  ``F`` stays **bit-identical** to a fresh
  :class:`~repro.core.problem.FadingRLS` on the same geometry (the
  Hypothesis suite pins this).
- **Interference-sum ledger** — ``ledger[j] = sum_{i active} F[i, j]``
  is maintained per receiver under every eviction/admission/delta, so
  Corollary 3.1 feasibility re-checks touch only the receivers a delta
  actually affected instead of re-reducing the whole matrix.
- **Warm-start schedule repair** — after a delta the surviving schedule
  is kept, newly-infeasible links are evicted via the ledger (worst
  violation first), and the delta's touched links plus the evictees are
  greedily re-admitted.  When the repaired rate degrades below
  ``quality_bound`` times the last from-scratch rate, the engine falls
  back to a full run of the wrapped scheduler (LDP, RLE, local search —
  any registry name or callable) and re-anchors.

The engine is observable (``incremental.*`` spans and metrics, see
``docs/OBSERVABILITY.md``) and verified differentially: the
``incremental-vs-scratch`` check in :mod:`repro.verify.differential`
replays random delta sequences against from-scratch recomputation.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.backend.kernels import gathered_interference
from repro.core.base import get_scheduler
from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.geometry.distance import cross_distances
from repro.network.delta import LinkDelta
from repro.network.links import LinkSet
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.utils.validation import check_positive, check_probability

SchedulerLike = Union[str, Callable[..., Schedule]]


def _factor_block(
    d_block: np.ndarray,
    own_cols: np.ndarray,
    alpha: float,
    gamma_th: float,
) -> np.ndarray:
    """Interference factors for a block of the distance matrix.

    Mirrors :func:`repro.core.problem.interference_factors` operation by
    operation (``(own_j / d_ij) ** alpha`` then ``log1p(gamma_th * .)``)
    so a block recomputation is bit-identical to the corresponding slice
    of a full build.  The caller zeroes diagonal entries.
    """
    ratio = (own_cols[None, :] / d_block) ** alpha
    return np.log1p(gamma_th * ratio)


class IncrementalScheduler:
    """Maintain a schedule over a changing link set with O(kN) updates.

    Parameters
    ----------
    links:
        The initial link set.
    scheduler:
        Registry name (``"ldp"``, ``"rle"``, ``"local_search"``, ...) or
        scheduler callable used for from-scratch runs (the first
        schedule and every quality fallback).
    scheduler_kwargs:
        Extra keyword arguments forwarded to the scheduler.
    alpha, gamma_th, eps, noise, power:
        Channel parameters of the maintained
        :class:`~repro.core.problem.FadingRLS` (uniform power only —
        the warm-start repair shares LDP/RLE's uniform-power setting).
    quality_bound:
        Fallback trigger in ``(0, 1]``: when a repaired schedule's rate
        drops below ``quality_bound`` times the rate of the last
        from-scratch run, the engine reschedules from scratch.
    admit_margin:
        Safety slack subtracted from every budget during greedy
        re-admission, absorbing the ledger's floating-point drift so a
        repaired schedule always passes the *fresh* Corollary 3.1 check.
    tol:
        Feasibility tolerance matching ``FadingRLS.informed``.
    """

    def __init__(
        self,
        links: LinkSet,
        *,
        scheduler: SchedulerLike = "rle",
        scheduler_kwargs: Optional[dict] = None,
        alpha: float = 3.0,
        gamma_th: float = 1.0,
        eps: float = 0.01,
        noise: float = 0.0,
        power: float = 1.0,
        quality_bound: float = 0.8,
        admit_margin: float = 1e-9,
        tol: float = 1e-12,
    ) -> None:
        if isinstance(scheduler, str):
            self._scheduler_name = scheduler
            self._scheduler = get_scheduler(scheduler)
        else:
            self._scheduler = scheduler
            self._scheduler_name = getattr(scheduler, "__name__", "custom")
        self._scheduler_kwargs = dict(scheduler_kwargs or {})
        check_positive(alpha, "alpha")
        check_positive(gamma_th, "gamma_th")
        check_probability(eps, "eps")
        check_positive(noise, "noise", strict=False)
        check_positive(power, "power")
        if not 0.0 < quality_bound <= 1.0:
            raise ValueError(f"quality_bound must be in (0, 1], got {quality_bound}")
        if admit_margin < 0.0:
            raise ValueError(f"admit_margin must be >= 0, got {admit_margin}")
        self.alpha = float(alpha)
        self.gamma_th = float(gamma_th)
        self.eps = float(eps)
        self.noise = float(noise)
        self.power = float(power)
        self.quality_bound = float(quality_bound)
        self.admit_margin = float(admit_margin)
        self.tol = float(tol)

        self._senders = np.array(links.senders, dtype=float)
        self._receivers = np.array(links.receivers, dtype=float)
        self._rates = np.array(links.rates, dtype=float)
        n = len(links)
        # Full builds of the carried matrices, through the same code
        # paths a fresh FadingRLS uses (bit-identity anchor).
        self._distances = cross_distances(self._senders, self._receivers)
        seed_problem = self._fresh_problem()
        seed_problem._cache["distances"] = self._distances
        self._f = seed_problem.interference_matrix()
        self._gamma_eps = float(seed_problem.gamma_eps)
        self._budgets_arr = seed_problem.effective_budgets().copy()
        self._active = np.zeros(n, dtype=bool)
        self._ledger = np.zeros(n, dtype=float)
        self._dirty = np.zeros(n, dtype=bool)
        self._problem: Optional[FadingRLS] = None
        self._reference_rate: Optional[float] = None
        self.stats: Dict[str, int] = {
            "applies": 0,
            "repairs": 0,
            "fallbacks": 0,
            "full_runs": 0,
            "evictions": 0,
            "admissions": 0,
            "rows_updated": 0,
            "ledger_updates": 0,
        }

    # -- state access -------------------------------------------------

    @property
    def n_links(self) -> int:
        return int(self._rates.shape[0])

    @property
    def active_mask(self) -> np.ndarray:
        """Copy of the current schedule's boolean membership mask."""
        return self._active.copy()

    @property
    def ledger(self) -> np.ndarray:
        """Copy of the per-receiver interference-sum ledger."""
        return self._ledger.copy()

    @property
    def problem(self) -> FadingRLS:
        """The current step's :class:`FadingRLS` with carried caches.

        The distance and interference matrices are *live views* of the
        engine's maintained state: valid until the next
        :meth:`apply`, shared rather than copied.
        """
        if self._problem is None:
            prob = self._fresh_problem()
            prob._cache["distances"] = self._distances
            prob._cache["F"] = self._f
            self._problem = prob
        return self._problem

    def _fresh_problem(self) -> FadingRLS:
        return FadingRLS(
            links=LinkSet(
                senders=self._senders.copy(),
                receivers=self._receivers.copy(),
                rates=self._rates.copy(),
            ),
            alpha=self.alpha,
            gamma_th=self.gamma_th,
            eps=self.eps,
            noise=self.noise,
            power=self.power,
        )

    # -- delta application (O(kN)) ------------------------------------

    def apply(self, delta: LinkDelta) -> None:
        """Apply one :class:`LinkDelta`; O(kN) for k touched links."""
        with span(
            "incremental.apply",
            n=self.n_links,
            moved=delta.n_moved,
            removed=delta.n_removed,
            inserted=delta.n_inserted,
        ):
            if delta.n_moved:
                self._apply_moves(delta.moves, delta.new_senders, delta.new_receivers)
            if delta.n_removed:
                self._apply_removes(delta.removes)
            if delta.n_inserted:
                self._apply_inserts(delta.inserts)
        self.stats["applies"] += 1
        obs_metrics.inc("incremental.applies")
        self._problem = None

    def step(self, delta: LinkDelta) -> Schedule:
        """Convenience: :meth:`apply` then :meth:`schedule`."""
        self.apply(delta)
        return self.schedule()

    def _refresh_ledger_cols(self, cols: np.ndarray) -> None:
        """Exact ledger recomputation at the given receivers (O(|A| k)).

        Shares :func:`repro.backend.kernels.gathered_interference` with
        the backend feasibility kernels — the same gathered reduction,
        so the ledger stays bit-identical to what this expression has
        always produced.
        """
        act = np.flatnonzero(self._active)
        if act.size:
            self._ledger[cols] = gathered_interference(self._f, act, cols)
        else:
            self._ledger[cols] = 0.0
        self.stats["ledger_updates"] += int(cols.size)
        obs_metrics.inc("incremental.ledger_updates", int(cols.size))

    def _update_rows_cols(self, idx: np.ndarray) -> None:
        """Recompute distance/F rows and columns of the links ``idx``."""
        d = self._distances
        # Rows: d(s_i, r_j) for moved senders i; columns: for moved
        # receivers j.  Both use the same kernel as a full build.
        d[idx, :] = cross_distances(self._senders[idx], self._receivers)
        d[:, idx] = cross_distances(self._senders, self._receivers[idx])
        own = np.diag(d)
        self._f[idx, :] = _factor_block(d[idx, :], own, self.alpha, self.gamma_th)
        self._f[:, idx] = _factor_block(d[:, idx], own[idx], self.alpha, self.gamma_th)
        self._f[idx, idx] = 0.0
        self.stats["rows_updated"] += 2 * int(idx.size)
        obs_metrics.inc("incremental.rows_updated", 2 * int(idx.size))

    def _apply_moves(
        self, moves: np.ndarray, new_senders: np.ndarray, new_receivers: np.ndarray
    ) -> None:
        if moves.size and moves.max() >= self.n_links:
            raise IndexError(
                f"moves reference link {int(moves.max())} "
                f"but the engine tracks only {self.n_links}"
            )
        moved_active = moves[self._active[moves]]
        # Retract the moving active rows before their factors change...
        if moved_active.size:
            self._ledger -= self._f[moved_active, :].sum(axis=0)
            self.stats["ledger_updates"] += int(moved_active.size)
            obs_metrics.inc("incremental.ledger_updates", int(moved_active.size))
        disp = new_receivers - new_senders
        if np.any(np.einsum("ij,ij->i", disp, disp) <= 0.0):
            raise ValueError("every moved link must keep positive length")
        self._senders[moves] = new_senders
        self._receivers[moves] = new_receivers
        self._update_rows_cols(moves)
        self._update_budgets(moves)
        # ...re-assert them with the new factors, then fix the moved
        # receivers' sums exactly (their whole column changed).
        if moved_active.size:
            self._ledger += self._f[moved_active, :].sum(axis=0)
            self.stats["ledger_updates"] += int(moved_active.size)
            obs_metrics.inc("incremental.ledger_updates", int(moved_active.size))
        self._refresh_ledger_cols(moves)
        self._dirty[moves] = True

    def _apply_removes(self, removes: np.ndarray) -> None:
        if removes.size and removes.max() >= self.n_links:
            raise IndexError(
                f"removes reference link {int(removes.max())} "
                f"but the engine tracks only {self.n_links}"
            )
        removed_active = removes[self._active[removes]]
        if removed_active.size:
            self._ledger -= self._f[removed_active, :].sum(axis=0)
            self.stats["ledger_updates"] += int(removed_active.size)
            obs_metrics.inc("incremental.ledger_updates", int(removed_active.size))
        keep = np.ones(self.n_links, dtype=bool)
        keep[removes] = False
        kept = np.flatnonzero(keep)
        self._senders = self._senders[kept]
        self._receivers = self._receivers[kept]
        self._rates = self._rates[kept]
        self._active = self._active[kept]
        self._ledger = self._ledger[kept]
        self._dirty = self._dirty[kept]
        self._budgets_arr = self._budgets_arr[kept]
        self._distances = self._distances[np.ix_(kept, kept)]
        self._f = self._f[np.ix_(kept, kept)]

    def _apply_inserts(self, inserts: LinkSet) -> None:
        k = len(inserts)
        n = self.n_links
        self._senders = np.vstack([self._senders, inserts.senders])
        self._receivers = np.vstack([self._receivers, inserts.receivers])
        self._rates = np.concatenate([self._rates, inserts.rates])
        new_idx = np.arange(n, n + k, dtype=np.int64)
        d = np.empty((n + k, n + k), dtype=float)
        d[:n, :n] = self._distances
        self._distances = d
        f = np.empty((n + k, n + k), dtype=float)
        f[:n, :n] = self._f
        self._f = f
        self._update_rows_cols(new_idx)
        self._active = np.concatenate([self._active, np.zeros(k, dtype=bool)])
        self._ledger = np.concatenate([self._ledger, np.zeros(k, dtype=float)])
        self._refresh_ledger_cols(new_idx)
        self._dirty = np.concatenate([self._dirty, np.ones(k, dtype=bool)])
        self._budgets_arr = np.concatenate(
            [self._budgets_arr, np.full(k, self._gamma_eps)]
        )
        self._update_budgets(new_idx)

    # -- scheduling ---------------------------------------------------

    def warm_start(self, active, reference_rate: float) -> None:
        """Adopt an externally-supplied schedule as the repair baseline.

        Installs ``active`` (indices into the current link set) as the
        engine's schedule and ``reference_rate`` as the from-scratch
        anchor the quality fallback compares against, resyncing the
        ledger through the same exact reduction a full run uses.  The
        next :meth:`schedule` call then takes the repair path instead
        of an initial from-scratch run — this is how the schedule
        cache (:mod:`repro.cache.store`) seeds the engine with a cached
        schedule before applying a synthesized delta.

        The supplied schedule should be feasible on the engine's
        current geometry (a cached schedule for the same geometry is);
        an infeasible one is not an error — the repair pass simply
        evicts its violations first.
        """
        check_positive(float(reference_rate), "reference_rate", strict=False)
        prob = self.problem
        self._active = prob.active_mask(active)
        self._ledger = prob.interference_on(self._active)
        self._reference_rate = float(reference_rate)
        self._dirty[:] = False

    def schedule(self) -> Schedule:
        """Current step's schedule: warm-start repair, or full run.

        The first call (and every quality fallback) runs the wrapped
        scheduler from scratch on the maintained problem; subsequent
        calls repair the surviving schedule via the ledger.
        """
        if self._reference_rate is None:
            return self._full_reschedule(reason="initial")
        with span("incremental.repair", n=self.n_links, active=int(self._active.sum())):
            evicted = self._evict_infeasible()
            admitted = self._readmit(evicted)
        rate = float(self._rates[self._active].sum())
        if rate < self.quality_bound * self._reference_rate - self.tol:
            self.stats["fallbacks"] += 1
            obs_metrics.inc("incremental.fallbacks")
            return self._full_reschedule(reason="quality")
        self.stats["repairs"] += 1
        obs_metrics.inc("incremental.repairs")
        self._dirty[:] = False
        return Schedule(
            active=np.flatnonzero(self._active),
            algorithm=f"incremental:{self._scheduler_name}",
            diagnostics={
                "mode": "repair",
                "evicted": int(evicted.size),
                "admitted": admitted,
                "total_rate": rate,
                "reference_rate": self._reference_rate,
            },
        )

    def _budgets(self) -> np.ndarray:
        return self._budgets_arr

    def _update_budgets(self, idx: np.ndarray) -> None:
        """Refresh the touched receivers' budgets (O(k)).

        Budgets depend on geometry only through the link's own length
        (the ``nu_j`` noise factor), so moves and inserts update just
        the touched entries; with ``noise == 0`` they are the constant
        ``gamma_eps`` and nothing changes.
        """
        if self.noise == 0.0:
            return
        lengths = self._distances[idx, idx]
        nu = self.gamma_th * self.noise * lengths**self.alpha / self.power
        self._budgets_arr[idx] = self._gamma_eps - nu

    def _evict_infeasible(self) -> np.ndarray:
        """Drop active links until every receiver is within budget.

        Worst violation first (deterministic: ties break to the lowest
        index).  Each eviction retracts one ledger row — O(N) — and can
        only shrink other receivers' sums, so the loop terminates after
        at most ``|active|`` rounds.
        """
        budgets = self._budgets()
        evicted: list[int] = []
        while True:
            # Strict threshold (no + tol): the ledger may drift a few
            # ulp from a fresh reduction, so eviction errs toward
            # removing boundary links — re-admission can bring them
            # back, and the repaired set then passes the fresh
            # Corollary 3.1 check with its standard tolerance.
            violation = np.where(self._active, self._ledger - budgets, -np.inf)
            worst = int(np.argmax(violation))
            if violation[worst] <= 0.0:
                break
            self._active[worst] = False
            self._ledger -= self._f[worst, :]
            self.stats["ledger_updates"] += 1
            obs_metrics.inc("incremental.ledger_updates")
            evicted.append(worst)
        if evicted:
            self.stats["evictions"] += len(evicted)
            obs_metrics.inc("incremental.evictions", len(evicted))
        return np.array(sorted(evicted), dtype=np.int64)

    def _readmit(self, evicted: np.ndarray) -> int:
        """Greedily admit delta-touched links and evictees; returns count.

        Candidate order is highest rate first (shorter link, then lower
        index, on ties) — the same preference LDP's per-square argmax
        and the greedy baseline use.  Admission requires every active
        receiver *and* the candidate itself to stay within budget with
        ``admit_margin`` to spare.
        """
        candidates = np.union1d(np.flatnonzero(self._dirty & ~self._active), evicted)
        if candidates.size == 0:
            return 0
        lengths = self._distances[candidates, candidates]
        order = candidates[
            np.lexsort((candidates, lengths, -self._rates[candidates]))
        ]
        budgets = self._budgets() - self.admit_margin
        admitted = 0
        for c in order:
            c = int(c)
            if self._active[c] or self._ledger[c] > budgets[c]:
                continue
            trial = self._ledger + self._f[c, :]
            if np.any(trial[self._active] > budgets[self._active]):
                continue
            self._active[c] = True
            self._ledger = trial
            self.stats["ledger_updates"] += 1
            obs_metrics.inc("incremental.ledger_updates")
            admitted += 1
        if admitted:
            self.stats["admissions"] += admitted
            obs_metrics.inc("incremental.admissions", admitted)
        return admitted

    def _full_reschedule(self, reason: str) -> Schedule:
        with span("incremental.full", n=self.n_links, reason=reason):
            prob = self.problem
            result = self._scheduler(prob, **self._scheduler_kwargs)
            self._active = prob.active_mask(result.active)
            # Exact resync through the same reduction FadingRLS uses,
            # clearing any accumulated ledger drift.
            self._ledger = prob.interference_on(self._active)
            self._reference_rate = float(self._rates[self._active].sum())
        self.stats["full_runs"] += 1
        obs_metrics.inc("incremental.full_runs")
        self._dirty[:] = False
        return Schedule(
            active=result.active,
            algorithm=f"incremental:{self._scheduler_name}",
            diagnostics={
                "mode": "full",
                "reason": reason,
                "total_rate": self._reference_rate,
                "base": dict(result.diagnostics),
            },
        )
