"""Baseline schedulers.

The paper compares against two deterministic-SINR algorithms that are
*not* fading-resistant:

- **ApproxLogN** [14] (Goussevskaia et al., MobiHoc'07): two-sided
  length classes + grid colouring, squares sized by the deterministic
  SINR criterion — :mod:`repro.core.baselines.approx_logn`;
- **ApproxDiversity** [15] (Goussevskaia et al., INFOCOM'09):
  shortest-link-first greedy with deterministic affectance elimination —
  :mod:`repro.core.baselines.approx_diversity`.

Neither has public code; both are reconstructions from their papers'
descriptions plus the structural sketch in Section V (see DESIGN.md).
The deterministic machinery they share lives in
:mod:`repro.core.baselines.deterministic`, and
:mod:`repro.core.baselines.naive` adds sanity baselines (greedy by
rate under the fading test, random feasible, all-on).
"""

from repro.core.baselines.approx_diversity import approx_diversity_schedule
from repro.core.baselines.approx_logn import approx_logn_schedule
from repro.core.baselines.deterministic import (
    affectance_matrix,
    deterministic_informed,
    deterministic_is_feasible,
)
from repro.core.baselines.naive import (
    all_active_schedule,
    greedy_fading_schedule,
    longest_first_schedule,
    random_feasible_schedule,
)
from repro.core.baselines.protocol import (
    conflict_matrix,
    protocol_model_schedule,
    protocol_model_schedule_mis,
)

__all__ = [
    "approx_logn_schedule",
    "approx_diversity_schedule",
    "affectance_matrix",
    "deterministic_informed",
    "deterministic_is_feasible",
    "greedy_fading_schedule",
    "random_feasible_schedule",
    "all_active_schedule",
    "longest_first_schedule",
    "conflict_matrix",
    "protocol_model_schedule",
    "protocol_model_schedule_mis",
]
