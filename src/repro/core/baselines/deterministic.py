"""Deterministic-SINR scheduling machinery shared by the baselines.

Under the classical physical model, receiver ``j`` decodes iff

    ``d_jj^-alpha / sum_{i in P\\j} d_ij^-alpha >= gamma_th``

which rearranges to a unit budget on the **affectance**
``A[i, j] = gamma_th * (d_jj / d_ij)^alpha``:

    ``sum_{i in P\\j} A[i, j] <= 1``.

Note the tidy relation to the fading model: the paper's interference
factor is ``F = log1p(A)`` with budget ``gamma_eps`` instead of 1.
Because ``gamma_eps = ln(1/(1-eps))`` is tiny for small ``eps``, the
fading-resistant algorithms are far more conservative — that gap *is*
the paper's story, and the shared-form implementation here makes it
explicit (and testable: ``F == log1p(A)`` elementwise).
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import FadingRLS


def affectance_matrix(problem: FadingRLS) -> np.ndarray:
    """Deterministic affectance
    ``A[i, j] = gamma_th (P_i d_ij^-alpha)/(P_j d_jj^-alpha)``.

    Computed as ``expm1(F)`` from the cached interference-factor matrix
    (the exact inverse of ``F = log1p(A)``), which keeps the per-link
    power generalisation in one place.  Zero diagonal; cached.
    """
    if "affectance" not in problem._cache:
        a = np.expm1(problem.interference_matrix())
        np.fill_diagonal(a, 0.0)
        problem._cache["affectance"] = a
    return problem._cache["affectance"]


def deterministic_budgets(problem: FadingRLS) -> np.ndarray:
    """Per-receiver deterministic budget ``1 - nu_j``.

    The deterministic SINR test ``P_j d^-alpha / (N0 + I) >= gamma_th``
    rearranges to ``sum A + nu_j <= 1`` with the *same* noise factor
    ``nu_j`` as the fading model — only the budget differs (1 vs
    ``gamma_eps``).
    """
    return 1.0 - problem.noise_factors()


def deterministic_interference_on(problem: FadingRLS, active) -> np.ndarray:
    """Summed affectance at every receiver from active set ``P``."""
    mask = problem.active_mask(active)
    return mask.astype(float) @ affectance_matrix(problem)


def deterministic_informed(problem: FadingRLS, active, *, tol: float = 1e-12) -> np.ndarray:
    """Per-link: does each active link decode under the deterministic model?"""
    mask = problem.active_mask(active)
    ok = deterministic_interference_on(problem, mask) <= deterministic_budgets(problem) + tol
    return mask & ok

def deterministic_is_feasible(problem: FadingRLS, active, *, tol: float = 1e-12) -> bool:
    """All active links decode under the deterministic model."""
    mask = problem.active_mask(active)
    return bool(np.all(deterministic_informed(problem, mask, tol=tol) == mask))
