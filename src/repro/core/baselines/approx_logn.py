"""ApproxLogN baseline [14] (Goussevskaia, Oswald, Wattenhofer, MobiHoc'07).

The ``O(g(L))`` one-shot scheduler for the *deterministic* SINR model:
partition links into **two-sided** length classes (links of magnitude
exactly ``h``), tile the plane per class with squares sized by the
deterministic criterion, 4-colour, pick the max-rate receiver per
same-colour square, and keep the best candidate.

The square-size factor is the deterministic twin of LDP's Eq. (37):
the deterministic budget on summed affectance is 1 (not ``gamma_eps``),
so ``mu = (8 * zeta(alpha-1) * gamma_th / 1)^(1/alpha)`` — smaller than
LDP's ``beta`` by the factor ``gamma_eps^(1/alpha)``.  Smaller squares
mean denser schedules, which is exactly why this baseline fails under
Rayleigh fading (Fig. 5).

This is a reconstruction: [14] has no public code (see DESIGN.md).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.base import register_scheduler
from repro.core.ldp import _pick_per_square
from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.geometry.grid import GridPartition
from repro.network.diversity import length_classes, length_diversity_set
from repro.utils.zeta import riemann_zeta

N_COLORS = 4


def approx_logn_mu(alpha: float, gamma_th: float, budget: float = 1.0) -> float:
    """Deterministic square-size factor
    ``mu = (8 zeta(alpha-1) gamma_th / budget)^(1/alpha)``.

    ``budget`` is the deterministic affectance allowance (1 in the
    noiseless model; ``1 - nu`` under ambient noise)."""
    if not alpha > 2.0:
        raise ValueError(f"ApproxLogN requires alpha > 2, got {alpha}")
    if budget <= 0:
        raise ValueError(f"budget must be > 0, got {budget}")
    return float((8.0 * riemann_zeta(alpha - 1.0) * gamma_th / budget) ** (1.0 / alpha))


def approx_logn_candidates(problem: FadingRLS) -> List[Tuple[int, int, np.ndarray]]:
    """All ``4 g(L)`` candidate schedules (class magnitude, colour, indices)."""
    from repro.core.baselines.deterministic import deterministic_budgets

    links = problem.links
    if len(links) == 0:
        return []
    if not problem.has_uniform_power:
        from repro.core.base import SchedulerError

        raise SchedulerError("ApproxLogN assumes uniform transmit power")
    budgets = deterministic_budgets(problem)
    ok = budgets > 0.0
    if not ok.any():
        return []
    mu = approx_logn_mu(problem.alpha, problem.gamma_th, float(budgets[ok].min()))
    delta = float(links.lengths.min())
    magnitudes = length_diversity_set(links)
    classes = length_classes(links, two_sided=True)

    out: List[Tuple[int, int, np.ndarray]] = []
    for h, idx in zip(magnitudes, classes):
        idx = idx[ok[idx]]
        cell_size = 2.0 ** (h + 1) * mu * delta
        grid = GridPartition(cell_size)
        cells = grid.cell_of(links.receivers[idx])
        colors = grid.color_of(links.receivers[idx])
        rates = links.rates[idx]
        for color in range(N_COLORS):
            sel = colors == color
            chosen = _pick_per_square(cells[sel], rates[sel], idx[sel])
            out.append((h, color, np.sort(chosen)))
    return out


@register_scheduler("approx_logn")
def approx_logn_schedule(problem: FadingRLS) -> Schedule:
    """Run ApproxLogN and return its best (deterministically feasible)
    candidate.

    The returned schedule satisfies the *deterministic* SINR test by
    construction; its behaviour under fading is what
    :mod:`repro.sim` measures.
    """
    candidates = approx_logn_candidates(problem)
    if not candidates:
        return Schedule.empty("approx_logn")
    best: Optional[Tuple[int, int, np.ndarray]] = None
    best_rate = -np.inf
    for h, color, active in candidates:
        rate = problem.scheduled_rate(active)
        if rate > best_rate:
            best_rate = rate
            best = (h, color, active)
    assert best is not None
    h, color, active = best
    return Schedule(
        active=active,
        algorithm="approx_logn",
        diagnostics={
            "class_magnitude": h,
            "color": color,
            "n_candidates": len(candidates),
            "total_rate": best_rate,
        },
    )
