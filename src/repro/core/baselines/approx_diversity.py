"""ApproxDiversity baseline [15] (Goussevskaia et al., INFOCOM'09).

The constant-approximation one-shot scheduler for the *deterministic*
SINR model, as summarised in the paper's Section V: "always picks up the
shortest link and excludes links conflicted with the picked links in
each iteration".  Structurally it is the deterministic twin of RLE:

1. pick the shortest remaining link ``(s_i, r_i)``;
2. delete remaining links whose sender is within ``c1_det * d_ii`` of
   ``r_i``;
3. delete remaining links whose receiver's accumulated *affectance*
   from the picked set exceeds ``c2`` (of the deterministic unit
   budget).

``c1_det`` is Eq. (59) with the fading budget ``gamma_eps`` replaced by
the deterministic budget 1 — much smaller, so far more links survive,
and those dense schedules are precisely what fading breaks (Fig. 5).

This is a reconstruction: [15] has no public code (see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import register_scheduler
from repro.core.baselines.deterministic import affectance_matrix
from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.utils.zeta import riemann_zeta


def approx_diversity_c1(alpha: float, gamma_th: float, c2: float, budget: float = 1.0) -> float:
    """Deterministic elimination radius
    ``sqrt(2) * (12 zeta(alpha-1) gamma_th / (budget (1 - c2)))^(1/alpha) + 1``.

    ``budget`` is the deterministic affectance allowance (1 in the
    noiseless model; the tightest ``1 - nu_j`` under ambient noise)."""
    if not alpha > 2.0:
        raise ValueError(f"ApproxDiversity requires alpha > 2, got {alpha}")
    if not 0.0 < c2 < 1.0:
        raise ValueError(f"c2 must be in (0, 1), got {c2}")
    if budget <= 0:
        raise ValueError(f"budget must be > 0, got {budget}")
    inner = 12.0 * riemann_zeta(alpha - 1.0) * gamma_th / (budget * (1.0 - c2))
    return float(np.sqrt(2.0) * inner ** (1.0 / alpha) + 1.0)


@register_scheduler("approx_diversity")
def approx_diversity_schedule(problem: FadingRLS, *, c2: float = 0.5) -> Schedule:
    """Run ApproxDiversity.

    The output satisfies the deterministic SINR test by the same
    two-budget argument as RLE (earlier picks capped at ``c2``, later
    picks at ``1 - c2`` by geometry); it carries **no** fading
    guarantee.
    """
    from repro.core.baselines.deterministic import deterministic_budgets

    links = problem.links
    n = len(links)
    if n == 0:
        return Schedule.empty("approx_diversity")
    if not problem.has_uniform_power:
        from repro.core.base import SchedulerError

        raise SchedulerError("ApproxDiversity assumes uniform transmit power")
    budgets = deterministic_budgets(problem)
    serviceable = budgets > 0.0
    if not serviceable.any():
        return Schedule(
            active=np.zeros(0, dtype=np.int64),
            algorithm="approx_diversity",
            diagnostics={"unserviceable": int(n)},
        )
    c1 = approx_diversity_c1(
        problem.alpha, problem.gamma_th, c2, float(budgets[serviceable].min())
    )
    lengths = links.lengths
    dist = problem.distances()
    a = affectance_matrix(problem)

    order = np.argsort(lengths, kind="stable")
    remaining = serviceable.copy()
    accumulated = np.zeros(n, dtype=float)
    picked: list[int] = []
    removed_by_radius = 0
    removed_by_affectance = 0

    for i in order:
        if not remaining[i]:
            continue
        picked.append(int(i))
        remaining[i] = False

        radius_kill = remaining & (dist[:, i] < c1 * lengths[i])
        removed_by_radius += int(radius_kill.sum())
        remaining[radius_kill] = False

        accumulated += a[i, :]
        affectance_kill = remaining & (accumulated > c2 * budgets)
        removed_by_affectance += int(affectance_kill.sum())
        remaining[affectance_kill] = False

    return Schedule(
        active=np.array(sorted(picked), dtype=np.int64),
        algorithm="approx_diversity",
        diagnostics={
            "c1": c1,
            "c2": c2,
            "removed_by_radius": removed_by_radius,
            "removed_by_affectance": removed_by_affectance,
        },
    )
