"""Protocol (graph-based) interference model baseline.

The paper's related work (Section VI-A, refs [1]-[9]) covers graph-based
scheduling: two links conflict iff they are "close" (here, the unit-disk
style rule — an interfering sender within ``range_factor`` times the
victim's link length of its receiver), and a schedule is any independent
set of the conflict graph.  Gronkvist & Hansson [10] showed such
schedules are inefficient under the physical model because the graph
ignores *accumulated* interference from many far senders; under Rayleigh
fading they are doubly wrong.  This baseline exists to demonstrate that
argument quantitatively (see ``benchmarks/test_protocol_model.py``).

Two schedulers:

- :func:`protocol_model_schedule` — deterministic greedy maximum-rate
  independent set;
- :func:`protocol_model_schedule_mis` — a networkx-backed randomised
  maximal independent set, useful as a second opinion on the graph
  abstraction itself.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import register_scheduler
from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.utils.rng import SeedLike, as_rng


def conflict_matrix(problem: FadingRLS, *, range_factor: float = 2.0) -> np.ndarray:
    """Symmetric boolean conflict matrix of the protocol model.

    Links ``i`` and ``j`` conflict when ``d(s_i, r_j) <
    range_factor * d_jj`` or ``d(s_j, r_i) < range_factor * d_ii`` —
    i.e. either sender lands inside the other receiver's protection
    disk.  Diagonal is False.
    """
    if range_factor <= 0:
        raise ValueError(f"range_factor must be > 0, got {range_factor}")
    d = problem.distances()
    lengths = problem.links.lengths
    # d[i, j] = d(s_i, r_j); protection radius of receiver j is
    # range_factor * d_jj.
    close = d < range_factor * lengths[None, :]
    conflict = close | close.T
    np.fill_diagonal(conflict, False)
    return conflict


@register_scheduler("protocol")
def protocol_model_schedule(
    problem: FadingRLS, *, range_factor: float = 2.0
) -> Schedule:
    """Greedy max-rate independent set of the protocol conflict graph.

    Deterministic: links are considered in descending rate (ties:
    shorter first, then index) and added when conflict-free with the
    current set.  The output is *maximal* in the graph sense but carries
    no SINR guarantee of any kind — that is the point of the baseline.
    """
    n = problem.n_links
    if n == 0:
        return Schedule.empty("protocol")
    conflict = conflict_matrix(problem, range_factor=range_factor)
    links = problem.links
    order = np.lexsort((np.arange(n), links.lengths, -links.rates))
    chosen = np.zeros(n, dtype=bool)
    blocked = np.zeros(n, dtype=bool)
    for i in order:
        if blocked[i]:
            continue
        chosen[i] = True
        blocked |= conflict[i]
    return Schedule(
        active=np.flatnonzero(chosen),
        algorithm="protocol",
        diagnostics={
            "range_factor": range_factor,
            "conflict_edges": int(conflict.sum() // 2),
        },
    )


@register_scheduler("protocol_mis")
def protocol_model_schedule_mis(
    problem: FadingRLS, *, range_factor: float = 2.0, seed: SeedLike = None
) -> Schedule:
    """Randomised maximal independent set via networkx.

    Same conflict graph as :func:`protocol_model_schedule`; the
    independent set comes from ``networkx.maximal_independent_set``
    with a derived seed, giving a rate-blind sample of the graph
    abstraction's output space.
    """
    import networkx as nx

    n = problem.n_links
    if n == 0:
        return Schedule.empty("protocol_mis")
    conflict = conflict_matrix(problem, range_factor=range_factor)
    g = nx.from_numpy_array(conflict)
    rng = as_rng(seed)
    mis = nx.maximal_independent_set(g, seed=int(rng.integers(0, 2**31)))
    return Schedule(
        active=np.array(sorted(mis), dtype=np.int64),
        algorithm="protocol_mis",
        diagnostics={"range_factor": range_factor},
    )
