"""Naive baseline schedulers.

Sanity baselines used by tests and the extended benchmarks:

- :func:`greedy_fading_schedule` — rate-ordered greedy that adds a link
  only if the *fading* feasibility (Cor. 3.1) of the whole set is
  preserved.  A natural heuristic upper reference for LDP/RLE.
- :func:`longest_first_schedule` — same greedy but longest links first;
  demonstrates why the shortest-first rule in RLE matters.
- :func:`random_feasible_schedule` — adds links in random order with
  the same feasibility filter; the "no cleverness" control.
- :func:`all_active_schedule` — schedules everything (usually
  infeasible); stress input for the simulator and metrics.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import register_scheduler
from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.utils.rng import SeedLike, as_rng


def _greedy_in_order(problem: FadingRLS, order: np.ndarray, algorithm: str) -> Schedule:
    """Add links in ``order``; keep each only if the set stays feasible.

    Incremental bookkeeping: ``accumulated[j]`` is the interference at
    receiver ``j`` from the current set, so the feasibility test for a
    candidate ``i`` is two vectorised checks (the candidate's own budget
    and every member's budget after adding row ``F[i]``), never a full
    re-solve.
    """
    n = problem.n_links
    f = problem.interference_matrix()
    budgets = problem.effective_budgets()  # gamma_eps everywhere when noise = 0
    accumulated = np.zeros(n, dtype=float)
    member = np.zeros(n, dtype=bool)
    picked: list[int] = []
    for i in order:
        i = int(i)
        # Candidate's own interference if added: current accumulation at r_i.
        if accumulated[i] > budgets[i]:
            continue
        # Members' budgets after adding sender i.
        new_acc = accumulated + f[i, :]
        if np.any(new_acc[member] > budgets[member]):
            continue
        accumulated = new_acc
        member[i] = True
        picked.append(i)
    return Schedule(
        active=np.array(sorted(picked), dtype=np.int64),
        algorithm=algorithm,
        diagnostics={"order": "custom", "n_considered": int(len(order))},
    )


@register_scheduler("greedy")
def greedy_fading_schedule(problem: FadingRLS) -> Schedule:
    """Greedy by descending rate (ties: shorter link first) under the
    fading feasibility test."""
    links = problem.links
    if len(links) == 0:
        return Schedule.empty("greedy")
    order = np.lexsort((links.lengths, -links.rates))
    return _greedy_in_order(problem, order, "greedy")


@register_scheduler("longest_first")
def longest_first_schedule(problem: FadingRLS) -> Schedule:
    """Greedy by descending link length — a deliberately bad ordering."""
    links = problem.links
    if len(links) == 0:
        return Schedule.empty("longest_first")
    order = np.argsort(-links.lengths, kind="stable")
    return _greedy_in_order(problem, order, "longest_first")


@register_scheduler("random")
def random_feasible_schedule(problem: FadingRLS, *, seed: SeedLike = None) -> Schedule:
    """Greedy in uniformly random order under the fading test."""
    n = problem.n_links
    if n == 0:
        return Schedule.empty("random")
    rng = as_rng(seed)
    order = rng.permutation(n)
    return _greedy_in_order(problem, order, "random")


@register_scheduler("all_active")
def all_active_schedule(problem: FadingRLS) -> Schedule:
    """Schedule every link simultaneously (no feasibility filtering)."""
    return Schedule(
        active=np.arange(problem.n_links, dtype=np.int64),
        algorithm="all_active",
        diagnostics={"feasible_by_construction": False},
    )
