"""Verification harness: fuzzed scenarios x registered oracles.

:func:`run_verification` is the always-on oracle behind
``python -m repro verify`` and ``make verify-fuzz``: it streams
adversarial scenarios from :mod:`repro.verify.fuzz` and executes every
registered differential check and metamorphic relation on each, under
a **cell budget** (one cell = one (scenario, check) execution) and an
optional wall-clock budget.  The run is a pure function of
``(budget, seed, check selection)`` — CI reruns reproduce the exact
same cells — and returns a structured
:class:`~repro.verify.report.VerificationReport`.

:func:`verify_scenario` runs the oracles on a single (possibly
hand-built or deliberately faulted) scenario; the fault-injection tests
use it to prove the harness actually detects corruption.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.verify.differential import CheckFn, DIFFERENTIAL_CHECKS
from repro.verify.fuzz import FAMILIES, Scenario, make_scenario
from repro.verify.metamorphic import METAMORPHIC_RELATIONS

# Imported for their registration side-effects: the queue-stability
# relations (they pull in repro.workload), the channel-law oracles
# (they pull in repro.channel.laws) and the schedule-cache check (it
# pulls in repro.cache) live in their own modules but register into
# the same registries read above.
from repro.verify import cache  # noqa: F401  (registration import)
from repro.verify import channels  # noqa: F401  (registration import)
from repro.verify import service  # noqa: F401  (registration import)
from repro.verify import stability  # noqa: F401  (registration import)
from repro.verify.report import CheckOutcome, VerificationReport


def all_checks() -> Dict[str, CheckFn]:
    """Every registered oracle: differential checks + metamorphic relations.

    Name collisions across the two registries are a configuration bug
    and raise immediately.
    """
    merged: Dict[str, CheckFn] = dict(DIFFERENTIAL_CHECKS)
    for name, fn in METAMORPHIC_RELATIONS.items():
        if name in merged:
            raise ValueError(
                f"{name!r} is registered as both a differential check and "
                f"a metamorphic relation"
            )
        merged[name] = fn
    return merged


def resolve_checks(names: Optional[Iterable[str]] = None) -> Dict[str, CheckFn]:
    """Subset the merged registry by name (``None`` = everything)."""
    registry = all_checks()
    if names is None:
        return dict(sorted(registry.items()))
    selected: Dict[str, CheckFn] = {}
    for name in names:
        if name not in registry:
            raise KeyError(
                f"unknown check {name!r}; available: {sorted(registry)}"
            )
        selected[name] = registry[name]
    return dict(sorted(selected.items()))


def verify_scenario(
    scenario: Scenario,
    *,
    checks: Optional[Iterable[str]] = None,
) -> List[CheckOutcome]:
    """Run the selected oracles on one scenario, in sorted-name order."""
    outcomes: List[CheckOutcome] = []
    for name, fn in resolve_checks(checks).items():
        t0 = time.perf_counter()
        with span("verify.cell", check=name, scenario=scenario.name):
            mismatches = tuple(fn(scenario))
        obs_metrics.inc("verify.checks_run")
        obs_metrics.inc("verify.mismatches", len(mismatches))
        outcomes.append(
            CheckOutcome(
                check=name,
                scenario=scenario.name,
                mismatches=mismatches,
                wall_seconds=time.perf_counter() - t0,
            )
        )
    return outcomes


def run_verification(
    budget: int = 200,
    *,
    seed: int = 0,
    checks: Optional[Iterable[str]] = None,
    families: tuple = FAMILIES,
    time_budget: Optional[float] = None,
) -> VerificationReport:
    """Run the oracle matrix over fuzzed scenarios under a cell budget.

    Parameters
    ----------
    budget:
        Maximum number of (scenario, check) cells to execute.  Scenarios
        are consumed in the deterministic fuzz order; a partially
        verified final scenario counts its executed cells only.
    seed:
        Root seed for the scenario stream (and all per-cell randomness).
    checks:
        Check-name subset (``None`` = all registered oracles).
    families:
        Scenario families to rotate through (default: all).
    time_budget:
        Optional wall-clock cap in seconds.  The harness stops *between*
        cells once exceeded, so the report never contains a half-run
        check; the cap is enforced on a best-effort basis for CI, not a
        hard real-time guarantee.

    Returns
    -------
    VerificationReport
        ``report.passed`` is the oracle verdict; ``report.summary()``
        names every failing check, scenario and reason code.
    """
    if budget < 0:
        raise ValueError("budget must be >= 0")
    selected = resolve_checks(checks)
    if not selected:
        raise ValueError("no checks selected")
    t_start = time.perf_counter()
    outcomes: List[CheckOutcome] = []
    cells = 0
    scenario_index = 0
    with span("verify.run", budget=budget, seed=seed):
        while cells < budget:
            family = families[scenario_index % len(families)]
            scenario = make_scenario(
                family, scenario_index // len(families), root_seed=seed
            )
            scenario_index += 1
            for name, fn in selected.items():
                if cells >= budget:
                    break
                if (
                    time_budget is not None
                    and time.perf_counter() - t_start > time_budget
                ):
                    cells = budget  # stop the outer loop too
                    break
                t0 = time.perf_counter()
                with span("verify.cell", check=name, scenario=scenario.name):
                    mismatches = tuple(fn(scenario))
                obs_metrics.inc("verify.checks_run")
                obs_metrics.inc("verify.mismatches", len(mismatches))
                outcomes.append(
                    CheckOutcome(
                        check=name,
                        scenario=scenario.name,
                        mismatches=mismatches,
                        wall_seconds=time.perf_counter() - t0,
                    )
                )
                cells += 1
    return VerificationReport(
        outcomes=tuple(outcomes),
        budget=budget,
        seed=seed,
        wall_seconds=time.perf_counter() - t_start,
    )
