"""Metamorphic-relation registry.

A metamorphic relation is a paper-derived invariant connecting the
library's answers on an instance and on a *transformed* copy — no
ground truth needed, which is exactly what an NP-hard scheduling
problem denies us.  Each relation here traces to a specific statement:

- ``geometry-scale-invariance`` — Eq. 17's factors depend only on
  distance *ratios* ``d_jj / d_ij``, so scaling every coordinate by a
  constant leaves ``F``, feasibility and Thm 3.1 success probabilities
  unchanged (for ``N0 = 0``, the paper's setting);
- ``eps-monotonicity`` — Corollary 3.1's budget
  ``gamma_eps = ln(1/(1-eps))`` grows with ``eps``, so enlarging the
  error allowance can only enlarge the feasible family, and shrinking
  it can only shrink it;
- ``interferer-monotonicity`` — adding a transmitter adds a
  non-negative term to every other receiver's interference sum, so no
  link's success probability may increase;
- ``subset-feasibility`` — feasibility is hereditary (interference
  only grows with the active set), so removing a link from a feasible
  schedule keeps it feasible — the invariant every elimination-style
  algorithm (RLE, local search) silently relies on;
- ``power-scale-invariance`` — with zero ambient noise the uniform
  transmit power cancels from every factor (Eq. 17), so rescaling it
  changes nothing.

Relations are registered callables ``(Scenario) -> list[Mismatch]``;
the harness runs them alongside the differential checks.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.core.problem import FadingRLS
from repro.network.links import LinkSet
from repro.verify.fuzz import Scenario, witness_set
from repro.verify.report import Mismatch

RelationFn = Callable[[Scenario], List[Mismatch]]

#: Reason codes emitted by the relations below.
CODE_SCALE_VARIANCE = "scale-variance"
CODE_EPS_MONOTONICITY = "eps-monotonicity-violation"
CODE_INTERFERER_MONOTONICITY = "interferer-monotonicity-violation"
CODE_SUBSET_FEASIBILITY = "subset-feasibility-violation"
CODE_POWER_SCALE_VARIANCE = "power-scale-variance"

METAMORPHIC_RELATIONS: Dict[str, RelationFn] = {}


def register_relation(name: str):
    """Register a metamorphic relation under ``name`` (decorator)."""

    def _register(fn: RelationFn) -> RelationFn:
        if name in METAMORPHIC_RELATIONS and METAMORPHIC_RELATIONS[name] is not fn:
            raise ValueError(f"relation {name!r} is already registered")
        METAMORPHIC_RELATIONS[name] = fn
        return fn

    return _register


def _mismatch(name: str, scenario: Scenario, code: str, message: str, **details) -> Mismatch:
    return Mismatch(
        check=name, scenario=scenario.name, code=code, message=message, details=details
    )


@register_relation("geometry-scale-invariance")
def relation_scale_invariance(scenario: Scenario) -> List[Mismatch]:
    """Uniform coordinate scaling must not change any answer (N0 = 0)."""
    p = scenario.problem
    if p.noise != 0.0:
        return []  # nu_j = gamma N0 d_jj^alpha / P scales with geometry
    out: List[Mismatch] = []
    active = witness_set(p)
    for factor in (0.5, 3.0):
        scaled = FadingRLS(
            links=LinkSet(
                senders=p.links.senders * factor,
                receivers=p.links.receivers * factor,
                rates=p.links.rates,
            ),
            alpha=p.alpha,
            gamma_th=p.gamma_th,
            eps=p.eps,
            power=p.power,
            powers=p.powers,
        )
        if not np.allclose(
            scaled.interference_matrix(), p.interference_matrix(), rtol=1e-9, atol=1e-12
        ):
            delta = float(
                np.abs(scaled.interference_matrix() - p.interference_matrix()).max()
            )
            out.append(
                _mismatch(
                    "geometry-scale-invariance",
                    scenario,
                    CODE_SCALE_VARIANCE,
                    f"F changed under x{factor} coordinate scaling "
                    f"(max |delta| = {delta:.3e})",
                    factor=factor,
                    max_abs_delta=delta,
                )
            )
        if scaled.is_feasible(active) != p.is_feasible(active):
            out.append(
                _mismatch(
                    "geometry-scale-invariance",
                    scenario,
                    CODE_SCALE_VARIANCE,
                    f"witness-set feasibility flipped under x{factor} scaling",
                    factor=factor,
                    active=[int(i) for i in active],
                )
            )
        if not np.allclose(
            scaled.success_probabilities(active),
            p.success_probabilities(active),
            rtol=1e-9,
            atol=1e-12,
        ):
            out.append(
                _mismatch(
                    "geometry-scale-invariance",
                    scenario,
                    CODE_SCALE_VARIANCE,
                    f"Thm 3.1 probabilities changed under x{factor} scaling",
                    factor=factor,
                )
            )
    return out


@register_relation("eps-monotonicity")
def relation_eps_monotonicity(scenario: Scenario) -> List[Mismatch]:
    """Growing ``eps`` only adds feasible sets; shrinking only removes."""
    p = scenario.problem
    out: List[Mismatch] = []
    feasible_set = witness_set(p)
    eps_up = p.eps + (1.0 - p.eps) / 2.0
    if feasible_set.size and not p.with_params(eps=eps_up).is_feasible(feasible_set):
        out.append(
            _mismatch(
                "eps-monotonicity",
                scenario,
                CODE_EPS_MONOTONICITY,
                f"set feasible at eps={p.eps} became infeasible at "
                f"larger eps={eps_up}",
                eps=p.eps,
                eps_up=eps_up,
                active=[int(i) for i in feasible_set],
            )
        )
    everything = np.arange(p.n_links)
    if not p.is_feasible(everything):
        eps_down = p.eps / 2.0
        if p.with_params(eps=eps_down).is_feasible(everything):
            out.append(
                _mismatch(
                    "eps-monotonicity",
                    scenario,
                    CODE_EPS_MONOTONICITY,
                    f"all-links set infeasible at eps={p.eps} became feasible "
                    f"at smaller eps={eps_down}",
                    eps=p.eps,
                    eps_down=eps_down,
                )
            )
    return out


@register_relation("interferer-monotonicity")
def relation_interferer_monotonicity(scenario: Scenario) -> List[Mismatch]:
    """Adding a transmitter never raises any other link's success probability."""
    p = scenario.problem
    active = witness_set(p)
    outsiders = np.setdiff1d(np.arange(p.n_links), active)
    if outsiders.size == 0:
        # Witness set covers everything: drop its last member so an
        # outsider exists (the relation is about *adding* a link).
        active, outsiders = active[:-1], active[-1:]
    if active.size == 0:
        return []
    extra = int(outsiders[0])
    before = p.success_probabilities(active)[active]
    augmented = np.append(active, extra)
    after = p.success_probabilities(augmented)[active]
    worst = float((after - before).max())
    if worst > 1e-12:
        bad = int(active[int(np.argmax(after - before))])
        return [
            _mismatch(
                "interferer-monotonicity",
                scenario,
                CODE_INTERFERER_MONOTONICITY,
                f"adding interferer {extra} raised link {bad}'s success "
                f"probability by {worst:.3e}",
                added=extra,
                link=bad,
                increase=worst,
            )
        ]
    return []


@register_relation("subset-feasibility")
def relation_subset_feasibility(scenario: Scenario) -> List[Mismatch]:
    """Every one-link deletion from a feasible schedule stays feasible."""
    p = scenario.problem
    active = witness_set(p)
    out: List[Mismatch] = []
    for drop in active[:8]:  # cap the quadratic probe on large sets
        reduced = active[active != drop]
        if not p.is_feasible(reduced):
            out.append(
                _mismatch(
                    "subset-feasibility",
                    scenario,
                    CODE_SUBSET_FEASIBILITY,
                    f"removing link {int(drop)} from a feasible schedule "
                    f"made it infeasible",
                    dropped=int(drop),
                    active=[int(i) for i in active],
                )
            )
    return out


@register_relation("power-scale-invariance")
def relation_power_scale_invariance(scenario: Scenario) -> List[Mismatch]:
    """Uniform power rescaling is invisible when ``N0 = 0`` (Eq. 17)."""
    p = scenario.problem
    if p.noise != 0.0:
        return []
    rescaled = FadingRLS(
        links=p.links,
        alpha=p.alpha,
        gamma_th=p.gamma_th,
        eps=p.eps,
        power=p.power * 7.5,
    )
    out: List[Mismatch] = []
    if not np.allclose(
        rescaled.interference_matrix(), p.interference_matrix(), rtol=1e-9, atol=1e-12
    ):
        out.append(
            _mismatch(
                "power-scale-invariance",
                scenario,
                CODE_POWER_SCALE_VARIANCE,
                "F changed under uniform power rescaling with N0 = 0",
            )
        )
    active = witness_set(p)
    if rescaled.is_feasible(active) != p.is_feasible(active):
        out.append(
            _mismatch(
                "power-scale-invariance",
                scenario,
                CODE_POWER_SCALE_VARIANCE,
                "witness-set feasibility flipped under uniform power rescaling",
                active=[int(i) for i in active],
            )
        )
    if not np.allclose(
        rescaled.success_probabilities(active),
        p.success_probabilities(active),
        rtol=1e-9,
        atol=1e-12,
    ):
        out.append(
            _mismatch(
                "power-scale-invariance",
                scenario,
                CODE_POWER_SCALE_VARIANCE,
                "Thm 3.1 probabilities changed under uniform power rescaling",
            )
        )
    return out
