"""Structured verification outcomes.

Every oracle in :mod:`repro.verify` — differential checks and
metamorphic relations alike — reports failures as :class:`Mismatch`
records: a machine-readable reason ``code``, the check and scenario that
produced it, a human-readable message, and enough numeric detail to
reproduce the divergence.  The harness aggregates per-(scenario, check)
executions into :class:`CheckOutcome` rows and a whole run into a
:class:`VerificationReport` that renders as text (CLI) or JSON
(CI artifacts, ``BENCH_RESULTS.json``).

Reason codes are stable strings (``"cache-divergence"``, not enum
members) so they survive JSON round-trips and can be grepped in CI
logs; the canonical list lives in ``docs/VERIFICATION.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Tuple


@dataclass(frozen=True)
class Mismatch:
    """One detected divergence between supposedly-equivalent paths.

    Attributes
    ----------
    check:
        Name of the differential check or metamorphic relation that
        fired (e.g. ``"cached-vs-certificate"``).
    scenario:
        Identifier of the fuzzed scenario it fired on.
    code:
        Stable machine-readable reason code (e.g. ``"cache-divergence"``).
    message:
        Human-readable explanation with the offending numbers inline.
    details:
        Reproduction data (link indices, deltas, seeds); JSON-safe
        scalars and small lists only.
    """

    check: str
    scenario: str
    code: str
    message: str
    details: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form (CI artifacts, ``--output`` files)."""
        return {
            "check": self.check,
            "scenario": self.scenario,
            "code": self.code,
            "message": self.message,
            "details": dict(self.details),
        }


@dataclass(frozen=True)
class CheckOutcome:
    """One (scenario, check) execution."""

    check: str
    scenario: str
    mismatches: Tuple[Mismatch, ...]
    wall_seconds: float

    @property
    def passed(self) -> bool:
        return not self.mismatches

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form of this cell."""
        return {
            "check": self.check,
            "scenario": self.scenario,
            "passed": self.passed,
            "wall_seconds": self.wall_seconds,
            "mismatches": [m.to_dict() for m in self.mismatches],
        }


@dataclass(frozen=True)
class VerificationReport:
    """Aggregate result of one harness run.

    Attributes
    ----------
    outcomes:
        Every (scenario, check) cell executed, in execution order.
    budget:
        The requested cell budget.
    seed:
        Root seed the scenario stream derived from.
    wall_seconds:
        Total harness wall time.
    """

    outcomes: Tuple[CheckOutcome, ...]
    budget: int
    seed: int
    wall_seconds: float

    @property
    def n_cells(self) -> int:
        return len(self.outcomes)

    @property
    def n_scenarios(self) -> int:
        return len({o.scenario for o in self.outcomes})

    @property
    def passed(self) -> bool:
        return all(o.passed for o in self.outcomes)

    def mismatches(self) -> List[Mismatch]:
        """Every mismatch across all cells, in execution order."""
        return [m for o in self.outcomes for m in o.mismatches]

    def per_check_counts(self) -> Dict[str, Dict[str, int]]:
        """``{check: {"cells": n, "mismatches": m}}`` summary table."""
        table: Dict[str, Dict[str, int]] = {}
        for o in self.outcomes:
            row = table.setdefault(o.check, {"cells": 0, "mismatches": 0})
            row["cells"] += 1
            row["mismatches"] += len(o.mismatches)
        return table

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe summary (the CLI's ``--output`` payload)."""
        return {
            "budget": self.budget,
            "seed": self.seed,
            "wall_seconds": self.wall_seconds,
            "n_cells": self.n_cells,
            "n_scenarios": self.n_scenarios,
            "passed": self.passed,
            "per_check": self.per_check_counts(),
            "mismatches": [m.to_dict() for m in self.mismatches()],
        }

    def summary(self) -> str:
        """Multi-line human-readable summary (the CLI's output)."""
        lines = [
            f"verification: {self.n_cells} cells over {self.n_scenarios} "
            f"scenarios in {self.wall_seconds:.1f}s "
            f"(budget {self.budget}, seed {self.seed})",
        ]
        for check in sorted(self.per_check_counts()):
            row = self.per_check_counts()[check]
            status = "ok" if row["mismatches"] == 0 else f"{row['mismatches']} MISMATCH"
            lines.append(f"  {check:<28s} {row['cells']:>4d} cells  {status}")
        bad = self.mismatches()
        if bad:
            lines.append(f"FAILED: {len(bad)} mismatch(es)")
            for m in bad[:20]:
                lines.append(f"  [{m.code}] {m.check} on {m.scenario}: {m.message}")
            if len(bad) > 20:
                lines.append(f"  ... and {len(bad) - 20} more")
        else:
            lines.append("PASSED: zero mismatches")
        return "\n".join(lines)


def merge_outcomes(outcomes: Iterable[CheckOutcome]) -> List[Mismatch]:
    """Flatten outcomes to their mismatches (helper for tests)."""
    return [m for o in outcomes for m in o.mismatches]
