"""``service-vs-direct`` differential check (serving-layer oracles).

One registered differential check over
:class:`repro.service.broker.ScheduleBroker`, driving the whole broker
path — admission, coalescing, batching, the worker pool, the
transparent cache — on each fuzzed scenario and comparing against a
direct scheduler call:

- **serving bit-identity** — every answer the broker returns (the
  computed one, its coalesced duplicates, and a later cache-tier
  replay) must be bit-identical to ``rle_schedule`` on the same
  problem (``service-schedule-divergence``);
- **coalescing accounting** — ``k`` concurrent identical submissions
  must coalesce onto exactly one scheduler run
  (``service-coalesce-divergence``);
- **deterministic backpressure** — a seeded burst of distinct
  topologies against a stalled broker with ``queue_limit = q`` must
  accept exactly the first ``q`` and reject the rest with 503, in
  order (``service-backpressure-nondeterminism``);
- **request accounting** — the broker's counters must balance:
  ``requests == scheduled + coalesced + rejected`` with no request
  unaccounted for (``service-accounting-loss``).

The helpers are module-level so the fault-injection tests can
monkeypatch them to prove each reason code fires.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List

import numpy as np

from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.core.schedule import Schedule
from repro.service.broker import AdmissionError, Overloaded, ScheduleBroker
from repro.verify.differential import _mismatch, register_differential
from repro.verify.fuzz import Scenario
from repro.verify.report import Mismatch

#: Reason codes emitted by the check below.
CODE_SERVICE_SCHEDULE = "service-schedule-divergence"
CODE_SERVICE_COALESCE = "service-coalesce-divergence"
CODE_SERVICE_BACKPRESSURE = "service-backpressure-nondeterminism"
CODE_SERVICE_ACCOUNTING = "service-accounting-loss"

#: Cap on the instance slice the check schedules (speed, not scale).
_MAX_LINKS = 14

#: Concurrent identical submissions in the coalescing probe.
_N_DUPLICATES = 6
#: Burst size / queue limit of the backpressure probe.
_BURST = 8
_QUEUE_LIMIT = 3


def _service_problem(problem: FadingRLS) -> FadingRLS:
    """The (possibly truncated) instance the check runs on."""
    if problem.n_links <= _MAX_LINKS:
        return problem
    return problem.restrict(np.arange(_MAX_LINKS))


def _direct_schedule(problem: FadingRLS) -> Schedule:
    """The serving oracle: a plain uncached scheduler run."""
    return rle_schedule(problem)


def _burst_problems(problem: FadingRLS) -> List[FadingRLS]:
    """``_BURST`` distinct single-link-dropped variants of ``problem``.

    Each drops a different link, so no two share an exact key and none
    coalesce — the burst really does occupy queue slots.
    """
    n = problem.n_links
    return [
        problem.restrict(np.delete(np.arange(n), i % n)) for i in range(_BURST)
    ]


async def _drive_serving(problem: FadingRLS) -> Dict[str, Any]:
    """Coalescing probe: ``_N_DUPLICATES`` identical concurrent submits.

    Submissions are scheduled before the worker runs (a single
    ``gather`` enqueues them back-to-back on the loop), so exactly one
    enters the queue and the rest attach to its future.
    """
    broker = ScheduleBroker(n_workers=2, inline=True)
    await broker.start()
    try:
        results = await asyncio.gather(
            *(broker.submit(problem) for _ in range(_N_DUPLICATES))
        )
        replay = await broker.submit(problem)  # exact-key cache tier
        return {
            "schedules": [r["schedule"] for r in results] + [replay["schedule"]],
            "replay_tier": replay["tier"],
            "stats": broker.stats,
        }
    finally:
        await broker.close()


async def _drive_backpressure(problems: List[FadingRLS]) -> Dict[str, Any]:
    """Overload probe: burst a stalled broker, then drain it.

    The broker's workers are not started while the burst lands, so the
    queue fills deterministically: the first ``_QUEUE_LIMIT`` distinct
    submissions are accepted, the rest must raise 503 in order.
    """
    broker = ScheduleBroker(queue_limit=_QUEUE_LIMIT, n_workers=1, inline=True)
    tasks = [asyncio.ensure_future(broker.submit(p)) for p in problems]
    await asyncio.sleep(0)  # let every submit run to its first await
    rejected = [
        i
        for i, t in enumerate(tasks)
        if t.done() and isinstance(t.exception(), Overloaded)
    ]
    await broker.start()  # now drain the accepted ones
    accepted: List[Schedule] = []
    for i, task in enumerate(tasks):
        if i in rejected:
            continue
        try:
            accepted.append((await task)["schedule"])
        except AdmissionError:  # pragma: no cover - accept set already fixed
            rejected.append(i)
    await broker.close()
    return {"rejected": rejected, "accepted": accepted, "stats": broker.stats}


@register_differential("service-vs-direct")
def check_service_vs_direct(scenario: Scenario) -> List[Mismatch]:
    """The broker must serve exactly what a direct scheduler call does."""
    name = "service-vs-direct"
    out: List[Mismatch] = []
    problem = _service_problem(scenario.problem)
    if problem.n_links < 2:
        return out
    direct = _direct_schedule(problem)

    served = asyncio.run(_drive_serving(problem))
    for i, schedule in enumerate(served["schedules"]):
        if not np.array_equal(schedule.active, direct.active):
            out.append(
                _mismatch(
                    name,
                    scenario,
                    CODE_SERVICE_SCHEDULE,
                    f"served schedule #{i} diverges from the direct run",
                    served=[int(x) for x in schedule.active],
                    direct=[int(x) for x in direct.active],
                )
            )
    stats = served["stats"]
    if stats["scheduled"] != 2 or stats["coalesced"] != _N_DUPLICATES - 1:
        out.append(
            _mismatch(
                name,
                scenario,
                CODE_SERVICE_COALESCE,
                f"{_N_DUPLICATES} identical concurrent requests plus one replay "
                f"should coalesce to 2 scheduler runs, got "
                f"{stats['scheduled']} runs / {stats['coalesced']} coalesced",
                scheduled=stats["scheduled"],
                coalesced=stats["coalesced"],
            )
        )
    if served["replay_tier"] != "cache":
        out.append(
            _mismatch(
                name,
                scenario,
                CODE_SERVICE_COALESCE,
                f"a replayed request should serve from the cache tier, "
                f"got {served['replay_tier']!r}",
            )
        )

    burst = asyncio.run(_drive_backpressure(_burst_problems(problem)))
    expected_rejected = list(range(_QUEUE_LIMIT, _BURST))
    if sorted(burst["rejected"]) != expected_rejected:
        out.append(
            _mismatch(
                name,
                scenario,
                CODE_SERVICE_BACKPRESSURE,
                f"queue_limit={_QUEUE_LIMIT} burst of {_BURST} should reject "
                f"exactly positions {expected_rejected}, got "
                f"{sorted(burst['rejected'])}",
                rejected=sorted(burst["rejected"]),
            )
        )
    bstats = burst["stats"]
    accounted = (
        bstats["scheduled"]
        + bstats["coalesced"]
        + bstats["rejected_429"]
        + bstats["rejected_503"]
        + bstats["errors"]
    )
    if accounted != bstats["requests"]:
        out.append(
            _mismatch(
                name,
                scenario,
                CODE_SERVICE_ACCOUNTING,
                f"{bstats['requests']} requests but only {accounted} accounted "
                f"for across scheduled/coalesced/rejected/errors",
                stats={k: v for k, v in bstats.items() if isinstance(v, int)},
            )
        )
    return out
