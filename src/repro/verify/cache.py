"""``cache-vs-fresh`` differential check (schedule-cache oracles).

One registered differential check over
:class:`repro.cache.store.ScheduleCache`, exercising every tier of the
cache against an uncached run of the same scheduler on each fuzzed
scenario:

- **miss + exact hit** — the first (miss) answer and the second (exact
  hit) answer must both be *bit-identical* to a fresh ``rle`` run
  (``cache-exact-divergence``);
- **fingerprint invariance** — a congruent copy (random rotation +
  translation + relabeling drawn from the scenario seed) must map to
  the same :func:`~repro.cache.fingerprint.topology_fingerprint`
  (``cache-fingerprint-variance``);
- **canonical / warm soundness** — answers served from the fuzzy tiers
  must pass the independent Corollary 3.1 feasibility check on the
  *requested* problem (``cache-warm-infeasible``) and preserve rate
  quality: a canonical remap carries the cached rate exactly, and a
  warm repair never drops below the cache's ``quality_bound`` fraction
  of the cached reference rate (``cache-warm-quality-divergence``);
- **persistence** — a write/reopen round trip through a temporary
  directory must replay the stored schedule bit-for-bit
  (``cache-store-divergence``).

The small helper functions are module-level on purpose: the
fault-injection tests monkeypatch them to prove each reason code
actually fires on a corrupted cache.
"""

from __future__ import annotations

import tempfile
from typing import List, Tuple

import numpy as np

from repro.cache.fingerprint import topology_fingerprint
from repro.cache.store import ScheduleCache
from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.core.schedule import Schedule
from repro.network.links import LinkSet
from repro.utils.rng import stable_seed
from repro.verify.differential import _mismatch, register_differential
from repro.verify.fuzz import Scenario
from repro.verify.report import Mismatch

#: Reason codes emitted by the check below.
CODE_CACHE_EXACT = "cache-exact-divergence"
CODE_CACHE_FINGERPRINT = "cache-fingerprint-variance"
CODE_CACHE_INFEASIBLE = "cache-warm-infeasible"
CODE_CACHE_QUALITY = "cache-warm-quality-divergence"
CODE_CACHE_STORE = "cache-store-divergence"

#: Cap on the instance slice the check schedules (speed, not scale).
_MAX_LINKS = 14

_RATE_TOL = 1e-9


def _cache_problem(problem: FadingRLS) -> FadingRLS:
    """The (possibly truncated) instance the check runs on."""
    if problem.n_links <= _MAX_LINKS:
        return problem
    return problem.restrict(np.arange(_MAX_LINKS))


def _rebuilt(problem: FadingRLS, senders, receivers, rates) -> FadingRLS:
    return FadingRLS(
        links=LinkSet(senders=senders, receivers=receivers, rates=rates),
        alpha=problem.alpha,
        gamma_th=problem.gamma_th,
        eps=problem.eps,
        noise=problem.noise,
        power=problem.power,
    )


def _congruent_copy(problem: FadingRLS, rng: np.random.Generator) -> FadingRLS:
    """A rotated + translated + relabeled copy of ``problem``."""
    theta = rng.uniform(0.0, 2.0 * np.pi)
    rot = np.array(
        [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
    )
    shift = rng.uniform(-100.0, 100.0, size=2)
    perm = rng.permutation(problem.n_links)
    senders = (np.asarray(problem.links.senders) @ rot.T + shift)[perm]
    receivers = (np.asarray(problem.links.receivers) @ rot.T + shift)[perm]
    return _rebuilt(problem, senders, receivers, np.asarray(problem.links.rates)[perm])


def _jittered_copy(problem: FadingRLS, rng: np.random.Generator) -> FadingRLS:
    """A nearby copy: endpoints moved by ~2% of the mean link length."""
    senders = np.asarray(problem.links.senders, dtype=float)
    receivers = np.asarray(problem.links.receivers, dtype=float)
    scale = 0.02 * float(np.linalg.norm(receivers - senders, axis=1).mean())
    return _rebuilt(
        problem,
        senders + rng.normal(scale=scale, size=senders.shape),
        receivers + rng.normal(scale=scale, size=receivers.shape),
        np.asarray(problem.links.rates),
    )


def _fresh_schedule(problem: FadingRLS) -> Schedule:
    """The uncached reference run (monkeypatch seam)."""
    return rle_schedule(problem)


def _cache_serve(cache: ScheduleCache, problem: FadingRLS) -> Schedule:
    """One request through the cache (monkeypatch seam)."""
    return cache.schedule(problem, "rle")


def _persisted_replay(problem: FadingRLS) -> Tuple[Schedule, Schedule]:
    """Write-then-reopen round trip; returns (stored, replayed)."""
    with tempfile.TemporaryDirectory(prefix="repro-cache-diff-") as tmp:
        writer = ScheduleCache(capacity=4, warm_start=False, directory=tmp)
        stored = writer.schedule(problem, "rle")
        writer.flush()
        reader = ScheduleCache(capacity=4, warm_start=False, directory=tmp)
        replayed = reader.schedule(problem, "rle")
    return stored, replayed


def _rate(problem: FadingRLS, schedule: Schedule) -> float:
    return float(np.asarray(problem.links.rates, dtype=float)[schedule.active].sum())


@register_differential("cache-vs-fresh")
def check_cache_vs_fresh(scenario: Scenario) -> List[Mismatch]:
    """Every cache tier against an uncached run of the same scheduler."""
    name = "cache-vs-fresh"
    p = _cache_problem(scenario.problem)
    rng = np.random.default_rng(stable_seed("cache-vs-fresh", scenario.seed))
    out: List[Mismatch] = []

    fresh = _fresh_schedule(p)
    reference_rate = _rate(p, fresh)
    cache = ScheduleCache(capacity=8)
    for label in ("miss", "exact-hit"):
        served = _cache_serve(cache, p)
        if not np.array_equal(np.asarray(served.active), np.asarray(fresh.active)):
            out.append(
                _mismatch(
                    name,
                    scenario,
                    CODE_CACHE_EXACT,
                    f"{label} answer differs from the uncached schedule",
                    tier=label,
                    cached=[int(x) for x in served.active],
                    fresh=[int(x) for x in fresh.active],
                )
            )

    congruent = _congruent_copy(p, rng)
    if topology_fingerprint(p) != topology_fingerprint(congruent):
        out.append(
            _mismatch(
                name,
                scenario,
                CODE_CACHE_FINGERPRINT,
                "topology fingerprint changed under rotation + translation "
                "+ relabeling",
                n_links=p.n_links,
            )
        )
    else:
        for probe, kind in ((congruent, "canonical"), (_jittered_copy(p, rng), "warm")):
            served = _cache_serve(cache, probe)
            if not probe.is_feasible(served.active):
                out.append(
                    _mismatch(
                        name,
                        scenario,
                        CODE_CACHE_INFEASIBLE,
                        f"{kind}-tier probe returned an infeasible schedule",
                        tier=kind,
                        active=[int(x) for x in served.active],
                    )
                )
                continue
            tier = served.diagnostics.get("cache")
            if tier is None:
                continue  # a miss: the fresh answer needs no quality check
            rate = _rate(probe, served)
            if tier == "canonical" and abs(rate - reference_rate) > _RATE_TOL:
                out.append(
                    _mismatch(
                        name,
                        scenario,
                        CODE_CACHE_QUALITY,
                        f"canonical remap changed the total rate: "
                        f"{rate} != {reference_rate}",
                        tier=tier,
                        rate=rate,
                        reference_rate=reference_rate,
                    )
                )
            elif tier == "warm" and rate < cache.quality_bound * reference_rate - _RATE_TOL:
                out.append(
                    _mismatch(
                        name,
                        scenario,
                        CODE_CACHE_QUALITY,
                        f"warm repair fell below the quality bound: "
                        f"{rate} < {cache.quality_bound} * {reference_rate}",
                        tier=tier,
                        rate=rate,
                        reference_rate=reference_rate,
                        quality_bound=cache.quality_bound,
                    )
                )

    stored, replayed = _persisted_replay(p)
    if not np.array_equal(np.asarray(stored.active), np.asarray(replayed.active)):
        out.append(
            _mismatch(
                name,
                scenario,
                CODE_CACHE_STORE,
                "persisted entry replayed a different schedule after reopen",
                stored=[int(x) for x in stored.active],
                replayed=[int(x) for x in replayed.active],
            )
        )
    return out
