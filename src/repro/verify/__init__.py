"""Differential & metamorphic verification subsystem.

The library ships many redundant computation paths (analytic vs
Monte-Carlo, exact vs ILP, serial vs parallel, cached vs recomputed);
this package turns that redundancy into an always-on oracle.  See
``docs/VERIFICATION.md`` for the oracle matrix and reason-code
catalogue.

Entry points::

    from repro.verify import run_verification
    report = run_verification(budget=200, seed=0)
    assert report.passed, report.summary()

or from the shell: ``python -m repro verify --budget 200``.
"""

from repro.verify.differential import (
    DIFFERENTIAL_CHECKS,
    register_differential,
)
from repro.verify.fuzz import (
    FAMILIES,
    Scenario,
    collinear_gadget,
    degenerate_ring,
    dense_cluster,
    fuzz_scenarios,
    make_scenario,
    near_duplicate_receivers,
    witness_set,
)
from repro.verify.harness import (
    all_checks,
    resolve_checks,
    run_verification,
    verify_scenario,
)
from repro.verify.metamorphic import (
    METAMORPHIC_RELATIONS,
    register_relation,
)
from repro.verify.report import (
    CheckOutcome,
    Mismatch,
    VerificationReport,
)

__all__ = [
    "DIFFERENTIAL_CHECKS",
    "METAMORPHIC_RELATIONS",
    "FAMILIES",
    "Scenario",
    "CheckOutcome",
    "Mismatch",
    "VerificationReport",
    "all_checks",
    "collinear_gadget",
    "degenerate_ring",
    "dense_cluster",
    "fuzz_scenarios",
    "make_scenario",
    "near_duplicate_receivers",
    "register_differential",
    "register_relation",
    "resolve_checks",
    "run_verification",
    "verify_scenario",
    "witness_set",
]
