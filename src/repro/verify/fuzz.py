"""Adversarial scenario generation for the verification harness.

``paper_topology`` draws benign instances: senders spread over a
500x500 region, lengths in a narrow band.  The oracle wants the
opposite — geometry that stresses tie-breaking, cache coherence and
floating-point boundaries:

- **near-duplicate receivers** — link pairs whose receivers almost
  coincide, so cross factors approach the own-signal regime and
  ``F[i, j]`` saturates near ``ln(1 + gamma_th)``;
- **collinear gadgets** — the Thm 3.2 knapsack-reduction shape: all
  senders on a line with geometrically spread lengths, where optimal
  subset selection involves genuine trade-offs;
- **dense clusters** — every sender inside a box comparable to one
  link length, the maximal-interference regime where most subsets are
  infeasible;
- **degenerate rings** — receivers packed at the centre of a sender
  ring so ``d_ij ≈ d_jj`` for *every* pair and all interference factors
  nearly tie.

:func:`fuzz_scenarios` streams :class:`Scenario` instances from these
families with channel parameters swept over
``alpha x gamma_th x eps x n``, deterministically derived from a root
seed via :func:`~repro.utils.rng.stable_seed` — the same budget and
seed always produce the same scenario sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator

import numpy as np

from repro.core.problem import FadingRLS
from repro.network.links import LinkSet
from repro.network.topology import paper_topology
from repro.utils.rng import as_rng, stable_seed

#: Scenario family names, in generation rotation order.
FAMILIES = (
    "paper",
    "near-duplicate",
    "collinear-gadget",
    "dense-cluster",
    "degenerate-ring",
)

_ALPHAS = (2.6, 3.0, 4.0)
_GAMMAS = (0.5, 1.0, 2.0)
_EPSILONS = (0.01, 0.05, 0.2)
_SIZES = (8, 12, 16, 24)


@dataclass(frozen=True)
class Scenario:
    """One fuzzed problem instance plus its provenance.

    ``name`` is unique within a run and encodes family, size and index;
    ``seed`` is the stable seed all scenario-local randomness (trial
    draws, perturbation choices) must derive from so every check is
    reproducible in isolation.
    """

    name: str
    family: str
    problem: FadingRLS
    seed: int
    metadata: Dict[str, Any] = field(default_factory=dict)


def near_duplicate_receivers(
    n_links: int,
    *,
    separation: float = 1e-6,
    region_side: float = 200.0,
    seed: int = 0,
) -> LinkSet:
    """Link pairs whose receivers nearly coincide.

    Links ``2k`` and ``2k + 1`` share a receiver location up to
    ``separation`` — the cross-interference factor within a pair then
    approaches ``ln(1 + gamma_th)``, the own-signal saturation value,
    exercising the budget boundary and near-tie ordering.
    """
    if n_links < 2:
        raise ValueError("need at least 2 links for receiver pairs")
    rng = as_rng(seed)
    base = paper_topology(
        n_links, region_side=region_side, min_length=5.0, max_length=20.0, seed=rng
    )
    receivers = base.receivers.copy()
    for k in range(n_links // 2):
        jitter = rng.uniform(-separation, separation, size=2)
        receivers[2 * k + 1] = receivers[2 * k] + jitter
    return LinkSet(senders=base.senders, receivers=receivers, rates=base.rates)


def collinear_gadget(
    n_links: int,
    *,
    hop: float = 30.0,
    base_length: float = 4.0,
    growth: float = 2.0,
) -> LinkSet:
    """Thm 3.2's knapsack-gadget shape: collinear, geometric lengths.

    Senders sit on a line at ``hop`` spacing; link ``i`` has length
    ``base_length * growth^(i mod 4)``, so selecting a maximum-rate
    feasible subset trades short quiet links against long loud ones —
    the regime where exact solvers and heuristics genuinely disagree
    unless the feasibility predicate is exactly right.  Fully
    deterministic.
    """
    if n_links < 0:
        raise ValueError("n_links must be >= 0")
    senders = np.zeros((n_links, 2), dtype=float)
    senders[:, 0] = np.arange(n_links, dtype=float) * hop
    lengths = base_length * growth ** (np.arange(n_links, dtype=float) % 4)
    receivers = senders.copy()
    receivers[:, 0] += lengths
    return LinkSet(
        senders=senders, receivers=receivers, rates=np.ones(n_links, dtype=float)
    )


def dense_cluster(
    n_links: int,
    *,
    box_side: float = 30.0,
    min_length: float = 5.0,
    max_length: float = 20.0,
    seed: int = 0,
) -> LinkSet:
    """Every sender inside a box comparable to a single link length.

    The maximal-interference regime: most subsets are infeasible, so
    feasibility checks run right at the budget boundary and schedulers
    exercise their earliest rejection paths.
    """
    return paper_topology(
        n_links,
        region_side=box_side,
        min_length=min_length,
        max_length=max_length,
        seed=seed,
    )


def degenerate_ring(
    n_links: int,
    *,
    radius: float = 50.0,
    center_jitter: float = 0.5,
    seed: int = 0,
) -> LinkSet:
    """Senders on a ring, receivers jittered around its centre.

    Then ``d_ij ≈ d_jj ≈ radius`` for *every* sender/receiver pair:
    all interference factors nearly tie at ``ln(1 + gamma_th)`` and
    every ordering decision rides on floating-point noise — the
    degenerate ``d_ij ≈ d_jj`` case the oracle must survive.
    """
    if n_links < 1:
        raise ValueError("n_links must be >= 1")
    rng = as_rng(seed)
    theta = 2.0 * np.pi * np.arange(n_links, dtype=float) / n_links
    senders = radius * np.column_stack([np.cos(theta), np.sin(theta)])
    receivers = rng.uniform(-center_jitter, center_jitter, size=(n_links, 2))
    return LinkSet(
        senders=senders, receivers=receivers, rates=np.ones(n_links, dtype=float)
    )


def _build_links(family: str, n: int, seed: int) -> LinkSet:
    if family == "paper":
        return paper_topology(n, seed=seed)
    if family == "near-duplicate":
        return near_duplicate_receivers(max(n, 2), seed=seed)
    if family == "collinear-gadget":
        return collinear_gadget(n)
    if family == "dense-cluster":
        return dense_cluster(n, seed=seed)
    if family == "degenerate-ring":
        return degenerate_ring(n, seed=seed)
    raise ValueError(f"unknown scenario family {family!r}; choose from {FAMILIES}")


def make_scenario(
    family: str,
    index: int,
    *,
    root_seed: int = 0,
    n_links: int | None = None,
    alpha: float | None = None,
    gamma_th: float | None = None,
    eps: float | None = None,
) -> Scenario:
    """One deterministic scenario of a family.

    Parameters left ``None`` are drawn from the sweep grids by index,
    so consecutive indices rotate through sizes and channel parameters;
    explicit values pin them (used by tests to reproduce one cell).
    """
    n = _SIZES[index % len(_SIZES)] if n_links is None else int(n_links)
    a = _ALPHAS[index % len(_ALPHAS)] if alpha is None else float(alpha)
    g = _GAMMAS[(index // 2) % len(_GAMMAS)] if gamma_th is None else float(gamma_th)
    e = _EPSILONS[(index // 3) % len(_EPSILONS)] if eps is None else float(eps)
    seed = stable_seed("verify-scenario", family, index, root=root_seed)
    links = _build_links(family, n, seed)
    problem = FadingRLS(links=links, alpha=a, gamma_th=g, eps=e)
    return Scenario(
        name=f"{family}/n={len(links)}/i={index}",
        family=family,
        problem=problem,
        seed=seed,
        metadata={"alpha": a, "gamma_th": g, "eps": e, "index": index},
    )


def witness_set(problem: FadingRLS, *, cap: int | None = None) -> np.ndarray:
    """A deterministic feasible active set for oracle probes.

    Shortest-first greedy under :meth:`FadingRLS.is_feasible` — feasible
    by construction, scheduler-independent (the oracles must not trust
    the algorithms they cross-check), and a pure function of the
    instance.  ``cap`` optionally bounds the set size to keep
    downstream Monte-Carlo probes cheap.
    """
    order = np.argsort(problem.links.lengths, kind="stable")
    order = order[problem.serviceable()[order]]
    chosen: list[int] = []
    for i in order:
        if cap is not None and len(chosen) >= cap:
            break
        candidate = np.array(chosen + [int(i)], dtype=np.int64)
        if problem.is_feasible(candidate):
            chosen.append(int(i))
    return np.array(chosen, dtype=np.int64)


def fuzz_scenarios(
    n_scenarios: int,
    *,
    seed: int = 0,
    families: tuple = FAMILIES,
) -> Iterator[Scenario]:
    """Stream ``n_scenarios`` deterministic adversarial scenarios.

    Families rotate round-robin; within a family the index advances, so
    the parameter grids decorrelate across the stream.  The sequence is
    a pure function of ``(n_scenarios, seed, families)``.
    """
    if n_scenarios < 0:
        raise ValueError("n_scenarios must be >= 0")
    if not families:
        raise ValueError("families must be non-empty")
    for i in range(n_scenarios):
        family = families[i % len(families)]
        yield make_scenario(family, i // len(families), root_seed=seed)
