"""Differential checks: run redundant computation paths against each other.

The library ships several pairs of independently implemented paths that
must agree exactly (or within quantified Monte-Carlo error).  Each
registered check executes one such pair on a fuzzed scenario and
reports structured :class:`~repro.verify.report.Mismatch` records:

- ``exact-vs-ilp`` — brute force, branch-and-bound and the Eq. 20-22
  MILP must find the same optimum rate, and every output must pass the
  independent feasibility certificate;
- ``analytic-vs-montecarlo`` — Thm 3.1's closed-form success
  probabilities against empirical frequencies from the streaming
  replay, with a 5-sigma binomial confidence bound;
- ``serial-vs-parallel`` — the ``n_jobs=1`` in-process path and the
  ``n_jobs=2`` process-pool path must be *bit-identical* (PR-1's
  contract);
- ``cached-vs-certificate`` — the cached interference matrix behind
  ``FadingRLS.interference_on`` against ``certify``'s from-coordinates
  recomputation, factor by factor;
- ``batched-vs-streaming`` — ``sample_fading_trials`` against the
  concatenation of ``iter_fading_trials`` chunks (the RNG stream-layout
  contract);
- ``with-params-cache-carry`` — a ``with_params`` copy that carries
  the cached ``F`` forward against a from-scratch instance with the
  same parameters;
- ``incremental-vs-scratch`` — the incremental engine's O(kN)-updated
  interference matrix against a from-scratch rebuild after a fuzzed
  delta sequence (bit-identical), plus feasibility and quality of its
  warm-start-repaired schedules;
- ``backend-vs-numpy`` — every *available* compute backend
  (:mod:`repro.backend`) against the numpy reference: bit-identical F
  matrices and Monte-Carlo success bits, identical feasibility
  verdicts, and a sharedmem fan-out whose per-unit results are
  bit-identical to the serial numpy path for ``n_jobs`` in {1, 2, 4}.

Checks are callables ``(Scenario) -> list[Mismatch]`` registered in
:data:`DIFFERENTIAL_CHECKS`; the harness composes them with the
metamorphic relations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.channel.sampling import iter_fading_trials, sample_fading_trials
from repro.core.certify import certify
from repro.core.exact import (
    branch_and_bound_schedule,
    brute_force_schedule,
    milp_schedule,
)
from repro.core.problem import FadingRLS
from repro.network.links import LinkSet
from repro.sim.montecarlo import simulate_schedule, simulate_trials
from repro.sim.parallel import parallel_map
from repro.utils.rng import stable_seed
from repro.verify.fuzz import Scenario, witness_set
from repro.verify.report import Mismatch

CheckFn = Callable[[Scenario], List[Mismatch]]

#: Reason codes emitted by the checks below.
CODE_OPTIMUM_MISMATCH = "optimum-mismatch"
CODE_INFEASIBLE_OUTPUT = "infeasible-output"
CODE_ANALYTIC_MC = "analytic-mc-divergence"
CODE_PARALLEL = "parallel-divergence"
CODE_CACHE = "cache-divergence"
CODE_FEASIBILITY = "feasibility-divergence"
CODE_STREAM = "stream-divergence"
CODE_CACHE_CARRY = "cache-carry-divergence"
CODE_INCREMENTAL_F = "incremental-f-divergence"
CODE_INCREMENTAL_INFEASIBLE = "incremental-infeasible-repair"
CODE_INCREMENTAL_QUALITY = "incremental-quality-divergence"
CODE_BACKEND_F = "backend-f-divergence"
CODE_BACKEND_VERDICT = "backend-verdict-divergence"
CODE_BACKEND_MC = "backend-mc-divergence"
CODE_BACKEND_FANOUT = "backend-fanout-divergence"

#: Exact solvers are exponential; differential scenarios restrict to
#: this many links before enumerating.
EXACT_CHECK_LINKS = 10

DIFFERENTIAL_CHECKS: Dict[str, CheckFn] = {}


def register_differential(name: str):
    """Register a differential check under ``name`` (decorator)."""

    def _register(fn: CheckFn) -> CheckFn:
        if name in DIFFERENTIAL_CHECKS and DIFFERENTIAL_CHECKS[name] is not fn:
            raise ValueError(f"differential check {name!r} is already registered")
        DIFFERENTIAL_CHECKS[name] = fn
        return fn

    return _register


def _mismatch(name: str, scenario: Scenario, code: str, message: str, **details) -> Mismatch:
    return Mismatch(
        check=name, scenario=scenario.name, code=code, message=message, details=details
    )


@register_differential("exact-vs-ilp")
def check_exact_vs_ilp(scenario: Scenario) -> List[Mismatch]:
    """Three independent exact solvers must agree on the optimum."""
    p = scenario.problem
    if p.n_links > EXACT_CHECK_LINKS:
        p = p.restrict(np.arange(EXACT_CHECK_LINKS))
    solutions = {
        "brute_force": brute_force_schedule(p),
        "branch_and_bound": branch_and_bound_schedule(p),
        "milp": milp_schedule(p),
    }
    out: List[Mismatch] = []
    rates = {name: p.scheduled_rate(s.active) for name, s in solutions.items()}
    reference = rates["brute_force"]
    for name, rate in rates.items():
        if abs(rate - reference) > 1e-6:
            out.append(
                _mismatch(
                    "exact-vs-ilp",
                    scenario,
                    CODE_OPTIMUM_MISMATCH,
                    f"{name} optimum {rate:.9f} != brute force {reference:.9f}",
                    solver=name,
                    rate=rate,
                    reference=reference,
                )
            )
        cert = certify(p, solutions[name])
        if not cert.feasible:
            out.append(
                _mismatch(
                    "exact-vs-ilp",
                    scenario,
                    CODE_INFEASIBLE_OUTPUT,
                    f"{name} output failed the independent certificate "
                    f"(worst slack {cert.worst.slack:.3e})",
                    solver=name,
                    active=[int(i) for i in solutions[name].active],
                )
            )
    return out


@register_differential("analytic-vs-montecarlo")
def check_analytic_vs_montecarlo(scenario: Scenario) -> List[Mismatch]:
    """Thm 3.1 closed form vs empirical success frequencies (5-sigma)."""
    p = scenario.problem
    n_trials = 1500
    active = np.arange(min(p.n_links, 16))
    analytic = p.success_probabilities(active)[active]
    success = simulate_trials(
        p, active, n_trials, seed=stable_seed("analytic-mc", root=scenario.seed)
    )
    empirical = success.mean(axis=0)
    # 5-sigma binomial bound plus small-count slack: false positives are
    # ~6e-7 per link, negligible over any realistic budget.
    bound = 5.0 * np.sqrt(analytic * (1.0 - analytic) / n_trials) + 3.0 / n_trials
    deviation = np.abs(empirical - analytic)
    out: List[Mismatch] = []
    for k in np.flatnonzero(deviation > bound):
        link = int(active[k])
        out.append(
            _mismatch(
                "analytic-vs-montecarlo",
                scenario,
                CODE_ANALYTIC_MC,
                f"link {link}: empirical success {empirical[k]:.4f} vs "
                f"analytic {analytic[k]:.4f} exceeds the {bound[k]:.4f} "
                f"5-sigma bound over {n_trials} trials",
                link=link,
                empirical=float(empirical[k]),
                analytic=float(analytic[k]),
                bound=float(bound[k]),
                n_trials=n_trials,
            )
        )
    return out


@dataclass(frozen=True)
class _SimProbe:
    """Picklable Monte-Carlo probe for the serial-vs-parallel check."""

    problem: FadingRLS
    active: Tuple[int, ...]
    n_trials: int
    seed: int


def _run_probe(probe: _SimProbe) -> Tuple[float, float, np.ndarray]:
    """Worker function (module-level so it crosses process boundaries)."""
    result = simulate_schedule(
        probe.problem,
        np.array(probe.active, dtype=np.int64),
        n_trials=probe.n_trials,
        seed=probe.seed,
    )
    return result.mean_failed, result.mean_throughput, result.per_link_success


@register_differential("serial-vs-parallel")
def check_serial_vs_parallel(scenario: Scenario) -> List[Mismatch]:
    """``n_jobs=1`` and ``n_jobs=2`` must be bit-identical (PR-1 contract)."""
    p = scenario.problem
    active = witness_set(p, cap=12)
    if active.size == 0:
        return []
    probes = [
        _SimProbe(
            problem=p,
            active=tuple(int(i) for i in active),
            n_trials=64,
            seed=stable_seed("probe", rep, root=scenario.seed),
        )
        for rep in range(2)
    ]
    serial = parallel_map(_run_probe, probes, n_jobs=1)
    parallel = parallel_map(_run_probe, probes, n_jobs=2)
    out: List[Mismatch] = []
    for rep, ((s_fail, s_tput, s_link), (p_fail, p_tput, p_link)) in enumerate(
        zip(serial, parallel)
    ):
        if (
            s_fail != p_fail
            or s_tput != p_tput
            or not np.array_equal(s_link, p_link)
        ):
            out.append(
                _mismatch(
                    "serial-vs-parallel",
                    scenario,
                    CODE_PARALLEL,
                    f"probe {rep}: n_jobs=2 diverged from the serial path "
                    f"(failed {p_fail} vs {s_fail}, "
                    f"throughput {p_tput} vs {s_tput})",
                    rep=rep,
                    serial_failed=s_fail,
                    parallel_failed=p_fail,
                )
            )
    return out


@register_differential("cached-vs-certificate")
def check_cached_vs_certificate(scenario: Scenario) -> List[Mismatch]:
    """Cached-F interference sums vs the certificate's recomputation."""
    p = scenario.problem
    feasible = witness_set(p)
    probes = [feasible]
    outsiders = np.setdiff1d(np.arange(p.n_links), feasible)
    if outsiders.size:
        # A deliberately overloaded set exercises the violation paths.
        probes.append(np.sort(np.append(feasible, outsiders[: outsiders.size // 2 + 1])))
    out: List[Mismatch] = []
    for active in probes:
        if active.size == 0:
            continue
        cert = certify(p, active)
        cached = p.interference_on(active)
        for rb in cert.receivers:
            if not np.isclose(
                rb.total_interference, cached[rb.link], rtol=1e-9, atol=1e-12
            ):
                out.append(
                    _mismatch(
                        "cached-vs-certificate",
                        scenario,
                        CODE_CACHE,
                        f"receiver {rb.link}: certificate recomputed "
                        f"{rb.total_interference:.12f} but the cached matrix "
                        f"gives {cached[rb.link]:.12f}",
                        link=rb.link,
                        recomputed=rb.total_interference,
                        cached=float(cached[rb.link]),
                        active=[int(i) for i in active],
                    )
                )
        flag = p.is_feasible(active)
        boundary = cert.worst is not None and abs(cert.worst.slack) <= 1e-9
        if cert.feasible != flag and not boundary:
            out.append(
                _mismatch(
                    "cached-vs-certificate",
                    scenario,
                    CODE_FEASIBILITY,
                    f"certificate says feasible={cert.feasible} but "
                    f"is_feasible says {flag}",
                    certificate=cert.feasible,
                    cached=flag,
                    active=[int(i) for i in active],
                )
            )
    return out


@register_differential("batched-vs-streaming")
def check_batched_vs_streaming(scenario: Scenario) -> List[Mismatch]:
    """Chunked streaming must reproduce the one-shot draw bit-for-bit."""
    p = scenario.problem
    active = np.arange(min(p.n_links, 12))
    n_trials, chunk = 40, 7
    seed = stable_seed("stream", root=scenario.seed)
    batched = sample_fading_trials(
        p.distances(), active, p.alpha, n_trials, power=p.tx_powers(), seed=seed
    )
    streamed = np.concatenate(
        list(
            iter_fading_trials(
                p.distances(),
                active,
                p.alpha,
                n_trials,
                power=p.tx_powers(),
                seed=seed,
                chunk_trials=chunk,
            )
        )
    )
    if not np.array_equal(batched, streamed):
        delta = float(np.abs(batched - streamed).max())
        return [
            _mismatch(
                "batched-vs-streaming",
                scenario,
                CODE_STREAM,
                f"streamed chunks (chunk_trials={chunk}) are not bit-identical "
                f"to the batched draw (max |delta| = {delta:.3e})",
                chunk_trials=chunk,
                n_trials=n_trials,
                max_abs_delta=delta,
            )
        ]
    return []


def _fuzz_delta(links, rng: np.random.Generator) -> "LinkDelta":
    """One random churn step: rigid moves, maybe a removal/insertion.

    Moves translate whole links rigidly so lengths stay positive on
    arbitrary (including degenerate) fuzz geometry.
    """
    from repro.network.delta import LinkDelta
    from repro.network.links import LinkSet

    n = len(links)
    k = max(1, n // 4)
    moves = np.sort(rng.choice(n, size=min(k, n), replace=False))
    offsets = rng.uniform(-5.0, 5.0, size=(moves.size, 2))
    removes = None
    if n > 4 and rng.random() < 0.5:
        candidates = np.setdiff1d(np.arange(n), moves)
        if candidates.size:
            removes = candidates[[int(rng.integers(candidates.size))]]
    inserts = None
    if rng.random() < 0.5:
        sender = rng.uniform(0.0, 200.0, size=(1, 2))
        theta = rng.uniform(0.0, 2.0 * np.pi)
        length = rng.uniform(5.0, 20.0)
        receiver = sender + length * np.array([[np.cos(theta), np.sin(theta)]])
        inserts = LinkSet(senders=sender, receivers=receiver, rates=np.ones(1))
    return LinkDelta(
        moves=moves,
        new_senders=links.senders[moves] + offsets,
        new_receivers=links.receivers[moves] + offsets,
        removes=removes,
        inserts=inserts,
    )


@register_differential("incremental-vs-scratch")
def check_incremental_vs_scratch(scenario: Scenario) -> List[Mismatch]:
    """Incremental O(kN) updates vs from-scratch rebuilds after churn.

    Drives an :class:`~repro.core.incremental.IncrementalScheduler`
    through a fuzzed delta sequence derived from the scenario seed and,
    after every step, asserts (1) its maintained interference matrix is
    *bit-identical* to a fresh :class:`FadingRLS` built on the replayed
    link set, (2) the warm-start-repaired schedule passes the fresh
    instance's feasibility check, and (3) the repaired rate does not
    fall below ``quality_bound`` of a from-scratch run of the same
    scheduler on the same geometry.
    """
    from repro.core.incremental import IncrementalScheduler
    from repro.core.rle import rle_schedule
    from repro.network.delta import apply_delta

    p = scenario.problem
    quality_bound = 0.8
    engine = IncrementalScheduler(
        p.links,
        scheduler=rle_schedule,
        alpha=p.alpha,
        gamma_th=p.gamma_th,
        eps=p.eps,
        noise=p.noise,
        quality_bound=quality_bound,
    )
    engine.schedule()
    rng = np.random.default_rng(stable_seed("incremental", root=scenario.seed))
    links = p.links
    out: List[Mismatch] = []
    for step in range(3):
        delta = _fuzz_delta(links, rng)
        links = apply_delta(links, delta)
        schedule = engine.step(delta)
        fresh = FadingRLS(
            links=links, alpha=p.alpha, gamma_th=p.gamma_th, eps=p.eps, noise=p.noise
        )
        if not np.array_equal(
            engine.problem.interference_matrix(), fresh.interference_matrix()
        ):
            delta_max = float(
                np.abs(
                    engine.problem.interference_matrix() - fresh.interference_matrix()
                ).max()
            )
            out.append(
                _mismatch(
                    "incremental-vs-scratch",
                    scenario,
                    CODE_INCREMENTAL_F,
                    f"step {step}: incrementally maintained F is not "
                    f"bit-identical to a fresh rebuild "
                    f"(max |delta| = {delta_max:.3e})",
                    step=step,
                    max_abs_delta=delta_max,
                )
            )
        if not fresh.is_feasible(schedule.active):
            out.append(
                _mismatch(
                    "incremental-vs-scratch",
                    scenario,
                    CODE_INCREMENTAL_INFEASIBLE,
                    f"step {step}: repaired schedule fails the fresh "
                    f"instance's feasibility check",
                    step=step,
                    active=[int(i) for i in schedule.active],
                )
            )
        scratch_rate = fresh.scheduled_rate(rle_schedule(fresh).active)
        repaired_rate = fresh.scheduled_rate(schedule.active)
        if repaired_rate < quality_bound * scratch_rate - 1e-9:
            out.append(
                _mismatch(
                    "incremental-vs-scratch",
                    scenario,
                    CODE_INCREMENTAL_QUALITY,
                    f"step {step}: repaired rate {repaired_rate:.6f} fell "
                    f"below {quality_bound} x from-scratch rate "
                    f"{scratch_rate:.6f}",
                    step=step,
                    repaired_rate=repaired_rate,
                    scratch_rate=scratch_rate,
                    quality_bound=quality_bound,
                )
            )
    return out


@register_differential("with-params-cache-carry")
def check_with_params_cache_carry(scenario: Scenario) -> List[Mismatch]:
    """A cache-carrying ``with_params`` copy vs a from-scratch instance."""
    p = scenario.problem
    p.interference_matrix()  # ensure there is a cache to carry
    new_eps = p.eps + (1.0 - p.eps) / 3.0
    carried = p.with_params(eps=new_eps)
    fresh = FadingRLS(
        links=p.links,
        alpha=p.alpha,
        gamma_th=p.gamma_th,
        eps=new_eps,
        noise=p.noise,
        power=p.power,
        powers=p.powers,
    )
    out: List[Mismatch] = []
    if not np.allclose(
        carried.interference_matrix(), fresh.interference_matrix(), rtol=1e-12, atol=0.0
    ):
        delta = float(
            np.abs(carried.interference_matrix() - fresh.interference_matrix()).max()
        )
        out.append(
            _mismatch(
                "with-params-cache-carry",
                scenario,
                CODE_CACHE_CARRY,
                f"carried F diverges from a fresh recomputation "
                f"(max |delta| = {delta:.3e})",
                max_abs_delta=delta,
                new_eps=new_eps,
            )
        )
    active = witness_set(fresh)
    if carried.is_feasible(active) != fresh.is_feasible(active):
        out.append(
            _mismatch(
                "with-params-cache-carry",
                scenario,
                CODE_CACHE_CARRY,
                "witness-set feasibility differs between the cache-carrying "
                "copy and a fresh instance",
                new_eps=new_eps,
                active=[int(i) for i in active],
            )
        )
    return out


@dataclass(frozen=True)
class _FixedLinks:
    """Picklable workload returning a fixed link set (backend fan-out)."""

    links: "LinkSet"

    def __call__(self, seed: int) -> "LinkSet":
        return self.links


def _fresh_problem(p: FadingRLS) -> FadingRLS:
    """A cache-free copy of ``p`` (forces a from-scratch F build)."""
    return FadingRLS(
        links=p.links,
        alpha=p.alpha,
        gamma_th=p.gamma_th,
        eps=p.eps,
        noise=p.noise,
        power=p.power,
        powers=p.powers,
    )


@register_differential("backend-vs-numpy")
def check_backend_vs_numpy(scenario: Scenario) -> List[Mismatch]:
    """Every available compute backend against the numpy reference.

    Three contracts, per backend that resolves without fallback:

    1. the F matrix built under the backend is *bit-identical* to the
       numpy reference (the kernels share one elementwise op order);
    2. feasibility verdicts agree on a feasible witness set and on a
       deliberately overloaded set (verdict equality is the contract —
       the O(K^2) gathered reduction may differ from the reference
       matvec in the last ulp, the boolean answer may not);
    3. Monte-Carlo success bits are identical (one RNG stream layout,
       one reduction recipe).

    A fourth contract covers the sharedmem zero-copy fan-out: the same
    unit grid executed with ``backend='sharedmem'`` must return results
    bit-identical to the serial numpy path for ``n_jobs`` in {1, 2, 4}.
    """
    from repro.backend import base as backend_base
    from repro.core.rle import rle_schedule
    from repro.sim.parallel import build_units, execute_units

    p = scenario.problem
    out: List[Mismatch] = []

    witness = witness_set(p)
    probes = [witness, np.arange(p.n_links)]
    mc_seed = stable_seed("backend-mc", root=scenario.seed)
    with backend_base.use("numpy"):
        ref = _fresh_problem(p)
        ref_f = ref.interference_matrix()
        ref_verdicts = [ref.is_feasible(a) for a in probes]
        ref_success = (
            simulate_trials(ref, witness, 48, seed=mc_seed) if witness.size else None
        )

    for name in backend_base.BACKEND_NAMES:
        if name == "numpy":
            continue
        _, fallback = backend_base.resolve(name)
        if fallback is not None:
            continue  # unavailable here; CI's matrix legs cover it
        fresh = _fresh_problem(p)
        with backend_base.use(name):
            f = fresh.interference_matrix()
            if not np.array_equal(f, ref_f):
                delta = float(np.abs(f - ref_f).max())
                out.append(
                    _mismatch(
                        "backend-vs-numpy",
                        scenario,
                        CODE_BACKEND_F,
                        f"backend {name!r}: F matrix is not bit-identical to "
                        f"the numpy reference (max |delta| = {delta:.3e})",
                        backend=name,
                        max_abs_delta=delta,
                    )
                )
            for k, (active, ref_verdict) in enumerate(zip(probes, ref_verdicts)):
                verdict = fresh.is_feasible(active)
                if verdict != ref_verdict:
                    out.append(
                        _mismatch(
                            "backend-vs-numpy",
                            scenario,
                            CODE_BACKEND_VERDICT,
                            f"backend {name!r}: probe {k} feasibility verdict "
                            f"{verdict} != numpy reference {ref_verdict}",
                            backend=name,
                            probe=k,
                            active=[int(i) for i in active],
                        )
                    )
            if ref_success is not None:
                success = simulate_trials(fresh, witness, 48, seed=mc_seed)
                if not np.array_equal(success, ref_success):
                    out.append(
                        _mismatch(
                            "backend-vs-numpy",
                            scenario,
                            CODE_BACKEND_MC,
                            f"backend {name!r}: Monte-Carlo success bits "
                            f"diverge from the numpy reference",
                            backend=name,
                            n_trials=48,
                        )
                    )

    def _grid(backend: str) -> List:
        units = build_units(
            {"rle": rle_schedule},
            _FixedLinks(p.links),
            n_repetitions=2,
            n_trials=32,
            alpha=p.alpha,
            gamma_th=p.gamma_th,
            eps=p.eps,
            root_seed=stable_seed("backend-fanout", root=scenario.seed),
            noise=p.noise,
            backend=backend,
        )
        return execute_units(units, n_jobs=1) if backend == "numpy" else units

    ref_results = _grid("numpy")
    for n_jobs in (1, 2, 4):
        results = execute_units(_grid("sharedmem"), n_jobs=n_jobs)
        for i, (a, b) in enumerate(zip(ref_results, results)):
            if (
                a.mean_failed != b.mean_failed
                or a.mean_throughput != b.mean_throughput
                or not np.array_equal(a.per_link_success, b.per_link_success)
            ):
                out.append(
                    _mismatch(
                        "backend-vs-numpy",
                        scenario,
                        CODE_BACKEND_FANOUT,
                        f"sharedmem fan-out (n_jobs={n_jobs}) unit {i} diverged "
                        f"from the serial numpy path (failed {b.mean_failed} vs "
                        f"{a.mean_failed})",
                        backend="sharedmem",
                        n_jobs=n_jobs,
                        unit=i,
                    )
                )
    return out
