"""Channel-law oracles: metamorphic relations and a differential check.

The pluggable channel laws (:mod:`repro.channel.laws`) come with three
paper-derived invariants and one redundant-path comparison, all run by
the harness over the fuzzer's adversarial scenarios:

- ``shadowing-zero-recovers-rayleigh`` — the Suzuki composite at
  ``sigma_db = 0`` must reproduce the Rayleigh replay **bit for bit**
  (the law delegates to the exact inline draw; any stream drift breaks
  seed-compatibility silently);
- ``nakagami-unit-closed-form`` — Nakagami ``m = 1`` *is* Rayleigh in
  distribution, so its Monte-Carlo success rates must match the
  Thm 3.1 closed form within 5-sigma Monte-Carlo bounds (the gamma
  sampler consumes the stream differently, so this is statistical, not
  bit-level);
- ``nakagami-m-monotonicity`` — for ``m >= 1`` larger ``m`` is milder
  fading, so per-link success probabilities may not *decrease* beyond
  Monte-Carlo slack as ``m`` grows;
- ``channel-vs-rayleigh`` (differential) — the default channel must be
  bit-identical to an explicit ``"rayleigh"`` spec, every registered
  law must be chunk-invariant (streamed chunks concatenate to the
  batched draw), and the deterministic law's empirical success rates
  must equal its 0/1 closed form exactly.

Reason codes are stable strings (``docs/VERIFICATION.md``).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.channel.sampling import iter_fading_trials, sample_fading_trials
from repro.sim.montecarlo import simulate_trials
from repro.utils.rng import stable_seed
from repro.verify.differential import register_differential
from repro.verify.fuzz import Scenario, witness_set
from repro.verify.metamorphic import _mismatch, register_relation
from repro.verify.report import Mismatch

#: Reason codes emitted by the channel checks.
CODE_SHADOWING_LIMIT = "shadowing-limit-divergence"
CODE_NAKAGAMI_CLOSED_FORM = "nakagami-closed-form-divergence"
CODE_NAKAGAMI_MONOTONICITY = "nakagami-m-monotonicity-violation"
CODE_CHANNEL_RAYLEIGH = "channel-rayleigh-divergence"
CODE_CHANNEL_CHUNK = "channel-chunk-divergence"
CODE_DETERMINISTIC_CLOSED_FORM = "deterministic-closed-form-divergence"

#: Monte-Carlo trials for the statistical relations — matches the
#: analytic-vs-montecarlo check's budget/bound trade-off.
_N_TRIALS = 1500

#: Nakagami shape grid for the monotonicity relation.  Restricted to
#: ``m >= 1``: milder-than-Rayleigh fading is where monotone improvement
#: is a theorem (below 1 the fading is *more* severe and the ordering
#: reverses).
_M_GRID = (2.0, 8.0)


def _witness(p) -> np.ndarray:
    """Sorted witness set: :func:`simulate_trials` returns columns in
    ascending link order (mask-based), so per-link comparisons against
    the closed form must use the same ordering."""
    return np.sort(witness_set(p, cap=12))


def _mc_success_rates(p, active, *, channel, seed) -> np.ndarray:
    """Per-link empirical success rates over the witness set."""
    success = simulate_trials(p, active, _N_TRIALS, seed=seed, channel=channel)
    return success.mean(axis=0)


def _mc_bound(p_hat: np.ndarray, n: int, sigmas: float = 5.0) -> np.ndarray:
    """A ``sigmas``-sigma binomial tolerance with a small-n floor."""
    return sigmas * np.sqrt(p_hat * (1.0 - p_hat) / n) + 3.0 / n


@register_relation("shadowing-zero-recovers-rayleigh")
def relation_shadowing_zero(scenario: Scenario) -> List[Mismatch]:
    """``shadowing:sigma_db=0`` must replay the Rayleigh bits exactly."""
    p = scenario.problem
    active = _witness(p)
    if active.size == 0:
        return []
    seed = stable_seed("shadowing-zero", root=scenario.seed)
    rayleigh = simulate_trials(p, active, 64, seed=seed)
    shadow0 = simulate_trials(p, active, 64, seed=seed, channel="shadowing:sigma_db=0")
    if not np.array_equal(rayleigh, shadow0):
        diff = int(np.count_nonzero(rayleigh != shadow0))
        return [
            _mismatch(
                "shadowing-zero-recovers-rayleigh",
                scenario,
                CODE_SHADOWING_LIMIT,
                f"sigma_db=0 shadowing diverged from Rayleigh in {diff} "
                "success cells (stream contract broken)",
                differing_cells=diff,
            )
        ]
    return []


@register_relation("nakagami-unit-closed-form")
def relation_nakagami_unit(scenario: Scenario) -> List[Mismatch]:
    """Nakagami ``m = 1`` success rates must match Thm 3.1 within MC bounds."""
    p = scenario.problem
    active = _witness(p)
    if active.size == 0:
        return []
    analytic = p.success_probabilities(active)[active]
    empirical = _mc_success_rates(
        p,
        active,
        channel="nakagami:m=1",
        seed=stable_seed("nakagami-unit", root=scenario.seed),
    )
    bound = _mc_bound(analytic, _N_TRIALS)
    bad = np.abs(empirical - analytic) > bound
    if np.any(bad):
        worst = int(np.argmax(np.abs(empirical - analytic) - bound))
        return [
            _mismatch(
                "nakagami-unit-closed-form",
                scenario,
                CODE_NAKAGAMI_CLOSED_FORM,
                f"nakagami m=1 diverged from the Rayleigh closed form on "
                f"{int(bad.sum())}/{active.size} links (worst: link "
                f"{int(active[worst])}, analytic {analytic[worst]:.4f}, "
                f"empirical {empirical[worst]:.4f})",
                n_trials=_N_TRIALS,
                links_out_of_bound=int(bad.sum()),
            )
        ]
    return []


@register_relation("nakagami-m-monotonicity")
def relation_nakagami_monotonicity(scenario: Scenario) -> List[Mismatch]:
    """For ``m >= 1``, raising ``m`` may not lower success probabilities."""
    p = scenario.problem
    active = _witness(p)
    if active.size == 0:
        return []
    out: List[Mismatch] = []
    estimates = {}
    for m in (1.0,) + _M_GRID:
        estimates[m] = _mc_success_rates(
            p,
            active,
            channel=f"nakagami:m={m:g}",
            seed=stable_seed("nakagami-mono", m, root=scenario.seed),
        )
    grid = (1.0,) + _M_GRID
    for lo, hi in zip(grid, grid[1:]):
        p_lo, p_hi = estimates[lo], estimates[hi]
        # Two independent estimates: allow 5-sigma of the *difference*.
        slack = 5.0 * np.sqrt(
            (p_lo * (1 - p_lo) + p_hi * (1 - p_hi)) / _N_TRIALS
        ) + 6.0 / _N_TRIALS
        drop = p_lo - p_hi
        bad = drop > slack
        if np.any(bad):
            worst = int(np.argmax(drop - slack))
            out.append(
                _mismatch(
                    "nakagami-m-monotonicity",
                    scenario,
                    CODE_NAKAGAMI_MONOTONICITY,
                    f"success probability dropped beyond MC slack when m "
                    f"rose {lo:g} -> {hi:g} on {int(bad.sum())}/{active.size} "
                    f"links (worst: link {int(active[worst])}, "
                    f"{p_lo[worst]:.4f} -> {p_hi[worst]:.4f})",
                    m_low=lo,
                    m_high=hi,
                    links_out_of_bound=int(bad.sum()),
                )
            )
    return out


@register_differential("channel-vs-rayleigh")
def check_channel_vs_rayleigh(scenario: Scenario) -> List[Mismatch]:
    """Default-vs-explicit Rayleigh bits, chunk invariance, deterministic form."""
    from repro.channel.laws import CHANNEL_LAWS, get_channel_law

    p = scenario.problem
    active = _witness(p)
    if active.size == 0:
        return []
    out: List[Mismatch] = []
    seed = stable_seed("channel-rayleigh", root=scenario.seed)

    # 1. channel=None and channel="rayleigh" are the same code path's bits.
    default = simulate_trials(p, active, 48, seed=seed)
    explicit = simulate_trials(p, active, 48, seed=seed, channel="rayleigh")
    if not np.array_equal(default, explicit):
        out.append(
            _mismatch(
                "channel-vs-rayleigh",
                scenario,
                CODE_CHANNEL_RAYLEIGH,
                "explicit 'rayleigh' spec diverged from the default channel",
            )
        )

    # 2. Every registered law is chunk-invariant: streamed chunks must
    # concatenate to the batched draw, bit for bit.
    d = p.distances()
    for name in sorted(CHANNEL_LAWS):
        law = get_channel_law(name)
        law_seed = stable_seed("channel-chunk", name, root=scenario.seed)
        batched = sample_fading_trials(
            d, active, p.alpha, 23, power=p.tx_powers(), seed=law_seed, law=law
        )
        streamed = np.concatenate(
            list(
                iter_fading_trials(
                    d,
                    active,
                    p.alpha,
                    23,
                    power=p.tx_powers(),
                    seed=law_seed,
                    chunk_trials=7,
                    law=law,
                )
            )
        )
        if not np.array_equal(batched, streamed):
            out.append(
                _mismatch(
                    "channel-vs-rayleigh",
                    scenario,
                    CODE_CHANNEL_CHUNK,
                    f"law {name!r} is not chunk-invariant: streamed chunks "
                    "diverged from the batched draw",
                    law=name,
                )
            )

    # 3. The deterministic law's empirical rates equal its 0/1 closed
    # form exactly (no randomness to hide behind).
    det = get_channel_law("deterministic")
    rates = simulate_trials(
        p, active, 4, seed=seed, channel="deterministic"
    ).mean(axis=0)
    closed = det.success_probability(p, active)
    if not np.array_equal(rates, closed):
        out.append(
            _mismatch(
                "channel-vs-rayleigh",
                scenario,
                CODE_DETERMINISTIC_CLOSED_FORM,
                "deterministic-law replay disagreed with its closed form",
                empirical=[float(x) for x in rates],
                closed_form=[float(x) for x in closed],
            )
        )
    return out
