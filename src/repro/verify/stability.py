"""Queue-stability metamorphic relations (workload subsystem oracles).

Two relations over :func:`repro.workload.queues.simulate_workload`,
registered into the same :data:`~repro.verify.metamorphic.METAMORPHIC_RELATIONS`
registry the harness merges into ``make verify-fuzz``:

- ``lambda-drain`` — *vanishing load empties queues*: any working
  scheduler serves at least one backlogged link per slot, so at an
  offered load far below one packet per slot the system must be deep
  inside its stability region and end the horizon (essentially) empty.
  A lingering backlog at near-zero load means service is broken — a
  scheduler returning empty sets, fading successes being ignored, or
  queues failing to drain on success.
- ``service-capacity`` — *accounting sanity per slot*: deliveries in a
  slot can never exceed that slot's transmission attempts
  (``served_per_slot <= scheduled_per_slot``), cumulative service can
  never exceed cumulative arrivals, and the conservation identity
  ``arrived = served + dropped + final backlog`` must hold exactly.

Both run the simulator on a small restriction of the fuzzed scenario
instance (the relations probe queue dynamics, not scale) with seeds
derived from the scenario's own seed, so every cell is deterministic.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.problem import FadingRLS
from repro.verify.fuzz import Scenario
from repro.verify.metamorphic import _mismatch, register_relation
from repro.verify.report import Mismatch

#: Reason codes emitted by the relations below.
CODE_LAMBDA_DRAIN = "lambda-drain-violation"
CODE_SERVICE_CAPACITY = "service-capacity-violation"
CODE_CONSERVATION = "packet-conservation-violation"

#: Cap on the instance slice the relations simulate (speed, not scale).
_MAX_LINKS = 12


def _workload_problem(problem: FadingRLS) -> FadingRLS | None:
    """A small serviceable restriction of the scenario instance.

    Unserviceable links (noise alone over budget) can never drain and
    would trip the relations for reasons the workload layer does not
    own, so they are filtered out first.  Returns ``None`` when nothing
    serviceable remains.
    """
    serviceable = np.flatnonzero(problem.serviceable())
    if serviceable.size == 0:
        return None
    return problem.restrict(serviceable[:_MAX_LINKS])


@register_relation("lambda-drain")
def relation_lambda_drain(scenario: Scenario) -> List[Mismatch]:
    """Near-zero offered load must leave queues (essentially) empty."""
    from repro.workload.generators import PoissonArrivals
    from repro.workload.queues import simulate_workload

    problem = _workload_problem(scenario.problem)
    if problem is None:
        return []
    result = simulate_workload(
        problem,
        PoissonArrivals(rate=0.02),
        "rle",
        n_slots=60,
        seed=scenario.seed,
        policy="backlogged",
    )
    # ~0.02 * 60 * n packets offered in total against a scheduler that
    # serves >= 1 backlogged link per slot: more than a couple queued at
    # the horizon means service is broken, not that the load was high.
    if result.final_backlog > 2:
        return [
            _mismatch(
                "lambda-drain",
                scenario,
                CODE_LAMBDA_DRAIN,
                f"{result.final_backlog} packets still queued after "
                f"{result.n_slots} slots at near-zero load "
                f"(lambda = 0.02/link/slot, {result.arrived} arrived)",
                final_backlog=result.final_backlog,
                arrived=result.arrived,
                served=result.served,
            )
        ]
    return []


@register_relation("service-capacity")
def relation_service_capacity(scenario: Scenario) -> List[Mismatch]:
    """Per-slot service accounting must be internally consistent."""
    from repro.workload.generators import OnOffArrivals
    from repro.workload.queues import simulate_workload

    problem = _workload_problem(scenario.problem)
    if problem is None:
        return []
    result = simulate_workload(
        problem,
        OnOffArrivals(rate_on=0.6, p_on=0.2, p_off=0.2),
        "rle",
        n_slots=50,
        seed=scenario.seed,
        policy="backlogged",
    )
    out: List[Mismatch] = []
    excess = result.served_per_slot - result.scheduled_per_slot
    if np.any(excess > 0):
        t = int(np.argmax(excess))
        out.append(
            _mismatch(
                "service-capacity",
                scenario,
                CODE_SERVICE_CAPACITY,
                f"slot {t} delivered {int(result.served_per_slot[t])} packets "
                f"on {int(result.scheduled_per_slot[t])} transmission attempts",
                slot=t,
                served=int(result.served_per_slot[t]),
                scheduled=int(result.scheduled_per_slot[t]),
            )
        )
    served_cum = int(result.served_per_slot.sum())
    if served_cum > result.arrived:
        out.append(
            _mismatch(
                "service-capacity",
                scenario,
                CODE_SERVICE_CAPACITY,
                f"served {served_cum} packets but only {result.arrived} arrived",
                served=served_cum,
                arrived=result.arrived,
            )
        )
    residual = result.arrived - result.served - result.dropped - result.final_backlog
    if residual != 0:
        out.append(
            _mismatch(
                "service-capacity",
                scenario,
                CODE_CONSERVATION,
                f"conservation violated: arrived - served - dropped - queued "
                f"= {residual}",
                arrived=result.arrived,
                served=result.served,
                dropped=result.dropped,
                final_backlog=result.final_backlog,
            )
        )
    return out
