"""The observability master switch.

All of :mod:`repro.obs` hangs off one module-level flag.  Every
recording entry point (``span``, ``metrics.inc``, ...) checks it first
and returns immediately when observability is off, so the instrumented
call sites scattered through the hot paths cost a single attribute
lookup and a function call when disabled — the no-op-overhead guard in
``tests/test_obs_overhead.py`` pins that cost below 5% of a smoke
figure run.

The flag lives in its own tiny module so :mod:`repro.obs.trace` and
:mod:`repro.obs.metrics` can share it without importing each other.
Always read it through the module (``state.enabled``), never via
``from ... import enabled`` — a from-import would freeze the value at
import time.
"""

from __future__ import annotations

#: Master switch.  Mutate only through :func:`enable` / :func:`disable`.
enabled: bool = False


def enable() -> None:
    """Turn observability on (spans and metrics start recording)."""
    global enabled
    enabled = True


def disable() -> None:
    """Turn observability off (recording stops; buffers are kept)."""
    global enabled
    enabled = False


def is_enabled() -> bool:
    """Current state of the master switch."""
    return enabled
