"""Metrics registry: counters, gauges, histograms.

Three instrument kinds, all keyed by stable dotted names from the
catalogue in ``docs/OBSERVABILITY.md``:

- **counters** (:func:`inc`) — monotonically increasing **integer**
  totals (cells computed, trials simulated, checks run);
- **gauges** (:func:`gauge`) — last-written float values (plus an
  update count);
- **histograms** (:func:`observe`) — distributions of non-negative
  values in power-of-two buckets (integer counts per bucket, exact
  min/max).

Determinism contract
--------------------
Snapshots must be **byte-identical** for every ``n_jobs`` of the
parallel experiment engine, so every aggregation is restricted to
operations that are exact and associative:

- counter values are integers (floats are rejected — integer addition
  is associative, float addition is not);
- histograms store integer bucket counts and exact ``min``/``max``
  (no float running sum, whose value would depend on grouping);
- gauges are last-write-wins in *merge order*, which
  :mod:`repro.sim.parallel` fixes to work-unit submission order.

:func:`snapshot` returns a plain-JSON dict; :func:`snapshot_json`
canonicalises it (sorted keys, no whitespace) so equality can be
asserted on bytes.  :func:`merge` folds worker snapshots into one, and
:func:`merge_into_registry` folds a worker snapshot into this process's
live registry — both obey the same semantics, so serial execution
(every increment lands in the live registry directly) and parallel
execution (per-unit snapshots merged in submission order) produce the
same bytes.
"""

from __future__ import annotations

import json
import math
import operator
import threading
from typing import Any, Dict, Iterable, List, Optional

from repro.obs import state as _state

_lock = threading.Lock()
_counters: Dict[str, int] = {}
_gauges: Dict[str, Dict[str, Any]] = {}
_hists: Dict[str, Dict[str, Any]] = {}


def inc(name: str, value: int = 1) -> None:
    """Add ``value`` to counter ``name`` (no-op when disabled).

    ``value`` must be a non-negative integer (anything accepted by
    ``operator.index``, e.g. NumPy integers) — see the determinism
    contract in the module docstring.
    """
    if not _state.enabled:
        return
    v = operator.index(value)
    if v < 0:
        raise ValueError(f"counter increments must be >= 0, got {value!r}")
    with _lock:
        _counters[name] = _counters.get(name, 0) + v


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (last write wins; no-op when disabled)."""
    if not _state.enabled:
        return
    v = float(value)
    with _lock:
        g = _gauges.get(name)
        if g is None:
            _gauges[name] = {"value": v, "updates": 1}
        else:
            g["value"] = v
            g["updates"] += 1


def _bucket(value: float) -> str:
    """Histogram bucket key: the power-of-two exponent ``e`` with
    ``2^(e-1) < value <= 2^e`` (``"zero"`` for exactly 0)."""
    if value == 0.0:
        return "zero"
    m, e = math.frexp(value)  # value = m * 2^e, m in [0.5, 1)
    if m == 0.5:
        e -= 1
    return str(e)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` (no-op when disabled).

    Values must be non-negative (durations, counts, sizes).  Only the
    bucket counts and exact min/max are kept — no running float sum —
    so merged histograms are independent of observation grouping.
    """
    if not _state.enabled:
        return
    v = float(value)
    if not v >= 0.0:  # catches negatives and NaN
        raise ValueError(f"histogram observations must be >= 0, got {value!r}")
    key = _bucket(v)
    with _lock:
        h = _hists.get(name)
        if h is None:
            h = {"count": 0, "min": v, "max": v, "buckets": {}}
            _hists[name] = h
        h["count"] += 1
        h["min"] = min(h["min"], v)
        h["max"] = max(h["max"], v)
        h["buckets"][key] = h["buckets"].get(key, 0) + 1


def snapshot() -> Dict[str, Any]:
    """Deep-copied plain-JSON view of the registry.

    Shape (the JSONL metrics record embeds this verbatim)::

        {"counters":   {name: int},
         "gauges":     {name: {"value": float, "updates": int}},
         "histograms": {name: {"count": int, "min": float,
                               "max": float, "buckets": {exp: int}}}}
    """
    with _lock:
        return {
            "counters": dict(_counters),
            "gauges": {k: dict(v) for k, v in _gauges.items()},
            "histograms": {
                k: {
                    "count": v["count"],
                    "min": v["min"],
                    "max": v["max"],
                    "buckets": dict(v["buckets"]),
                }
                for k, v in _hists.items()
            },
        }


#: Metric-name prefixes excluded from :func:`stable_snapshot`.  The
#: resilience layer's counters (retries, timeouts, pool rebuilds —
#: see ``docs/ROBUSTNESS.md``) describe *execution accidents*, not the
#: computation: a run that hit two worker crashes recovers bit-identical
#: results but legitimately different retry counts, so byte-identity
#: assertions must compare snapshots with these names stripped.  The
#: backend layer's counters (segments shared, attaches, fallbacks — see
#: ``docs/PERFORMANCE.md``) describe the *execution plan*: the same
#: sweep attaches a different number of segments at ``n_jobs=4`` than
#: serially while producing bit-identical results.
VOLATILE_PREFIXES = ("resilience.", "backend.", "service.")


def stable_snapshot(snap: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """A snapshot with volatile (execution-dependent) metrics removed.

    Drops every instrument whose name starts with one of
    :data:`VOLATILE_PREFIXES` from all three kinds.  This is the view
    the determinism contract applies to: ``stable_snapshot`` bytes are
    identical across ``n_jobs`` values *and* across fault/retry
    histories, while the raw :func:`snapshot` additionally carries the
    volatile resilience counters.
    """
    s = snapshot() if snap is None else snap

    def keep(name: str) -> bool:
        return not any(name.startswith(p) for p in VOLATILE_PREFIXES)

    return {
        kind: {name: value for name, value in s.get(kind, {}).items() if keep(name)}
        for kind in ("counters", "gauges", "histograms")
    }


def snapshot_json(snap: Optional[Dict[str, Any]] = None) -> str:
    """Canonical JSON bytes of a snapshot (sorted keys, no whitespace).

    Two runs whose metrics agree produce *identical strings* — the
    ``n_jobs``-invariance tests compare exactly this.
    """
    return json.dumps(
        snapshot() if snap is None else snap, sort_keys=True, separators=(",", ":")
    )


def _merge_two(into: Dict[str, Any], snap: Dict[str, Any]) -> None:
    """Fold ``snap`` into ``into`` (both snapshot-shaped), in place."""
    for name, value in snap.get("counters", {}).items():
        into["counters"][name] = into["counters"].get(name, 0) + value
    for name, g in snap.get("gauges", {}).items():
        mine = into["gauges"].get(name)
        if mine is None:
            into["gauges"][name] = dict(g)
        else:
            mine["value"] = g["value"]  # last write (merge order) wins
            mine["updates"] += g["updates"]
    for name, h in snap.get("histograms", {}).items():
        mine = into["histograms"].get(name)
        if mine is None:
            into["histograms"][name] = {
                "count": h["count"],
                "min": h["min"],
                "max": h["max"],
                "buckets": dict(h["buckets"]),
            }
        else:
            mine["count"] += h["count"]
            mine["min"] = min(mine["min"], h["min"])
            mine["max"] = max(mine["max"], h["max"])
            for key, n in h["buckets"].items():
                mine["buckets"][key] = mine["buckets"].get(key, 0) + n


def merge(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold snapshots (in iteration order) into one merged snapshot.

    Counters and histogram buckets add; gauges take the last snapshot's
    value (update counts add); histogram min/max combine.  The fold is
    exact for any grouping of the same underlying events, which is what
    makes worker aggregation ``n_jobs``-invariant.
    """
    out: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    for snap in snapshots:
        _merge_two(out, snap)
    return out


def merge_into_registry(snap: Dict[str, Any]) -> None:
    """Fold one worker snapshot into this process's live registry.

    Used by :mod:`repro.sim.parallel` after each work unit returns; a
    no-op when observability is disabled.
    """
    if not _state.enabled:
        return
    with _lock:
        live = {"counters": _counters, "gauges": _gauges, "histograms": _hists}
        _merge_two(live, snap)


def format_snapshot(snap: Optional[Dict[str, Any]] = None) -> str:
    """Human-readable table of a snapshot (sorted by name)."""
    s = snapshot() if snap is None else snap
    lines: List[str] = []
    for name in sorted(s.get("counters", {})):
        lines.append(f"counter    {name:<40} {s['counters'][name]}")
    for name in sorted(s.get("gauges", {})):
        g = s["gauges"][name]
        lines.append(
            f"gauge      {name:<40} {g['value']:g} ({g['updates']} updates)"
        )
    for name in sorted(s.get("histograms", {})):
        h = s["histograms"][name]
        lines.append(
            f"histogram  {name:<40} count={h['count']} "
            f"min={h['min']:g} max={h['max']:g}"
        )
    return "\n".join(lines) if lines else "(no metrics recorded)"


def reset() -> None:
    """Clear every instrument (tests and worker initialisation)."""
    with _lock:
        _counters.clear()
        _gauges.clear()
        _hists.clear()
