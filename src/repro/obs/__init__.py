"""``repro.obs`` — zero-dependency observability.

Three pillars, one master switch (see ``docs/OBSERVABILITY.md`` for
the full instrumentation contract):

- **span tracing** (:mod:`repro.obs.trace`) — nested, named, timed
  regions exported as versioned JSONL via :mod:`repro.obs.export`;
- **metrics** (:mod:`repro.obs.metrics`) — integer counters, gauges
  and power-of-two histograms with deterministic snapshot/merge, so
  worker-process metrics aggregate to byte-identical snapshots for
  every ``n_jobs``;
- **profiling hooks** (:mod:`repro.obs.profile`) — explicit cProfile /
  tracemalloc wrappers (never switched on implicitly).

Everything is **off by default** and the disabled path is a guarded
early return, benchmarked at well under 5% of a smoke figure run::

    import repro.obs as obs

    obs.enable()
    run_sweep(...)                            # instrumented internals record
    obs.export.write_trace("run.jsonl", obs.trace.drain_spans(),
                           metrics_snapshot=obs.metrics.snapshot())
    obs.disable()

or, from the CLI: ``python -m repro --trace run.jsonl --metrics
figures --panel fig5a`` then ``python -m repro trace summarize
run.jsonl``.
"""

from repro.obs import export, metrics, profile, trace
from repro.obs.export import (
    SCHEMA,
    TraceData,
    TraceFormatError,
    format_trace_summary,
    read_trace,
    summarize_trace,
    validate_record,
    write_trace,
)
from repro.obs.profile import (
    ProfileReport,
    profile_call,
    profile_fading_stream,
    profile_run_schedulers,
    profile_run_sweep,
    profiled,
)
from repro.obs.state import disable, enable, is_enabled
from repro.obs.trace import SpanRecord, absorb_spans, drain_spans, peek_spans, span


def reset() -> None:
    """Clear all recorded spans and metrics (the switch is untouched)."""
    trace.reset()
    metrics.reset()


__all__ = [
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "span",
    "SpanRecord",
    "drain_spans",
    "peek_spans",
    "absorb_spans",
    "metrics",
    "trace",
    "export",
    "profile",
    "SCHEMA",
    "TraceData",
    "TraceFormatError",
    "write_trace",
    "read_trace",
    "validate_record",
    "summarize_trace",
    "format_trace_summary",
    "ProfileReport",
    "profiled",
    "profile_call",
    "profile_run_schedulers",
    "profile_run_sweep",
    "profile_fading_stream",
]
