"""Documentation-contract checker behind ``make docs-check``.

Two gates, both cheap enough to run before every test pass:

1. **Catalogue completeness** — every span name passed to ``span("…")``
   and every metric name passed to ``obs_metrics.inc/gauge/observe``
   anywhere under ``src/`` (outside :mod:`repro.obs` itself) must
   appear in the corresponding catalogue section of
   ``docs/OBSERVABILITY.md``.  Adding an instrumented call site without
   documenting its name fails the build, which is what keeps the
   span/metric names a *stable public contract* rather than an
   accident of the code.

2. **API snippets** — every fenced ````python```` block in
   ``docs/API.md`` that contains doctest prompts (``>>>``) is executed
   with the standard :mod:`doctest` machinery.  Documented signatures
   that drift from the code fail here instead of silently rotting.

3. **Channel reference** — every registered channel law
   (:func:`repro.channel.laws.channel_law_names`) and power policy
   (:data:`repro.core.powercontrol.POWER_POLICIES`) must appear
   backticked in the matching section of ``docs/CHANNELS.md``, and its
   doctest blocks run like API.md's.  Registering a law without
   documenting it fails the build.

4. **Cache reference** — every registered cache eviction policy
   (:data:`repro.cache.CACHE_POLICIES`) must appear backticked in the
   ``## Eviction policies`` section of ``docs/CACHING.md``, and its
   doctest blocks run like API.md's.

5. **Service reference** — every HTTP route template
   (:data:`repro.service.ROUTE_TEMPLATES`) must appear backticked in
   the ``## Endpoints`` section of ``docs/SERVICE.md``, every wire
   error code (:data:`repro.service.WIRE_ERROR_CODES`) in the
   ``## Error codes`` section, and its doctest blocks run like
   API.md's.  Adding a route or error code without documenting it
   fails the build.

The scanner is intentionally literal: instrumented call sites must
write ``span("dotted.name", ...)`` / ``obs_metrics.inc("dotted.name",
...)`` with a **string literal** first argument (this is also the
style the contract mandates — dynamic span names defeat aggregation).
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Set, Tuple

#: ``span("name"`` — also matches ``trace.span(``; instrumented modules
#: import the function directly, so a bare call is the common form.
SPAN_USE_RE = re.compile(r"""\bspan\(\s*["']([A-Za-z0-9_.]+)["']""")
#: ``obs_metrics.inc("name"`` / ``.gauge(`` / ``.observe(`` — the import
#: alias ``from repro.obs import metrics as obs_metrics`` is part of the
#: instrumentation style so the scanner (and readers) can spot metric
#: call sites unambiguously.
METRIC_USE_RE = re.compile(
    r"""\bobs_metrics\.(?:inc|gauge|observe)\(\s*["']([A-Za-z0-9_.]+)["']"""
)

#: A catalogued name inside an OBSERVABILITY.md section: a backticked
#: dotted identifier like `` `mc.chunks_sampled` ``.
_CATALOGUE_NAME_RE = re.compile(r"`([a-z0-9_]+(?:\.[a-z0-9_]+)+)`")


def used_names(src_root: Path) -> Tuple[Dict[str, List[str]], Dict[str, List[str]]]:
    """Scan ``src_root`` for instrumented span / metric names.

    Returns ``(spans, metrics)`` mapping each name to the files using
    it.  ``repro/obs`` itself is excluded — its docstrings and tests
    mention names generically.
    """
    spans: Dict[str, List[str]] = {}
    metrics: Dict[str, List[str]] = {}
    for path in sorted(src_root.rglob("*.py")):
        rel = path.relative_to(src_root).as_posix()
        if rel.startswith("repro/obs/"):
            continue
        text = path.read_text()
        for name in SPAN_USE_RE.findall(text):
            spans.setdefault(name, []).append(rel)
        for name in METRIC_USE_RE.findall(text):
            metrics.setdefault(name, []).append(rel)
    return spans, metrics


def _section(markdown: str, heading: str) -> str:
    """The body of one ``## heading`` section (empty if absent)."""
    pattern = re.compile(
        rf"^##\s+{re.escape(heading)}\s*$(.*?)(?=^##\s|\Z)",
        re.MULTILINE | re.DOTALL,
    )
    m = pattern.search(markdown)
    return m.group(1) if m else ""


def catalogued_names(observability_md: str) -> Tuple[Set[str], Set[str]]:
    """Span and metric catalogues from OBSERVABILITY.md text."""
    spans = set(_CATALOGUE_NAME_RE.findall(_section(observability_md, "Span catalogue")))
    metrics = set(
        _CATALOGUE_NAME_RE.findall(_section(observability_md, "Metric catalogue"))
    )
    return spans, metrics


def check_catalogues(
    src_root: Path, observability_md: str
) -> List[str]:
    """Names used in ``src/`` but missing from the catalogues."""
    used_spans, used_metrics = used_names(src_root)
    doc_spans, doc_metrics = catalogued_names(observability_md)
    problems: List[str] = []
    if not doc_spans:
        problems.append(
            "docs/OBSERVABILITY.md has no '## Span catalogue' section (or it is empty)"
        )
    if not doc_metrics:
        problems.append(
            "docs/OBSERVABILITY.md has no '## Metric catalogue' section (or it is empty)"
        )
    for name in sorted(set(used_spans) - doc_spans):
        problems.append(
            f"span {name!r} (used in {', '.join(used_spans[name])}) is not in the "
            f"Span catalogue of docs/OBSERVABILITY.md"
        )
    for name in sorted(set(used_metrics) - doc_metrics):
        problems.append(
            f"metric {name!r} (used in {', '.join(used_metrics[name])}) is not in "
            f"the Metric catalogue of docs/OBSERVABILITY.md"
        )
    return problems


_FENCE_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def doctest_blocks(markdown: str) -> List[str]:
    """Fenced python blocks containing doctest prompts."""
    return [block for block in _FENCE_RE.findall(markdown) if ">>>" in block]


def run_doctest_blocks(markdown: str, *, name: str = "docs") -> List[str]:
    """Execute every doctest block; returns failure descriptions."""
    runner = doctest.DocTestRunner(optionflags=doctest.ELLIPSIS, verbose=False)
    parser = doctest.DocTestParser()
    failures: List[str] = []
    for i, block in enumerate(doctest_blocks(markdown)):
        test = parser.get_doctest(block, {}, f"{name}[block {i}]", name, 0)
        out: List[str] = []
        runner.run(test, out=out.append)
        if runner.failures:
            failures.append("".join(out) or f"{name}[block {i}] failed")
            runner = doctest.DocTestRunner(
                optionflags=doctest.ELLIPSIS, verbose=False
            )
    return failures


def check_channels_doc(channels_md: str) -> List[str]:
    """Registered law/policy names missing from docs/CHANNELS.md sections."""
    from repro.channel.laws import channel_law_names
    from repro.core.powercontrol import POWER_POLICIES

    problems: List[str] = []
    law_section = _section(channels_md, "Channel laws")
    policy_section = _section(channels_md, "Power policies")
    if not law_section:
        problems.append(
            "docs/CHANNELS.md has no '## Channel laws' section (or it is empty)"
        )
    if not policy_section:
        problems.append(
            "docs/CHANNELS.md has no '## Power policies' section (or it is empty)"
        )
    _name_re = re.compile(r"`([a-z0-9_]+)`")
    documented_laws = set(_name_re.findall(law_section))
    documented_policies = set(_name_re.findall(policy_section))
    for name in channel_law_names():
        if name not in documented_laws:
            problems.append(
                f"channel law {name!r} is registered but not documented in the "
                f"'Channel laws' section of docs/CHANNELS.md"
            )
    for name in POWER_POLICIES:
        if name not in documented_policies:
            problems.append(
                f"power policy {name!r} is registered but not documented in the "
                f"'Power policies' section of docs/CHANNELS.md"
            )
    return problems


def check_caching_doc(caching_md: str) -> List[str]:
    """Registered cache eviction policies missing from docs/CACHING.md."""
    from repro.cache import CACHE_POLICIES

    problems: List[str] = []
    policy_section = _section(caching_md, "Eviction policies")
    if not policy_section:
        problems.append(
            "docs/CACHING.md has no '## Eviction policies' section (or it is empty)"
        )
    _name_re = re.compile(r"`([a-z0-9_]+)`")
    documented = set(_name_re.findall(policy_section))
    for name in CACHE_POLICIES:
        if name not in documented:
            problems.append(
                f"cache policy {name!r} is registered but not documented in the "
                f"'Eviction policies' section of docs/CACHING.md"
            )
    return problems


def check_service_doc(service_md: str) -> List[str]:
    """Routes / wire error codes missing from docs/SERVICE.md sections."""
    from repro.service import ROUTE_TEMPLATES, WIRE_ERROR_CODES

    problems: List[str] = []
    endpoint_section = _section(service_md, "Endpoints")
    error_section = _section(service_md, "Error codes")
    if not endpoint_section:
        problems.append(
            "docs/SERVICE.md has no '## Endpoints' section (or it is empty)"
        )
    if not error_section:
        problems.append(
            "docs/SERVICE.md has no '## Error codes' section (or it is empty)"
        )
    _code_re = re.compile(r"`([a-z0-9-]+)`")
    documented_codes = set(_code_re.findall(error_section))
    for route in ROUTE_TEMPLATES:
        if f"`{route}`" not in endpoint_section:
            problems.append(
                f"route {route!r} is served but not documented in the "
                f"'Endpoints' section of docs/SERVICE.md"
            )
    for code in WIRE_ERROR_CODES:
        if code not in documented_codes:
            problems.append(
                f"wire error code {code!r} is emitted but not documented in the "
                f"'Error codes' section of docs/SERVICE.md"
            )
    return problems


def run_checks(root: Path) -> List[str]:
    """All docs-contract checks for a repo rooted at ``root``."""
    problems: List[str] = []
    obs_md = root / "docs" / "OBSERVABILITY.md"
    api_md = root / "docs" / "API.md"
    channels_md = root / "docs" / "CHANNELS.md"
    caching_md = root / "docs" / "CACHING.md"
    service_md = root / "docs" / "SERVICE.md"
    if not obs_md.exists():
        problems.append("docs/OBSERVABILITY.md does not exist")
    else:
        problems.extend(check_catalogues(root / "src", obs_md.read_text()))
    if not api_md.exists():
        problems.append("docs/API.md does not exist")
    else:
        problems.extend(run_doctest_blocks(api_md.read_text(), name="docs/API.md"))
    if not channels_md.exists():
        problems.append("docs/CHANNELS.md does not exist")
    else:
        text = channels_md.read_text()
        problems.extend(check_channels_doc(text))
        problems.extend(run_doctest_blocks(text, name="docs/CHANNELS.md"))
    if not caching_md.exists():
        problems.append("docs/CACHING.md does not exist")
    else:
        text = caching_md.read_text()
        problems.extend(check_caching_doc(text))
        problems.extend(run_doctest_blocks(text, name="docs/CACHING.md"))
    if not service_md.exists():
        problems.append("docs/SERVICE.md does not exist")
    else:
        text = service_md.read_text()
        problems.extend(check_service_doc(text))
        problems.extend(run_doctest_blocks(text, name="docs/SERVICE.md"))
    return problems


def main(argv: Iterable[str] | None = None) -> int:
    """CLI entry point: ``python -m repro.obs.docscheck [--root DIR]``."""
    args = list(sys.argv[1:] if argv is None else argv)
    root = Path.cwd()
    if args[:1] == ["--root"] and len(args) >= 2:
        root = Path(args[1])
    problems = run_checks(root)
    if problems:
        print("docs-check: FAILED", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    used_spans, used_metrics = used_names(root / "src")
    print(
        f"docs-check: OK ({len(used_spans)} span names, "
        f"{len(used_metrics)} metric names catalogued; API.md snippets pass)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
