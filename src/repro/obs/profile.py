"""Opt-in profiling hooks: cProfile and tracemalloc wrappers.

Spans (:mod:`repro.obs.trace`) answer "how long did each *stage* take";
these hooks answer the next question — "which *functions* inside a slow
stage burn the time, and where does the memory peak".  Both profilers
carry real overhead (cProfile typically 1.3-2x wall time, tracemalloc
more), so they are never enabled by the observability master switch:
every use is an explicit call or the CLI's ``--profile`` flag.

- :func:`profile_call` — run any callable under cProfile and/or
  tracemalloc, returning ``(result, ProfileReport)``;
- :func:`profiled` — the same as a context manager for open-coded
  regions;
- :func:`profile_run_schedulers`, :func:`profile_run_sweep`,
  :func:`profile_fading_stream` — pre-wired wrappers around the three
  hot entry points named in the instrumentation contract.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Tuple


@dataclass
class ProfileReport:
    """Outcome of one profiled region.

    Attributes
    ----------
    wall:
        Wall-clock seconds of the region (always measured).
    stats:
        ``pstats``-formatted text (top functions by cumulative time)
        when cProfile was on, else ``None``.
    peak_bytes:
        tracemalloc peak allocation in bytes when memory profiling was
        on, else ``None``.
    """

    wall: float = 0.0
    stats: Optional[str] = None
    peak_bytes: Optional[int] = None

    def top(self, n: int = 10) -> str:
        """First ``n`` data lines of the cProfile table (header kept)."""
        if self.stats is None:
            return "(cProfile was not enabled)"
        lines = self.stats.splitlines()
        for i, line in enumerate(lines):
            if line.lstrip().startswith("ncalls"):
                return "\n".join(lines[: i + 1 + n])
        return "\n".join(lines[:n])


def _stats_text(profiler: cProfile.Profile, *, sort: str, limit: int) -> str:
    buf = io.StringIO()
    pstats.Stats(profiler, stream=buf).strip_dirs().sort_stats(sort).print_stats(limit)
    return buf.getvalue()


@contextmanager
def profiled(
    *,
    cpu: bool = True,
    memory: bool = False,
    sort: str = "cumulative",
    limit: int = 40,
) -> Iterator[ProfileReport]:
    """Profile the enclosed block; the yielded report fills in on exit.

    >>> from repro.obs.profile import profiled
    >>> with profiled(memory=True) as report:
    ...     _ = sorted(range(1000))
    >>> report.wall > 0 and report.peak_bytes > 0
    True
    """
    report = ProfileReport()
    profiler = cProfile.Profile() if cpu else None
    mem_started_here = False
    if memory:
        if tracemalloc.is_tracing():
            tracemalloc.reset_peak()
        else:
            tracemalloc.start()
            mem_started_here = True
    t0 = time.perf_counter()
    if profiler is not None:
        profiler.enable()
    try:
        yield report
    finally:
        if profiler is not None:
            profiler.disable()
        report.wall = time.perf_counter() - t0
        if memory:
            _, peak = tracemalloc.get_traced_memory()
            report.peak_bytes = int(peak)
            if mem_started_here:
                tracemalloc.stop()
        if profiler is not None:
            report.stats = _stats_text(profiler, sort=sort, limit=limit)


def profile_call(
    fn: Callable[..., Any],
    *args: Any,
    cpu: bool = True,
    memory: bool = False,
    sort: str = "cumulative",
    limit: int = 40,
    **kwargs: Any,
) -> Tuple[Any, ProfileReport]:
    """Run ``fn(*args, **kwargs)`` under the profilers.

    Returns ``(result, report)``; exceptions from ``fn`` propagate
    (the report is discarded with them).
    """
    with profiled(cpu=cpu, memory=memory, sort=sort, limit=limit) as report:
        result = fn(*args, **kwargs)
    return result, report


def profile_run_schedulers(*args: Any, **kwargs: Any) -> Tuple[Any, ProfileReport]:
    """:func:`repro.sim.runner.run_schedulers` under cProfile.

    Profiling keywords (``cpu``, ``memory``, ``sort``, ``limit``) are
    consumed here; everything else forwards to ``run_schedulers``.
    """
    from repro.sim.runner import run_schedulers

    return profile_call(run_schedulers, *args, **kwargs)


def profile_run_sweep(*args: Any, **kwargs: Any) -> Tuple[Any, ProfileReport]:
    """:func:`repro.sim.runner.run_sweep` under cProfile."""
    from repro.sim.runner import run_sweep

    return profile_call(run_sweep, *args, **kwargs)


def profile_fading_stream(*args: Any, **kwargs: Any) -> Tuple[int, ProfileReport]:
    """Drain :func:`repro.channel.sampling.iter_fading_trials` under tracemalloc.

    Consumes the whole stream (discarding each chunk, exactly like the
    simulator's reduce-and-release loop) and reports the peak
    allocation — the direct way to check a ``max_bytes`` budget.
    Returns ``(n_chunks, report)``.
    """
    from repro.channel.sampling import iter_fading_trials

    def drain() -> int:
        chunks = 0
        for z in iter_fading_trials(*args, **kwargs):
            chunks += 1
            del z
        return chunks

    return profile_call(drain, cpu=False, memory=True)
