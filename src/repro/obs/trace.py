"""Hierarchical span tracing.

A **span** is one timed region of code with a stable dotted name from
the catalogue in ``docs/OBSERVABILITY.md``::

    from repro.obs.trace import span

    with span("fmatrix.build", n=problem.n_links):
        ...  # timed work

Spans nest: the tracer keeps a per-thread stack, so a span opened
inside another records that parent's id and its own depth.  Each closed
span becomes one :class:`SpanRecord` carrying wall time
(``time.perf_counter``) and CPU time (``time.process_time``) plus the
caller's keyword attributes.  Records accumulate in a process-global
buffer until :func:`drain_spans` collects them (the CLI drains into a
JSONL trace file via :mod:`repro.obs.export`).

When observability is disabled (:mod:`repro.obs.state`), :func:`span`
returns a shared no-op context manager and records nothing — the
disabled path allocates no record and takes no lock.

Worker processes
----------------
Spans recorded inside :mod:`repro.sim.parallel` worker processes are
drained in the worker and re-attached to the parent's trace by
:func:`absorb_spans`: ids are re-based onto the parent's id counter,
root spans are re-parented under the parent's currently open span, and
every absorbed record is tagged with the originating work-item index
(``proc``).  Worker timestamps (``t0``) remain process-local — only
durations are comparable across processes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.obs import state as _state


@dataclass(frozen=True)
class SpanRecord:
    """One closed span.

    Attributes
    ----------
    id, parent:
        Process-local span ids (``parent is None`` for root spans;
        rewritten by :func:`absorb_spans` when crossing processes).
    name:
        Dotted catalogue name (stable public contract).
    t0:
        Start time on the recording process's ``perf_counter`` clock.
    wall, cpu:
        Elapsed wall-clock and process CPU seconds.
    depth:
        Nesting depth at record time (0 = root).
    proc:
        Originating work-item index for spans absorbed from worker
        processes; ``None`` for spans recorded in this process.
    attrs:
        Caller-supplied keyword attributes (JSON-serialisable values).
    """

    id: int
    parent: Optional[int]
    name: str
    t0: float
    wall: float
    cpu: float
    depth: int
    proc: Optional[int] = None
    attrs: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form matching the JSONL span record schema."""
        return {
            "type": "span",
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "t0": self.t0,
            "wall": self.wall,
            "cpu": self.cpu,
            "depth": self.depth,
            "proc": self.proc,
            "attrs": dict(self.attrs),
        }


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        """Discard attributes (mirrors :meth:`_Span.set`)."""


_NOOP = _NoopSpan()

_lock = threading.Lock()
_records: List[SpanRecord] = []
_next_id = 0
_tls = threading.local()  # per-thread open-span stack


def _stack() -> List["_Span"]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


class _Span:
    """An open span; closes (and records) on ``__exit__``."""

    __slots__ = ("name", "attrs", "id", "parent", "depth", "_t0", "_c0")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self.name = name
        self.attrs = attrs

    def set(self, **attrs: Any) -> None:
        """Attach or update attributes while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        global _next_id
        stack = _stack()
        with _lock:
            self.id = _next_id
            _next_id += 1
        self.parent = stack[-1].id if stack else None
        self.depth = len(stack)
        stack.append(self)
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        return self

    def __exit__(self, *exc: object) -> bool:
        wall = time.perf_counter() - self._t0
        cpu = time.process_time() - self._c0
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        record = SpanRecord(
            id=self.id,
            parent=self.parent,
            name=self.name,
            t0=self._t0,
            wall=wall,
            cpu=cpu,
            depth=self.depth,
            attrs=self.attrs,
        )
        with _lock:
            _records.append(record)
        return False


def span(name: str, **attrs: Any) -> Any:
    """Open a named span as a context manager.

    Returns the shared no-op when observability is disabled; attribute
    values must be JSON-serialisable (they land in the trace file
    verbatim).  Names are static dotted identifiers from the catalogue
    — put variable parts (sizes, algorithm names) in ``attrs``, never
    in ``name``, so traces aggregate by construct.
    """
    if not _state.enabled:
        return _NOOP
    return _Span(name, attrs)


def current_span_id() -> Optional[int]:
    """Id of the innermost open span on this thread (``None`` if none)."""
    stack = _stack()
    return stack[-1].id if stack else None


def drain_spans() -> List[SpanRecord]:
    """Return all buffered records and clear the buffer.

    Open spans are unaffected — they will append to the (now empty)
    buffer when they close.
    """
    with _lock:
        out = list(_records)
        _records.clear()
    return out


def peek_spans() -> List[SpanRecord]:
    """Snapshot of the buffered records without clearing them."""
    with _lock:
        return list(_records)


def absorb_spans(
    records: List[SpanRecord], *, proc: Optional[int] = None
) -> None:
    """Merge spans drained from a worker process into this tracer.

    Ids are shifted onto this process's id counter (preserving the
    worker's internal parent/child links), root spans are re-parented
    under the currently open span, depths are offset accordingly, and
    ``proc`` tags every absorbed record.  No-op when observability is
    disabled or ``records`` is empty.
    """
    if not _state.enabled or not records:
        return
    global _next_id
    attach_to = current_span_id()
    base_depth = len(_stack())
    with _lock:
        offset = _next_id - min(r.id for r in records)
        _next_id += max(r.id for r in records) - min(r.id for r in records) + 1
        for r in records:
            _records.append(
                SpanRecord(
                    id=r.id + offset,
                    parent=attach_to if r.parent is None else r.parent + offset,
                    name=r.name,
                    t0=r.t0,
                    wall=r.wall,
                    cpu=r.cpu,
                    depth=r.depth + base_depth,
                    proc=proc if r.proc is None else r.proc,
                    attrs=r.attrs,
                )
            )


def reset() -> None:
    """Clear all buffered records and restart the id counter.

    Only safe when no spans are open (tests and worker-process
    initialisation call it between independent units of work).
    """
    global _next_id
    with _lock:
        _records.clear()
        _next_id = 0
    _tls.stack = []
