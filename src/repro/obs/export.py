"""JSONL trace export, validation, and summarisation.

Trace file format — ``repro.trace.v1``
--------------------------------------
One JSON object per line, in order:

1. exactly one **meta** record first::

       {"type": "meta", "schema": "repro.trace.v1", "version": 1,
        "command": "...", "unix_time": 1234.5}

2. zero or more **span** records (see
   :meth:`repro.obs.trace.SpanRecord.to_dict`)::

       {"type": "span", "id": 3, "parent": 0, "name": "mc.replay",
        "t0": 12.125, "wall": 0.81, "cpu": 0.80, "depth": 2,
        "proc": null, "attrs": {"trials": 500}}

3. at most one **metrics** record last, embedding a
   :func:`repro.obs.metrics.snapshot`::

       {"type": "metrics", "snapshot": {"counters": {...}, ...}}

The schema string is versioned; readers reject unknown versions rather
than guess.  Fields may be *added* within v1 (readers must ignore
unknown keys); removing or re-typing a field requires a version bump —
that promise is the instrumentation contract in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs.trace import SpanRecord

SCHEMA = "repro.trace.v1"
SCHEMA_VERSION = 1

_SPAN_FIELDS = {
    "id": int,
    "name": str,
    "t0": (int, float),
    "wall": (int, float),
    "cpu": (int, float),
    "depth": int,
}


class TraceFormatError(ValueError):
    """A trace file violates the ``repro.trace.v1`` schema."""


def validate_record(rec: Any, *, line: int = 0) -> Dict[str, Any]:
    """Validate one parsed JSONL record; returns it or raises.

    Checks the discriminating ``type`` field and, per type, the
    presence and types of the required fields.  Unknown extra keys are
    allowed (additive schema evolution).
    """
    where = f"line {line}: " if line else ""
    if not isinstance(rec, dict):
        raise TraceFormatError(f"{where}record must be a JSON object, got {type(rec).__name__}")
    kind = rec.get("type")
    if kind == "meta":
        if rec.get("schema") != SCHEMA:
            raise TraceFormatError(
                f"{where}unsupported trace schema {rec.get('schema')!r} "
                f"(this reader understands {SCHEMA!r})"
            )
        return rec
    if kind == "span":
        for key, types in _SPAN_FIELDS.items():
            if key not in rec:
                raise TraceFormatError(f"{where}span record missing {key!r}")
            if not isinstance(rec[key], types) or isinstance(rec[key], bool):
                raise TraceFormatError(
                    f"{where}span field {key!r} has wrong type "
                    f"{type(rec[key]).__name__}"
                )
        if rec.get("parent") is not None and not isinstance(rec["parent"], int):
            raise TraceFormatError(f"{where}span field 'parent' must be int or null")
        if not isinstance(rec.get("attrs", {}), dict):
            raise TraceFormatError(f"{where}span field 'attrs' must be an object")
        return rec
    if kind == "metrics":
        snap = rec.get("snapshot")
        if not isinstance(snap, dict):
            raise TraceFormatError(f"{where}metrics record missing 'snapshot' object")
        for section in ("counters", "gauges", "histograms"):
            if section in snap and not isinstance(snap[section], dict):
                raise TraceFormatError(f"{where}snapshot section {section!r} must be an object")
        return rec
    raise TraceFormatError(f"{where}unknown record type {kind!r}")


@dataclass(frozen=True)
class TraceData:
    """A parsed, validated trace file."""

    meta: Dict[str, Any]
    spans: List[Dict[str, Any]]
    metrics: Optional[Dict[str, Any]] = None


def write_trace(
    path: Union[str, Path],
    spans: Sequence[Union[SpanRecord, Dict[str, Any]]],
    *,
    metrics_snapshot: Optional[Dict[str, Any]] = None,
    command: Optional[str] = None,
) -> None:
    """Write a ``repro.trace.v1`` JSONL file."""
    meta: Dict[str, Any] = {
        "type": "meta",
        "schema": SCHEMA,
        "version": SCHEMA_VERSION,
        "unix_time": time.time(),
    }
    if command is not None:
        meta["command"] = command
    with Path(path).open("w") as fh:
        fh.write(json.dumps(meta) + "\n")
        for s in spans:
            rec = s.to_dict() if isinstance(s, SpanRecord) else s
            fh.write(json.dumps(rec) + "\n")
        if metrics_snapshot is not None:
            fh.write(
                json.dumps({"type": "metrics", "snapshot": metrics_snapshot}) + "\n"
            )


def read_trace(path: Union[str, Path]) -> TraceData:
    """Read and validate a JSONL trace file."""
    meta: Optional[Dict[str, Any]] = None
    spans: List[Dict[str, Any]] = []
    metrics: Optional[Dict[str, Any]] = None
    with Path(path).open() as fh:
        for i, raw in enumerate(fh, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                rec = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(f"line {i}: invalid JSON ({exc})") from exc
            rec = validate_record(rec, line=i)
            if rec["type"] == "meta":
                if meta is not None:
                    raise TraceFormatError(f"line {i}: duplicate meta record")
                meta = rec
            elif rec["type"] == "span":
                if meta is None:
                    raise TraceFormatError(f"line {i}: span before meta record")
                spans.append(rec)
            else:  # metrics
                if metrics is not None:
                    raise TraceFormatError(f"line {i}: duplicate metrics record")
                metrics = rec["snapshot"]
    if meta is None:
        raise TraceFormatError("trace file has no meta record")
    return TraceData(meta=meta, spans=spans, metrics=metrics)


@dataclass(frozen=True)
class SpanSummary:
    """Aggregate of every span sharing one name."""

    name: str
    calls: int
    total_wall: float
    self_wall: float
    total_cpu: float

    row: tuple = field(default=(), repr=False, compare=False)


def summarize_trace(trace: TraceData) -> List[SpanSummary]:
    """Per-name span aggregates, sorted by total wall time (desc).

    ``self_wall`` is each span's wall time minus its *direct*
    children's wall time, summed over calls — the "where does the time
    actually go" column (a parent that only dispatches has near-zero
    self time however long it runs).  Ties break by name so the output
    is stable.
    """
    child_wall: Dict[int, float] = {}
    for s in trace.spans:
        parent = s.get("parent")
        if parent is not None:
            child_wall[parent] = child_wall.get(parent, 0.0) + s["wall"]
    agg: Dict[str, List[float]] = {}
    for s in trace.spans:
        row = agg.setdefault(s["name"], [0, 0.0, 0.0, 0.0])
        row[0] += 1
        row[1] += s["wall"]
        row[2] += max(0.0, s["wall"] - child_wall.get(s["id"], 0.0))
        row[3] += s["cpu"]
    out = [
        SpanSummary(
            name=name,
            calls=int(row[0]),
            total_wall=row[1],
            self_wall=row[2],
            total_cpu=row[3],
        )
        for name, row in agg.items()
    ]
    out.sort(key=lambda r: (-r.total_wall, r.name))
    return out


def format_trace_summary(
    trace: TraceData, *, top: int = 10, path: Optional[str] = None
) -> str:
    """Render :func:`summarize_trace` as a fixed-width table."""
    rows = summarize_trace(trace)
    head = (
        f"trace{': ' + path if path else ''} "
        f"(schema {trace.meta.get('schema')}, {len(trace.spans)} spans"
        f"{', metrics attached' if trace.metrics is not None else ''})"
    )
    lines = [head]
    lines.append(
        f"{'span':<32} {'calls':>7} {'total_s':>10} {'self_s':>10} {'cpu_s':>10}"
    )
    for r in rows[: max(0, top)]:
        lines.append(
            f"{r.name:<32} {r.calls:>7} {r.total_wall:>10.4f} "
            f"{r.self_wall:>10.4f} {r.total_cpu:>10.4f}"
        )
    if not rows:
        lines.append("(no spans recorded)")
    return "\n".join(lines)
