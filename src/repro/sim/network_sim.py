"""Queue-driven frame simulator.

One-shot scheduling exists to serve traffic: the classic setting (Lin &
Shroff, Joo et al. — the paper's refs [2], [3]) has per-link queues,
packet arrivals, and a scheduler invoked every slot on the *backlogged*
links.  This simulator closes that loop for the fading model:

1. packets arrive at each link per slot (Poisson, configurable rates);
2. the scheduler sees the sub-instance induced by backlogged links and
   returns a feasible transmission set;
3. each scheduled link sends one packet, which is delivered iff its
   instantaneous (sampled) SINR clears ``gamma_th`` — failed packets
   stay queued and retry;
4. queue lengths, delays, deliveries, and failures are tracked per
   slot.

The resulting metrics expose the throughput/stability behaviour the
one-shot metrics cannot: a scheduler with a slightly smaller per-slot
schedule but zero failures can dominate a dense fading-susceptible one
once retransmissions are accounted for (see
``benchmarks/test_queue_sim.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.sim.montecarlo import simulate_trials
from repro.utils.rng import SeedLike, as_rng


@dataclass(frozen=True)
class QueueSimResult:
    """Aggregate results of a queue simulation.

    Attributes
    ----------
    n_slots:
        Simulated slots.
    arrivals / deliveries / failures:
        Total packets generated, delivered, and failed transmission
        attempts (failures are retried, so they do not lose packets —
        they lose *slots*).
    mean_backlog:
        Time-averaged total queue length.
    final_backlog:
        Total queued packets at the end (stability indicator).
    mean_delay:
        Mean slots-in-system of *delivered* packets (NaN if none).
    per_slot_backlog : (n_slots,) array
        Total backlog after each slot.
    per_link_delivered : (N,) array
        Deliveries per link.
    """

    n_slots: int
    arrivals: int
    deliveries: int
    failures: int
    mean_backlog: float
    final_backlog: int
    mean_delay: float
    per_slot_backlog: np.ndarray = field(repr=False)
    per_link_delivered: np.ndarray = field(repr=False)

    @property
    def delivery_ratio(self) -> float:
        """Delivered fraction of all arrivals."""
        return self.deliveries / self.arrivals if self.arrivals else 1.0

    @property
    def slot_efficiency(self) -> float:
        """Delivered packets per transmission attempt."""
        attempts = self.deliveries + self.failures
        return self.deliveries / attempts if attempts else 1.0


def simulate_queues(
    problem: FadingRLS,
    scheduler: Callable[..., Schedule],
    *,
    n_slots: int = 200,
    arrival_rate: float | np.ndarray = 0.05,
    seed: SeedLike = None,
    warmup: int = 0,
    weight_aware: bool = False,
    scheduler_kwargs: Optional[dict] = None,
) -> QueueSimResult:
    """Run the queue-driven frame simulation.

    Parameters
    ----------
    problem:
        The full instance; each slot the scheduler runs on the
        backlogged sub-instance.
    scheduler:
        One-shot scheduler ``(FadingRLS, **kwargs) -> Schedule``.
    n_slots:
        Number of slots to simulate.
    arrival_rate:
        Poisson packet arrival rate per link per slot (scalar or
        ``(N,)`` array).
    warmup:
        Initial slots excluded from the backlog average (the delay
        statistic always covers all deliveries).
    weight_aware:
        Max-weight mode (Tassiulas-Ephremides style): the sub-instance
        handed to the scheduler carries the *queue lengths as rates*,
        so any rate-greedy scheduler maximises backlog-weighted service.
        Only sensible with rate-sensitive schedulers (``greedy``,
        ``milp``, LDP's per-square argmax); RLE ignores rates.
    seed:
        Root seed; arrival, scheduling (if the scheduler takes ``seed``)
        and fading randomness derive from it.

    Notes
    -----
    Queues are FIFO; a scheduled link transmits its head-of-line packet.
    Fading is sampled *fresh* per slot via the Rayleigh channel, so a
    fading-susceptible schedule loses slots to retransmission.
    """
    if n_slots < 1:
        raise ValueError("n_slots must be >= 1")
    if warmup < 0 or warmup >= n_slots:
        raise ValueError("warmup must be in [0, n_slots)")
    n = problem.n_links
    rates = np.broadcast_to(np.asarray(arrival_rate, dtype=float), (n,)).copy()
    if np.any(rates < 0):
        raise ValueError("arrival rates must be >= 0")
    rng = as_rng(seed)
    kwargs = dict(scheduler_kwargs or {})

    # FIFO queues of arrival timestamps (for delay accounting).
    queues: List[List[int]] = [[] for _ in range(n)]
    backlog = np.zeros(n, dtype=np.int64)

    arrivals = deliveries = failures = 0
    delays: List[int] = []
    per_slot_backlog = np.zeros(n_slots, dtype=np.int64)
    per_link_delivered = np.zeros(n, dtype=np.int64)

    for t in range(n_slots):
        # 1. Arrivals.
        new = rng.poisson(rates)
        arrivals += int(new.sum())
        for i in np.flatnonzero(new):
            queues[i].extend([t] * int(new[i]))
        backlog += new

        # 2. Schedule the backlogged sub-instance.
        backlogged = np.flatnonzero(backlog > 0)
        if backlogged.size:
            sub = problem.restrict(backlogged)
            if weight_aware:
                weighted_links = sub.links.with_rates(
                    backlog[backlogged].astype(float)
                )
                sub = FadingRLS(
                    links=weighted_links,
                    alpha=sub.alpha,
                    gamma_th=sub.gamma_th,
                    eps=sub.eps,
                    noise=sub.noise,
                    power=sub.power,
                    powers=sub.powers,
                )
            schedule = scheduler(sub, **kwargs)
            chosen = backlogged[schedule.active]
        else:
            chosen = np.zeros(0, dtype=np.int64)

        # 3. Transmit: one fading realisation for the whole slot.
        if chosen.size:
            success = simulate_trials(problem, chosen, 1, seed=rng)[0]
            for link, ok in zip(chosen, success):
                if ok:
                    born = queues[link].pop(0)
                    delays.append(t - born + 1)
                    backlog[link] -= 1
                    deliveries += 1
                    per_link_delivered[link] += 1
                else:
                    failures += 1

        per_slot_backlog[t] = int(backlog.sum())

    counted = per_slot_backlog[warmup:]
    return QueueSimResult(
        n_slots=n_slots,
        arrivals=arrivals,
        deliveries=deliveries,
        failures=failures,
        mean_backlog=float(counted.mean()),
        final_backlog=int(backlog.sum()),
        mean_delay=float(np.mean(delays)) if delays else float("nan"),
        per_slot_backlog=per_slot_backlog,
        per_link_delivered=per_link_delivered,
    )


def stability_sweep(
    problem: FadingRLS,
    scheduler: Callable[..., Schedule],
    arrival_rates: np.ndarray | list,
    *,
    n_slots: int = 300,
    seed: SeedLike = None,
    scheduler_kwargs: Optional[dict] = None,
) -> List[QueueSimResult]:
    """Run :func:`simulate_queues` across an offered-load sweep.

    The classic stability picture: backlog stays bounded below the
    scheduler's service capacity and diverges above it.  Derived seeds
    keep each load point independently reproducible.
    """
    from repro.utils.rng import stable_seed

    results = []
    for k, rate in enumerate(arrival_rates):
        results.append(
            simulate_queues(
                problem,
                scheduler,
                n_slots=n_slots,
                arrival_rate=float(rate),
                seed=stable_seed("stability", k, root=0 if seed is None else seed),
                scheduler_kwargs=scheduler_kwargs,
            )
        )
    return results
