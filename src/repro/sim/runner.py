"""Batched experiment runner.

One evaluation point of the paper's figures is: *generate a random
workload, run every scheduler on it, replay each schedule through the
fading channel, average over repetitions*.  :func:`run_schedulers`
packages that loop with per-repetition derived seeds so any point is
reproducible in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping

import numpy as np

from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.network.links import LinkSet
from repro.sim.metrics import SimulationResult
from repro.sim.montecarlo import simulate_schedule
from repro.utils.rng import stable_seed


@dataclass(frozen=True)
class RunResult:
    """Aggregated results of one scheduler over repetitions.

    ``mean_*`` fields average the per-repetition Monte-Carlo means;
    ``*_std`` are standard deviations *across repetitions* (workload
    variability, not fading noise).
    """

    algorithm: str
    n_repetitions: int
    mean_failed: float
    failed_std: float
    mean_throughput: float
    throughput_std: float
    mean_scheduled: float
    mean_scheduled_rate: float
    per_rep: List[SimulationResult]


def run_schedulers(
    schedulers: Mapping[str, Callable[..., Schedule]],
    workload: Callable[[int], LinkSet],
    *,
    n_repetitions: int = 10,
    n_trials: int = 500,
    alpha: float = 3.0,
    gamma_th: float = 1.0,
    eps: float = 0.01,
    root_seed: int = 0,
    scheduler_kwargs: Mapping[str, dict] | None = None,
) -> Dict[str, RunResult]:
    """Run every scheduler on ``n_repetitions`` random workloads.

    Parameters
    ----------
    schedulers:
        Name -> scheduler callable.
    workload:
        ``workload(seed) -> LinkSet`` — the per-repetition instance
        generator.  All schedulers see the *same* instance in each
        repetition (paired comparison, lower variance).
    n_repetitions, n_trials:
        Workload draws, and fading realisations per schedule.
    alpha, gamma_th, eps:
        Channel parameters of the constructed :class:`FadingRLS`.
    root_seed:
        Root of the derived seed tree (workload seeds and fading seeds
        are independent by construction).
    scheduler_kwargs:
        Optional per-scheduler extra keyword arguments.

    Returns
    -------
    dict of name -> :class:`RunResult`.
    """
    if n_repetitions < 1:
        raise ValueError("n_repetitions must be >= 1")
    kwargs_map = dict(scheduler_kwargs or {})
    per_alg: Dict[str, List[SimulationResult]] = {name: [] for name in schedulers}

    for rep in range(n_repetitions):
        links = workload(stable_seed("workload", rep, root=root_seed))
        problem = FadingRLS(links=links, alpha=alpha, gamma_th=gamma_th, eps=eps)
        for name, scheduler in schedulers.items():
            schedule = scheduler(problem, **kwargs_map.get(name, {}))
            result = simulate_schedule(
                problem,
                schedule,
                n_trials=n_trials,
                seed=stable_seed("fading", rep, name, root=root_seed),
            )
            per_alg[name].append(result)

    out: Dict[str, RunResult] = {}
    for name, results in per_alg.items():
        failed = np.array([r.mean_failed for r in results])
        throughput = np.array([r.mean_throughput for r in results])
        scheduled = np.array([r.n_scheduled for r in results], dtype=float)
        scheduled_rate = np.array([r.scheduled_rate for r in results])
        out[name] = RunResult(
            algorithm=name,
            n_repetitions=n_repetitions,
            mean_failed=float(failed.mean()),
            failed_std=float(failed.std(ddof=1)) if n_repetitions > 1 else 0.0,
            mean_throughput=float(throughput.mean()),
            throughput_std=float(throughput.std(ddof=1)) if n_repetitions > 1 else 0.0,
            mean_scheduled=float(scheduled.mean()),
            mean_scheduled_rate=float(scheduled_rate.mean()),
            per_rep=results,
        )
    return out
