"""Batched experiment runner.

One evaluation point of the paper's figures is: *generate a random
workload, run every scheduler on it, replay each schedule through the
fading channel, average over repetitions*.  :func:`run_schedulers`
packages that loop with per-repetition derived seeds so any point is
reproducible in isolation.

Execution is delegated to :mod:`repro.sim.parallel`: the
``rep x scheduler`` grid becomes independent work units that run
serially (``n_jobs=1``, the bit-identical default) or fan out over a
process pool.  :func:`run_sweep` extends the same fan-out across *all*
points of a figure sweep, so a whole panel parallelises as one flat
unit list instead of point-by-point.

Both entry points accept a :class:`~repro.sim.resilient.RetryPolicy`
(fault-tolerant execution: per-unit timeouts, bounded retry, worker
replacement) and a :class:`~repro.experiments.store.UnitCheckpoint`
(per-unit persistence so interrupted runs resume); see
``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.network.links import LinkSet
from repro.network.mobility import DeltaTrace
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.sim.metrics import SimulationResult
from repro.sim.parallel import WorkUnit, build_units, execute_units

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.store import UnitCheckpoint
    from repro.sim.resilient import RetryPolicy


@dataclass(frozen=True)
class RunResult:
    """Aggregated results of one scheduler over repetitions.

    ``mean_*`` fields average the per-repetition Monte-Carlo means;
    ``*_std`` are standard deviations *across repetitions* (workload
    variability, not fading noise).
    """

    algorithm: str
    n_repetitions: int
    mean_failed: float
    failed_std: float
    mean_throughput: float
    throughput_std: float
    mean_scheduled: float
    mean_scheduled_rate: float
    per_rep: List[SimulationResult]


def aggregate_results(name: str, results: List[SimulationResult]) -> RunResult:
    """Reduce one scheduler's per-repetition results to a :class:`RunResult`."""
    n_repetitions = len(results)
    failed = np.array([r.mean_failed for r in results])
    throughput = np.array([r.mean_throughput for r in results])
    scheduled = np.array([r.n_scheduled for r in results], dtype=float)
    scheduled_rate = np.array([r.scheduled_rate for r in results])
    return RunResult(
        algorithm=name,
        n_repetitions=n_repetitions,
        mean_failed=float(failed.mean()),
        failed_std=float(failed.std(ddof=1)) if n_repetitions > 1 else 0.0,
        mean_throughput=float(throughput.mean()),
        throughput_std=float(throughput.std(ddof=1)) if n_repetitions > 1 else 0.0,
        mean_scheduled=float(scheduled.mean()),
        mean_scheduled_rate=float(scheduled_rate.mean()),
        per_rep=results,
    )


def _group_by_scheduler(
    schedulers: Mapping[str, Callable[..., Schedule]],
    units: Sequence[WorkUnit],
    results: Sequence[SimulationResult],
) -> Dict[str, RunResult]:
    """Regroup flat unit results into per-scheduler aggregates."""
    per_alg: Dict[str, List[SimulationResult]] = {name: [] for name in schedulers}
    for unit, result in zip(units, results):
        per_alg[unit.name].append(result)
    return {name: aggregate_results(name, results) for name, results in per_alg.items()}


def run_schedulers(
    schedulers: Mapping[str, Callable[..., Schedule]],
    workload: Callable[[int], LinkSet],
    *,
    n_repetitions: int = 10,
    n_trials: int = 500,
    alpha: float = 3.0,
    gamma_th: float = 1.0,
    eps: float = 0.01,
    root_seed: int = 0,
    scheduler_kwargs: Mapping[str, dict] | None = None,
    n_jobs: Optional[int] = 1,
    max_bytes: Optional[int] = None,
    policy: Optional["RetryPolicy"] = None,
    checkpoint: Optional["UnitCheckpoint"] = None,
    backend: str = "numpy",
    channel: Optional[str] = None,
    power_policy: str = "uniform",
) -> Dict[str, RunResult]:
    """Run every scheduler on ``n_repetitions`` random workloads.

    Parameters
    ----------
    schedulers:
        Name -> scheduler callable.
    workload:
        ``workload(seed) -> LinkSet`` — the per-repetition instance
        generator.  All schedulers see the *same* instance in each
        repetition (paired comparison, lower variance).  Must be
        picklable for ``n_jobs > 1``.
    n_repetitions, n_trials:
        Workload draws, and fading realisations per schedule.
    alpha, gamma_th, eps:
        Channel parameters of the constructed :class:`FadingRLS`.
    root_seed:
        Root of the derived seed tree (workload seeds and fading seeds
        are independent by construction).
    scheduler_kwargs:
        Optional per-scheduler extra keyword arguments.
    n_jobs:
        Worker processes; ``1`` (default) runs serially in-process,
        ``0``/``None`` uses all CPUs.  Results are bit-identical for
        every value — seeds derive from unit identity, not execution
        order.
    max_bytes:
        Memory budget per Monte-Carlo replay chunk (see
        :func:`repro.sim.montecarlo.simulate_schedule`).
    policy:
        Optional retry policy — routes execution through the
        fault-tolerant executor (timeouts, bounded deterministic-backoff
        retry, pool replacement) with results still bit-identical.
    checkpoint:
        Optional per-unit result store — completed units persist and an
        interrupted run resumed with the same checkpoint recomputes only
        the missing ones.
    backend:
        Compute backend name (``numpy`` / ``sharedmem`` / ``numba``,
        see :mod:`repro.backend`); unavailable backends fall back to
        ``numpy`` with a warning.  Results are bit-identical across
        backends.
    channel:
        Channel-law spec for the Monte-Carlo replay
        (:func:`repro.channel.laws.get_channel_law`); ``None`` is the
        paper's Rayleigh channel.
    power_policy:
        Named power policy
        (:data:`repro.core.powercontrol.POWER_POLICIES`) applied around
        each scheduler run; ``uniform`` (default) keeps the instance's
        powers untouched.

    Returns
    -------
    dict of name -> :class:`RunResult`.
    """
    if n_repetitions < 1:
        raise ValueError("n_repetitions must be >= 1")
    with span("runner.run_schedulers", schedulers=len(schedulers), reps=n_repetitions):
        units = build_units(
            schedulers,
            workload,
            n_repetitions=n_repetitions,
            n_trials=n_trials,
            alpha=alpha,
            gamma_th=gamma_th,
            eps=eps,
            root_seed=root_seed,
            scheduler_kwargs=scheduler_kwargs,
            max_bytes=max_bytes,
            backend=backend,
            channel=channel,
            power_policy=power_policy,
        )
        obs_metrics.inc("runner.units_built", len(units))
        results = execute_units(units, n_jobs=n_jobs, policy=policy, checkpoint=checkpoint)
        return _group_by_scheduler(schedulers, units, results)


@dataclass(frozen=True)
class TraceStepResult:
    """One time step of a dynamic-network run.

    All quantities are evaluated against that step's *effective*
    geometry, so the from-scratch and incremental execution modes
    report directly comparable numbers.
    """

    schedule: Schedule
    feasible: bool
    expected_throughput: float
    scheduled_rate: float


def run_trace(
    scheduler: Union[str, Callable[..., Schedule]],
    trace: Union[DeltaTrace, Sequence[LinkSet], Iterable[LinkSet]],
    *,
    incremental: bool = False,
    alpha: float = 3.0,
    gamma_th: float = 1.0,
    eps: float = 0.01,
    noise: float = 0.0,
    scheduler_kwargs: Optional[Mapping] = None,
    quality_bound: float = 0.8,
) -> List[TraceStepResult]:
    """Schedule every step of a dynamic-network trace.

    Parameters
    ----------
    scheduler:
        Registry name or scheduler callable.
    trace:
        A :class:`~repro.network.mobility.DeltaTrace` (required for the
        incremental mode) or a plain sequence of per-step ``LinkSet``\\ s.
    incremental:
        ``False`` (default) rebuilds a fresh
        :class:`~repro.core.problem.FadingRLS` and reruns the scheduler
        from scratch at every step; ``True`` routes the trace through
        :class:`~repro.core.incremental.IncrementalScheduler` — O(kN)
        interference-matrix maintenance plus warm-start schedule repair,
        falling back to a full run when repair quality degrades below
        ``quality_bound``.
    alpha, gamma_th, eps, noise:
        Channel parameters of each step's problem.
    scheduler_kwargs:
        Extra keyword arguments for the scheduler.
    quality_bound:
        Fallback trigger of the incremental engine (ignored otherwise).

    Returns
    -------
    list of :class:`TraceStepResult`, one per trace step.
    """
    from repro.core.base import get_scheduler

    kwargs = dict(scheduler_kwargs or {})
    out: List[TraceStepResult] = []

    def _evaluate(problem: FadingRLS, schedule: Schedule) -> TraceStepResult:
        return TraceStepResult(
            schedule=schedule,
            feasible=problem.is_feasible(schedule.active),
            expected_throughput=problem.expected_throughput(schedule.active),
            scheduled_rate=problem.scheduled_rate(schedule.active),
        )

    with span("runner.run_trace", incremental=incremental):
        if incremental:
            if not isinstance(trace, DeltaTrace):
                raise TypeError(
                    "incremental=True requires a DeltaTrace (per-step link "
                    "churn); got a materialised LinkSet sequence — build the "
                    "workload with random_waypoint_delta_trace or wrap it in "
                    "a DeltaTrace"
                )
            from repro.core.incremental import IncrementalScheduler

            engine = IncrementalScheduler(
                trace.initial,
                scheduler=scheduler,
                scheduler_kwargs=kwargs,
                alpha=alpha,
                gamma_th=gamma_th,
                eps=eps,
                noise=noise,
                quality_bound=quality_bound,
            )
            schedule = engine.schedule()
            out.append(_evaluate(engine.problem, schedule))
            for delta in trace.deltas:
                schedule = engine.step(delta)
                out.append(_evaluate(engine.problem, schedule))
        else:
            fn = get_scheduler(scheduler) if isinstance(scheduler, str) else scheduler
            linksets = trace.linksets() if isinstance(trace, DeltaTrace) else trace
            for links in linksets:
                problem = FadingRLS(
                    links=links, alpha=alpha, gamma_th=gamma_th, eps=eps, noise=noise
                )
                out.append(_evaluate(problem, fn(problem, **kwargs)))
    obs_metrics.inc("runner.trace_steps", len(out))
    return out


@dataclass(frozen=True)
class SweepPoint:
    """One x-axis point of a figure sweep.

    ``x`` is the plotted value; ``workload``, ``alpha`` and
    ``root_seed`` fully determine the point's experiment (the root seed
    is usually derived from ``x`` via ``stable_seed`` so points remain
    reproducible in isolation).
    """

    x: float
    workload: Callable[[int], LinkSet]
    alpha: float
    root_seed: int


def run_sweep(
    schedulers: Mapping[str, Callable[..., Schedule]],
    points: Sequence[SweepPoint],
    *,
    n_repetitions: int = 10,
    n_trials: int = 500,
    gamma_th: float = 1.0,
    eps: float = 0.01,
    scheduler_kwargs: Mapping[str, dict] | None = None,
    n_jobs: Optional[int] = 1,
    max_bytes: Optional[int] = None,
    policy: Optional["RetryPolicy"] = None,
    checkpoint: Optional["UnitCheckpoint"] = None,
    backend: str = "numpy",
    channel: Optional[str] = None,
    power_policy: str = "uniform",
) -> List[Dict[str, RunResult]]:
    """Run a whole sweep as one flat parallel unit list.

    Equivalent to calling :func:`run_schedulers` once per
    :class:`SweepPoint` (same seeds, same results, in order) — but all
    ``point x rep x scheduler`` cells share a single process pool, so
    small per-point grids still saturate the workers.  ``policy``,
    ``checkpoint``, ``backend``, ``channel`` and ``power_policy`` behave
    as in :func:`run_schedulers`.
    """
    with span("runner.run_sweep", points=len(points), schedulers=len(schedulers)):
        all_units: List[WorkUnit] = []
        for i, point in enumerate(points):
            all_units.extend(
                build_units(
                    schedulers,
                    point.workload,
                    tag=i,
                    n_repetitions=n_repetitions,
                    n_trials=n_trials,
                    alpha=point.alpha,
                    gamma_th=gamma_th,
                    eps=eps,
                    root_seed=point.root_seed,
                    scheduler_kwargs=scheduler_kwargs,
                    max_bytes=max_bytes,
                    backend=backend,
                    channel=channel,
                    power_policy=power_policy,
                )
            )
        obs_metrics.inc("runner.units_built", len(all_units))
        obs_metrics.inc("runner.sweep_points", len(points))
        results = execute_units(all_units, n_jobs=n_jobs, policy=policy, checkpoint=checkpoint)
        per_point = len(all_units) // len(points) if points else 0
        out: List[Dict[str, RunResult]] = []
        for i in range(len(points)):
            chunk_units = all_units[i * per_point : (i + 1) * per_point]
            chunk_results = results[i * per_point : (i + 1) * per_point]
            out.append(_group_by_scheduler(schedulers, chunk_units, chunk_results))
        return out


def run_workload(
    config,
    *,
    links: Optional[LinkSet] = None,
    scheduler: str = "rle",
    seed: Optional[int] = None,
):
    """Run the config's traffic workload; returns ``(result, stats)``.

    The :class:`~repro.experiments.config.ExperimentConfig` bridge into
    :mod:`repro.workload`: the ``workload_*`` knobs (set via
    ``config.with_workload``) pick the arrival family, mean offered
    load, horizon, and service policy; the channel parameters and the
    compute backend come from the same config that drives the figure
    sweeps.  ``links`` defaults to one paper-style topology of
    ``config.n_links_fixed`` links drawn from ``config.root_seed``.
    When ``config.cache`` is set (``config.with_cache``), the per-slot
    scheduler runs are answered through a
    :class:`~repro.cache.store.ScheduleCache`.
    """
    from repro.backend.base import use as use_backend
    from repro.workload.analyzers import summarize_workload
    from repro.workload.queues import simulate_workload

    if links is None:
        links = config.workload(config.n_links_fixed)(config.root_seed)
    problem = FadingRLS(
        links=links,
        alpha=config.alpha_default,
        gamma_th=config.gamma_th,
        eps=config.eps,
    )
    cache = config.schedule_cache()
    with span("runner.run_workload", links=problem.n_links):
        with use_backend(config.backend):
            result = simulate_workload(
                problem,
                config.arrival_process(),
                scheduler,
                n_slots=config.workload_slots,
                seed=config.root_seed if seed is None else seed,
                policy=config.workload_policy,
                channel=config.channel,
                cache=cache,
            )
    if cache is not None:
        cache.flush()
    return result, summarize_workload(result)
