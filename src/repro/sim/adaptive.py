"""Adaptive Monte-Carlo sampling.

Fixed trial counts waste work on easy schedules and under-resolve hard
ones.  :func:`simulate_until` keeps drawing fading batches until the
standard error of the target metric falls below a tolerance (or a trial
cap is hit), combining batches exactly via running sums — the usual
sequential-sampling pattern for throughput studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.sim.montecarlo import simulate_trials
from repro.utils.rng import SeedLike, as_rng


@dataclass(frozen=True)
class AdaptiveResult:
    """Result of an adaptive simulation run.

    ``converged`` is True when the stderr target was met before the
    trial cap.
    """

    metric: str
    estimate: float
    stderr: float
    n_trials: int
    n_batches: int
    converged: bool


_METRICS = ("failed", "throughput")


def simulate_until(
    problem: FadingRLS,
    schedule: Schedule | np.ndarray,
    *,
    metric: str = "failed",
    target_stderr: float = 0.05,
    batch: int = 500,
    max_trials: int = 200_000,
    seed: SeedLike = None,
) -> AdaptiveResult:
    """Sample fading trials until ``metric``'s standard error is small.

    Parameters
    ----------
    metric:
        ``"failed"`` (failed transmissions per trial) or
        ``"throughput"`` (successfully received rate per trial).
    target_stderr:
        Stop once the running standard error drops below this.
    batch:
        Trials per draw (one vectorised exponential sample each).
    max_trials:
        Hard cap; exceeded -> ``converged=False``.

    Notes
    -----
    An empty schedule is exactly known (0 failures, 0 throughput):
    returns immediately with stderr 0.
    """
    if metric not in _METRICS:
        raise ValueError(f"metric must be one of {_METRICS}, got {metric!r}")
    if target_stderr <= 0:
        raise ValueError("target_stderr must be > 0")
    if batch < 2:
        raise ValueError("batch must be >= 2")
    active = schedule.active if isinstance(schedule, Schedule) else np.asarray(schedule)
    mask = problem.active_mask(active)
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return AdaptiveResult(metric, 0.0, 0.0, 0, 0, True)
    rates = problem.links.rates[idx]
    rng = as_rng(seed)

    total = 0.0
    total_sq = 0.0
    n = 0
    batches = 0
    while n < max_trials:
        success = simulate_trials(problem, idx, batch, seed=rng)
        if metric == "failed":
            values = (~success).sum(axis=1).astype(float)
        else:
            values = success.astype(float) @ rates
        total += float(values.sum())
        total_sq += float((values**2).sum())
        n += batch
        batches += 1
        mean = total / n
        var = max(0.0, (total_sq - n * mean**2) / (n - 1))
        stderr = float(np.sqrt(var / n))
        if stderr <= target_stderr:
            return AdaptiveResult(metric, mean, stderr, n, batches, True)
    return AdaptiveResult(metric, total / n, stderr, n, batches, False)
