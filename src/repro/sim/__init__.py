"""Monte-Carlo transmission simulator.

Replays schedules through the Rayleigh-fading channel to measure what
the paper's Section V measures: failed transmissions and throughput.

- :mod:`repro.sim.montecarlo` — vectorised fading trials per schedule,
- :mod:`repro.sim.metrics` — the evaluation metrics,
- :mod:`repro.sim.runner` — batched multi-repetition experiment runner.
"""

from repro.sim.adaptive import AdaptiveResult, simulate_until
from repro.sim.metrics import SimulationResult, summarize_trials
from repro.sim.montecarlo import simulate_schedule
from repro.sim.network_sim import QueueSimResult, simulate_queues, stability_sweep
from repro.sim.runner import RunResult, run_schedulers

__all__ = [
    "simulate_schedule",
    "SimulationResult",
    "summarize_trials",
    "run_schedulers",
    "RunResult",
    "simulate_queues",
    "stability_sweep",
    "QueueSimResult",
    "simulate_until",
    "AdaptiveResult",
]
