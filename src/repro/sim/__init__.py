"""Monte-Carlo transmission simulator.

Replays schedules through a fading channel to measure what the paper's
Section V measures: failed transmissions and throughput.  The replay
defaults to the paper's Rayleigh law; every entry point takes a
``channel=`` spec selecting any registered
:class:`~repro.channel.laws.ChannelLaw` (``docs/CHANNELS.md``).

- :mod:`repro.sim.montecarlo` — memory-bounded streaming fading trials
  per schedule,
- :mod:`repro.sim.metrics` — the evaluation metrics,
- :mod:`repro.sim.runner` — batched multi-repetition experiment runner,
- :mod:`repro.sim.parallel` — process-parallel work-unit engine behind
  the runner (deterministic fan-out, ``n_jobs`` control),
- :mod:`repro.sim.resilient` — fault-tolerant executor layered on the
  same work units (timeouts, deterministic-backoff retry, pool
  replacement, serial degradation).
"""

from repro.sim.adaptive import AdaptiveResult, simulate_until
from repro.sim.metrics import SimulationResult, summarize_trials
from repro.sim.montecarlo import simulate_schedule
from repro.sim.network_sim import QueueSimResult, simulate_queues, stability_sweep
from repro.sim.parallel import (
    WorkUnit,
    available_cpus,
    checkpoint_key,
    execute_units,
    fan_out,
    parallel_map,
    resolve_n_jobs,
    unit_key,
)
from repro.sim.resilient import (
    RetryPolicy,
    UnitExecutionError,
    UnitFailure,
    backoff_delay,
    resilient_map,
)
from repro.sim.runner import RunResult, SweepPoint, run_schedulers, run_sweep

__all__ = [
    "simulate_schedule",
    "SimulationResult",
    "summarize_trials",
    "run_schedulers",
    "run_sweep",
    "SweepPoint",
    "RunResult",
    "WorkUnit",
    "execute_units",
    "fan_out",
    "parallel_map",
    "resolve_n_jobs",
    "available_cpus",
    "unit_key",
    "checkpoint_key",
    "RetryPolicy",
    "UnitExecutionError",
    "UnitFailure",
    "backoff_delay",
    "resilient_map",
    "simulate_queues",
    "stability_sweep",
    "QueueSimResult",
    "simulate_until",
    "AdaptiveResult",
]
