"""Evaluation metrics (Section V).

The paper measures two quantities per schedule:

1. the **number of failed transmissions** — scheduled links whose
   instantaneous SINR misses ``gamma_th``;
2. the **throughput** — total data rate successfully received.

:class:`SimulationResult` carries both (as Monte-Carlo means with
standard errors) plus per-link empirical success rates for the analytic
cross-checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class SimulationResult:
    """Summary of one schedule's Monte-Carlo replay.

    Attributes
    ----------
    algorithm:
        Producing scheduler's name.
    n_scheduled:
        Number of links in the schedule.
    n_trials:
        Fading realisations replayed.
    mean_failed:
        Mean failed transmissions per trial (Fig. 5's metric).
    failed_stderr:
        Standard error of ``mean_failed``.
    mean_throughput:
        Mean successfully received rate per trial (Fig. 6's metric).
    throughput_stderr:
        Standard error of ``mean_throughput``.
    scheduled_rate:
        Total rate *scheduled* (success ignored) — the ILP objective.
    per_link_success:
        Empirical success frequency per scheduled link (sorted active
        order).
    active_indices:
        The schedule's link indices (sorted).
    """

    algorithm: str
    n_scheduled: int
    n_trials: int
    mean_failed: float
    failed_stderr: float
    mean_throughput: float
    throughput_stderr: float
    scheduled_rate: float
    per_link_success: np.ndarray = field(repr=False)
    active_indices: np.ndarray = field(repr=False)

    @property
    def failure_rate(self) -> float:
        """Failed transmissions as a fraction of scheduled links."""
        if self.n_scheduled == 0:
            return 0.0
        return self.mean_failed / self.n_scheduled


def summarize_trials(
    success: np.ndarray,
    rates: np.ndarray,
    *,
    active_indices: np.ndarray,
    algorithm: str = "unknown",
) -> SimulationResult:
    """Reduce a ``(T, K)`` success matrix to a :class:`SimulationResult`.

    ``rates`` are the ``K`` scheduled links' data rates (sorted active
    order, aligned with ``success`` columns).
    """
    s = np.asarray(success, dtype=bool)
    if s.ndim != 2:
        raise ValueError(f"success must be (T, K), got shape {s.shape}")
    t, k = s.shape
    r = np.asarray(rates, dtype=float).reshape(-1)
    if r.shape[0] != k:
        raise ValueError(f"rates length {r.shape[0]} != K={k}")

    if t == 0 or k == 0:
        return SimulationResult(
            algorithm=algorithm,
            n_scheduled=k,
            n_trials=t,
            mean_failed=0.0,
            failed_stderr=0.0,
            mean_throughput=0.0,
            throughput_stderr=0.0,
            scheduled_rate=float(r.sum()),
            per_link_success=np.ones(k, dtype=float),
            active_indices=np.asarray(active_indices, dtype=np.int64),
        )

    failed_per_trial = (~s).sum(axis=1).astype(float)
    throughput_per_trial = s.astype(float) @ r
    # ddof=1 sample std; guard the single-trial case.
    def _stderr(x: np.ndarray) -> float:
        if x.shape[0] < 2:
            return 0.0
        return float(x.std(ddof=1) / np.sqrt(x.shape[0]))

    return SimulationResult(
        algorithm=algorithm,
        n_scheduled=k,
        n_trials=t,
        mean_failed=float(failed_per_trial.mean()),
        failed_stderr=_stderr(failed_per_trial),
        mean_throughput=float(throughput_per_trial.mean()),
        throughput_stderr=_stderr(throughput_per_trial),
        scheduled_rate=float(r.sum()),
        per_link_success=s.mean(axis=0),
        active_indices=np.asarray(active_indices, dtype=np.int64),
    )
