"""Process-parallel experiment execution.

The figure pipeline is embarrassingly parallel: every
``(sweep point, workload repetition, scheduler)`` cell generates its own
workload, runs one scheduler, and replays the schedule through the
fading channel — no cell reads another's output.  This module fans
those cells out as :class:`WorkUnit`\\ s over a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Determinism
-----------
A unit's randomness is fully determined by its identity: the workload
seed is ``stable_seed("workload", rep, root=root_seed)`` and the fading
seed ``stable_seed("fading", rep, name, root=root_seed)`` — exactly the
derivation the serial runner has always used.  Results are reassembled
in submission order, so ``n_jobs=4`` is **bit-identical** to the serial
``n_jobs=1`` fallback (the tests assert equality, not closeness).

Pickling
--------
Work units cross a process boundary, so the workload factory and the
scheduler callables must be picklable: module-level functions,
``functools.partial`` of them, or dataclass instances like
:class:`repro.experiments.config.TopologyWorkload` — not closures or
lambdas.  The executor no longer probe-pickles anything up front (the
pool already pickles every submission, so an eager probe paid that
serialization twice — see ``benchmarks/test_kernel_micro.py`` for the
measured submit overhead); instead, a pickling failure surfacing from
the pool is diagnosed after the fact and re-raised as the same clear
``ValueError`` the probe used to produce.

Compute backends
----------------
Each :class:`WorkUnit` names the compute backend it executes under
(:mod:`repro.backend.base`); workers install it before running, so
``--backend numba`` survives the process boundary.  When the resolved
backend requests shared fan-out (``sharedmem``), :func:`execute_units`
materialises each repetition's problem once and ships segment
references instead of workload factories — see
:mod:`repro.backend.sharedmem`.  Results are bit-identical across
backends and ``n_jobs`` either way (the ``backend-vs-numpy``
differential check pins it).

Observability
-------------
When :mod:`repro.obs` is enabled, each work item runs inside the
worker wrapped by :class:`_ObservedCall`: the worker's registries are
reset, the item executes, and its metric snapshot plus drained spans
travel back with the result.  The parent folds the snapshots into its
own registry **in submission order** and re-attaches the spans (tagged
with the item index) under its open span.  Because the metric
instruments only use exact, associative aggregations (see
:mod:`repro.obs.metrics`), the merged snapshot is *byte-identical* to
the serial run's — ``n_jobs`` changes neither the results nor the
metrics.
"""

from __future__ import annotations

import math
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, List, Mapping, Optional, Sequence, TypeVar

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.experiments.store import UnitCheckpoint
    from repro.sim.resilient import RetryPolicy

from repro.cache.fingerprint import canonical_channel, config_key, describe_callable
from repro.core.powercontrol import run_scheduler_with_power
from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.network.links import LinkSet
from repro.obs import metrics as obs_metrics
from repro.obs import state as _obs_state
from repro.obs import trace as _obs_trace
from repro.obs.trace import span
from repro.sim.metrics import SimulationResult
from repro.sim.montecarlo import simulate_schedule
from repro.utils.rng import stable_seed

T = TypeVar("T")
U = TypeVar("U")


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` knob to a concrete worker count.

    ``None`` or ``0`` means "all available CPUs"; positive values are
    taken literally (oversubscription is allowed — useful for testing
    the parallel path on small machines); negatives are rejected.
    """
    if n_jobs is None or n_jobs == 0:
        return available_cpus()
    if n_jobs < 0:
        raise ValueError(f"n_jobs must be >= 0 (0 = all CPUs), got {n_jobs}")
    return int(n_jobs)


@dataclass(frozen=True)
class WorkUnit:
    """One independent cell of an experiment grid.

    Executing a unit regenerates its workload from the derived seed,
    builds the :class:`FadingRLS` instance, runs one scheduler, and
    replays the schedule through the fading channel.  Units carry
    everything they need, so they can run in any process in any order.

    Attributes
    ----------
    tag:
        Opaque grouping key the caller uses to reassemble results
        (e.g. the sweep-point index); never interpreted here.
    rep:
        Workload repetition index (seeds derive from it).
    name:
        Scheduler name (seeds derive from it; becomes the result's
        algorithm label via the schedule).
    scheduler:
        Picklable scheduler callable ``(problem, **kwargs) -> Schedule``.
    workload:
        Picklable factory ``workload(seed) -> LinkSet``.
    """

    tag: Any
    rep: int
    name: str
    scheduler: Callable[..., Schedule]
    workload: Callable[[int], LinkSet]
    n_trials: int
    alpha: float
    gamma_th: float
    eps: float
    root_seed: int
    scheduler_kwargs: Mapping[str, Any] = field(default_factory=dict)
    noise: float = 0.0
    max_bytes: Optional[int] = None
    #: Compute backend the unit executes under (installed in the worker;
    #: not part of the checkpoint key — backends are bit-identical).
    backend: str = "numpy"
    #: Channel-law spec string (``None`` = Rayleigh).  Part of the
    #: checkpoint key — the law changes the sampled trials.
    channel: Optional[str] = None
    #: Named power policy from :data:`repro.core.powercontrol.POWER_POLICIES`.
    #: Part of the checkpoint key — re-powering changes the results.
    power_policy: str = "uniform"


def unit_key(unit: WorkUnit) -> str:
    """Human-readable stable identity of a unit: ``tag/rep/name``.

    This is the address fault plans and backoff derivation use; it
    stays stable across runs, processes, and retries because it is
    built purely from the unit's grid coordinates.
    """
    return f"{unit.tag}/{unit.rep}/{unit.name}"


# The stable callable/channel canonicalisers grew into the shared
# repro.cache.fingerprint module (the schedule cache keys build on
# them); the historical underscore names stay importable and the key
# bytes are pinned unchanged by tests/test_cache_fingerprint.py.
_describe_callable = describe_callable
_canonical_channel = canonical_channel


def checkpoint_key(unit: WorkUnit) -> str:
    """Content hash of everything that determines a unit's result.

    Any change to the unit's workload, scheduler, channel parameters or
    seeds produces a different key, so a checkpoint directory can never
    serve a stale result to a reconfigured sweep.
    """
    return config_key(
        "workunit",
        {
            "tag": repr(unit.tag),
            "rep": unit.rep,
            "name": unit.name,
            "scheduler": _describe_callable(unit.scheduler),
            "workload": _describe_callable(unit.workload),
            "n_trials": unit.n_trials,
            "alpha": unit.alpha,
            "gamma_th": unit.gamma_th,
            "eps": unit.eps,
            "noise": unit.noise,
            "root_seed": unit.root_seed,
            "scheduler_kwargs": sorted(
                (k, repr(v)) for k, v in dict(unit.scheduler_kwargs).items()
            ),
            # Canonical law spec, so "shadowing:sigma_db=6" and its
            # fully-spelled form hash the same; None normalises to the
            # Rayleigh default.
            "channel": _canonical_channel(unit.channel),
            "power_policy": unit.power_policy,
        },
    )


def valid_simulation_result(value: Any) -> bool:
    """Poison detector for unit results: right type, finite summaries."""
    if not isinstance(value, SimulationResult):
        return False
    summaries = (
        value.mean_failed,
        value.failed_stderr,
        value.mean_throughput,
        value.throughput_stderr,
        value.scheduled_rate,
    )
    return all(math.isfinite(float(x)) for x in summaries) and value.n_scheduled >= 0


def execute_unit(unit: WorkUnit) -> SimulationResult:
    """Run one :class:`WorkUnit` — the per-process worker function."""
    from repro.backend import base as backend_base

    with backend_base.use(unit.backend), span(
        "parallel.unit", rep=unit.rep, algorithm=unit.name
    ):
        links = unit.workload(stable_seed("workload", unit.rep, root=unit.root_seed))
        problem = FadingRLS(
            links=links,
            alpha=unit.alpha,
            gamma_th=unit.gamma_th,
            eps=unit.eps,
            noise=unit.noise,
        )
        with span("scheduler.run", algorithm=unit.name):
            schedule, powered = run_scheduler_with_power(
                problem, unit.scheduler, unit.power_policy, dict(unit.scheduler_kwargs)
            )
        obs_metrics.inc("scheduler.links_admitted", schedule.size)
        return simulate_schedule(
            powered,
            schedule,
            n_trials=unit.n_trials,
            seed=stable_seed("fading", unit.rep, unit.name, root=unit.root_seed),
            max_bytes=unit.max_bytes,
            channel=unit.channel,
        )


def _looks_like_pickling_error(exc: BaseException) -> bool:
    """Is this pool-surfaced exception a serialization failure?

    Submit-side (and result-side) pickling failures arrive as
    ``PicklingError``, or as ``AttributeError``/``TypeError`` whose
    message names pickling (``"Can't pickle local object ..."``,
    ``"cannot pickle '...' object"``).
    """
    if isinstance(exc, pickle.PicklingError):
        return True
    return isinstance(exc, (AttributeError, TypeError)) and "pickle" in str(exc).lower()


def _raise_pickling_diagnosis(
    func: Callable[..., Any], items: Sequence[Any], exc: BaseException
) -> None:
    """Turn a pool pickling failure into the historical readable error.

    Runs only on the failure path, so the happy path pickles each
    submission exactly once (in the pool) — the old eager probe paid
    that cost twice before any work started.  Pinpoints the offender by
    probing ``func`` first, then each item.
    """
    try:
        pickle.dumps(func)
    except Exception as func_exc:
        raise ValueError(
            f"func must be picklable for n_jobs > 1 (module-level function "
            f"or functools.partial of one): {func_exc}"
        ) from exc
    for i, item in enumerate(items):
        try:
            pickle.dumps(item)
        except Exception as item_exc:
            raise ValueError(
                "work units must be picklable for n_jobs > 1: define workload "
                "factories and schedulers at module level (e.g. "
                "repro.experiments.config.TopologyWorkload) instead of "
                f"closures or lambdas (item {i}: {item_exc})"
            ) from exc
    # Everything probes clean (e.g. an unpicklable *result*); still a
    # serialization problem, so keep the readable framing.
    raise ValueError(
        f"serialization across the process pool failed for n_jobs > 1: {exc}"
    ) from exc


class _ObservedCall:
    """Worker-side wrapper that ships metrics and spans home.

    Picklable (wraps a picklable ``func``).  Each call isolates the
    worker's observability state: enable (workers spawned fresh start
    disabled), reset both registries, run the item, then return the
    result together with the item's metric snapshot and span records.
    """

    def __init__(self, func: Callable[[Any], Any]):
        self.func = func

    def __call__(self, item: Any):
        _obs_state.enable()
        obs_metrics.reset()
        _obs_trace.reset()
        result = self.func(item)
        return result, obs_metrics.snapshot(), _obs_trace.drain_spans()


def parallel_map(
    func: Callable[[T], U],
    items: Sequence[T],
    *,
    n_jobs: Optional[int] = 1,
    chunksize: int = 1,
) -> List[U]:
    """Order-preserving map over a process pool (serial when possible).

    The generic primitive under :func:`execute_units` and the ablation /
    trade-off drivers: ``n_jobs=1`` (or a single item) runs a plain loop
    in-process — no pool, no pickling, bit-identical to the historical
    serial code path.  ``func`` and every item must be picklable for
    ``n_jobs > 1``.

    With observability enabled, worker metrics and spans are collected
    per item and folded back in submission order (see the module
    docstring); the returned values are identical either way.
    """
    jobs = resolve_n_jobs(n_jobs)
    items = list(items)
    obs_metrics.inc("parallel.items_mapped", len(items))
    if jobs == 1 or len(items) <= 1:
        with span("parallel.map", items=len(items), jobs=1):
            return [func(item) for item in items]
    workers = min(jobs, len(items))
    with span("parallel.map", items=len(items), jobs=workers):
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                if not _obs_state.enabled:
                    return list(pool.map(func, items, chunksize=max(1, chunksize)))
                wrapped = list(
                    pool.map(_ObservedCall(func), items, chunksize=max(1, chunksize))
                )
        except Exception as exc:
            if _looks_like_pickling_error(exc):
                _raise_pickling_diagnosis(func, items, exc)
            raise
        results: List[U] = []
        for i, (result, snap, spans) in enumerate(wrapped):
            obs_metrics.merge_into_registry(snap)
            _obs_trace.absorb_spans(spans, proc=i)
            results.append(result)
        return results


def _plan_execution(units: Sequence[WorkUnit]):
    """Resolve the units' backend into ``(worker_func, items, arena)``.

    The plain and numba backends execute the units as-is (each worker
    installs the unit's backend); the sharedmem backend materialises
    each distinct problem once and maps the units to
    :class:`~repro.backend.sharedmem.SharedUnit`\\ s.  The returned
    arena (``None`` unless shared) must be closed by the caller after
    the map finishes — workers attach lazily, so the segments have to
    outlive the last retry.  Shared fan-out is used even at
    ``n_jobs=1`` so metric snapshots stay invariant in ``n_jobs`` for a
    fixed backend.
    """
    if not units:
        return execute_unit, list(units), None
    from repro.backend import base as backend_base

    resolved, reason = backend_base.resolve(units[0].backend)
    if reason is not None:
        import warnings

        warnings.warn(reason, RuntimeWarning, stacklevel=3)
    if resolved.shared_fanout:
        from repro.backend import sharedmem

        shared, arena = sharedmem.materialize_units(units)
        return sharedmem.execute_shared_unit, shared, arena
    return execute_unit, list(units), None


def execute_units(
    units: Sequence[WorkUnit],
    *,
    n_jobs: Optional[int] = 1,
    policy: Optional["RetryPolicy"] = None,
    checkpoint: Optional["UnitCheckpoint"] = None,
) -> List[SimulationResult]:
    """Execute work units, preserving input order.

    ``n_jobs=1`` is the serial fallback (same process, same iteration
    order as the historical runner); ``n_jobs=0``/``None`` uses all
    CPUs.  Results land at the same index as their unit regardless of
    completion order, so aggregation downstream is order-stable.

    With a ``policy``, execution routes through the fault-tolerant
    executor (:func:`repro.sim.resilient.resilient_map`): per-unit
    timeout, bounded deterministic-backoff retry, dead-worker pool
    replacement, and serial degradation — results stay bit-identical
    because retried units re-derive the same identity seeds.  With a
    ``checkpoint``, each unit's result persists on first success and
    already-checkpointed units are served from disk, so an interrupted
    sweep resumes from its completed cells.
    """
    if policy is None and checkpoint is None:
        func, mapped, arena = _plan_execution(units)
        try:
            return parallel_map(func, mapped, n_jobs=n_jobs)
        finally:
            if arena is not None:
                arena.close()
    from repro.sim.resilient import RetryPolicy, resilient_map

    units = list(units)
    keys = [unit_key(u) for u in units]
    results: List[Optional[SimulationResult]] = [None] * len(units)
    pending = list(range(len(units)))
    ck_keys: List[str] = []
    if checkpoint is not None:
        ck_keys = [checkpoint_key(u) for u in units]
        pending = []
        for i, ck in enumerate(ck_keys):
            cached = checkpoint.get(ck)
            if cached is not None:
                results[i] = cached
                obs_metrics.inc("resilience.units_from_checkpoint")
            else:
                pending.append(i)
    if pending:

        def _persist(sub_idx: int, value: SimulationResult) -> None:
            if checkpoint is not None:
                checkpoint.put(ck_keys[pending[sub_idx]], value)

        func, mapped, arena = _plan_execution([units[i] for i in pending])
        try:
            computed = resilient_map(
                func,
                mapped,
                keys=[keys[i] for i in pending],
                n_jobs=n_jobs,
                policy=policy or RetryPolicy(),
                validate=valid_simulation_result,
                on_result=_persist,
            )
        finally:
            if arena is not None:
                arena.close()
        for i, value in zip(pending, computed):
            results[i] = value
    return results  # type: ignore[return-value]


def fan_out(
    func: Callable[[T], U],
    items: Sequence[T],
    *,
    n_jobs: Optional[int] = 1,
    policy: Optional["RetryPolicy"] = None,
    key_prefix: str = "item",
) -> List[U]:
    """Route a generic map through the plain or resilient executor.

    The ablation and trade-off drivers use this so one ``policy`` knob
    upgrades their repetition fan-out to fault-tolerant execution; with
    ``policy=None`` it is exactly :func:`parallel_map`.
    """
    items = list(items)
    if policy is None:
        return parallel_map(func, items, n_jobs=n_jobs)
    from repro.sim.resilient import resilient_map

    return resilient_map(
        func,
        items,
        keys=[f"{key_prefix}/{i}" for i in range(len(items))],
        n_jobs=n_jobs,
        policy=policy,
    )


def build_units(
    schedulers: Mapping[str, Callable[..., Schedule]],
    workload: Callable[[int], LinkSet],
    *,
    tag: Any = None,
    n_repetitions: int,
    n_trials: int,
    alpha: float,
    gamma_th: float,
    eps: float,
    root_seed: int,
    scheduler_kwargs: Optional[Mapping[str, dict]] = None,
    noise: float = 0.0,
    max_bytes: Optional[int] = None,
    backend: str = "numpy",
    channel: Optional[str] = None,
    power_policy: str = "uniform",
) -> List[WorkUnit]:
    """The ``rep x scheduler`` unit grid for one sweep point.

    Rep-major, scheduler-minor — the same nesting as the serial loops,
    so zipping results back by index reproduces the historical
    aggregation order exactly.
    """
    kwargs_map = dict(scheduler_kwargs or {})
    return [
        WorkUnit(
            tag=tag,
            rep=rep,
            name=name,
            scheduler=scheduler,
            workload=workload,
            n_trials=n_trials,
            alpha=alpha,
            gamma_th=gamma_th,
            eps=eps,
            root_seed=root_seed,
            scheduler_kwargs=kwargs_map.get(name, {}),
            noise=noise,
            max_bytes=max_bytes,
            backend=backend,
            channel=channel,
            power_policy=power_policy,
        )
        for rep in range(n_repetitions)
        for name, scheduler in schedulers.items()
    ]
