"""Monte-Carlo replay of a schedule through the Rayleigh channel.

For a schedule (a set of simultaneously transmitting links) we draw
``n_trials`` independent fading realisations, compute every receiver's
instantaneous SINR, and record per-trial successes.  This is the
experiment behind both paper metrics:

- **failed transmissions** (Fig. 5): scheduled links whose SINR fell
  below ``gamma_th`` in a trial;
- **throughput** (Fig. 6): total rate of the links that succeeded.

All trials for one schedule are drawn in a single exponential sample of
shape ``(T, K, K)`` and reduced with two vectorised sums (guide: one big
draw, no per-trial Python loop).
"""

from __future__ import annotations

import numpy as np

from repro.channel.sampling import instantaneous_sinr, sample_fading_trials
from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.sim.metrics import SimulationResult, summarize_trials
from repro.utils.rng import SeedLike


def simulate_trials(
    problem: FadingRLS,
    schedule: Schedule | np.ndarray,
    n_trials: int,
    *,
    noise: float | None = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """Boolean success matrix over fading trials.

    Parameters
    ----------
    problem:
        The instance (supplies geometry and channel parameters,
        including per-link transmit powers when set).
    schedule:
        A :class:`Schedule` or plain index array of active links.
    n_trials:
        Number of independent fading realisations.
    noise:
        Ambient noise ``N0``; defaults to the problem's own ``noise``
        (0 in the paper's setting, Eq. 8).
    seed:
        RNG seed.

    Returns
    -------
    (T, K) bool array
        ``out[t, a]`` — did active link ``a`` (sorted order) decode in
        trial ``t``?
    """
    active = schedule.active if isinstance(schedule, Schedule) else np.asarray(schedule)
    mask = problem.active_mask(active)
    idx = np.flatnonzero(mask)
    z = sample_fading_trials(
        problem.distances(),
        idx,
        problem.alpha,
        n_trials,
        power=problem.tx_powers(),
        seed=seed,
    )
    sinr = instantaneous_sinr(z, noise=problem.noise if noise is None else noise)
    return sinr >= problem.gamma_th


def simulate_schedule(
    problem: FadingRLS,
    schedule: Schedule | np.ndarray,
    *,
    n_trials: int = 1000,
    noise: float | None = None,
    seed: SeedLike = None,
) -> SimulationResult:
    """Replay a schedule and summarise the paper's metrics.

    Returns a :class:`~repro.sim.metrics.SimulationResult` with mean
    failed-transmission counts, throughput, and per-link empirical
    success rates.  The analytic cross-check
    (:meth:`FadingRLS.success_probabilities`) should match the empirical
    rates within Monte-Carlo error — the integration tests assert it.
    """
    active = schedule.active if isinstance(schedule, Schedule) else np.asarray(schedule)
    mask = problem.active_mask(active)
    idx = np.flatnonzero(mask)
    success = simulate_trials(problem, idx, n_trials, noise=noise, seed=seed)
    rates = problem.links.rates[idx]
    algorithm = schedule.algorithm if isinstance(schedule, Schedule) else "raw"
    return summarize_trials(success, rates, active_indices=idx, algorithm=algorithm)
