"""Monte-Carlo replay of a schedule through a fading channel.

For a schedule (a set of simultaneously transmitting links) we draw
``n_trials`` independent fading realisations, compute every receiver's
instantaneous SINR, and record per-trial successes.  This is the
experiment behind both paper metrics:

- **failed transmissions** (Fig. 5): scheduled links whose SINR fell
  below ``gamma_th`` in a trial;
- **throughput** (Fig. 6): total rate of the links that succeeded.

The replay is **memory-bounded**: trials stream through
:func:`~repro.channel.sampling.iter_fading_trials` in chunks under a
``max_bytes`` budget, and each ``(t_c, K, K)`` chunk is immediately
reduced to its ``(t_c, K)`` success slab — the full ``(T, K, K)`` power
tensor (~20 GB at ``K = 500``, ``T = 10_000``) is never materialised.
Chunking along the trial axis preserves the RNG stream exactly (see the
stream-layout contract in :mod:`repro.channel.sampling`), so results are
bit-identical for every chunk size, including the legacy single-draw
behaviour.

The replay defaults to the paper's Rayleigh channel; ``channel=``
selects any registered :class:`~repro.channel.laws.ChannelLaw`
(``"nakagami:m=2"``, ``"shadowing:sigma_db=6"``, ``"deterministic"``).
The law only changes what the trials sample — the success reduction,
backend kernels, streaming budget and seeding are shared by every law.
"""

from __future__ import annotations

import numpy as np

from repro.backend import base as backend_base
from repro.backend.kernels import MCScratch
from repro.channel.sampling import LawLike, iter_fading_trials
from repro.core.problem import FadingRLS
from repro.core.schedule import Schedule
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.sim.metrics import SimulationResult, summarize_trials
from repro.utils.rng import SeedLike


# One process-level scratch serves consecutive replays, so a worker
# executing many units materialises its reduction buffers once (they
# re-grow only when a larger chunk/active-set shape arrives).  Borrowing
# guards against reentrancy: a nested replay gets a private scratch.
_SCRATCH: MCScratch | None = MCScratch()


def _borrow_scratch() -> MCScratch:
    global _SCRATCH
    scratch = _SCRATCH
    if scratch is None:
        return MCScratch()
    _SCRATCH = None
    return scratch


def _return_scratch(scratch: MCScratch) -> None:
    global _SCRATCH
    if _SCRATCH is None:
        _SCRATCH = scratch


def simulate_trials(
    problem: FadingRLS,
    schedule: Schedule | np.ndarray,
    n_trials: int,
    *,
    noise: float | None = None,
    seed: SeedLike = None,
    max_bytes: int | None = None,
    channel: LawLike = None,
) -> np.ndarray:
    """Boolean success matrix over fading trials.

    Parameters
    ----------
    problem:
        The instance (supplies geometry and channel parameters,
        including per-link transmit powers when set).
    schedule:
        A :class:`Schedule` or plain index array of active links.
    n_trials:
        Number of independent fading realisations.
    noise:
        Ambient noise ``N0``; defaults to the problem's own ``noise``
        (0 in the paper's setting, Eq. 8).
    seed:
        RNG seed.
    max_bytes:
        Byte budget for the streamed fading chunks (default
        :data:`~repro.channel.sampling.DEFAULT_MAX_BYTES`).  Only the
        ``(T, K)`` success matrix is held for the full run; peak extra
        memory is one chunk.
    channel:
        Channel-law spec (string or
        :class:`~repro.channel.laws.ChannelLaw`); ``None`` is the
        paper's Rayleigh channel, bit-identical to the historical
        behaviour.

    Returns
    -------
    (T, K) bool array
        ``out[t, a]`` — did active link ``a`` (sorted order) decode in
        trial ``t``?
    """
    active = schedule.active if isinstance(schedule, Schedule) else np.asarray(schedule)
    mask = problem.active_mask(active)
    idx = np.flatnonzero(mask)
    n0 = problem.noise if noise is None else noise
    success = np.empty((n_trials, idx.size), dtype=bool)
    done = 0
    backend = backend_base.get_active()
    scratch = _borrow_scratch()
    try:
        with span("mc.replay", trials=n_trials, k=int(idx.size)):
            for z in iter_fading_trials(
                problem.distances(),
                idx,
                problem.alpha,
                n_trials,
                power=problem.tx_powers(),
                seed=seed,
                max_bytes=max_bytes,
                law=channel,
            ):
                t_c = z.shape[0]
                # The backend kernel reduces the chunk through the reusable
                # scratch buffers and writes the success slab in place —
                # bit-identical to the historical
                # ``instantaneous_sinr(z) >= gamma_th`` materialisation.
                backend.mc_success_chunk(
                    z,
                    problem.gamma_th,
                    n0,
                    out=success[done : done + t_c],
                    scratch=scratch,
                )
                # Release the chunk before the generator draws the next one —
                # holding it through the loop head would double peak memory.
                del z
                done += t_c
    finally:
        _return_scratch(scratch)
    obs_metrics.inc("mc.trials_simulated", n_trials)
    return success


def simulate_slot(
    problem: FadingRLS,
    active: Schedule | np.ndarray,
    *,
    noise: float | None = None,
    seed: SeedLike = None,
    channel: LawLike = None,
) -> np.ndarray:
    """One fading realisation: per-link success of a single slot.

    The slotted queue simulator (:mod:`repro.workload.queues`) calls
    this once per time slot with an identity-derived seed, so each
    slot's channel draw is a pure function of ``(problem, active,
    seed, channel)`` — independent of backend, process and call order.
    Returns a ``(K,)`` bool array over the active links in *sorted
    index order* (the same convention as :func:`simulate_trials`).
    """
    success = simulate_trials(problem, active, 1, noise=noise, seed=seed, channel=channel)
    return success[0]


def simulate_schedule(
    problem: FadingRLS,
    schedule: Schedule | np.ndarray,
    *,
    n_trials: int = 1000,
    noise: float | None = None,
    seed: SeedLike = None,
    max_bytes: int | None = None,
    channel: LawLike = None,
) -> SimulationResult:
    """Replay a schedule and summarise the paper's metrics.

    Returns a :class:`~repro.sim.metrics.SimulationResult` with mean
    failed-transmission counts, throughput, and per-link empirical
    success rates.  The analytic cross-check
    (:meth:`FadingRLS.success_probabilities`) should match the empirical
    rates within Monte-Carlo error — the integration tests assert it.
    That cross-check is Rayleigh-specific: under a non-Rayleigh
    ``channel`` the empirical rates estimate that law's success
    probabilities instead (closed forms, where they exist, live on the
    law — see :meth:`~repro.channel.laws.ChannelLaw.success_probability`).
    ``max_bytes`` bounds the replay's peak memory (see
    :func:`simulate_trials`); the summary is identical for every budget.
    """
    active = schedule.active if isinstance(schedule, Schedule) else np.asarray(schedule)
    mask = problem.active_mask(active)
    idx = np.flatnonzero(mask)
    success = simulate_trials(
        problem, idx, n_trials, noise=noise, seed=seed, max_bytes=max_bytes,
        channel=channel,
    )
    rates = problem.links.rates[idx]
    algorithm = schedule.algorithm if isinstance(schedule, Schedule) else "raw"
    return summarize_trials(success, rates, active_indices=idx, algorithm=algorithm)
