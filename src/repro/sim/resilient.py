"""Fault-tolerant process-pool execution.

:func:`resilient_map` is the hardened sibling of
:func:`repro.sim.parallel.parallel_map`: same order-preserving map over
a process pool, but a worker crash, hang, dead process, or poisoned
result costs one retry instead of the whole sweep.

Supervision model
-----------------
Every item gets ``max_retries + 2`` total tries: the initial attempt,
``max_retries`` pool retries with deterministic exponential backoff,
and — once pool retries are exhausted — one final **serial** attempt in
the coordinating process (graceful degradation: a sick pool can no
longer lose the unit).  Only when that last try fails does the map
raise, and then it raises :class:`UnitExecutionError` naming the unit
and carrying every recorded :class:`UnitFailure`.

Failure detection, per kind:

- **exception** — the future completes with an error; that unit retries.
- **timeout** — ``unit_timeout`` seconds elapse after submission.  A
  hung task holds its worker hostage, so the pool is abandoned
  (processes killed) and rebuilt; the timed-out unit is charged a
  retry, in-flight innocents are resubmitted at their current attempt.
- **dead worker** — the pool turns ``BrokenProcessPool``.  The executor
  cannot attribute the death, so every in-flight unit is charged one
  retry (bounded blast radius) and the pool is rebuilt.
- **poison** — the future returns, but the value fails validation
  (``validate`` or an injected :class:`~repro.faults.inject.PoisonResult`);
  charged like an exception.

Determinism under retry
-----------------------
A retry re-submits the *same item* to the *same function*; per-unit
seeds derive from unit identity (see :mod:`repro.sim.parallel`), never
from the attempt number or worker, so a recovered run is bit-identical
to a fault-free run.  Backoff delays derive from
``stable_seed(unit key, attempt)`` — deterministic, monotone
non-decreasing per attempt, and capped — so even retry *timing* is
reproducible.  Results fold in submission order regardless of
completion order, and worker observability payloads fold the same way,
so metric snapshots match the serial run byte-for-byte (execution-plan
events land in volatile ``resilience.*`` counters, excluded from the
byte-identity contract — see ``docs/OBSERVABILITY.md``).

Serial mode (``n_jobs=1``) applies the same retry budget in-process;
``unit_timeout`` is not enforceable without preemption there, but hang
faults still terminate because injected hangs sleep-then-raise.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.faults import inject
from repro.obs import metrics as obs_metrics
from repro.obs import state as _obs_state
from repro.obs import trace as _obs_trace
from repro.obs.trace import span
from repro.utils.rng import stable_seed


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the resilient executor.

    Attributes
    ----------
    max_retries:
        Pool retries per unit after the initial attempt.  Every unit
        additionally gets one last serial attempt in the parent, so the
        total try budget is ``max_retries + 2``.
    unit_timeout:
        Wall-clock seconds a unit may run in a worker before it is
        declared hung (``None`` disables timeout supervision; serial
        mode never preempts).
    backoff_base, backoff_cap:
        Deterministic exponential backoff before retry ``a`` (1-based):
        ``min(cap, base * 2^(a-1) * (1 + u))`` with ``u`` in ``[0, 1)``
        derived from ``stable_seed(unit key, a)``.  Total sleep per unit
        is strictly bounded by ``(max_retries + 1) * backoff_cap``.
    poll_interval:
        Seconds between supervision sweeps (future completion polls and
        deadline checks).
    """

    max_retries: int = 2
    unit_timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.unit_timeout is not None and not self.unit_timeout > 0:
            raise ValueError(f"unit_timeout must be > 0, got {self.unit_timeout}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_cap < 0:
            raise ValueError(f"backoff_cap must be >= 0, got {self.backoff_cap}")
        if not self.poll_interval > 0:
            raise ValueError(f"poll_interval must be > 0, got {self.poll_interval}")

    @property
    def total_tries(self) -> int:
        """Initial attempt + pool retries + final serial fallback."""
        return self.max_retries + 2


def backoff_delay(key: str, attempt: int, policy: RetryPolicy) -> float:
    """Deterministic backoff (seconds) before 1-based retry ``attempt``.

    Pure in ``(key, attempt, policy)``: the jitter term is a hash of the
    unit key and attempt, not a random draw, so schedules are
    reproducible and testable.  Monotone non-decreasing in ``attempt``
    (the doubling dominates the jitter) and capped at
    ``policy.backoff_cap``.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    if policy.backoff_base == 0.0:
        return 0.0
    u = stable_seed("backoff", key, attempt) / float(1 << 63)
    raw = policy.backoff_base * (2.0 ** (attempt - 1)) * (1.0 + u)
    return min(policy.backoff_cap, raw)


@dataclass(frozen=True)
class UnitFailure:
    """One failed try of one unit (kept for the structured error)."""

    key: str
    attempt: int
    kind: str  # "error" | "timeout" | "poison" | "pool-broken"
    detail: str


class UnitExecutionError(RuntimeError):
    """A unit failed every try in its budget; names the unit."""

    def __init__(self, key: str, index: int, failures: Sequence[UnitFailure]):
        self.key = key
        self.index = index
        self.failures: Tuple[UnitFailure, ...] = tuple(failures)
        kinds = ", ".join(f.kind for f in self.failures)
        last = self.failures[-1].detail if self.failures else "no failure recorded"
        super().__init__(
            f"work unit {key!r} (index {index}) failed permanently after "
            f"{len(self.failures)} failed tries ({kinds}); last: {last}"
        )


def _invoke(func: Callable[[Any], Any], item: Any, key: str, attempt: int) -> Any:
    """Run one try: fault-injection gate first, then the real unit."""
    poisoned = inject.maybe_inject(key, attempt)
    if poisoned is not None:
        return poisoned
    return func(item)


def _run_task(
    func: Callable[[Any], Any], item: Any, key: str, attempt: int, observed: bool
) -> Tuple[Any, Any, Any]:
    """Worker-process entry point (module-level, hence picklable).

    With observability on, mirrors ``parallel._ObservedCall``: fresh
    registries per try, and the try's metric snapshot plus drained
    spans ride home with the value.
    """
    if not observed:
        return _invoke(func, item, key, attempt), None, None
    _obs_state.enable()
    obs_metrics.reset()
    _obs_trace.reset()
    value = _invoke(func, item, key, attempt)
    return value, obs_metrics.snapshot(), _obs_trace.drain_spans()


def _poison_reason(value: Any, validate: Optional[Callable[[Any], bool]]) -> Optional[str]:
    """Why ``value`` is unusable, or ``None`` if it is a real result."""
    if isinstance(value, inject.PoisonResult):
        return f"injected poison result (attempt {value.attempt})"
    if validate is not None and not validate(value):
        return f"result failed validation: {type(value).__name__}"
    return None


def _backoff_sleep(key: str, attempt: int, policy: RetryPolicy) -> None:
    delay = backoff_delay(key, attempt, policy)
    if delay <= 0.0:
        return
    with span("resilience.backoff", attempt=attempt):
        time.sleep(delay)


def _abandon(pool: ProcessPoolExecutor) -> None:
    """Discard a pool without waiting on it: hung workers are killed.

    ``shutdown(wait=True)`` would block on a sleeping worker; instead
    the queues are torn down and the processes killed outright (their
    tasks are already accounted for by the supervision loop).
    """
    # Snapshot the worker processes BEFORE shutdown(): it unconditionally
    # drops the executor's reference (``self._processes = None``), so
    # reading it afterwards finds nothing and hung workers would survive
    # to stall interpreter exit until their sleep expires.
    processes = dict(getattr(pool, "_processes", None) or {})
    # Forget pending work before the kill lands: the manager thread's
    # broken-pool path sets an exception on every pending future, racing
    # the ones the supervision loop already resolved (InvalidStateError
    # in the manager thread).  Supervision keeps its own futures map, so
    # the executor's bookkeeping can be dropped wholesale.
    pending = getattr(pool, "_pending_work_items", None)
    if pending is not None:
        pending.clear()
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in processes.values():
        try:
            proc.kill()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
    for proc in processes.values():
        try:
            proc.join(timeout=1.0)  # reap; SIGKILL lands immediately
        except Exception:  # pragma: no cover - best-effort cleanup
            pass


def _serial_unit(
    func: Callable[[Any], Any],
    item: Any,
    key: str,
    index: int,
    policy: RetryPolicy,
    validate: Optional[Callable[[Any], bool]],
    on_result: Optional[Callable[[int, Any], None]],
) -> Any:
    """The in-process retry loop (``n_jobs=1`` path)."""
    failures: List[UnitFailure] = []
    for attempt in range(policy.total_tries):
        if attempt:
            obs_metrics.inc("resilience.retries")
            _backoff_sleep(key, attempt, policy)
        try:
            value = _invoke(func, item, key, attempt)
        except Exception as exc:
            failures.append(
                UnitFailure(key, attempt, "error", f"{type(exc).__name__}: {exc}")
            )
            obs_metrics.inc("resilience.failures")
            continue
        reason = _poison_reason(value, validate)
        if reason is not None:
            failures.append(UnitFailure(key, attempt, "poison", reason))
            obs_metrics.inc("resilience.failures")
            continue
        if failures:
            obs_metrics.inc("resilience.units_recovered")
        if on_result is not None:
            on_result(index, value)
        return value
    raise UnitExecutionError(key, index, failures)


def resilient_map(
    func: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    keys: Optional[Sequence[str]] = None,
    n_jobs: Optional[int] = 1,
    policy: Optional[RetryPolicy] = None,
    validate: Optional[Callable[[Any], bool]] = None,
    on_result: Optional[Callable[[int, Any], None]] = None,
) -> List[Any]:
    """Order-preserving, fault-tolerant map (see the module docstring).

    Parameters
    ----------
    func, items, n_jobs:
        As :func:`repro.sim.parallel.parallel_map`; both ``func`` and
        the items must be picklable for ``n_jobs > 1``.
    keys:
        Stable per-item identity strings (fault-plan addressing,
        backoff derivation, error messages).  Defaults to
        ``"item-<index>"``.
    policy:
        Retry/timeout knobs; default :class:`RetryPolicy`.
    validate:
        Optional result predicate; a falsy verdict counts as a poison
        failure and triggers a retry.
    on_result:
        Parent-side hook ``(index, value)`` invoked once per item on
        its first success, in *completion* order — the checkpoint
        write-through.
    """
    from repro.sim.parallel import resolve_n_jobs

    policy = policy or RetryPolicy()
    items = list(items)
    if keys is None:
        keys = [f"item-{i}" for i in range(len(items))]
    keys = [str(k) for k in keys]
    if len(keys) != len(items):
        raise ValueError(f"got {len(keys)} keys for {len(items)} items")
    jobs = resolve_n_jobs(n_jobs)
    workers = max(1, min(jobs, len(items)))
    with span("parallel.resilient", items=len(items), jobs=workers):
        if jobs == 1 or len(items) <= 1:
            return [
                _serial_unit(func, item, key, i, policy, validate, on_result)
                for i, (item, key) in enumerate(zip(items, keys))
            ]
        # No eager pickling probe: the pool serializes every submission
        # anyway, and _pool_map converts a pickling failure into the
        # readable ValueError instead of charging retries for it.
        return _pool_map(func, items, keys, workers, policy, validate, on_result)


def _pool_map(
    func: Callable[[Any], Any],
    items: List[Any],
    keys: List[str],
    workers: int,
    policy: RetryPolicy,
    validate: Optional[Callable[[Any], bool]],
    on_result: Optional[Callable[[int, Any], None]],
) -> List[Any]:
    """Supervised pool execution with retry, timeout, and pool rebuild."""
    from repro.sim.parallel import _looks_like_pickling_error, _raise_pickling_diagnosis

    n = len(items)
    observed = _obs_state.enabled
    results: Dict[int, Any] = {}
    payloads: Dict[int, Tuple[Any, Any]] = {}
    attempts: List[int] = [0] * n
    failures: List[List[UnitFailure]] = [[] for _ in range(n)]
    needs_submit: Set[int] = set(range(n))
    futures: Dict[Future, int] = {}
    deadlines: Dict[Future, Optional[float]] = {}
    pool = ProcessPoolExecutor(max_workers=workers)

    def succeed(idx: int, value: Any, payload: Optional[Tuple[Any, Any]]) -> None:
        results[idx] = value
        if payload is not None:
            payloads[idx] = payload
        if failures[idx]:
            obs_metrics.inc("resilience.units_recovered")
        if on_result is not None:
            on_result(idx, value)

    def fail(idx: int, kind: str, detail: str) -> None:
        """Charge one failed try; retry in-pool or degrade to serial."""
        failures[idx].append(UnitFailure(keys[idx], attempts[idx], kind, detail))
        obs_metrics.inc("resilience.failures")
        attempts[idx] += 1
        if attempts[idx] <= policy.max_retries:
            obs_metrics.inc("resilience.retries")
            needs_submit.add(idx)
            return
        # Pool retries exhausted: last-resort serial attempt in-parent.
        # Metrics/spans it records land in the live registry directly;
        # counters and histograms are order-free, so the fold stays
        # byte-identical (gauges are not used on the unit path).
        obs_metrics.inc("resilience.serial_fallbacks")
        attempt = attempts[idx]
        try:
            value = _invoke(func, items[idx], keys[idx], attempt)
        except Exception as exc:
            failures[idx].append(
                UnitFailure(keys[idx], attempt, "error", f"{type(exc).__name__}: {exc}")
            )
            obs_metrics.inc("resilience.failures")
            raise UnitExecutionError(keys[idx], idx, failures[idx])
        reason = _poison_reason(value, validate)
        if reason is not None:
            failures[idx].append(UnitFailure(keys[idx], attempt, "poison", reason))
            obs_metrics.inc("resilience.failures")
            raise UnitExecutionError(keys[idx], idx, failures[idx])
        succeed(idx, value, None)

    def rebuild() -> None:
        nonlocal pool
        _abandon(pool)
        obs_metrics.inc("resilience.pool_rebuilds")
        pool = ProcessPoolExecutor(max_workers=workers)

    try:
        while len(results) < n:
            for idx in sorted(needs_submit):
                attempt = attempts[idx]
                if attempt:
                    _backoff_sleep(keys[idx], attempt, policy)
                fut = pool.submit(_run_task, func, items[idx], keys[idx], attempt, observed)
                futures[fut] = idx
                deadlines[fut] = (
                    time.monotonic() + policy.unit_timeout
                    if policy.unit_timeout is not None
                    else None
                )
            needs_submit.clear()
            if not futures:
                if len(results) < n:  # pragma: no cover - supervision invariant
                    raise RuntimeError("resilient pool lost track of unfinished units")
                break
            done, _ = wait(
                set(futures), timeout=policy.poll_interval, return_when=FIRST_COMPLETED
            )
            broken = False
            for fut in done:
                idx = futures.pop(fut)
                deadlines.pop(fut, None)
                try:
                    value, snap, spans = fut.result()
                except BrokenExecutor as exc:
                    broken = True
                    fail(idx, "pool-broken", f"{type(exc).__name__}: {exc}")
                except Exception as exc:
                    if _looks_like_pickling_error(exc):
                        # Deterministic environment error, not a fault:
                        # retrying (and eventually "succeeding" via the
                        # in-parent serial fallback, which never pickles)
                        # would mask it.  Fail fast with the readable
                        # diagnosis instead.
                        _raise_pickling_diagnosis(func, items, exc)
                    fail(idx, "error", f"{type(exc).__name__}: {exc}")
                else:
                    reason = _poison_reason(value, validate)
                    if reason is not None:
                        fail(idx, "poison", reason)
                    else:
                        succeed(idx, value, (snap, spans) if observed else None)
            if broken:
                # The pool is unusable and the death is unattributable:
                # charge every in-flight unit one try (bounded blast
                # radius) and start a fresh pool.
                for fut, idx in list(futures.items()):
                    fail(idx, "pool-broken", "worker process died; pool became unusable")
                futures.clear()
                deadlines.clear()
                rebuild()
                continue
            if policy.unit_timeout is not None and futures:
                now = time.monotonic()
                hung = [f for f, dl in deadlines.items() if dl is not None and now >= dl]
                if hung:
                    for fut in hung:
                        idx = futures.pop(fut)
                        deadlines.pop(fut, None)
                        obs_metrics.inc("resilience.timeouts")
                        fail(
                            idx,
                            "timeout",
                            f"unit exceeded unit_timeout={policy.unit_timeout}s",
                        )
                    # Hung tasks hold their workers hostage — abandon the
                    # pool; in-flight innocents resubmit at their current
                    # attempt (no retry charged).
                    for fut, idx in list(futures.items()):
                        needs_submit.add(idx)
                    futures.clear()
                    deadlines.clear()
                    rebuild()
    finally:
        _abandon(pool)

    if observed:
        # Fold worker payloads in submission (index) order — the same
        # order the serial path produces, hence byte-identical snapshots.
        for idx in range(n):
            payload = payloads.get(idx)
            if payload is None:
                continue
            snap, spans = payload
            if snap:
                obs_metrics.merge_into_registry(snap)
            if spans:
                _obs_trace.absorb_spans(spans, proc=idx)
    return [results[i] for i in range(n)]
