"""Batched and streaming Monte-Carlo fading draws.

The simulator needs many independent realisations of the full
interference matrix restricted to an active set.  Sampling the ``(K, K)``
sub-matrix ``T`` times in one exponential draw keeps the hot path inside
NumPy (guide: one big vectorised draw beats ``T`` small ones) — but the
dense ``(T, K, K)`` tensor is ~20 GB at paper-grade settings
(``K = 500``, ``T = 10_000``).  :func:`iter_fading_trials` therefore
streams the same draw in trial chunks under a byte budget; consumers
reduce each chunk (SINR, success counts) and discard it.

RNG stream layout
-----------------
All fading variates come from **one** exponential stream consumed in C
order over the ``(T, K, K)`` index space: trial-major, then sender ``a``,
then receiver ``b``.  The diagonal own-signal variates ``Z[t, a, a]``
are *interleaved* members of that stream (drawn in their natural
position, not in a separate pass), and the deterministic mean scaling
``Z *= means`` happens **after** the draw, so it consumes no random
numbers.  Two consequences the chunked sampler relies on (and the tests
pin down):

1. chunking along the trial axis is *exact*: drawing ``(t1, K, K)`` then
   ``(t2, K, K)`` from the same generator concatenates to the identical
   variates as one ``(t1 + t2, K, K)`` draw — same seed, same successes,
   any chunk size;
2. the layout is a public contract: any alternative sampler (e.g. one
   that drew the diagonal separately, or scaled before drawing) would
   silently break seed-compatibility with recorded results.

The default draw is Rayleigh (one exponential stream).  Passing ``law=``
swaps in any registered :class:`~repro.channel.laws.ChannelLaw`
(Nakagami-m, Suzuki shadowing, deterministic); every law honours the
same chunk-invariance contract — see :mod:`repro.channel.laws` for how
each one lays out its stream(s).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Tuple, Union

import numpy as np

from repro.channel.pathloss import pathloss_matrix
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.utils.rng import SeedLike, as_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (laws uses fading_means)
    from repro.channel.laws import ChannelLaw

LawLike = Union[None, str, "ChannelLaw"]

#: Default byte budget for one streamed chunk of fading trials
#: (see :func:`iter_fading_trials`).  128 MiB keeps the hot loop well
#: inside cache-friendly territory while still batching thousands of
#: trials for small ``K``.
DEFAULT_MAX_BYTES: int = 128 * 2**20


def _resolve_active(distances: np.ndarray, active: np.ndarray) -> np.ndarray:
    """Normalise ``active`` (mask or indices) to a sorted index array."""
    d = np.asarray(distances, dtype=float)
    n = d.shape[0]
    a = np.asarray(active)
    if a.dtype == bool:
        idx = np.flatnonzero(a)
    else:
        idx = np.unique(a.astype(np.int64).reshape(-1))
    if idx.size and (idx.min() < 0 or idx.max() >= n):
        raise IndexError("active indices out of range")
    return idx


def fading_means(
    distances: np.ndarray,
    active: np.ndarray,
    alpha: float,
    *,
    power: float | np.ndarray = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Active index array and the ``(K, K)`` mean received-power matrix.

    ``means[a, b] = P_a * d(s_a, r_b)^-alpha`` over the sorted active
    set — the Rayleigh fading draw is ``Exp(1)`` variates scaled by this
    matrix.  Shared by the batched and streaming samplers so both agree
    on the deterministic part of the draw.
    """
    d = np.asarray(distances, dtype=float)
    n = d.shape[0]
    idx = _resolve_active(d, active)
    p = np.asarray(power, dtype=float)
    if p.ndim == 0:
        means = pathloss_matrix(d[np.ix_(idx, idx)], alpha, float(p))
    else:
        if p.shape != (n,):
            raise ValueError(f"power must be scalar or shape ({n},), got {p.shape}")
        if np.any(p <= 0):
            raise ValueError("power must be positive")
        means = pathloss_matrix(d[np.ix_(idx, idx)], alpha) * p[idx, None]
    return idx, means


def _resolve_law(law: LawLike):
    """Resolve ``law`` to a :class:`~repro.channel.laws.ChannelLaw`, or
    ``None`` for the default Rayleigh fast path.

    The Rayleigh law's ``sample_chunk`` is bit-identical to the inline
    draw below, but the inline path skips the law dispatch, the
    ``channel.sample`` span and the ``channel.chunks_sampled`` counter —
    keeping the legacy hot path's bits *and* observability snapshots
    untouched.  Imported lazily: :mod:`repro.channel.laws` itself imports
    :func:`fading_means` from this module.
    """
    if law is None:
        return None
    from repro.channel.laws import RayleighLaw, get_channel_law

    resolved = get_channel_law(law)
    if type(resolved) is RayleighLaw:
        return None
    return resolved


def trial_chunk_size(k: int, max_bytes: int | None) -> int:
    """Trials per streamed chunk under a byte budget.

    Half the budget is reserved for the ``(chunk, K, K)`` float64 draw
    itself; the other half covers the reduction temporaries (per-trial
    row sums, SINR, success masks) so the *total* transient footprint of
    one chunk stays within ``max_bytes``.  Always at least 1 — a single
    trial matrix larger than the budget is drawn anyway (there is no
    smaller unit of work).
    """
    budget = DEFAULT_MAX_BYTES if max_bytes is None else int(max_bytes)
    if budget <= 0:
        raise ValueError(f"max_bytes must be positive, got {max_bytes}")
    per_trial = 8 * max(k, 1) * max(k, 1)
    return max(1, (budget // 2) // per_trial)


def iter_fading_trials(
    distances: np.ndarray,
    active: np.ndarray,
    alpha: float,
    n_trials: int,
    *,
    power: float | np.ndarray = 1.0,
    seed: SeedLike = None,
    max_bytes: int | None = None,
    chunk_trials: int | None = None,
    law: LawLike = None,
) -> Iterator[np.ndarray]:
    """Stream fading trials in chunks along the trial axis.

    Yields ``(t_c, K, K)`` arrays whose concatenation is *bit-identical*
    to ``sample_fading_trials(...)`` with the same seed (see the module
    docstring's RNG stream layout) — the chunk boundaries are invisible
    to the statistics.  Peak memory is one chunk, sized by
    :func:`trial_chunk_size` from ``max_bytes`` (default
    :data:`DEFAULT_MAX_BYTES`) unless ``chunk_trials`` pins it
    explicitly.

    Parameters match :func:`sample_fading_trials` plus:

    max_bytes:
        Approximate byte budget for one chunk *including* reduction
        temporaries; ``None`` uses :data:`DEFAULT_MAX_BYTES`.
    chunk_trials:
        Explicit trials-per-chunk override (``>= 1``); wins over
        ``max_bytes``.
    law:
        Channel law (spec string or :class:`~repro.channel.laws.ChannelLaw`)
        supplying the random factor; ``None``/Rayleigh keeps the inline
        exponential draw.  Every registered law honours the same
        chunk-invariant stream contract.
    """
    if n_trials < 0:
        raise ValueError("n_trials must be >= 0")
    resolved = _resolve_law(law)
    idx, means = fading_means(distances, active, alpha, power=power)
    k = idx.size
    if k == 0 or n_trials == 0:
        yield np.zeros((n_trials, k, k), dtype=float)
        return
    if chunk_trials is None:
        chunk_trials = trial_chunk_size(k, max_bytes)
    elif chunk_trials < 1:
        raise ValueError(f"chunk_trials must be >= 1, got {chunk_trials}")
    rng = as_rng(seed)
    state = None if resolved is None else resolved.start_stream(rng, means)
    done = 0
    while done < n_trials:
        t_c = min(chunk_trials, n_trials - done)
        if resolved is None:
            z = rng.exponential(1.0, size=(t_c, k, k))
            z *= means[None, :, :]
        else:
            with span("channel.sample", law=resolved.name, trials=t_c):
                z = resolved.sample_chunk(state, means, t_c)
            obs_metrics.inc("channel.chunks_sampled")
        obs_metrics.inc("mc.chunks_sampled")
        yield z
        # Drop our reference before drawing the next chunk so only one
        # chunk is ever alive (the consumer must do the same — see
        # simulate_trials); otherwise peak memory doubles.
        del z
        done += t_c


def sample_fading_trials(
    distances: np.ndarray,
    active: np.ndarray,
    alpha: float,
    n_trials: int,
    *,
    power: float | np.ndarray = 1.0,
    seed: SeedLike = None,
    law: LawLike = None,
) -> np.ndarray:
    """Sample instantaneous power matrices for an active set.

    Materialises the full ``(T, K, K)`` tensor — convenient for small
    replays and tests; the simulator's hot path streams the same values
    through :func:`iter_fading_trials` instead.  ``law`` selects the
    channel law (``None`` = Rayleigh); for every registered law the
    result is bit-identical to concatenating the streamed chunks.

    Parameters
    ----------
    distances : (N, N) array
        Full sender-to-receiver distance matrix.
    active:
        Bool mask ``(N,)`` or index array selecting the transmitting set.
    alpha:
        Path loss exponent.
    power:
        Uniform transmit power, or an ``(N,)`` per-sender power array
        (row ``a`` of each trial matrix scales with sender ``a``'s power).
    n_trials:
        Number of independent fading realisations ``T``.

    Returns
    -------
    (T, K, K) array ``Z`` with ``Z[t, a, b]`` the instantaneous power
    receiver ``b`` sees from sender ``a`` in trial ``t`` (indices within
    the sorted active set).
    """
    if n_trials < 0:
        raise ValueError("n_trials must be >= 0")
    resolved = _resolve_law(law)
    idx, means = fading_means(distances, active, alpha, power=power)
    k = idx.size
    if k == 0 or n_trials == 0:
        return np.zeros((n_trials, k, k), dtype=float)
    rng = as_rng(seed)
    if resolved is None:
        z = rng.exponential(1.0, size=(n_trials, k, k))
        z *= means[None, :, :]
        return z
    state = resolved.start_stream(rng, means)
    return resolved.sample_chunk(state, means, n_trials)


def instantaneous_sinr(z: np.ndarray, *, noise: float = 0.0) -> np.ndarray:
    """SINR per receiver from sampled power matrices.

    Parameters
    ----------
    z : (T, K, K) array
        Output of :func:`sample_fading_trials` (or one chunk of
        :func:`iter_fading_trials`).
    noise:
        Ambient noise ``N0`` added to the interference sum (the paper's
        analysis sets it to 0; the simulator keeps it optional).

    Returns
    -------
    (T, K) array of instantaneous SINRs; a lone transmitter with zero
    noise has SINR ``inf``.

    Notes
    -----
    Only the column sums of ``z`` (total power per receiver) and its
    diagonal (own signal) are used — the reduction never copies the
    ``(T, K, K)`` input, so streaming one chunk at a time keeps peak
    memory at a single chunk.
    """
    zz = np.asarray(z, dtype=float)
    if zz.ndim != 3 or zz.shape[1] != zz.shape[2]:
        raise ValueError(f"z must have shape (T, K, K), got {zz.shape}")
    signal = np.diagonal(zz, axis1=1, axis2=2)
    interference = zz.sum(axis=1) - signal
    denom = interference + noise
    with np.errstate(divide="ignore", invalid="ignore"):
        sinr = np.where(denom > 0, signal / denom, np.inf)
    return sinr
