"""Batched Monte-Carlo fading draws.

The simulator needs many independent realisations of the full
interference matrix restricted to an active set.  Sampling the ``(K, K)``
sub-matrix ``T`` times in one exponential draw keeps the hot path inside
NumPy (guide: one big vectorised draw beats ``T`` small ones).
"""

from __future__ import annotations

import numpy as np

from repro.channel.pathloss import pathloss_matrix
from repro.utils.rng import SeedLike, as_rng


def sample_fading_trials(
    distances: np.ndarray,
    active: np.ndarray,
    alpha: float,
    n_trials: int,
    *,
    power: float | np.ndarray = 1.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Sample instantaneous power matrices for an active set.

    Parameters
    ----------
    distances : (N, N) array
        Full sender-to-receiver distance matrix.
    active:
        Bool mask ``(N,)`` or index array selecting the transmitting set.
    alpha:
        Path loss exponent.
    power:
        Uniform transmit power, or an ``(N,)`` per-sender power array
        (row ``a`` of each trial matrix scales with sender ``a``'s power).
    n_trials:
        Number of independent fading realisations ``T``.

    Returns
    -------
    (T, K, K) array ``Z`` with ``Z[t, a, b]`` the instantaneous power
    receiver ``b`` sees from sender ``a`` in trial ``t`` (indices within
    the sorted active set).
    """
    if n_trials < 0:
        raise ValueError("n_trials must be >= 0")
    d = np.asarray(distances, dtype=float)
    n = d.shape[0]
    a = np.asarray(active)
    if a.dtype == bool:
        idx = np.flatnonzero(a)
    else:
        idx = np.unique(a.astype(np.int64).reshape(-1))
    if idx.size and (idx.min() < 0 or idx.max() >= n):
        raise IndexError("active indices out of range")
    k = idx.size
    if k == 0 or n_trials == 0:
        return np.zeros((n_trials, k, k), dtype=float)
    rng = as_rng(seed)
    p = np.asarray(power, dtype=float)
    if p.ndim == 0:
        means = pathloss_matrix(d[np.ix_(idx, idx)], alpha, float(p))
    else:
        if p.shape != (n,):
            raise ValueError(f"power must be scalar or shape ({n},), got {p.shape}")
        if np.any(p <= 0):
            raise ValueError("power must be positive")
        means = pathloss_matrix(d[np.ix_(idx, idx)], alpha) * p[idx, None]
    return rng.exponential(1.0, size=(n_trials, k, k)) * means[None, :, :]


def instantaneous_sinr(z: np.ndarray, *, noise: float = 0.0) -> np.ndarray:
    """SINR per receiver from sampled power matrices.

    Parameters
    ----------
    z : (T, K, K) array
        Output of :func:`sample_fading_trials`.
    noise:
        Ambient noise ``N0`` added to the interference sum (the paper's
        analysis sets it to 0; the simulator keeps it optional).

    Returns
    -------
    (T, K) array of instantaneous SINRs; a lone transmitter with zero
    noise has SINR ``inf``.
    """
    zz = np.asarray(z, dtype=float)
    if zz.ndim != 3 or zz.shape[1] != zz.shape[2]:
        raise ValueError(f"z must have shape (T, K, K), got {zz.shape}")
    signal = np.diagonal(zz, axis1=1, axis2=2)
    interference = zz.sum(axis=1) - signal
    denom = interference + noise
    with np.errstate(divide="ignore", invalid="ignore"):
        sinr = np.where(denom > 0, signal / denom, np.inf)
    return sinr
