"""Rayleigh-fading channel law.

Under Rayleigh fading the instantaneous received power ``Z_ij`` from
sender ``i`` at receiver ``j`` is exponentially distributed with mean
``P * d_ij^-alpha`` (Eq. 4-5).  Theorem 3.1 gives the success
probability of an active link in closed form:

    ``Pr(X_j >= gamma_th)
        = prod_{i in P\\j} 1 / (1 + gamma_th * (d_jj / d_ij)^alpha)``

(the Laplace transform of the interference sum evaluated at
``gamma_th / (P d_jj^-alpha)``).  This module implements the law's CDF,
samplers, and that closed form, all vectorised over links.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.pathloss import mean_received_power
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive


def received_power_cdf(
    x: np.ndarray | float,
    distance: np.ndarray | float,
    alpha: float,
    power: float = 1.0,
) -> np.ndarray | float:
    """CDF of the instantaneous received power (Eq. 5).

    ``F(x) = 1 - exp(-x / (P d^-alpha))`` for ``x >= 0`` (0 below).
    Broadcasts ``x`` against ``distance``.
    """
    mean = mean_received_power(distance, alpha, power)
    xv = np.asarray(x, dtype=float)
    out = np.where(xv >= 0.0, 1.0 - np.exp(-np.maximum(xv, 0.0) / mean), 0.0)
    return float(out) if out.ndim == 0 else out


def sample_received_power(
    distance: np.ndarray | float,
    alpha: float,
    *,
    power: float = 1.0,
    size: int | tuple | None = None,
    seed: SeedLike = None,
) -> np.ndarray | float:
    """Draw instantaneous received powers ``Z ~ Exp(mean = P d^-alpha)``.

    ``size`` prepends extra sample axes to the shape of ``distance``
    (e.g. ``size=T`` with a ``(N, N)`` distance matrix yields
    ``(T, N, N)`` independent draws).
    """
    rng = as_rng(seed)
    mean = np.asarray(mean_received_power(distance, alpha, power), dtype=float)
    if size is None:
        shape = mean.shape
    elif isinstance(size, int):
        shape = (size,) + mean.shape
    else:
        shape = tuple(size) + mean.shape
    out = rng.exponential(1.0, size=shape) * mean
    return float(out) if out.ndim == 0 else out


def success_probability(
    distances: np.ndarray,
    active: np.ndarray,
    alpha: float,
    gamma_th: float,
    *,
    noise: float = 0.0,
    power: float | np.ndarray = 1.0,
    log: bool = False,
) -> np.ndarray:
    """Closed-form success probability per active link (Theorem 3.1).

    Parameters
    ----------
    distances : (N, N) array
        ``distances[i, j] = d(s_i, r_j)``.
    active:
        Bool mask of shape ``(N,)`` or integer index array: the
        concurrently transmitting set ``P``.
    alpha, gamma_th:
        Path loss exponent and decoding threshold.
    noise:
        Ambient noise ``N0 >= 0``.  The paper's Eq. 9 is the ``N0 = 0``
        case; with noise the standard Rayleigh extension multiplies in
        ``e^(-gamma_th N0 d_jj^alpha / P_j)``.
    power:
        Uniform transmit power, or an ``(N,)`` array of per-link powers
        (power cancels from the interference ratio only when uniform).
    log:
        When true, return log-probabilities (numerically exact for very
        small success probabilities; the negative of the summed
        interference factors of Corollary 3.1 plus the noise factor).

    Returns
    -------
    (K,) array ordered like the sorted active indices.

    Notes
    -----
    Computed as
    ``exp(-nu_j - sum_i ln(1 + gamma_th (P_i/P_j)(d_jj/d_ij)^alpha))``
    with :func:`numpy.log1p` for accuracy at small interference.
    """
    check_positive(alpha, "alpha")
    check_positive(gamma_th, "gamma_th")
    if noise < 0:
        raise ValueError(f"noise must be >= 0, got {noise}")
    d = np.asarray(distances, dtype=float)
    n = d.shape[0]
    if d.shape != (n, n):
        raise ValueError(f"distances must be square, got {d.shape}")
    p = np.asarray(power, dtype=float)
    if p.ndim == 0:
        p = np.full(n, float(p))
    elif p.shape != (n,):
        raise ValueError(f"power must be scalar or shape ({n},), got {p.shape}")
    if np.any(p <= 0):
        raise ValueError("power must be positive")
    idx = _as_index(active, n)
    if idx.size == 0:
        return np.zeros(0, dtype=float)
    sub = d[np.ix_(idx, idx)]  # sub[a, b] = d(s_{idx_a}, r_{idx_b})
    own = np.diag(sub)  # d_jj for each active link
    p_sub = p[idx]
    ratio = (own[None, :] / sub) ** alpha * (p_sub[:, None] / p_sub[None, :])
    factors = np.log1p(gamma_th * ratio)
    np.fill_diagonal(factors, 0.0)
    nu = gamma_th * noise * own**alpha / p_sub
    log_p = -factors.sum(axis=0) - nu
    return log_p if log else np.exp(log_p)


@dataclass(frozen=True)
class RayleighChannel:
    """Bundled Rayleigh-channel parameters.

    A convenience facade over the free functions for examples and the
    simulator: fixes ``alpha`` (and transmit power for the samplers) so
    call sites read like the paper's notation.
    """

    alpha: float
    power: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.alpha, "alpha")
        check_positive(self.power, "power")

    def mean_power(self, distance: np.ndarray | float) -> np.ndarray | float:
        """``E[Z] = P d^-alpha``."""
        return mean_received_power(distance, self.alpha, self.power)

    def cdf(self, x: np.ndarray | float, distance: np.ndarray | float) -> np.ndarray | float:
        """Instantaneous-power CDF (Eq. 5)."""
        return received_power_cdf(x, distance, self.alpha, self.power)

    def sample(
        self,
        distance: np.ndarray | float,
        *,
        size: int | tuple | None = None,
        seed: SeedLike = None,
    ) -> np.ndarray | float:
        """Sample instantaneous powers."""
        return sample_received_power(
            distance, self.alpha, power=self.power, size=size, seed=seed
        )

    def success_probability(
        self, distances: np.ndarray, active: np.ndarray, gamma_th: float
    ) -> np.ndarray:
        """Theorem 3.1 closed form for this channel."""
        return success_probability(distances, active, self.alpha, gamma_th)


def _as_index(active: np.ndarray, n: int) -> np.ndarray:
    a = np.asarray(active)
    if a.dtype == bool:
        if a.shape != (n,):
            raise ValueError(f"boolean active mask must have shape ({n},), got {a.shape}")
        return np.flatnonzero(a)
    idx = np.unique(a.astype(np.int64).reshape(-1))
    if idx.size and (idx.min() < 0 or idx.max() >= n):
        raise IndexError(f"active indices out of range for {n} links")
    return idx
