"""Nakagami-m fading (generalisation of the paper's Rayleigh channel).

Under Nakagami-m fading the instantaneous received power is Gamma
distributed with shape ``m`` and mean ``P d^-alpha``:

    ``Z ~ Gamma(shape=m, scale=P d^-alpha / m)``.

``m = 1`` is exactly the paper's Rayleigh channel (exponential power);
larger ``m`` means milder fading (the power concentrates around its
mean), ``m -> inf`` recovers the deterministic model.  The paper's
closed form (Thm 3.1) is Rayleigh-specific, so for general ``m`` this
module provides:

- the exact sampler (:func:`sample_received_power_nakagami`),
- a Monte-Carlo success-probability estimator
  (:func:`success_probability_nakagami`) with the exact Rayleigh
  closed form recovered at ``m = 1`` (tests pin the equivalence),
- :func:`fading_severity_sweep`, the "how much does resistance cost"
  curve across ``m`` used by the extended example.

This is a *simulation substrate* extension: the scheduling algorithms
keep their Rayleigh-based feasibility test (a conservative choice for
``m > 1``, since milder fading only raises success probabilities — a
fact the tests verify empirically).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.channel.pathloss import pathloss_matrix
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive


def sample_received_power_nakagami(
    distance: np.ndarray | float,
    alpha: float,
    m: float,
    *,
    power: float = 1.0,
    size: int | tuple | None = None,
    seed: SeedLike = None,
) -> np.ndarray | float:
    """Draw instantaneous received powers under Nakagami-m fading.

    ``Z ~ Gamma(m, mean/m)`` with ``mean = P d^-alpha``; ``size``
    prepends sample axes like the Rayleigh sampler.
    """
    check_positive(m, "m")
    rng = as_rng(seed)
    d = np.asarray(distance, dtype=float)
    if np.any(d <= 0):
        raise ValueError("distances must be positive")
    mean = power * d**-alpha
    if size is None:
        shape = mean.shape
    elif isinstance(size, int):
        shape = (size,) + mean.shape
    else:
        shape = tuple(size) + mean.shape
    out = rng.gamma(shape=m, scale=1.0 / m, size=shape) * mean
    return float(out) if np.ndim(out) == 0 else out


def sample_nakagami_trials(
    distances: np.ndarray,
    active: np.ndarray,
    alpha: float,
    m: float,
    n_trials: int,
    *,
    power: float = 1.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Nakagami analogue of
    :func:`repro.channel.sampling.sample_fading_trials`: ``(T, K, K)``
    instantaneous power matrices for an active set."""
    if n_trials < 0:
        raise ValueError("n_trials must be >= 0")
    check_positive(m, "m")
    d = np.asarray(distances, dtype=float)
    n = d.shape[0]
    a = np.asarray(active)
    idx = np.flatnonzero(a) if a.dtype == bool else np.unique(a.astype(np.int64).reshape(-1))
    if idx.size and (idx.min() < 0 or idx.max() >= n):
        raise IndexError("active indices out of range")
    k = idx.size
    if k == 0 or n_trials == 0:
        return np.zeros((n_trials, k, k), dtype=float)
    rng = as_rng(seed)
    means = pathloss_matrix(d[np.ix_(idx, idx)], alpha, power)
    return rng.gamma(shape=m, scale=1.0 / m, size=(n_trials, k, k)) * means[None, :, :]


def success_probability_nakagami(
    distances: np.ndarray,
    active: np.ndarray,
    alpha: float,
    gamma_th: float,
    m: float,
    *,
    n_trials: int = 20_000,
    noise: float = 0.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Monte-Carlo success probability per active link under Nakagami-m.

    At ``m = 1`` this estimates the paper's Thm 3.1 closed form (the
    tests assert agreement); for other ``m`` no product closed form
    exists, so sampling is the honest estimator.
    """
    z = sample_nakagami_trials(distances, active, alpha, m, n_trials, seed=seed)
    if z.shape[1] == 0 or n_trials == 0:
        return np.zeros(z.shape[1], dtype=float)
    signal = np.diagonal(z, axis1=1, axis2=2)
    interference = z.sum(axis=1) - signal + noise
    with np.errstate(divide="ignore", invalid="ignore"):
        sinr = np.where(interference > 0, signal / interference, np.inf)
    return (sinr >= gamma_th).mean(axis=0)


@dataclass(frozen=True)
class NakagamiChannel:
    """Bundled Nakagami-m channel parameters (``m = 1`` == Rayleigh)."""

    alpha: float
    m: float = 1.0
    power: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.alpha, "alpha")
        check_positive(self.m, "m")
        check_positive(self.power, "power")

    def sample(self, distance, *, size=None, seed: SeedLike = None):
        """Sample instantaneous received powers for this channel."""
        return sample_received_power_nakagami(
            distance, self.alpha, self.m, power=self.power, size=size, seed=seed
        )

    def success_probability(
        self, distances, active, gamma_th, *, n_trials=20_000, seed: SeedLike = None
    ):
        """Monte-Carlo success probability per active link."""
        return success_probability_nakagami(
            distances, active, self.alpha, gamma_th, self.m, n_trials=n_trials, seed=seed
        )


def fading_severity_sweep(
    problem,
    active,
    m_values: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 8.0),
    *,
    n_trials: int = 20_000,
    seed: SeedLike = None,
) -> Dict[float, float]:
    """Mean per-link success probability of a schedule across ``m``.

    Returns ``{m: mean success probability}``.  Since larger ``m``
    concentrates power around its mean, Rayleigh-feasible schedules can
    only get *more* reliable as ``m`` grows past 1 (tests check the
    trend), quantifying how conservative the paper's model is for
    milder channels.
    """
    mask = problem.active_mask(active)
    idx = np.flatnonzero(mask)
    out: Dict[float, float] = {}
    rng = as_rng(seed)
    for m in m_values:
        probs = success_probability_nakagami(
            problem.distances(),
            idx,
            problem.alpha,
            problem.gamma_th,
            m,
            n_trials=n_trials,
            noise=problem.noise,
            seed=rng,
        )
        out[float(m)] = float(probs.mean()) if probs.size else 1.0
    return out
