"""Log-distance path loss.

Both the deterministic SINR model and the Rayleigh model share the mean
power law ``E[Z] = P * d^-alpha`` (Eq. 4); under Rayleigh fading the
instantaneous power fluctuates exponentially around that mean, under the
deterministic model it *is* that mean.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


def mean_received_power(
    distance: np.ndarray | float,
    alpha: float,
    power: float = 1.0,
) -> np.ndarray | float:
    """Mean received power ``P * d^-alpha`` (elementwise).

    Parameters
    ----------
    distance:
        Scalar or array of positive distances.
    alpha:
        Path loss exponent; the paper assumes ``alpha > 2`` for its
        constants but the power law itself only needs ``alpha > 0``.
    power:
        Transmit power ``P`` (the paper normalises to 1 throughout
        because only power *ratios* enter the SINR).
    """
    check_positive(alpha, "alpha")
    check_positive(power, "power")
    d = np.asarray(distance, dtype=float)
    if np.any(d <= 0):
        raise ValueError("distances must be positive")
    out = power * d**-alpha
    return float(out) if np.isscalar(distance) or out.ndim == 0 else out


def pathloss_matrix(distances: np.ndarray, alpha: float, power: float = 1.0) -> np.ndarray:
    """Matrix of mean received powers ``P * D^-alpha``.

    ``distances[i, j]`` is the distance from sender ``i`` to receiver
    ``j``; the result's ``[i, j]`` entry is the mean power receiver ``j``
    sees from sender ``i``.
    """
    check_positive(alpha, "alpha")
    check_positive(power, "power")
    d = np.asarray(distances, dtype=float)
    if np.any(d <= 0):
        raise ValueError("distance matrix must be strictly positive")
    return power * d**-alpha
