"""Log-normal shadowing composed with Rayleigh fading (Suzuki model).

Real channels fade on two time scales: fast multipath (the paper's
Rayleigh term) and slow shadowing by obstacles, conventionally modelled
as a log-normal factor with spread ``sigma_db`` decibels.  The composite
instantaneous power is

    ``Z = 10^(G/10) * E,   G ~ Normal(0, sigma_db),``
    ``E ~ Exp(P d^-alpha)``

(with the log-normal mean-corrected so ``E[Z] = P d^-alpha`` when
``normalize=True``).  No closed-form product like Thm 3.1 exists for
the composite, so the module offers the exact sampler plus a
Monte-Carlo success estimator, and tests pin the ``sigma_db = 0``
Rayleigh limit.  The practical question it answers: how much margin do
the paper's schedules keep when shadowing is added on top of the model
they were certified against?  (See the shadowing tests: moderate
shadowing degrades gracefully because shadowing hits signal and
interference symmetrically.)
"""

from __future__ import annotations

import numpy as np

from repro.channel.pathloss import pathloss_matrix
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive

LN10_OVER_10 = np.log(10.0) / 10.0


def _lognormal_factor(
    rng: np.random.Generator, sigma_db: float, shape: tuple, normalize: bool
) -> np.ndarray:
    """Sample the shadowing gain ``10^(G/10)``; unit mean if normalised."""
    if sigma_db == 0.0:
        return np.ones(shape)
    sigma_nat = sigma_db * LN10_OVER_10
    gains = np.exp(rng.normal(0.0, sigma_nat, size=shape))
    if normalize:
        gains /= np.exp(0.5 * sigma_nat**2)  # E[lognormal] correction
    return gains


def sample_shadowed_trials(
    distances: np.ndarray,
    active: np.ndarray,
    alpha: float,
    sigma_db: float,
    n_trials: int,
    *,
    power: float = 1.0,
    normalize: bool = True,
    shadowing_static: bool = True,
    seed: SeedLike = None,
) -> np.ndarray:
    """Composite shadowing + Rayleigh power matrices, shape ``(T, K, K)``.

    ``shadowing_static=True`` draws one shadowing gain per (sender,
    receiver) pair shared by all trials (slow fading: the obstacle field
    does not change between slots); ``False`` redraws per trial.
    """
    if n_trials < 0:
        raise ValueError("n_trials must be >= 0")
    if sigma_db < 0:
        raise ValueError("sigma_db must be >= 0")
    check_positive(alpha, "alpha")
    d = np.asarray(distances, dtype=float)
    n = d.shape[0]
    a = np.asarray(active)
    idx = np.flatnonzero(a) if a.dtype == bool else np.unique(a.astype(np.int64).reshape(-1))
    if idx.size and (idx.min() < 0 or idx.max() >= n):
        raise IndexError("active indices out of range")
    k = idx.size
    if k == 0 or n_trials == 0:
        return np.zeros((n_trials, k, k), dtype=float)
    rng = as_rng(seed)
    means = pathloss_matrix(d[np.ix_(idx, idx)], alpha, power)
    if shadowing_static:
        shadow = _lognormal_factor(rng, sigma_db, (k, k), normalize)[None, :, :]
    else:
        shadow = _lognormal_factor(rng, sigma_db, (n_trials, k, k), normalize)
    rayleigh = rng.exponential(1.0, size=(n_trials, k, k))
    return rayleigh * shadow * means[None, :, :]


def success_probability_shadowed(
    distances: np.ndarray,
    active: np.ndarray,
    alpha: float,
    gamma_th: float,
    sigma_db: float,
    *,
    n_trials: int = 20_000,
    noise: float = 0.0,
    shadowing_static: bool = False,
    seed: SeedLike = None,
) -> np.ndarray:
    """Monte-Carlo success probability under composite fading.

    With ``shadowing_static=False`` (default here) every trial redraws
    the obstacle field, so the estimate marginalises over deployments —
    the right quantity for "how reliable is this schedule in a random
    environment".  At ``sigma_db = 0`` this estimates the paper's
    Thm 3.1 closed form (tests assert agreement).
    """
    z = sample_shadowed_trials(
        distances,
        active,
        alpha,
        sigma_db,
        n_trials,
        shadowing_static=shadowing_static,
        seed=seed,
    )
    if z.shape[1] == 0 or n_trials == 0:
        return np.zeros(z.shape[1], dtype=float)
    signal = np.diagonal(z, axis1=1, axis2=2)
    interference = z.sum(axis=1) - signal + noise
    with np.errstate(divide="ignore", invalid="ignore"):
        sinr = np.where(interference > 0, signal / interference, np.inf)
    return (sinr >= gamma_th).mean(axis=0)
