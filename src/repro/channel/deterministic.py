"""Classical deterministic physical (SINR) model.

This is the model the ApproxLogN and ApproxDiversity baselines schedule
against: received power is exactly ``P * d^-alpha``, so a transmission
on link ``j`` succeeds iff

    ``P d_jj^-alpha / (N0 + sum_{i in P\\j} P d_ij^-alpha) >= gamma_th``.

The paper's point is that schedules built to satisfy this deterministic
test fail under fading; :mod:`repro.sim` replays them through the
Rayleigh channel to count those failures (Fig. 5).
"""

from __future__ import annotations

import numpy as np

from repro.channel.pathloss import pathloss_matrix


def deterministic_sinr(
    distances: np.ndarray,
    active: np.ndarray,
    alpha: float,
    *,
    power: float = 1.0,
    noise: float = 0.0,
) -> np.ndarray:
    """Deterministic SINR at each active receiver.

    Parameters
    ----------
    distances : (N, N) array
        ``distances[i, j] = d(s_i, r_j)``.
    active : (N,) bool array or int index array
        The set of simultaneously transmitting links ``P``.
    alpha, power, noise:
        Path loss exponent, transmit power, ambient noise ``N0``
        (0 by default, matching Eq. 8).

    Returns
    -------
    (K,) array of SINR values, ordered like the active indices, where
    ``K`` is the number of active links.  With a single active link and
    zero noise the SINR is ``inf``.
    """
    d = np.asarray(distances, dtype=float)
    idx = _as_index(active, d.shape[0])
    if idx.size == 0:
        return np.zeros(0, dtype=float)
    gains = pathloss_matrix(d[np.ix_(idx, idx)], alpha, power)
    signal = np.diag(gains).copy()
    interference = gains.sum(axis=0) - signal
    denom = noise + interference
    with np.errstate(divide="ignore"):
        return np.where(denom > 0, signal / denom, np.inf)


def deterministic_success(
    distances: np.ndarray,
    active: np.ndarray,
    alpha: float,
    gamma_th: float,
    *,
    power: float = 1.0,
    noise: float = 0.0,
) -> np.ndarray:
    """Boolean success per active link under the deterministic model."""
    sinr = deterministic_sinr(distances, active, alpha, power=power, noise=noise)
    return sinr >= gamma_th


def _as_index(active: np.ndarray, n: int) -> np.ndarray:
    """Normalise a bool mask or index array to a sorted index array."""
    a = np.asarray(active)
    if a.dtype == bool:
        if a.shape != (n,):
            raise ValueError(f"boolean active mask must have shape ({n},), got {a.shape}")
        return np.flatnonzero(a)
    idx = np.unique(a.astype(np.int64).reshape(-1))
    if idx.size and (idx.min() < 0 or idx.max() >= n):
        raise IndexError(f"active indices out of range for {n} links")
    return idx
