"""Channel models.

- :mod:`repro.channel.pathloss` — the log-distance mean power law
  ``P * d^-alpha`` shared by every law,
- :mod:`repro.channel.deterministic` — the classical physical (SINR)
  model used by the ApproxLogN / ApproxDiversity baselines,
- :mod:`repro.channel.rayleigh` — the Rayleigh-fading law: per-pair
  exponential received powers (Eq. 5), the closed-form success
  probability of Theorem 3.1, and fading samplers,
- :mod:`repro.channel.nakagami` — Nakagami-m fading (Gamma-distributed
  instantaneous power; ``m = 1`` is Rayleigh, larger ``m`` milder),
- :mod:`repro.channel.shadowing` — log-normal shadowing and the Suzuki
  shadowing x Rayleigh composite,
- :mod:`repro.channel.laws` — the pluggable :class:`ChannelLaw`
  interface and registry (``rayleigh`` | ``nakagami`` | ``shadowing`` |
  ``deterministic``) the simulator, experiments and CLI select from
  (see ``docs/CHANNELS.md``),
- :mod:`repro.channel.sampling` — batched and streaming (memory-bounded)
  Monte-Carlo draws consumed by :mod:`repro.sim`, parametrised by a
  channel law.
"""

from repro.channel.deterministic import deterministic_sinr, deterministic_success
from repro.channel.laws import (
    CHANNEL_LAWS,
    ChannelLaw,
    DeterministicLaw,
    NakagamiLaw,
    RayleighLaw,
    ShadowingLaw,
    channel_law_names,
    get_channel_law,
    register_channel_law,
)
from repro.channel.nakagami import (
    NakagamiChannel,
    fading_severity_sweep,
    sample_nakagami_trials,
    sample_received_power_nakagami,
    success_probability_nakagami,
)
from repro.channel.pathloss import mean_received_power, pathloss_matrix
from repro.channel.rayleigh import (
    RayleighChannel,
    received_power_cdf,
    sample_received_power,
    success_probability,
)
from repro.channel.sampling import (
    DEFAULT_MAX_BYTES,
    fading_means,
    iter_fading_trials,
    sample_fading_trials,
    trial_chunk_size,
)
from repro.channel.shadowing import (
    sample_shadowed_trials,
    success_probability_shadowed,
)

__all__ = [
    "mean_received_power",
    "pathloss_matrix",
    "deterministic_sinr",
    "deterministic_success",
    "RayleighChannel",
    "received_power_cdf",
    "sample_received_power",
    "success_probability",
    "sample_fading_trials",
    "iter_fading_trials",
    "fading_means",
    "trial_chunk_size",
    "DEFAULT_MAX_BYTES",
    # channel-law interface (docs/CHANNELS.md)
    "ChannelLaw",
    "RayleighLaw",
    "NakagamiLaw",
    "ShadowingLaw",
    "DeterministicLaw",
    "CHANNEL_LAWS",
    "get_channel_law",
    "register_channel_law",
    "channel_law_names",
    # Nakagami-m module surface
    "NakagamiChannel",
    "sample_nakagami_trials",
    "sample_received_power_nakagami",
    "success_probability_nakagami",
    "fading_severity_sweep",
    # shadowing module surface
    "sample_shadowed_trials",
    "success_probability_shadowed",
]
