"""Channel models.

- :mod:`repro.channel.pathloss` — the log-distance mean power law
  ``P * d^-alpha`` shared by both models,
- :mod:`repro.channel.deterministic` — the classical physical (SINR)
  model used by the ApproxLogN / ApproxDiversity baselines,
- :mod:`repro.channel.rayleigh` — the Rayleigh-fading law: per-pair
  exponential received powers (Eq. 5), the closed-form success
  probability of Theorem 3.1, and fading samplers,
- :mod:`repro.channel.sampling` — batched and streaming (memory-bounded)
  Monte-Carlo draws consumed by :mod:`repro.sim`.
"""

from repro.channel.deterministic import deterministic_sinr, deterministic_success
from repro.channel.pathloss import mean_received_power, pathloss_matrix
from repro.channel.rayleigh import (
    RayleighChannel,
    received_power_cdf,
    sample_received_power,
    success_probability,
)
from repro.channel.sampling import (
    DEFAULT_MAX_BYTES,
    fading_means,
    iter_fading_trials,
    sample_fading_trials,
    trial_chunk_size,
)

__all__ = [
    "mean_received_power",
    "pathloss_matrix",
    "deterministic_sinr",
    "deterministic_success",
    "RayleighChannel",
    "received_power_cdf",
    "sample_received_power",
    "success_probability",
    "sample_fading_trials",
    "iter_fading_trials",
    "fading_means",
    "trial_chunk_size",
    "DEFAULT_MAX_BYTES",
]
