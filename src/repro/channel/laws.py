"""Pluggable channel laws: one interface, every fading model.

The simulator historically drew Rayleigh fading inline; the shadowing
and Nakagami modules existed but nothing in :mod:`repro.sim`,
:mod:`repro.experiments` or the CLI could select them.  This module
turns "which channel?" into data: a :class:`ChannelLaw` bundles

- the deterministic mean-power matrix (shared
  :func:`~repro.channel.sampling.fading_means` path loss x transmit
  power),
- a trial sampler compatible with
  :func:`~repro.channel.sampling.iter_fading_trials`'s chunked
  RNG-stream contract (chunking along the trial axis never changes the
  drawn bits — see `Stream contract`_ below), and
- an optional closed-form per-link success probability (Rayleigh's
  Thm 3.1; the deterministic model's indicator).

Laws register by name in :data:`CHANNEL_LAWS` and are selected by
**spec strings** — ``"rayleigh"``, ``"nakagami:m=2"``,
``"shadowing:sigma_db=6"``, ``"shadowing:sigma_db=4,static=true"``,
``"deterministic"`` — which are picklable, hashable, CLI-friendly, and
round-trip through :func:`get_channel_law` / :attr:`ChannelLaw.spec`.

Stream contract
---------------
Each law consumes its generator(s) element-wise in C order over the
``(T, K, K)`` index space, so drawing ``(t1, K, K)`` then ``(t2, K, K)``
concatenates to the same bits as one ``(t1 + t2, K, K)`` draw:

- ``rayleigh`` uses the single exponential stream of
  :mod:`repro.channel.sampling` (bit-identical to the legacy inline
  draw, which remains the fast path);
- ``nakagami`` fills one gamma stream the same way;
- ``shadowing`` splits the root generator into **two** spawned
  sub-streams (shadow gains, then Rayleigh variates), each consumed in
  C order, so per-chunk interleaving cannot shift either stream.  At
  ``sigma_db = 0`` it skips the split and delegates to the exact
  Rayleigh draw — the ``shadowing-zero-recovers-rayleigh`` relation
  pins bit-level recovery;
- ``deterministic`` consumes no randomness at all.

Feasibility contract
--------------------
Schedulers keep the paper's Rayleigh/Cor. 3.1 feasibility test
regardless of the simulated law (see ``docs/CHANNELS.md``): for
Nakagami ``m >= 1`` the test is *conservative* (milder fading only
raises success probabilities), for shadowing it is the certified
baseline the composite is measured against.  The channel law changes
what the Monte-Carlo replay samples, never what the scheduler admits.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Optional, Tuple, Type, Union

import numpy as np

from repro.channel.sampling import fading_means
from repro.channel.shadowing import _lognormal_factor
from repro.utils.rng import spawn_rngs
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ChannelLaw:
    """Base class of all channel laws (see the module docstring).

    Subclasses are frozen dataclasses whose fields are the law's
    parameters; :attr:`spec` serialises ``name`` + parameters into the
    canonical spec string and :func:`get_channel_law` parses it back.
    """

    #: Registry name; subclasses override.
    name = "abstract"

    # -- identity ----------------------------------------------------
    def params(self) -> Dict[str, Any]:
        """The law's parameters as an ordered field dict."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def spec(self) -> str:
        """Canonical spec string, e.g. ``"nakagami:m=2"``."""
        params = self.params()
        if not params:
            return self.name
        body = ",".join(f"{k}={_format_param(v)}" for k, v in params.items())
        return f"{self.name}:{body}"

    # -- closed form -------------------------------------------------
    @property
    def has_closed_form(self) -> bool:
        """Does :meth:`success_probability` return an exact answer?"""
        return False

    def success_probability(self, problem, active) -> Optional[np.ndarray]:
        """Exact per-link success probabilities, or ``None`` (MC only).

        Returns a ``(K,)`` array over the sorted active set when the law
        admits a closed form under ``problem``'s parameters.
        """
        return None

    # -- sampling ----------------------------------------------------
    def mean_power(
        self,
        distances: np.ndarray,
        active: np.ndarray,
        alpha: float,
        *,
        power: Union[float, np.ndarray] = 1.0,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sorted active indices and the ``(K, K)`` mean-power matrix.

        Every law shares the deterministic path-loss x power part of
        the draw (:func:`~repro.channel.sampling.fading_means`); only
        the random factor around it differs.
        """
        return fading_means(distances, active, alpha, power=power)

    def start_stream(self, rng: np.random.Generator, means: np.ndarray):
        """Per-replay sampler state consumed by :meth:`sample_chunk`.

        The default state is the generator itself; laws needing several
        independent sub-streams (shadowing) or precomputed factors
        (static shadowing) override this.  Called once before the first
        chunk; the returned state is threaded through every chunk.
        """
        return rng

    def sample_chunk(self, state, means: np.ndarray, t_c: int) -> np.ndarray:
        """Draw one ``(t_c, K, K)`` chunk of instantaneous powers."""
        raise NotImplementedError


def _format_param(value: Any) -> str:
    """Spec-string rendering of one parameter value."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if not isinstance(value, str) else value


def _closed_form_rayleigh(problem, active) -> np.ndarray:
    """Thm 3.1 per-link success over the sorted active set."""
    mask = problem.active_mask(active)
    idx = np.flatnonzero(mask)
    return problem.success_probabilities(idx)[idx]


@dataclass(frozen=True)
class RayleighLaw(ChannelLaw):
    """The paper's channel: exponential power around the mean (Eq. 5).

    Closed form: Thm 3.1.  The sampler is bit-identical to the legacy
    inline draw of :mod:`repro.channel.sampling` (one exponential
    stream, C order, means scaled in after the draw); the streaming
    sampler short-circuits to that inline path when it sees this law.
    """

    name = "rayleigh"

    @property
    def has_closed_form(self) -> bool:
        return True

    def success_probability(self, problem, active) -> np.ndarray:
        """Thm 3.1 exactly (the paper's closed form)."""
        return _closed_form_rayleigh(problem, active)

    def sample_chunk(self, state, means: np.ndarray, t_c: int) -> np.ndarray:
        """One exponential stream in C order, means scaled in after."""
        k = means.shape[0]
        z = state.exponential(1.0, size=(t_c, k, k))
        z *= means[None, :, :]
        return z


@dataclass(frozen=True)
class NakagamiLaw(ChannelLaw):
    """Nakagami-m fading: Gamma(``m``, mean/``m``) instantaneous power.

    ``m = 1`` is exactly Rayleigh *in distribution* (the gamma sampler
    consumes the stream differently, so agreement with the Rayleigh
    closed form is statistical, not bit-level — the
    ``nakagami-unit-closed-form`` relation pins it within Monte-Carlo
    bounds); larger ``m`` is milder fading, ``m -> inf`` approaches the
    deterministic model.
    """

    name = "nakagami"
    m: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.m, "m")

    @property
    def has_closed_form(self) -> bool:
        return self.m == 1.0

    def success_probability(self, problem, active) -> Optional[np.ndarray]:
        """Thm 3.1 at ``m = 1`` (Rayleigh in distribution); else MC only."""
        if self.m != 1.0:
            return None
        return _closed_form_rayleigh(problem, active)

    def sample_chunk(self, state, means: np.ndarray, t_c: int) -> np.ndarray:
        """One Gamma(m, mean/m) stream in C order."""
        k = means.shape[0]
        z = state.gamma(shape=self.m, scale=1.0 / self.m, size=(t_c, k, k))
        z *= means[None, :, :]
        return z


@dataclass(frozen=True)
class ShadowingLaw(ChannelLaw):
    """Suzuki composite: mean-corrected log-normal shadowing x Rayleigh.

    ``sigma_db`` is the shadowing spread in decibels; ``static=True``
    draws one obstacle field per replay (shared by all trials),
    ``static=False`` (default) redraws it per trial, marginalising over
    deployments.  The shadow and Rayleigh variates come from two
    independent sub-generators spawned from the replay seed so the
    chunked stream contract holds; ``sigma_db = 0`` bypasses the split
    and reproduces the Rayleigh bits exactly.
    """

    name = "shadowing"
    sigma_db: float = 6.0
    static: bool = False

    def __post_init__(self) -> None:
        if self.sigma_db < 0:
            raise ValueError(f"sigma_db must be >= 0, got {self.sigma_db}")

    @property
    def has_closed_form(self) -> bool:
        return self.sigma_db == 0.0

    def success_probability(self, problem, active) -> Optional[np.ndarray]:
        """Thm 3.1 at ``sigma_db = 0`` (pure Rayleigh); else MC only."""
        if self.sigma_db != 0.0:
            return None
        return _closed_form_rayleigh(problem, active)

    def start_stream(self, rng: np.random.Generator, means: np.ndarray):
        """Split the replay seed into (shadow, Rayleigh) sub-streams.

        With ``static=True`` the shadow field is drawn here, once per
        replay; ``sigma_db = 0`` skips the split (exact Rayleigh bits).
        """
        if self.sigma_db == 0.0:
            return rng
        shadow_rng, ray_rng = spawn_rngs(rng, 2)
        if self.static:
            factor = _lognormal_factor(shadow_rng, self.sigma_db, means.shape, True)
            return (factor, ray_rng)
        return (shadow_rng, ray_rng)

    def sample_chunk(self, state, means: np.ndarray, t_c: int) -> np.ndarray:
        """Rayleigh chunk times the (per-trial or frozen) shadow factor."""
        k = means.shape[0]
        if self.sigma_db == 0.0:
            z = state.exponential(1.0, size=(t_c, k, k))
            z *= means[None, :, :]
            return z
        shadow_state, ray_rng = state
        z = ray_rng.exponential(1.0, size=(t_c, k, k))
        if self.static:
            z *= shadow_state[None, :, :]
        else:
            z *= _lognormal_factor(shadow_state, self.sigma_db, (t_c, k, k), True)
        z *= means[None, :, :]
        return z


@dataclass(frozen=True)
class DeterministicLaw(ChannelLaw):
    """No fading: every trial receives exactly the mean power.

    The classical physical (SINR) model the ApproxLogN / ApproxDiversity
    baselines assume.  Consumes no randomness; the closed form is the
    0/1 indicator of the deterministic SINR test.
    """

    name = "deterministic"

    @property
    def has_closed_form(self) -> bool:
        return True

    def success_probability(self, problem, active) -> np.ndarray:
        """0/1 indicator of the deterministic SINR test per active link."""
        idx, means = self.mean_power(
            problem.distances(), active, problem.alpha, power=problem.tx_powers()
        )
        if idx.size == 0:
            return np.zeros(0, dtype=float)
        signal = np.diag(means)
        interference = means.sum(axis=0) - signal + problem.noise
        with np.errstate(divide="ignore", invalid="ignore"):
            sinr = np.where(interference > 0, signal / interference, np.inf)
        return (sinr >= problem.gamma_th).astype(float)

    def sample_chunk(self, state, means: np.ndarray, t_c: int) -> np.ndarray:
        """Every trial is exactly the mean-power matrix."""
        return np.tile(means, (t_c, 1, 1))


#: Registered channel laws, name -> law class.
CHANNEL_LAWS: Dict[str, Type[ChannelLaw]] = {
    RayleighLaw.name: RayleighLaw,
    NakagamiLaw.name: NakagamiLaw,
    ShadowingLaw.name: ShadowingLaw,
    DeterministicLaw.name: DeterministicLaw,
}


def register_channel_law(cls: Type[ChannelLaw]) -> Type[ChannelLaw]:
    """Register a :class:`ChannelLaw` subclass under ``cls.name``.

    Usable as a class decorator; re-registration of an existing name
    raises (shadowing a law silently would corrupt recorded specs).
    """
    name = cls.name
    if name in CHANNEL_LAWS and CHANNEL_LAWS[name] is not cls:
        raise ValueError(f"channel law {name!r} is already registered")
    CHANNEL_LAWS[name] = cls
    return cls


def channel_law_names() -> Tuple[str, ...]:
    """Sorted registered law names (for CLI help and validation errors)."""
    return tuple(sorted(CHANNEL_LAWS))


def _parse_param(raw: str) -> Any:
    """One ``key=value`` value: bool words, else int-like, else float."""
    low = raw.strip().lower()
    if low in ("true", "yes", "on"):
        return True
    if low in ("false", "no", "off"):
        return False
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"cannot parse channel parameter value {raw!r}") from None


ChannelLike = Union[None, str, ChannelLaw]


def get_channel_law(spec: ChannelLike) -> ChannelLaw:
    """Resolve a law instance, name, or spec string to a law instance.

    ``None`` and ``"rayleigh"`` resolve to the default
    :class:`RayleighLaw`; ``"name:key=value,..."`` constructs the named
    law with the given parameters.  Raises ``ValueError`` for unknown
    names or parameters (the message lists the registered names).
    """
    if spec is None:
        return RayleighLaw()
    if isinstance(spec, ChannelLaw):
        return spec
    text = str(spec).strip()
    name, _, body = text.partition(":")
    name = name.strip()
    cls = CHANNEL_LAWS.get(name)
    if cls is None:
        raise ValueError(
            f"unknown channel law {name!r}; registered laws: "
            f"{', '.join(channel_law_names())}"
        )
    kwargs: Dict[str, Any] = {}
    if body.strip():
        for item in body.split(","):
            key, sep, raw = item.partition("=")
            if not sep or not key.strip():
                raise ValueError(
                    f"bad channel spec {text!r}: expected name:key=value[,key=value...]"
                )
            kwargs[key.strip()] = _parse_param(raw)
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ValueError(f"bad parameters for channel law {name!r}: {exc}") from None
