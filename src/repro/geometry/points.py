"""Point-array helpers.

A *point array* is a float ``ndarray`` of shape ``(N, 2)``.  All of
:mod:`repro` passes points in this struct-of-arrays layout so distance
computations reduce to single broadcasting expressions (see the
optimization guide: vectorise, avoid per-element Python loops).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def as_points(points: np.ndarray, name: str = "points") -> np.ndarray:
    """Coerce input to a float ``(N, 2)`` array, validating shape.

    Accepts any nested sequence convertible by :func:`numpy.asarray`.
    A single point ``(2,)`` is promoted to shape ``(1, 2)``.
    """
    p = np.asarray(points, dtype=float)
    if p.ndim == 1:
        if p.shape[0] != 2:
            raise ValueError(f"{name}: a single point must have 2 coordinates, got {p.shape}")
        p = p[None, :]
    if p.ndim != 2 or p.shape[1] != 2:
        raise ValueError(f"{name} must have shape (N, 2), got {p.shape}")
    if not np.all(np.isfinite(p)):
        raise ValueError(f"{name} must be finite")
    return p


def bounding_box(points: np.ndarray) -> Tuple[float, float, float, float]:
    """Return ``(xmin, ymin, xmax, ymax)`` of a point array."""
    p = as_points(points)
    if p.shape[0] == 0:
        raise ValueError("bounding_box of empty point set is undefined")
    mins = p.min(axis=0)
    maxs = p.max(axis=0)
    return float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1])


def translate(points: np.ndarray, offset: np.ndarray) -> np.ndarray:
    """Translate all points by ``offset`` (shape ``(2,)``); returns a copy."""
    p = as_points(points)
    off = np.asarray(offset, dtype=float)
    if off.shape != (2,):
        raise ValueError(f"offset must have shape (2,), got {off.shape}")
    return p + off[None, :]


def points_on_segment(start: np.ndarray, end: np.ndarray, n: int) -> np.ndarray:
    """``n`` evenly spaced points from ``start`` to ``end`` inclusive."""
    if n < 2:
        raise ValueError("need n >= 2 points to span a segment")
    s = np.asarray(start, dtype=float)
    e = np.asarray(end, dtype=float)
    t = np.linspace(0.0, 1.0, n)[:, None]
    return s[None, :] * (1.0 - t) + e[None, :] * t
