"""Vectorised Euclidean distance kernels.

These are the O(N^2) building blocks under every interference-factor
matrix, so they are written as single broadcasting expressions with no
temporaries beyond the output (guide: broadcasting + views, not loops).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.points import as_points


def cross_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs distances ``D[i, j] = |a_i - b_j|``.

    Parameters
    ----------
    a : (N, 2) array
    b : (M, 2) array

    Returns
    -------
    (N, M) array of Euclidean distances.
    """
    a = as_points(a, "a")
    b = as_points(b, "b")
    diff = a[:, None, :] - b[None, :, :]
    # einsum avoids the intermediate diff**2 allocation of (diff**2).sum.
    sq = np.einsum("ijk,ijk->ij", diff, diff)
    return np.sqrt(sq)


def pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Symmetric all-pairs distance matrix of one point set."""
    return cross_distances(points, points)


def point_to_points(point: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Distances from one point to each point of an array; shape ``(N,)``."""
    p = np.asarray(point, dtype=float)
    if p.shape != (2,):
        raise ValueError(f"point must have shape (2,), got {p.shape}")
    pts = as_points(points)
    diff = pts - p[None, :]
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def min_pairwise_distance(points: np.ndarray) -> float:
    """Smallest distance between two *distinct* points.

    Used by the knapsack reduction (``d_min`` in Eq. 25).  Raises for
    fewer than two points.
    """
    pts = as_points(points)
    n = pts.shape[0]
    if n < 2:
        raise ValueError("need at least two points")
    d = pairwise_distances(pts)
    # Mask the diagonal rather than adding inf in place, keeping d intact.
    iu = np.triu_indices(n, k=1)
    return float(d[iu].min())


def max_pairwise_distance(points: np.ndarray) -> float:
    """Largest distance between two points (the set's diameter)."""
    pts = as_points(points)
    if pts.shape[0] < 2:
        raise ValueError("need at least two points")
    d = pairwise_distances(pts)
    return float(d.max())
