"""Axis-aligned rectangular deployment regions.

The paper deploys senders uniformly in a 500x500 square; :class:`Region`
generalises that to any axis-aligned rectangle and owns uniform sampling
and containment tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.points import as_points
from repro.utils.rng import SeedLike, as_rng


@dataclass(frozen=True)
class Region:
    """Axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if not (self.xmax > self.xmin and self.ymax > self.ymin):
            raise ValueError(
                f"degenerate region: ({self.xmin}, {self.ymin}) .. ({self.xmax}, {self.ymax})"
            )

    @classmethod
    def square(cls, side: float, origin: tuple[float, float] = (0.0, 0.0)) -> "Region":
        """The paper's deployment area: a ``side x side`` square."""
        if side <= 0:
            raise ValueError(f"side must be > 0, got {side}")
        ox, oy = origin
        return cls(ox, oy, ox + side, oy + side)

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def diagonal(self) -> float:
        return float(np.hypot(self.width, self.height))

    def contains(self, points: np.ndarray, *, tol: float = 0.0) -> np.ndarray:
        """Boolean mask of points inside the region (inclusive, +/- tol)."""
        p = as_points(points)
        return (
            (p[:, 0] >= self.xmin - tol)
            & (p[:, 0] <= self.xmax + tol)
            & (p[:, 1] >= self.ymin - tol)
            & (p[:, 1] <= self.ymax + tol)
        )

    def sample_uniform(self, n: int, seed: SeedLike = None) -> np.ndarray:
        """Draw ``n`` i.i.d. uniform points; shape ``(n, 2)``."""
        if n < 0:
            raise ValueError("n must be >= 0")
        rng = as_rng(seed)
        xy = rng.uniform(size=(n, 2))
        xy[:, 0] = self.xmin + xy[:, 0] * self.width
        xy[:, 1] = self.ymin + xy[:, 1] * self.height
        return xy

    def clamp(self, points: np.ndarray) -> np.ndarray:
        """Project points onto the region (used when a receiver placed at
        a random direction would fall outside the deployment area)."""
        p = as_points(points).copy()
        np.clip(p[:, 0], self.xmin, self.xmax, out=p[:, 0])
        np.clip(p[:, 1], self.ymin, self.ymax, out=p[:, 1])
        return p

    def expanded(self, margin: float) -> "Region":
        """A region grown by ``margin`` on every side."""
        if margin < 0:
            raise ValueError("margin must be >= 0")
        return Region(self.xmin - margin, self.ymin - margin, self.xmax + margin, self.ymax + margin)
