"""Square grid partition and 4-colouring (paper Fig. 2).

LDP tiles the plane with axis-aligned squares of side ``beta_k`` and
colours them with four colours in a 2x2 repeating pattern so that two
same-colour squares are separated by an even number of cells in each
axis.  The feasibility proof (Thm 4.1) then walks concentric *rings* of
same-colour squares around a receiver; :func:`ring_cells` enumerates
those rings so the proof's counting argument (at most ``8q`` interfering
cells in ring ``q``) can be exercised numerically in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.geometry.points import as_points


def four_coloring(cells: np.ndarray) -> np.ndarray:
    """Colour integer grid cells with ``{0, 1, 2, 3}`` in a 2x2 pattern.

    Two cells share a colour iff their index difference is even on both
    axes, which is exactly the property LDP needs: same-colour squares
    at ring distance ``q`` are ``2 q * cell_size`` apart.

    Parameters
    ----------
    cells : (N, 2) int array of cell indices ``(a, b)``.

    Returns
    -------
    (N,) int array of colours in ``{0, 1, 2, 3}``.
    """
    c = np.asarray(cells)
    if c.ndim != 2 or c.shape[1] != 2:
        raise ValueError(f"cells must have shape (N, 2), got {c.shape}")
    return (np.mod(c[:, 0], 2) * 2 + np.mod(c[:, 1], 2)).astype(np.int64)


@dataclass(frozen=True)
class GridPartition:
    """A partition of the plane into ``cell_size x cell_size`` squares.

    The grid is anchored at ``origin`` (cell ``(0, 0)`` has its lower
    left corner there) but extends over the whole plane — LDP never
    needs an explicit cell list, only the point -> cell map.
    """

    cell_size: float
    origin: Tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        if not self.cell_size > 0:
            raise ValueError(f"cell_size must be > 0, got {self.cell_size}")

    def cell_of(self, points: np.ndarray) -> np.ndarray:
        """Map points to integer cell indices ``(a, b)``; shape ``(N, 2)``.

        Points exactly on a boundary belong to the cell on their upper
        right (floor semantics), matching a half-open tiling.
        """
        p = as_points(points)
        ox, oy = self.origin
        idx = np.empty((p.shape[0], 2), dtype=np.int64)
        idx[:, 0] = np.floor((p[:, 0] - ox) / self.cell_size)
        idx[:, 1] = np.floor((p[:, 1] - oy) / self.cell_size)
        return idx

    def color_of(self, points: np.ndarray) -> np.ndarray:
        """Colour in ``{0,1,2,3}`` of each point's cell."""
        return four_coloring(self.cell_of(points))

    def cell_center(self, cells: np.ndarray) -> np.ndarray:
        """Centre coordinates of integer cells; shape ``(N, 2)``."""
        c = np.asarray(cells, dtype=float)
        if c.ndim == 1:
            c = c[None, :]
        ox, oy = self.origin
        out = np.empty_like(c)
        out[:, 0] = ox + (c[:, 0] + 0.5) * self.cell_size
        out[:, 1] = oy + (c[:, 1] + 0.5) * self.cell_size
        return out

    def same_color_separation(self, cell_a: Tuple[int, int], cell_b: Tuple[int, int]) -> float:
        """Lower bound on the distance between points of two same-colour cells.

        For distinct same-colour cells the index difference is even and
        at least 2 on some axis, so the gap between the squares is at
        least ``(max(|da|, |db|) - 1) * cell_size >= cell_size``.
        """
        da = abs(cell_a[0] - cell_b[0])
        db = abs(cell_a[1] - cell_b[1])
        cheb = max(da, db)
        if cheb == 0:
            return 0.0
        return (cheb - 1) * self.cell_size


def ring_cells(center: Tuple[int, int], q: int) -> Iterator[Tuple[int, int]]:
    """Yield the cells at Chebyshev distance exactly ``q`` from ``center``.

    Ring ``q`` has ``8q`` cells for ``q >= 1`` (the count used in
    Thm 4.1's interference bound) and just the centre for ``q = 0``.
    """
    if q < 0:
        raise ValueError("q must be >= 0")
    ca, cb = center
    if q == 0:
        yield (ca, cb)
        return
    for a in range(ca - q, ca + q + 1):
        yield (a, cb - q)
        yield (a, cb + q)
    for b in range(cb - q + 1, cb + q):
        yield (ca - q, b)
        yield (ca + q, b)


def ring_cell_count(q: int) -> int:
    """Number of cells in ring ``q``: ``1`` if ``q == 0`` else ``8q``."""
    if q < 0:
        raise ValueError("q must be >= 0")
    return 1 if q == 0 else 8 * q
