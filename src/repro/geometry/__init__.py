"""Planar geometry substrate.

Everything the schedulers need from 2-D Euclidean geometry:

- :mod:`repro.geometry.points` — point-array helpers and constructors,
- :mod:`repro.geometry.distance` — vectorised distance kernels,
- :mod:`repro.geometry.region` — axis-aligned rectangular regions,
- :mod:`repro.geometry.grid` — the square partition + 4-colouring used
  by LDP (Fig. 2a of the paper) and the ring enumeration used in the
  feasibility proofs (Fig. 2b).
"""

from repro.geometry.distance import (
    cross_distances,
    pairwise_distances,
    point_to_points,
)
from repro.geometry.grid import GridPartition, four_coloring, ring_cells
from repro.geometry.points import as_points, bounding_box, translate
from repro.geometry.region import Region

__all__ = [
    "as_points",
    "bounding_box",
    "translate",
    "cross_distances",
    "pairwise_distances",
    "point_to_points",
    "Region",
    "GridPartition",
    "four_coloring",
    "ring_cells",
]
