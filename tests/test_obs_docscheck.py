"""The docs-contract gate: catalogue completeness + API.md snippets."""

from __future__ import annotations

import shutil
from pathlib import Path

from repro.obs import docscheck

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestRepoPasses:
    def test_this_repo_passes(self):
        assert docscheck.run_checks(REPO_ROOT) == []

    def test_main_exit_codes(self, capsys):
        assert docscheck.main(["--root", str(REPO_ROOT)]) == 0
        assert "docs-check: OK" in capsys.readouterr().out


class TestScanner:
    def test_finds_span_and_metric_call_sites(self):
        spans, metrics = docscheck.used_names(REPO_ROOT / "src")
        assert "mc.replay" in spans
        assert "experiment.fig5a" in spans
        assert "mc.trials_simulated" in metrics
        assert "verify.checks_run" in metrics
        # each name maps to the files using it
        assert any(p.endswith("montecarlo.py") for p in spans["mc.replay"])

    def test_obs_package_itself_is_excluded(self):
        spans, _ = docscheck.used_names(REPO_ROOT / "src")
        for files in spans.values():
            assert not any(f.startswith("repro/obs/") for f in files)

    def test_regexes_match_contract_style_only(self):
        assert docscheck.SPAN_USE_RE.findall('with span("a.b", n=1):') == ["a.b"]
        assert docscheck.SPAN_USE_RE.findall("span(name)") == []
        text = 'obs_metrics.inc("c.d", 2)'
        assert docscheck.METRIC_USE_RE.findall(text) == ["c.d"]
        assert docscheck.METRIC_USE_RE.findall("obs_metrics.inc(name)") == []


def _copy_repo_docs_and_src(tmp_path: Path) -> Path:
    root = tmp_path / "repo"
    (root / "docs").mkdir(parents=True)
    shutil.copytree(REPO_ROOT / "src", root / "src")
    for page in ("OBSERVABILITY.md", "API.md", "CHANNELS.md", "CACHING.md", "SERVICE.md"):
        shutil.copy(REPO_ROOT / "docs" / page, root / "docs" / page)
    return root


class TestFailureModes:
    def test_fails_when_span_name_removed_from_catalogue(self, tmp_path):
        root = _copy_repo_docs_and_src(tmp_path)
        obs_md = root / "docs" / "OBSERVABILITY.md"
        text = obs_md.read_text()
        assert "`mc.replay`" in text
        obs_md.write_text(text.replace("`mc.replay`", "`mc.removed_name`"))
        problems = docscheck.run_checks(root)
        assert any("'mc.replay'" in p and "Span catalogue" in p for p in problems)

    def test_fails_when_metric_name_removed_from_catalogue(self, tmp_path):
        root = _copy_repo_docs_and_src(tmp_path)
        obs_md = root / "docs" / "OBSERVABILITY.md"
        obs_md.write_text(obs_md.read_text().replace("`verify.checks_run`", "`x.y`"))
        problems = docscheck.run_checks(root)
        assert any("'verify.checks_run'" in p for p in problems)

    def test_fails_when_new_call_site_is_undocumented(self, tmp_path):
        root = _copy_repo_docs_and_src(tmp_path)
        extra = root / "src" / "repro" / "_docscheck_probe.py"
        extra.write_text(
            'from repro.obs.trace import span\n\n'
            'def f():\n'
            '    with span("undocumented.span"):\n'
            '        pass\n'
        )
        problems = docscheck.run_checks(root)
        assert any("'undocumented.span'" in p for p in problems)

    def test_fails_when_catalogue_section_missing(self, tmp_path):
        root = _copy_repo_docs_and_src(tmp_path)
        obs_md = root / "docs" / "OBSERVABILITY.md"
        obs_md.write_text(
            obs_md.read_text().replace("## Span catalogue", "## Spans (renamed)")
        )
        problems = docscheck.run_checks(root)
        assert any("no '## Span catalogue' section" in p for p in problems)

    def test_fails_when_observability_md_missing(self, tmp_path):
        root = _copy_repo_docs_and_src(tmp_path)
        (root / "docs" / "OBSERVABILITY.md").unlink()
        problems = docscheck.run_checks(root)
        assert any("does not exist" in p for p in problems)

    def test_main_exit_code_on_failure(self, tmp_path, capsys):
        root = _copy_repo_docs_and_src(tmp_path)
        obs_md = root / "docs" / "OBSERVABILITY.md"
        obs_md.write_text(obs_md.read_text().replace("`mc.replay`", "`gone`"))
        assert docscheck.main(["--root", str(root)]) == 1
        assert "docs-check: FAILED" in capsys.readouterr().err


class TestDoctestGate:
    def test_failing_snippet_reported(self, tmp_path):
        root = _copy_repo_docs_and_src(tmp_path)
        api = root / "docs" / "API.md"
        api.write_text(
            api.read_text()
            + "\n```python\n>>> 1 + 1\n3\n```\n"
        )
        problems = docscheck.run_checks(root)
        assert len(problems) == 1

    def test_failing_channels_snippet_reported(self, tmp_path):
        root = _copy_repo_docs_and_src(tmp_path)
        ch = root / "docs" / "CHANNELS.md"
        ch.write_text(ch.read_text() + "\n```python\n>>> 2 + 2\n5\n```\n")
        problems = docscheck.run_checks(root)
        assert len(problems) == 1
        assert "CHANNELS.md" in problems[0]

    def test_blocks_without_prompts_are_ignored(self):
        md = "```python\nraise RuntimeError('not a doctest')\n```\n"
        assert docscheck.doctest_blocks(md) == []
        assert docscheck.run_doctest_blocks(md) == []

    def test_section_parser_stops_at_next_heading(self):
        md = (
            "## Span catalogue\n`a.b`\n\n"
            "## Metric catalogue\n`c.d`\n"
        )
        spans, metrics = docscheck.catalogued_names(md)
        assert spans == {"a.b"} and metrics == {"c.d"}


class TestChannelsGate:
    def test_repo_channels_doc_is_complete(self):
        problems = docscheck.run_checks(REPO_ROOT)
        assert problems == []

    def test_fails_when_law_removed_from_table(self, tmp_path):
        root = _copy_repo_docs_and_src(tmp_path)
        ch = root / "docs" / "CHANNELS.md"
        text = ch.read_text()
        assert "`nakagami`" in text
        ch.write_text(text.replace("`nakagami`", "`renamed_law`"))
        problems = docscheck.run_checks(root)
        assert any("'nakagami'" in p and "Channel laws" in p for p in problems)

    def test_fails_when_policy_removed_from_table(self, tmp_path):
        root = _copy_repo_docs_and_src(tmp_path)
        ch = root / "docs" / "CHANNELS.md"
        ch.write_text(ch.read_text().replace("`min_uniform`", "`gone`"))
        problems = docscheck.run_checks(root)
        assert any("'min_uniform'" in p and "Power policies" in p for p in problems)

    def test_fails_when_channels_md_missing(self, tmp_path):
        root = _copy_repo_docs_and_src(tmp_path)
        (root / "docs" / "CHANNELS.md").unlink()
        problems = docscheck.run_checks(root)
        assert any("docs/CHANNELS.md does not exist" in p for p in problems)

    def test_fails_when_section_heading_renamed(self, tmp_path):
        root = _copy_repo_docs_and_src(tmp_path)
        ch = root / "docs" / "CHANNELS.md"
        ch.write_text(ch.read_text().replace("## Channel laws", "## Laws"))
        problems = docscheck.run_checks(root)
        assert any("no '## Channel laws' section" in p for p in problems)


class TestCachingGate:
    def test_fails_when_policy_removed_from_doc(self, tmp_path):
        root = _copy_repo_docs_and_src(tmp_path)
        ca = root / "docs" / "CACHING.md"
        text = ca.read_text()
        assert "`repetition_aware`" in text
        ca.write_text(text.replace("`repetition_aware`", "`renamed_policy`"))
        problems = docscheck.run_checks(root)
        assert any(
            "'repetition_aware'" in p and "Eviction policies" in p for p in problems
        )

    def test_fails_when_caching_md_missing(self, tmp_path):
        root = _copy_repo_docs_and_src(tmp_path)
        (root / "docs" / "CACHING.md").unlink()
        problems = docscheck.run_checks(root)
        assert any("docs/CACHING.md does not exist" in p for p in problems)

    def test_fails_when_section_heading_renamed(self, tmp_path):
        root = _copy_repo_docs_and_src(tmp_path)
        ca = root / "docs" / "CACHING.md"
        ca.write_text(ca.read_text().replace("## Eviction policies", "## Victims"))
        problems = docscheck.run_checks(root)
        assert any("no '## Eviction policies' section" in p for p in problems)

    def test_failing_caching_snippet_reported(self, tmp_path):
        root = _copy_repo_docs_and_src(tmp_path)
        ca = root / "docs" / "CACHING.md"
        ca.write_text(ca.read_text() + "\n```python\n>>> 3 + 3\n7\n```\n")
        problems = docscheck.run_checks(root)
        assert len(problems) == 1
        assert "CACHING.md" in problems[0]


class TestServiceGate:
    def test_fails_when_route_removed_from_doc(self, tmp_path):
        root = _copy_repo_docs_and_src(tmp_path)
        sv = root / "docs" / "SERVICE.md"
        text = sv.read_text()
        assert "`POST /v1/schedule`" in text
        sv.write_text(text.replace("`POST /v1/schedule`", "`POST /v1/renamed`"))
        problems = docscheck.run_checks(root)
        assert any(
            "'POST /v1/schedule'" in p and "Endpoints" in p for p in problems
        )

    def test_fails_when_error_code_removed_from_doc(self, tmp_path):
        root = _copy_repo_docs_and_src(tmp_path)
        sv = root / "docs" / "SERVICE.md"
        text = sv.read_text()
        assert "`queue-full`" in text
        sv.write_text(text.replace("`queue-full`", "`renamed-code`"))
        problems = docscheck.run_checks(root)
        assert any("'queue-full'" in p and "Error codes" in p for p in problems)

    def test_fails_when_service_md_missing(self, tmp_path):
        root = _copy_repo_docs_and_src(tmp_path)
        (root / "docs" / "SERVICE.md").unlink()
        problems = docscheck.run_checks(root)
        assert any("docs/SERVICE.md does not exist" in p for p in problems)

    def test_fails_when_section_heading_renamed(self, tmp_path):
        root = _copy_repo_docs_and_src(tmp_path)
        sv = root / "docs" / "SERVICE.md"
        sv.write_text(sv.read_text().replace("## Endpoints", "## Routes"))
        problems = docscheck.run_checks(root)
        assert any("no '## Endpoints' section" in p for p in problems)

    def test_failing_service_snippet_reported(self, tmp_path):
        root = _copy_repo_docs_and_src(tmp_path)
        sv = root / "docs" / "SERVICE.md"
        sv.write_text(sv.read_text() + "\n```python\n>>> 5 + 5\n11\n```\n")
        problems = docscheck.run_checks(root)
        assert len(problems) == 1
        assert "SERVICE.md" in problems[0]
