"""Observability across the process pool: n_jobs-invariant aggregation.

The acceptance bar: enabling observability changes no result, and the
metric snapshot is **byte-identical** for every ``n_jobs`` — serial
writes to the live registry and submission-order merging of per-worker
snapshots must be indistinguishable.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.base import get_scheduler
from repro.experiments.config import TopologyWorkload
from repro.obs import metrics as obs_metrics
from repro.sim.runner import run_schedulers

SCHEDULERS = {"ldp": get_scheduler("ldp"), "rle": get_scheduler("rle"),
              "dls": get_scheduler("dls")}
# DLS is randomised with per-call entropy by default; pin it so the
# executed work (and hence the metrics) is identical across plans.
KWARGS = {"dls": {"seed": 11}}


def _run(n_jobs):
    return run_schedulers(
        SCHEDULERS,
        TopologyWorkload(n_links=40),
        n_repetitions=3,
        n_trials=50,
        n_jobs=n_jobs,
        scheduler_kwargs=KWARGS,
    )


def _observed_run(n_jobs):
    obs.enable()
    obs.reset()
    try:
        results = _run(n_jobs)
        return results, obs_metrics.snapshot_json(), obs.drain_spans()
    finally:
        obs.disable()
        obs.reset()


class TestSnapshotByteIdentity:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_snapshot_bytes_match_serial(self, jobs):
        _, serial_snap, _ = _observed_run(1)
        _, parallel_snap, _ = _observed_run(jobs)
        assert parallel_snap == serial_snap

    def test_snapshot_contains_instrumented_counters(self):
        _, snap_json, _ = _observed_run(1)
        for name in (
            "runner.units_built",
            "scheduler.links_admitted",
            "mc.trials_simulated",
            "fmatrix.builds",
        ):
            assert name in snap_json


class TestResultsUnchanged:
    def test_observed_results_equal_unobserved(self):
        baseline = _run(1)
        observed, _, _ = _observed_run(1)
        for name in SCHEDULERS:
            assert observed[name].mean_failed == baseline[name].mean_failed
            assert observed[name].mean_throughput == baseline[name].mean_throughput

    def test_observed_parallel_results_equal_serial(self):
        serial, _, _ = _observed_run(1)
        parallel, _, _ = _observed_run(2)
        for name in SCHEDULERS:
            assert parallel[name].mean_failed == serial[name].mean_failed


class TestWorkerSpans:
    def test_worker_spans_reattached_with_proc_tags(self):
        _, _, spans = _observed_run(2)
        units = [s for s in spans if s.name == "parallel.unit"]
        assert len(units) == 9  # 3 schedulers x 3 repetitions
        assert all(u.proc is not None for u in units)
        # every worker unit hangs off the parent's parallel.map span
        (pmap,) = [s for s in spans if s.name == "parallel.map"]
        assert all(u.parent == pmap.id for u in units)
        # ids remain unique after re-basing across 2 workers
        ids = [s.id for s in spans]
        assert len(set(ids)) == len(ids)

    def test_serial_spans_have_no_proc_tag(self):
        _, _, spans = _observed_run(1)
        units = [s for s in spans if s.name == "parallel.unit"]
        assert len(units) == 9
        assert all(u.proc is None for u in units)

    def test_span_names_same_for_any_plan(self):
        _, _, serial_spans = _observed_run(1)
        _, _, parallel_spans = _observed_run(4)
        assert sorted(s.name for s in serial_spans) == sorted(
            s.name for s in parallel_spans
        )

    def test_disabled_parallel_ships_nothing(self):
        obs.disable()
        _run(2)
        assert obs.drain_spans() == []
        assert obs_metrics.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
