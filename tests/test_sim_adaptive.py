"""Tests for adaptive Monte-Carlo sampling."""

import pytest

from repro.core.problem import FadingRLS
from repro.core.rle import rle_schedule
from repro.core.schedule import Schedule
from repro.network.topology import paper_topology
from repro.sim.adaptive import simulate_until


@pytest.fixture(scope="module")
def dense_problem():
    return FadingRLS(links=paper_topology(200, seed=0))


class TestSimulateUntil:
    def test_converges_and_matches_analytic(self, dense_problem):
        from repro.core.baselines.approx_diversity import approx_diversity_schedule

        s = approx_diversity_schedule(dense_problem)
        out = simulate_until(
            dense_problem, s, metric="failed", target_stderr=0.02, seed=1
        )
        assert out.converged
        probs = dense_problem.success_probabilities(s.active)[s.active]
        analytic = float((1 - probs).sum())
        assert out.estimate == pytest.approx(analytic, abs=5 * out.stderr + 0.02)

    def test_throughput_metric(self, dense_problem):
        s = rle_schedule(dense_problem)
        out = simulate_until(
            dense_problem, s, metric="throughput", target_stderr=0.05, seed=2
        )
        assert out.converged
        assert out.estimate == pytest.approx(
            dense_problem.expected_throughput(s.active), abs=5 * out.stderr + 0.05
        )

    def test_easy_schedule_stops_early(self, dense_problem):
        """A feasible (low-variance) schedule needs few batches."""
        s = rle_schedule(dense_problem)
        out = simulate_until(dense_problem, s, metric="failed", target_stderr=0.05, batch=500, seed=3)
        assert out.converged
        assert out.n_batches == 1

    def test_tighter_tolerance_more_trials(self, dense_problem):
        from repro.core.baselines.approx_diversity import approx_diversity_schedule

        s = approx_diversity_schedule(dense_problem)
        loose = simulate_until(dense_problem, s, target_stderr=0.2, seed=4)
        tight = simulate_until(dense_problem, s, target_stderr=0.02, seed=4)
        assert tight.n_trials >= loose.n_trials

    def test_cap_reported(self, dense_problem):
        from repro.core.baselines.approx_diversity import approx_diversity_schedule

        s = approx_diversity_schedule(dense_problem)
        out = simulate_until(
            dense_problem, s, target_stderr=1e-9, batch=100, max_trials=300, seed=5
        )
        assert not out.converged
        assert out.n_trials == 300

    def test_empty_schedule_exact(self, dense_problem):
        out = simulate_until(dense_problem, Schedule.empty(), seed=0)
        assert out.converged and out.estimate == 0.0 and out.n_trials == 0

    def test_validation(self, dense_problem):
        s = rle_schedule(dense_problem)
        with pytest.raises(ValueError):
            simulate_until(dense_problem, s, metric="latency")
        with pytest.raises(ValueError):
            simulate_until(dense_problem, s, target_stderr=0.0)
        with pytest.raises(ValueError):
            simulate_until(dense_problem, s, batch=1)
