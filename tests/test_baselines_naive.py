"""Tests for the naive baselines."""

import numpy as np

from repro.core.baselines.naive import (
    all_active_schedule,
    greedy_fading_schedule,
    longest_first_schedule,
    random_feasible_schedule,
)
from repro.core.problem import FadingRLS
from repro.network.links import LinkSet
from repro.network.topology import paper_topology, random_rates_topology


class TestGreedy:
    def test_feasible(self, paper_problem):
        s = greedy_fading_schedule(paper_problem)
        assert paper_problem.is_feasible(s.active)

    def test_maximal(self, paper_problem):
        """No link outside the schedule can be added without breaking it."""
        s = greedy_fading_schedule(paper_problem)
        mask = s.mask(paper_problem.n_links)
        for i in np.flatnonzero(~mask):
            trial = np.append(s.active, i)
            assert not paper_problem.is_feasible(trial)

    def test_prefers_high_rate(self):
        links = random_rates_topology(80, rate_low=1.0, rate_high=10.0, seed=0)
        p = FadingRLS(links=links)
        s = greedy_fading_schedule(p)
        # Mean rate of scheduled links should exceed the population mean.
        assert links.rates[s.active].mean() > links.rates.mean()

    def test_deterministic(self, paper_problem):
        np.testing.assert_array_equal(
            greedy_fading_schedule(paper_problem).active,
            greedy_fading_schedule(paper_problem).active,
        )


class TestLongestFirst:
    def test_feasible(self, paper_problem):
        s = longest_first_schedule(paper_problem)
        assert paper_problem.is_feasible(s.active)

    def test_usually_worse_than_greedy(self):
        wins = 0
        for seed in range(5):
            p = FadingRLS(links=paper_topology(200, seed=seed))
            if greedy_fading_schedule(p).size >= longest_first_schedule(p).size:
                wins += 1
        assert wins >= 4


class TestRandom:
    def test_feasible(self, paper_problem):
        s = random_feasible_schedule(paper_problem, seed=0)
        assert paper_problem.is_feasible(s.active)

    def test_seed_controls_output(self, paper_problem):
        a = random_feasible_schedule(paper_problem, seed=1)
        b = random_feasible_schedule(paper_problem, seed=1)
        c = random_feasible_schedule(paper_problem, seed=2)
        np.testing.assert_array_equal(a.active, b.active)
        assert not np.array_equal(a.active, c.active)


class TestAllActive:
    def test_schedules_everything(self, paper_problem):
        s = all_active_schedule(paper_problem)
        assert s.size == paper_problem.n_links

    def test_empty(self):
        p = FadingRLS(links=LinkSet.empty())
        assert all_active_schedule(p).size == 0
