"""Tests for repro.analysis (regimes and density)."""

import numpy as np
import pytest

from repro.analysis.density import empirical_density, ldp_density_ceiling, rle_density_ceiling
from repro.analysis.regimes import constants_table, summarize_regime
from repro.core.problem import gamma_epsilon


class TestRegimeSummary:
    def test_matches_bound_functions(self):
        from repro.core.bounds import ldp_beta, ldp_square_capacity, rle_c1

        s = summarize_regime(3.0, 1.0, 0.01)
        g = gamma_epsilon(0.01)
        assert s.gamma_eps == pytest.approx(g)
        assert s.ldp_beta == pytest.approx(ldp_beta(3.0, 1.0, g))
        assert s.ldp_square_capacity == ldp_square_capacity(3.0, 1.0, g)
        assert s.rle_c1_by_c2[0.5] == pytest.approx(rle_c1(3.0, 1.0, g, 0.5))

    def test_budget_ratio(self):
        s = summarize_regime(3.0, 1.0, 0.01)
        assert s.budget_vs_deterministic == pytest.approx(1.0 / s.gamma_eps)
        assert 90 < s.budget_vs_deterministic < 110  # ~100x at eps=0.01

    def test_beta_shrinks_with_alpha(self):
        betas = [summarize_regime(a).ldp_beta for a in (2.5, 3.0, 4.0)]
        assert betas[0] > betas[1] > betas[2]

    def test_rigorous_beta_larger_at_high_alpha(self):
        """The paper's Eq. 37 undersizes squares for large alpha (the
        corner-geometry gap, EXPERIMENTS.md finding 3)."""
        s = summarize_regime(4.5)
        assert s.ldp_beta_rigorous > s.ldp_beta

    def test_alpha_domain(self):
        with pytest.raises(ValueError):
            summarize_regime(2.0)

    def test_constants_table_renders(self):
        out = constants_table(alphas=(2.5, 3.0))
        assert "gamma_eps" in out
        assert len(out.splitlines()) == 4


class TestDensity:
    def test_rle_ceiling_formula(self):
        from repro.core.bounds import rle_c1

        g = gamma_epsilon(0.01)
        c1 = rle_c1(3.0, 1.0, g, 0.5)
        ceiling = rle_density_ceiling(3.0, 1.0, g, 10.0)
        assert ceiling == pytest.approx(1.0 / (np.pi * ((c1 - 1) * 10.0 / 2) ** 2))

    def test_ceilings_decrease_with_length(self):
        g = gamma_epsilon(0.01)
        assert rle_density_ceiling(3.0, 1.0, g, 20.0) < rle_density_ceiling(3.0, 1.0, g, 5.0)
        assert ldp_density_ceiling(3.0, 1.0, g, 20.0) < ldp_density_ceiling(3.0, 1.0, g, 5.0)

    def test_empirical_density_respects_rle_ceiling(self):
        """RLE's realised density on uniform-length workloads never
        beats the circle-packing ceiling for the shortest length."""
        from repro.core.problem import FadingRLS
        from repro.core.rle import rle_schedule
        from repro.network.topology import paper_topology

        for seed in range(3):
            links = paper_topology(
                400, min_length=10.0, max_length=10.0, seed=seed
            )
            p = FadingRLS(links=links)
            s = rle_schedule(p)
            realised = empirical_density(p, s, 500.0**2)
            ceiling = rle_density_ceiling(3.0, 1.0, p.gamma_eps, 10.0)
            # Boundary effects let the packing overshoot slightly; 2x is safe.
            assert realised <= 2 * ceiling

    def test_empirical_density_validation(self):
        from repro.core.schedule import Schedule
        from repro.core.problem import FadingRLS
        from repro.network.topology import paper_topology

        p = FadingRLS(links=paper_topology(5, seed=0))
        with pytest.raises(ValueError):
            empirical_density(p, Schedule.empty(), 0.0)
