"""Tests for the experiment result store."""

import json

import pytest

from repro.experiments.store import ResultStore, config_key


class TestConfigKey:
    def test_deterministic(self):
        assert config_key("x", {"a": 1}) == config_key("x", {"a": 1})

    def test_order_insensitive(self):
        assert config_key("x", {"a": 1, "b": 2}) == config_key("x", {"b": 2, "a": 1})

    def test_name_and_params_matter(self):
        assert config_key("x", {"a": 1}) != config_key("y", {"a": 1})
        assert config_key("x", {"a": 1}) != config_key("x", {"a": 2})

    def test_tuples_and_numpy_coerced(self):
        import numpy as np

        k1 = config_key("x", {"sweep": (1, 2), "n": np.int64(5)})
        k2 = config_key("x", {"sweep": [1, 2], "n": 5})
        assert k1 == k2

    def test_unserialisable_rejected(self):
        with pytest.raises(TypeError):
            config_key("x", {"fn": object()})


class TestResultStore:
    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        calls = []

        def runner():
            calls.append(1)
            return {"value": 42}

        payload, cached = store.load_or_run("exp", {"n": 3}, runner)
        assert payload == {"value": 42} and not cached
        payload2, cached2 = store.load_or_run("exp", {"n": 3}, runner)
        assert payload2 == {"value": 42} and cached2
        assert len(calls) == 1

    def test_different_params_rerun(self, tmp_path):
        store = ResultStore(tmp_path)
        counter = {"n": 0}

        def runner():
            counter["n"] += 1
            return {"run": counter["n"]}

        store.load_or_run("exp", {"n": 1}, runner)
        store.load_or_run("exp", {"n": 2}, runner)
        assert counter["n"] == 2

    def test_corrupt_entry_is_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = config_key("exp", {})
        store.path_for(key).write_text("{not json")
        assert store.get(key) is None
        payload, cached = store.load_or_run("exp", {}, lambda: {"ok": True})
        assert payload == {"ok": True} and not cached

    def test_keys_and_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.load_or_run("a", {}, lambda: {})
        store.load_or_run("b", {}, lambda: {})
        assert len(store.keys()) == 2
        assert store.clear() == 2
        assert store.keys() == []

    def test_atomic_write_no_tmp_left(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", {"x": 1})
        assert not list(tmp_path.glob("*.tmp"))
        assert json.loads(store.path_for("k").read_text()) == {"x": 1}

    def test_creates_directory(self, tmp_path):
        nested = tmp_path / "a" / "b"
        ResultStore(nested)
        assert nested.is_dir()


class TestTornWriteRegression:
    """A damaged `<key>.json` must read as a miss and re-run, never crash."""

    def test_truncated_entry_is_detected_and_rerun(self, tmp_path):
        store = ResultStore(tmp_path)
        store.load_or_run("exp", {"n": 1}, lambda: {"value": 42})
        key = config_key("exp", {"n": 1})
        # simulate a torn write: the file is cut mid-payload
        full = store.path_for(key).read_text()
        store.path_for(key).write_text(full[: len(full) // 2])
        assert store.get(key) is None
        payload, cached = store.load_or_run("exp", {"n": 1}, lambda: {"value": 42})
        assert payload == {"value": 42} and not cached
        # the re-run repaired the entry on disk
        assert store.get(key) == {"value": 42}

    def test_empty_file_is_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.path_for("k").write_text("")
        assert store.get("k") is None

    def test_binary_garbage_is_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.path_for("k").write_bytes(b"\x80\x81\xfe\xff")
        assert store.get("k") is None

    def test_non_dict_payload_is_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.path_for("k").write_text("[1, 2, 3]")
        assert store.get("k") is None

    def test_failed_put_leaves_existing_entry_untouched(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", {"good": 1})
        with pytest.raises(TypeError):
            store.put("k", {"bad": object()})
        assert store.get("k") == {"good": 1}
        assert not list(tmp_path.glob("*.tmp"))
