"""Tests for the random-waypoint mobility workload."""

import numpy as np
import pytest

from repro.core.schedule import Schedule
from repro.network.delta import LinkDelta, apply_delta
from repro.network.links import LinkSet
from repro.network.mobility import (
    random_waypoint_delta_trace,
    random_waypoint_trace,
    schedule_churn,
)


class TestRandomWaypointTrace:
    def test_step_count_and_sizes(self):
        trace = random_waypoint_trace(30, 5, seed=0)
        assert len(trace) == 5
        assert all(len(ls) == 30 for ls in trace)

    def test_link_lengths_constant(self):
        trace = random_waypoint_trace(20, 10, seed=1)
        first = trace[0].lengths
        for ls in trace[1:]:
            np.testing.assert_allclose(ls.lengths, first)

    def test_positions_actually_move(self):
        trace = random_waypoint_trace(20, 10, speed_range=(3.0, 5.0), seed=2)
        moved = np.linalg.norm(trace[-1].senders - trace[0].senders, axis=1)
        assert (moved > 0).all()

    def test_speed_bounds_per_step(self):
        trace = random_waypoint_trace(15, 20, speed_range=(2.0, 4.0), dt=1.0, seed=3)
        for a, b in zip(trace, trace[1:]):
            step = np.linalg.norm(b.senders - a.senders, axis=1)
            assert (step <= 4.0 + 1e-9).all()

    def test_reproducible(self):
        a = random_waypoint_trace(10, 4, seed=7)
        b = random_waypoint_trace(10, 4, seed=7)
        for la, lb in zip(a, b):
            np.testing.assert_array_equal(la.senders, lb.senders)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_waypoint_trace(10, 0)
        with pytest.raises(ValueError):
            random_waypoint_trace(10, 5, speed_range=(5.0, 1.0))
        with pytest.raises(ValueError):
            random_waypoint_trace(10, 5, speed_range=(0.0, 1.0))


class TestDeltaTrace:
    def test_zero_threshold_matches_dense_trace_exactly(self):
        """threshold=0 replays to the same geometry as the dense trace."""
        dense = random_waypoint_trace(25, 6, speed_range=(2.0, 5.0), seed=11)
        sparse = random_waypoint_delta_trace(
            25, 6, speed_range=(2.0, 5.0), move_threshold=0.0, seed=11
        )
        assert len(sparse) == len(dense)
        for replayed, reference in zip(sparse.linksets(), dense):
            np.testing.assert_array_equal(replayed.senders, reference.senders)
            np.testing.assert_array_equal(replayed.receivers, reference.receivers)

    def test_threshold_bounds_position_staleness(self):
        """Replayed positions never lag true positions by >= threshold+step."""
        threshold, top_speed = 20.0, 4.0
        dense = random_waypoint_trace(30, 12, speed_range=(2.0, top_speed), seed=12)
        sparse = random_waypoint_delta_trace(
            30, 12, speed_range=(2.0, top_speed), move_threshold=threshold, seed=12
        )
        for replayed, reference in zip(sparse.linksets(), dense):
            lag = np.linalg.norm(replayed.senders - reference.senders, axis=1)
            assert (lag < threshold + top_speed + 1e-9).all()

    def test_threshold_sparsifies_deltas(self):
        dense = random_waypoint_delta_trace(
            40, 10, speed_range=(1.0, 3.0), move_threshold=0.0, seed=13
        )
        sparse = random_waypoint_delta_trace(
            40, 10, speed_range=(1.0, 3.0), move_threshold=15.0, seed=13
        )
        assert sum(sparse.delta_sizes()) < sum(dense.delta_sizes())
        assert all(size == 40 for size in dense.delta_sizes())

    def test_n_steps_and_len(self):
        trace = random_waypoint_delta_trace(10, 7, seed=0)
        assert trace.n_steps == 7
        assert len(trace) == 7
        assert len(trace.deltas) == 6

    def test_reproducible(self):
        a = random_waypoint_delta_trace(12, 5, move_threshold=10.0, seed=9)
        b = random_waypoint_delta_trace(12, 5, move_threshold=10.0, seed=9)
        for da, db in zip(a.deltas, b.deltas):
            np.testing.assert_array_equal(da.moves, db.moves)
            np.testing.assert_array_equal(da.new_senders, db.new_senders)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_waypoint_delta_trace(10, 0)
        with pytest.raises(ValueError):
            random_waypoint_delta_trace(10, 5, move_threshold=-1.0)


class TestLinkDelta:
    def _links(self, n=6):
        senders = np.column_stack([np.arange(n, dtype=float) * 50.0, np.zeros(n)])
        receivers = senders + np.array([10.0, 0.0])
        return LinkSet(senders=senders, receivers=receivers, rates=np.ones(n))

    def test_apply_order_moves_removes_inserts(self):
        links = self._links()
        extra = self._links(1)
        delta = LinkDelta(
            moves=np.array([0]),
            new_senders=np.array([[1.0, 1.0]]),
            new_receivers=np.array([[11.0, 1.0]]),
            removes=np.array([2]),
            inserts=extra,
        )
        out = apply_delta(links, delta)
        assert len(out) == 6  # 6 - 1 removed + 1 inserted
        np.testing.assert_array_equal(out.senders[0], [1.0, 1.0])
        # Link 3 shifted down into slot 2 after the removal.
        np.testing.assert_array_equal(out.senders[2], links.senders[3])
        np.testing.assert_array_equal(out.senders[-1], extra.senders[0])

    def test_touched_accounts_for_removals(self):
        delta = LinkDelta(
            moves=np.array([4]),
            new_senders=np.array([[0.0, 0.0]]),
            new_receivers=np.array([[10.0, 0.0]]),
            removes=np.array([1]),
            inserts=self._links(2),
        )
        # Pre-delta index 4 lands at post-delta 3; inserts land at 5, 6.
        np.testing.assert_array_equal(delta.touched(6), [3, 5, 6])

    def test_move_and_remove_same_link_rejected(self):
        with pytest.raises(ValueError):
            LinkDelta(
                moves=np.array([1]),
                new_senders=np.zeros((1, 2)),
                new_receivers=np.ones((1, 2)),
                removes=np.array([1]),
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LinkDelta(moves=np.array([0, 1]), new_senders=np.zeros((1, 2)),
                      new_receivers=np.zeros((1, 2)))

    def test_empty_delta_is_noop(self):
        links = self._links()
        delta = LinkDelta.empty()
        assert delta.is_empty
        out = apply_delta(links, delta)
        np.testing.assert_array_equal(out.senders, links.senders)

    def test_out_of_range_indices_rejected(self):
        links = self._links(3)
        with pytest.raises(IndexError):
            apply_delta(
                links,
                LinkDelta(
                    moves=np.array([5]),
                    new_senders=np.zeros((1, 2)),
                    new_receivers=np.ones((1, 2)),
                ),
            )
        with pytest.raises(IndexError):
            apply_delta(links, LinkDelta(removes=np.array([7])))


class TestScheduleChurn:
    def test_identical_schedules_zero(self):
        s = Schedule(active=np.array([1, 2, 3]))
        assert schedule_churn([s, s, s]) == [0.0, 0.0]

    def test_disjoint_schedules_one(self):
        a = Schedule(active=np.array([0, 1]))
        b = Schedule(active=np.array([2, 3]))
        assert schedule_churn([a, b]) == [1.0]

    def test_partial_overlap(self):
        a = Schedule(active=np.array([0, 1, 2]))
        b = Schedule(active=np.array([1, 2, 3]))
        assert schedule_churn([a, b])[0] == pytest.approx(0.5)

    def test_empty_pair(self):
        a = Schedule.empty()
        assert schedule_churn([a, a]) == [0.0]

    def test_end_to_end_mobility_scheduling(self):
        """Schedules over a mobility trace stay feasible; churn is bounded."""
        from repro.core.problem import FadingRLS
        from repro.core.rle import rle_schedule

        trace = random_waypoint_trace(60, 6, speed_range=(2.0, 6.0), seed=4)
        schedules = []
        for links in trace:
            p = FadingRLS(links=links)
            s = rle_schedule(p)
            assert p.is_feasible(s.active)
            schedules.append(s)
        churn = schedule_churn(schedules)
        assert len(churn) == 5
        assert all(0.0 <= c <= 1.0 for c in churn)
