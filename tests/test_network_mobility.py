"""Tests for the random-waypoint mobility workload."""

import numpy as np
import pytest

from repro.core.schedule import Schedule
from repro.network.mobility import random_waypoint_trace, schedule_churn


class TestRandomWaypointTrace:
    def test_step_count_and_sizes(self):
        trace = random_waypoint_trace(30, 5, seed=0)
        assert len(trace) == 5
        assert all(len(ls) == 30 for ls in trace)

    def test_link_lengths_constant(self):
        trace = random_waypoint_trace(20, 10, seed=1)
        first = trace[0].lengths
        for ls in trace[1:]:
            np.testing.assert_allclose(ls.lengths, first)

    def test_positions_actually_move(self):
        trace = random_waypoint_trace(20, 10, speed_range=(3.0, 5.0), seed=2)
        moved = np.linalg.norm(trace[-1].senders - trace[0].senders, axis=1)
        assert (moved > 0).all()

    def test_speed_bounds_per_step(self):
        trace = random_waypoint_trace(15, 20, speed_range=(2.0, 4.0), dt=1.0, seed=3)
        for a, b in zip(trace, trace[1:]):
            step = np.linalg.norm(b.senders - a.senders, axis=1)
            assert (step <= 4.0 + 1e-9).all()

    def test_reproducible(self):
        a = random_waypoint_trace(10, 4, seed=7)
        b = random_waypoint_trace(10, 4, seed=7)
        for la, lb in zip(a, b):
            np.testing.assert_array_equal(la.senders, lb.senders)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_waypoint_trace(10, 0)
        with pytest.raises(ValueError):
            random_waypoint_trace(10, 5, speed_range=(5.0, 1.0))
        with pytest.raises(ValueError):
            random_waypoint_trace(10, 5, speed_range=(0.0, 1.0))


class TestScheduleChurn:
    def test_identical_schedules_zero(self):
        s = Schedule(active=np.array([1, 2, 3]))
        assert schedule_churn([s, s, s]) == [0.0, 0.0]

    def test_disjoint_schedules_one(self):
        a = Schedule(active=np.array([0, 1]))
        b = Schedule(active=np.array([2, 3]))
        assert schedule_churn([a, b]) == [1.0]

    def test_partial_overlap(self):
        a = Schedule(active=np.array([0, 1, 2]))
        b = Schedule(active=np.array([1, 2, 3]))
        assert schedule_churn([a, b])[0] == pytest.approx(0.5)

    def test_empty_pair(self):
        a = Schedule.empty()
        assert schedule_churn([a, a]) == [0.0]

    def test_end_to_end_mobility_scheduling(self):
        """Schedules over a mobility trace stay feasible; churn is bounded."""
        from repro.core.problem import FadingRLS
        from repro.core.rle import rle_schedule

        trace = random_waypoint_trace(60, 6, speed_range=(2.0, 6.0), seed=4)
        schedules = []
        for links in trace:
            p = FadingRLS(links=links)
            s = rle_schedule(p)
            assert p.is_feasible(s.active)
            schedules.append(s)
        churn = schedule_churn(schedules)
        assert len(churn) == 5
        assert all(0.0 <= c <= 1.0 for c in churn)
