"""Named power policies (`repro.core.powercontrol` registry layer).

`apply_power_policy` semantics per policy, and the
`run_scheduler_with_power` contract — including the documented
fallback for the paper's uniform-power-only schedulers
(docs/CHANNELS.md).
"""

import numpy as np
import pytest

from repro.core.base import SchedulerError, get_scheduler
from repro.core.powercontrol import (
    POWER_POLICIES,
    apply_power_policy,
    distance_proportional_powers,
    run_scheduler_with_power,
)
from repro.core.problem import FadingRLS
from repro.network.topology import paper_topology


def make_problem(n=20, seed=5, noise=0.0):
    return FadingRLS(links=paper_topology(n, seed=seed), alpha=3.0, noise=noise)


class TestApplyPowerPolicy:
    def test_registry_contents(self):
        assert POWER_POLICIES == (
            "uniform",
            "distance_proportional",
            "min_uniform",
            "foschini_miljanic",
        )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown power policy"):
            apply_power_policy(make_problem(), "nope")

    def test_uniform_is_identity(self):
        p = make_problem()
        assert apply_power_policy(p, "uniform") is p

    def test_distance_proportional_powers(self):
        p = make_problem()
        powered = apply_power_policy(p, "distance_proportional")
        assert powered is not p
        want = distance_proportional_powers(p.links, p.alpha)
        np.testing.assert_array_equal(powered.tx_powers(), want)
        assert not powered.has_uniform_power

    def test_min_uniform_noiseless_is_identity(self):
        p = make_problem(noise=0.0)
        assert apply_power_policy(p, "min_uniform") is p

    def test_min_uniform_with_noise_serviceable(self):
        p = make_problem(noise=1e-6)
        powered = apply_power_policy(p, "min_uniform")
        assert powered is not p
        powers = powered.tx_powers()
        assert np.all(powers == powers[0]) and powers[0] > 0
        # Every singleton must be serviceable under the new power.
        for j in range(powered.n_links):
            assert powered.is_feasible([j])

    def test_foschini_without_active_is_identity(self):
        p = make_problem()
        assert apply_power_policy(p, "foschini_miljanic") is p

    def test_foschini_repowers_feasible_set(self):
        p = make_problem()
        schedule = get_scheduler("greedy")(p)
        powered = apply_power_policy(
            p, "foschini_miljanic", active=schedule.active
        )
        assert powered.is_feasible(schedule.active, tol=1e-6)
        # Minimal powers are (weakly) below the uniform baseline.
        assert powered.tx_powers()[schedule.active].max() <= p.tx_powers().max() + 1e-12


class TestRunSchedulerWithPower:
    def test_uniform_runs_on_base_problem(self):
        p = make_problem()
        schedule, powered = run_scheduler_with_power(p, get_scheduler("rle"), "uniform")
        assert powered is p
        assert schedule.active.tolist() == get_scheduler("rle")(p).active.tolist()

    def test_generalised_scheduler_sees_powers(self):
        p = make_problem()
        schedule, powered = run_scheduler_with_power(
            p, get_scheduler("greedy"), "distance_proportional"
        )
        assert not powered.has_uniform_power
        # The schedule was built on (and is feasible for) the powered instance.
        assert powered.is_feasible(schedule.active)

    @pytest.mark.parametrize("name", ("ldp", "rle", "approx_logn", "approx_diversity"))
    def test_uniform_power_scheduler_fallback(self, name):
        """Paper schedulers reject per-link powers; the runner certifies
        on the base instance and re-powers only the replay."""
        p = make_problem()
        scheduler = get_scheduler(name)
        with pytest.raises(SchedulerError):
            scheduler(apply_power_policy(p, "distance_proportional"))
        schedule, powered = run_scheduler_with_power(
            p, scheduler, "distance_proportional"
        )
        assert not powered.has_uniform_power
        # The certificate holds on the instance the scheduler saw.
        assert schedule.active.tolist() == scheduler(p).active.tolist()

    def test_foschini_schedules_first(self):
        p = make_problem()
        scheduler = get_scheduler("rle")
        schedule, powered = run_scheduler_with_power(p, scheduler, "foschini_miljanic")
        assert schedule.active.tolist() == scheduler(p).active.tolist()
        assert powered.is_feasible(schedule.active, tol=1e-6)

    def test_scheduler_kwargs_forwarded(self):
        p = make_problem()
        sched_a, _ = run_scheduler_with_power(
            p, get_scheduler("dls"), "uniform", {"seed": 7}
        )
        sched_b, _ = run_scheduler_with_power(
            p, get_scheduler("dls"), "uniform", {"seed": 7}
        )
        assert sched_a.active.tolist() == sched_b.active.tolist()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown power policy"):
            run_scheduler_with_power(make_problem(), get_scheduler("rle"), "bogus")
