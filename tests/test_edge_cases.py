"""Edge-case and numerical-stability tests across the stack."""

import numpy as np
import pytest

from repro.core.problem import FadingRLS, gamma_epsilon, interference_factors
from repro.core.rle import rle_schedule
from repro.network.links import LinkSet
from repro.network.topology import paper_topology


class TestExtremeParameters:
    def test_alpha_just_above_two(self):
        """zeta(alpha - 1) blows up as alpha -> 2+; constants stay finite."""
        from repro.core.bounds import ldp_beta, rle_c1

        g = gamma_epsilon(0.01)
        beta = ldp_beta(2.0001, 1.0, g)
        c1 = rle_c1(2.0001, 1.0, g, 0.5)
        assert np.isfinite(beta) and beta > 1
        assert np.isfinite(c1) and c1 > 1

    def test_huge_alpha_schedules_densely(self):
        p = FadingRLS(links=paper_topology(150, seed=0), alpha=10.0)
        s = rle_schedule(p)
        assert p.is_feasible(s.active)
        assert s.size > 20  # near-isolation: most links coexist

    def test_tiny_eps(self):
        """eps = 1e-9: budget ~1e-9, still schedulable one link at a time."""
        p = FadingRLS(links=paper_topology(50, seed=1), eps=1e-9)
        s = rle_schedule(p)
        assert s.size >= 1
        assert p.is_feasible(s.active)

    def test_near_one_eps(self):
        """eps -> 1: budget huge, everything fits."""
        p = FadingRLS(links=paper_topology(50, seed=2), eps=1 - 1e-9)
        assert p.is_feasible(np.arange(50))

    def test_extreme_gamma_th(self):
        for gamma_th in (1e-6, 1e6):
            p = FadingRLS(links=paper_topology(30, seed=3), gamma_th=gamma_th)
            s = rle_schedule(p)
            assert p.is_feasible(s.active)

    def test_very_long_links(self):
        links = paper_topology(20, min_length=1000.0, max_length=2000.0, seed=4)
        p = FadingRLS(links=links)
        s = rle_schedule(p)
        assert p.is_feasible(s.active)

    def test_microscopic_links(self):
        links = paper_topology(20, min_length=1e-6, max_length=2e-6, seed=5)
        p = FadingRLS(links=links)
        s = rle_schedule(p)
        assert p.is_feasible(s.active)


class TestNumericalStability:
    def test_interference_factors_no_overflow(self):
        """Gigantic distance ratios must not overflow to inf."""
        d = np.array([[1.0, 1e12], [1e12, 1.0]])
        f = interference_factors(d, alpha=6.0, gamma_th=1.0)
        assert np.all(np.isfinite(f))
        assert f[0, 1] >= 0

    def test_interference_factors_tiny_values_preserved(self):
        """log1p keeps precision for factors ~1e-15."""
        d = np.array([[1.0, 1e5], [1e5, 1.0]])
        f = interference_factors(d, alpha=3.0, gamma_th=1.0)
        expected = 1e-15  # gamma * (1/1e5)^3
        assert f[0, 1] == pytest.approx(expected, rel=1e-6)

    def test_success_probability_extreme_interference(self):
        """Interferer on top of a victim receiver: probability ~0, not NaN."""
        links = LinkSet(
            senders=[[0.0, 0.0], [10.0001, 0.0]],
            receivers=[[10.0, 0.0], [20.0, 0.0]],
        )
        p = FadingRLS(links=links)
        probs = p.success_probabilities([0, 1])
        assert np.all(np.isfinite(probs))
        assert probs[0] < 1e-6  # link 0's receiver sits on sender 1

    def test_gamma_epsilon_small_eps_precision(self):
        """log1p path: gamma_eps(1e-12) ~ 1e-12, not 0."""
        assert gamma_epsilon(1e-12) == pytest.approx(1e-12, rel=1e-3)

    def test_budget_boundary_tolerance(self):
        """A schedule exactly at the budget counts as feasible (tol)."""
        # Construct two links whose mutual factor sums exactly to budget.
        p = FadingRLS(links=paper_topology(2, seed=6))
        f = p.interference_matrix()
        inf = p.interference_on([0, 1])
        # If naturally under budget, shrink eps to sit exactly on it.
        target = max(inf[0], inf[1])
        if target > 0:
            eps_exact = 1 - np.exp(-target)
            if 0 < eps_exact < 1:
                q = p.with_params(eps=eps_exact)
                assert q.is_feasible([0, 1])


class TestDegenerateInstances:
    def test_two_identical_length_links(self):
        links = LinkSet(
            senders=[[0.0, 0.0], [1000.0, 0.0]],
            receivers=[[10.0, 0.0], [1010.0, 0.0]],
        )
        p = FadingRLS(links=links)
        from repro.core.ldp import ldp_schedule

        for fn in (rle_schedule, ldp_schedule):
            s = fn(p)
            assert p.is_feasible(s.active)
            assert s.size == 2  # far apart: both fit

    def test_single_link_everything_works(self):
        links = LinkSet(senders=[[5.0, 5.0]], receivers=[[6.0, 5.0]])
        p = FadingRLS(links=links)
        from repro.core.base import get_scheduler, list_schedulers

        for name in list_schedulers():
            if name.startswith("_"):
                continue  # throwaway schedulers registered by other tests
            kwargs = {"seed": 0} if name in ("dls", "random", "protocol_mis", "local_search") else {}
            s = get_scheduler(name)(p, **kwargs)
            assert s.size == 1, name

    def test_collinear_crowd(self):
        """Many links on a line (worst-case geometry for ring arguments)."""
        from repro.network.topology import chain_topology

        p = FadingRLS(links=chain_topology(50, hop=30.0, link_length=10.0))
        s = rle_schedule(p)
        assert p.is_feasible(s.active)

    def test_duplicate_sender_positions(self):
        """Co-located senders (distinct receivers) are legal input."""
        links = LinkSet(
            senders=[[0.0, 0.0], [0.0, 0.0]],
            receivers=[[10.0, 0.0], [0.0, 10.0]],
        )
        p = FadingRLS(links=links)
        s = rle_schedule(p)
        assert p.is_feasible(s.active)
        assert s.size >= 1
